#!/usr/bin/env python3
"""Quickstart: detect a dormant hardware trojan with both side channels.

This example walks the shortest path through the library:

1. build the detection platform (golden AES design, die population,
   simulated measurement benches),
2. run the delay-based detection of Sec. III on one die,
3. run the inter-die EM detection of Sec. V on the HT1/HT2/HT3 size
   sweep and print the false-negative rates the paper's headline result
   is about.

Run it with::

    python examples/quickstart.py [--paper]

The default uses a reduced campaign (a few seconds); ``--paper`` uses
the paper's campaign sizes (8 dies, 50 pairs, 10 repetitions).
"""

from __future__ import annotations

import argparse

from repro.core.report import (
    delay_study_report,
    population_em_report,
    same_die_em_report,
)
from repro.experiments import ExperimentConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="use the paper's full campaign sizes")
    args = parser.parse_args()

    config = ExperimentConfig.paper() if args.paper else ExperimentConfig.fast()
    platform = config.build_platform()

    print("=" * 72)
    print("Delay-based detection (Sec. III): clock-glitch path-delay comparison")
    print("=" * 72)
    delay_study = platform.run_delay_study(
        trojan_names=("HT_comb", "HT_seq"),
        num_pairs=min(config.num_pk_pairs, 10),
    )
    print(delay_study_report(delay_study))
    print()

    print("=" * 72)
    print("Same-die EM detection (Sec. IV): averaged-trace comparison")
    print("=" * 72)
    same_die = platform.run_same_die_em_study(("HT_comb",))
    print(same_die_em_report(same_die))
    print()

    print("=" * 72)
    print("Inter-die EM detection (Sec. V): HT size sweep across the die population")
    print("=" * 72)
    population = platform.run_population_em_study(("HT1", "HT2", "HT3"))
    print(population_em_report(population))
    print()
    print("Paper reference: false negatives of 26% / 17% / 5% for trojans of")
    print("0.5% / 1.0% / 1.7% of the AES area (detection > 95% beyond 1.7%).")


if __name__ == "__main__":
    main()
