#!/usr/bin/env python3
"""Regenerate every figure and table of the paper and archive the results.

Runs the full experiment suite (:mod:`repro.experiments.runner`), prints
the paper-vs-measured summary table, and saves:

* the summary and per-experiment key numbers as JSON
  (``results/experiment_summary.json``),
* the Fig. 4/5/6 trace sets as ``.npz`` archives so they can be plotted
  or re-analysed offline without re-running the simulation.

Run with::

    python examples/reproduce_paper_figures.py [--paper] [--out results/]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import ExperimentConfig, run_all
from repro.io import save_result, save_traces


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="use the paper's full campaign sizes (slower)")
    parser.add_argument("--out", type=Path, default=Path("results"),
                        help="output directory for archived results")
    args = parser.parse_args()

    config = ExperimentConfig.paper() if args.paper else ExperimentConfig.fast()
    suite = run_all(config)

    print(suite.summary_table())
    print()
    print("All experiment shapes match the paper:" ,
          "YES" if suite.all_shapes_match() else "NO")

    args.out.mkdir(parents=True, exist_ok=True)
    summary_payload = {
        "profile": "paper" if args.paper else "fast",
        "summaries": [
            {
                "experiment": summary.experiment,
                "paper": summary.paper_claim,
                "measured": summary.measured,
                "matches_shape": summary.matches_shape,
            }
            for summary in suite.summaries
        ],
        "headline_false_negative_rates":
            suite.results["headline"].false_negative_rates(),
        "trojan_sizes": {
            row.trojan_name: row.fraction_of_aes
            for row in suite.results["table_ht_sizes"].rows
        },
    }
    summary_path = save_result(args.out / "experiment_summary", summary_payload)
    print(f"\nSummary written to {summary_path}")

    fig4 = suite.results["fig4"]
    save_traces(args.out / "fig4_single_encryption", [fig4.trace])
    fig5 = suite.results["fig5"]
    save_traces(
        args.out / "fig5_same_die",
        list(fig5.study.golden_traces) + list(fig5.study.infected_traces.values()),
    )
    headline = suite.results["headline"]
    save_traces(args.out / "fig6_golden_population",
                headline.study.golden_traces)
    print(f"Trace archives written to {args.out}/")


if __name__ == "__main__":
    main()
