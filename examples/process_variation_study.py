#!/usr/bin/env python3
"""Scenario: how does detection degrade with process variation and HT size?

The paper's Sec. V perspective asks for repeating the inter-die study on
many more dies.  This example does exactly that with the simulated
population: it sweeps the number of reference dies and the trojan size,
reports the false-negative rate of Eq. (5) for each combination, and
answers the sizing question "how small a trojan can this process hide?"
using :func:`repro.core.metrics.required_separation`.

Run with::

    python examples/process_variation_study.py [--dies 8 16] [--trojans HT1 HT2 HT3]
"""

from __future__ import annotations

import argparse

from repro.core import HTDetectionPlatform, PlatformConfig, required_separation
from repro.core.report import format_table, percentage


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dies", type=int, nargs="+", default=[4, 8, 16],
                        help="die-population sizes to sweep")
    parser.add_argument("--trojans", nargs="+", default=["HT1", "HT2", "HT3"],
                        help="catalog trojans to screen")
    args = parser.parse_args()

    rows = []
    last_study = None
    for num_dies in args.dies:
        platform = HTDetectionPlatform(config=PlatformConfig(num_dies=num_dies))
        study = platform.run_population_em_study(tuple(args.trojans))
        last_study = study
        for name in args.trojans:
            characterisation = study.characterisations[name]
            rows.append([
                str(num_dies),
                name,
                percentage(study.trojan_area_fractions[name]),
                f"{characterisation.mu:.0f}",
                f"{characterisation.sigma:.0f}",
                percentage(characterisation.false_negative_rate),
                percentage(characterisation.detection_probability),
            ])

    print(format_table(
        ["dies", "trojan", "size (% AES)", "mu", "sigma",
         "false negative", "detection"],
        rows,
    ))

    # Sizing question: with the spread observed on the largest population,
    # what separation (and hence, roughly, what trojan size) is needed for
    # a 5 % false-negative rate, the paper's headline operating point?
    if last_study is not None:
        sigma = max(c.sigma for c in last_study.characterisations.values())
        needed_mu = required_separation(0.05, sigma)
        reference = last_study.characterisations[args.trojans[-1]]
        print(f"\nMetric separation needed for a 5% false-negative rate: "
              f"{needed_mu:.0f} (sigma = {sigma:.0f})")
        print(f"The largest screened trojan ({args.trojans[-1]}) achieves "
              f"mu = {reference.mu:.0f}, i.e. "
              f"{'enough' if reference.mu >= needed_mu else 'not enough'} "
              "for the paper's >95% detection claim on this population.")


if __name__ == "__main__":
    main()
