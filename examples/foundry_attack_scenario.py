#!/usr/bin/env python3
"""Scenario: an untrusted foundry inserts a custom trojan, the lab screens it.

This example exercises the lower-level API instead of the packaged
pipeline, mirroring the paper's threat model step by step:

1. the design house builds, places and routes the genuine AES
   (:class:`~repro.fpga.design.GoldenDesign`);
2. the untrusted foundry crafts its own combinational trojan (here a
   48-bit SubBytes-input trigger, i.e. a size the catalog does not
   contain) and inserts it into unused slices without touching the
   genuine placement and routing;
3. the verification lab, which only owns the golden model and the
   measurement benches, measures both devices and decides.

Run with::

    python examples/foundry_attack_scenario.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DelayDetector, DelayFingerprint, SameDieEMDetector, EMReference
from repro.fpga import GoldenDesign, virtex5_lx30
from repro.measurement import (
    DelayMeasurementConfig,
    DeviceUnderTest,
    EMSimulator,
    PathDelayMeter,
    generate_pk_pairs,
)
from repro.trojan import build_combinational_trojan, insert_trojan
from repro.variation import DiePopulation


def main() -> None:
    # -- 1. the design house ------------------------------------------------
    device = virtex5_lx30()
    golden = GoldenDesign.build(device=device)
    print(f"Golden AES model: {golden.modelled_slice_count()} modelled slices, "
          f"AES budget {golden.aes_total_slices()} slices "
          f"({100 * golden.aes_total_slices() / device.total_slices:.1f}% of "
          f"{device.name})")

    # -- 2. the untrusted foundry --------------------------------------------
    trojan = build_combinational_trojan("HT_custom48", trigger_width=48,
                                        payload_luts=40)
    infected = insert_trojan(golden, trojan)
    print(f"Inserted {trojan.name}: {trojan.lut_count():.0f} LUTs in "
          f"{infected.trojan_slice_count()} unused slices "
          f"({100 * infected.area_fraction_of_aes():.2f}% of the AES area), "
          f"tapping {len(trojan.tapped_host_nets)} SubBytes input nets")

    # -- 3. the verification lab ----------------------------------------------
    population = DiePopulation(size=2, seed=7)
    die = population[0]
    golden_dut = DeviceUnderTest(golden, die, label="golden sample")
    suspect_dut = DeviceUnderTest(infected, die, label="returned device")

    # 3a. delay screening (clock glitch on round 10).
    meter = PathDelayMeter(DelayMeasurementConfig(repetitions=10, seed=1))
    pairs = generate_pk_pairs(8, seed=3)
    glitches = meter.calibrate_glitches(golden_dut, pairs)
    fingerprint = DelayFingerprint.from_measurement(
        meter.measure(golden_dut, pairs, glitches, seed=10)
    )
    detector = DelayDetector(fingerprint)
    detector.calibrate_with_clean([meter.measure(golden_dut, pairs, glitches, seed=11)])
    verdict = detector.compare(meter.measure(suspect_dut, pairs, glitches, seed=12))
    print("\nDelay screening:")
    print(f"  worst per-bit shift  : {verdict.max_difference_ps:.0f} ps")
    print(f"  decision threshold   : {verdict.outcome.threshold:.0f} ps")
    print(f"  suspicious bits      : {verdict.suspicious_bits()[:10]} ...")
    print(f"  verdict              : "
          f"{'TROJAN SUSPECTED' if verdict.outcome.is_infected else 'clean'}")

    # 3b. EM screening on the same die (fixed, undisclosed plaintext).
    simulator = EMSimulator()
    rng = np.random.default_rng(99)
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    key = bytes(range(16))
    reference = EMReference.from_traces([
        simulator.acquire(golden_dut, plaintext, key, rng),
        simulator.acquire(golden_dut, plaintext, key, rng,
                          new_setup_installation=True),
    ])
    em_detector = SameDieEMDetector(reference)
    comparison = em_detector.compare(
        simulator.acquire(suspect_dut, plaintext, key, rng),
        label=suspect_dut.label,
    )
    print("\nEM screening (same die, averaged traces):")
    print(f"  max |trace - reference| : {comparison.max_difference:.0f}")
    print(f"  noise floor             : {comparison.noise_floor:.0f}")
    print(f"  significant samples     : {comparison.significant_samples().size}")
    print(f"  verdict                 : "
          f"{'TROJAN SUSPECTED' if comparison.outcome.is_infected else 'clean'}")


if __name__ == "__main__":
    main()
