"""Scenario-sweep campaign: beyond the paper's single 8-die study.

The paper reports false-negative rates for three trojan sizes on one
population of 8 dies with one acquisition setup.  The campaign engine
makes the whole scenario space cheap to explore: this example sweeps

* die-population sizes 8 / 16 / 32 (how much does a larger golden
  population help?),
* two acquisition variants (the paper's bench and a noisier probe with
  fewer oscilloscope averages),
* two detection metrics (the paper's local-maxima sum and the plain L1
  baseline),

— 12 grid cells, each a full Sec. V population study over HT1/HT2/HT3,
executed with batched trace synthesis and shared design/fingerprint
caches.

Run with::

    PYTHONPATH=src python examples/campaign_sweep.py

or the equivalent CLI::

    PYTHONPATH=src python -m repro.cli campaign run \
        --dies 8 --dies 16 --dies 32 --metric local_maxima_sum --metric l1
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaigns import AcquisitionVariant, CampaignEngine, CampaignSpec


def main() -> None:
    spec = CampaignSpec(
        name="die-count-sweep",
        trojans=("HT1", "HT2", "HT3"),
        die_counts=(8, 16, 32),
        variants=(
            AcquisitionVariant.make("paper"),
            AcquisitionVariant.make(
                "noisy-bench",
                {"noise.sigma_single_shot": 1600.0,
                 "oscilloscope.num_averages": 250},
            ),
        ),
        metrics=("local_maxima_sum", "l1"),
        seed=2015,
    )
    print(f"running {spec.num_cells()} grid cells "
          f"({len(spec.trojans)} trojans each)...")
    engine = CampaignEngine(spec)
    result = engine.run()
    print(result.report())
    print(f"\ntotal: {result.elapsed_s:.2f} s "
          f"({sum(cell.elapsed_s for cell in result.cells):.2f} s in cells)")

    # The sweep answers a question the paper could not: how fast does
    # the smallest trojan's detection improve with the population size?
    print("\nHT1 (0.5% of AES) false-negative rate vs population size "
          "(paper bench, local-maxima-sum):")
    for cell in result.cells:
        if cell.variant == "paper" and cell.metric == "local_maxima_sum":
            rate = cell.false_negative_rates()["HT1"]
            print(f"  {cell.num_dies:3d} dies: {100.0 * rate:5.1f} %")


if __name__ == "__main__":
    main()
