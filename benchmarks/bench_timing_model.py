"""FIG1/EQ1 — synchronous timing constraint of the attacked design.

Paper claim: the setup condition (Eq. 1) bounds the usable clock period;
the glitch platform works by violating it on purpose.
"""

from repro.experiments import fig1_timing


def test_fig1_timing_constraint(benchmark, config, platform):
    result = benchmark(fig1_timing.run, config, platform)
    benchmark.extra_info["critical_path_ps"] = round(result.critical_path_ps, 1)
    benchmark.extra_info["required_period_ps"] = round(result.required_period_ps, 1)
    benchmark.extra_info["nominal_slack_ps"] = round(result.nominal_slack_ps, 1)
    assert result.nominal_slack_ps > 0
    assert result.first_violating_period_ps() is not None
