"""Ablation — number of reference dies in the golden population.

The paper's perspectives call for repeating the inter-die study on
"n >> 8" FPGAs.  The benchmark sweeps the population size and records
how the estimated false-negative rate of HT2 behaves as the golden
reference grows.
"""

import pytest

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig


@pytest.mark.parametrize("num_dies", [3, 6, 10])
def test_die_count_ablation(benchmark, platform, num_dies):
    ablated = HTDetectionPlatform(
        config=PlatformConfig(num_dies=num_dies),
        golden=platform.golden,
    )

    def run_study():
        return ablated.run_population_em_study(("HT2",))

    study = benchmark(run_study)
    characterisation = study.characterisations["HT2"]
    benchmark.extra_info["num_dies"] = num_dies
    benchmark.extra_info["mu"] = round(characterisation.mu, 1)
    benchmark.extra_info["sigma"] = round(characterisation.sigma, 1)
    benchmark.extra_info["false_negative_rate"] = round(
        characterisation.false_negative_rate, 4
    )
    assert 0.0 <= characterisation.false_negative_rate <= 0.5
