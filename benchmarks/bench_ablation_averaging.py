"""Ablation — oscilloscope averaging count.

DESIGN.md question: the paper averages every trace 1 000 times; how does
the residual noise (and therefore the same-die detection margin)
degrade with fewer averages?
"""

import numpy as np
import pytest

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.measurement.em_simulator import EMAcquisitionConfig
from repro.measurement.oscilloscope import Oscilloscope


@pytest.mark.parametrize("num_averages", [10, 100, 1000])
def test_averaging_ablation(benchmark, platform, num_averages):
    em_config = EMAcquisitionConfig(
        oscilloscope=Oscilloscope(num_averages=num_averages)
    )
    ablated = HTDetectionPlatform(
        config=PlatformConfig(num_dies=2, em=em_config),
        golden=platform.golden,
    )

    def run_study():
        return ablated.run_same_die_em_study(("HT_comb",))

    study = benchmark(run_study)
    comparison = study.comparisons["HT_comb"]
    benchmark.extra_info["num_averages"] = num_averages
    benchmark.extra_info["noise_floor"] = round(comparison.noise_floor, 2)
    benchmark.extra_info["max_difference"] = round(comparison.max_difference, 1)
    benchmark.extra_info["margin"] = round(comparison.outcome.margin(), 1)
    assert comparison.max_difference > 0
