"""FIG6 — inter-die differences against the mean golden trace.

Paper claim: the |G_j - E(G)| curves of the golden dies define the
process-variation envelope; infected devices of 1 % and more rise above
it at specific samples.
"""

import numpy as np

from repro.experiments import fig6_pv


def test_fig6_inter_die_differences(benchmark, config, platform):
    result = benchmark(fig6_pv.run, config, platform)
    benchmark.extra_info["pv_envelope"] = round(result.golden_envelope(), 1)
    for name in result.trojan_names:
        peaks = result.infected_peak_per_die(name)
        benchmark.extra_info[f"mean_peak[{name}]"] = round(float(np.mean(peaks)), 1)
        benchmark.extra_info[f"dies_above_envelope[{name}]"] = \
            result.exceeds_pv_envelope(name)
    assert result.golden_envelope() > 0
    assert result.exceeds_pv_envelope("HT3") >= result.exceeds_pv_envelope("HT1")
