"""HEADLINE — false-negative rate versus trojan size.

Paper claim: with 8 dies and the sum-of-local-maxima metric the
false-negative rates are 26 % / 17 % / 5 % for HTs of 0.5 % / 1.0 % /
1.7 % of the AES area, i.e. detection exceeds 95 % for HTs >= 1.7 %.
"""

from repro.experiments import headline
from repro.experiments.headline import PAPER_FALSE_NEGATIVE_RATES


def test_headline_false_negative_rates(benchmark, config, platform):
    result = benchmark(headline.run, config, platform)
    for row in result.rows:
        benchmark.extra_info[f"fn_rate[{row.trojan_name}]"] = round(
            row.false_negative_rate, 4
        )
        benchmark.extra_info[f"paper_fn_rate[{row.trojan_name}]"] = \
            PAPER_FALSE_NEGATIVE_RATES[row.trojan_name]
        benchmark.extra_info[f"area_fraction[{row.trojan_name}]"] = round(
            row.area_fraction, 4
        )
    benchmark.extra_info["largest_trojan_detection"] = round(
        result.largest_trojan_detection(), 4
    )
    assert result.is_monotone_decreasing()
    assert result.largest_trojan_detection() >= 0.90
