"""Ablation — EM detection metric choice.

DESIGN.md question: does summing the local maxima of the absolute
difference (the paper's metric) actually beat integrating the whole
difference (L1) or looking at the single worst sample (max)?

The benchmark scores the HT2 population with each metric and records the
resulting effect size (mu / sigma) and false-negative rate.
"""

import pytest

from repro.core.em_detector import PopulationEMDetector
from repro.core.metrics import L1TraceMetric, LocalMaximaSumMetric, MaxDifferenceMetric
from repro.experiments.config import FIXED_KEY, FIXED_PLAINTEXT

METRICS = {
    "local_maxima_sum": LocalMaximaSumMetric(),
    "l1_mean": L1TraceMetric(),
    "max_sample": MaxDifferenceMetric(),
}


@pytest.fixture(scope="module")
def population_traces(platform):
    return platform.acquire_population_traces(("HT2",), FIXED_PLAINTEXT, FIXED_KEY)


@pytest.mark.parametrize("metric_name", sorted(METRICS))
def test_metric_ablation(benchmark, metric_name, population_traces):
    golden_traces, infected_traces = population_traces
    metric = METRICS[metric_name]

    def characterise():
        detector = PopulationEMDetector(metric=metric)
        detector.fit_reference(golden_traces)
        return detector.characterise(infected_traces["HT2"])

    characterisation = benchmark(characterise)
    effect = (characterisation.mu / characterisation.sigma
              if characterisation.sigma > 0 else float("inf"))
    benchmark.extra_info["metric"] = metric_name
    benchmark.extra_info["effect_size"] = round(effect, 3)
    benchmark.extra_info["false_negative_rate"] = round(
        characterisation.false_negative_rate, 4
    )
    assert characterisation.mu > 0
