"""STORE — locking + lease overhead on the warm store-resume path.

PR 8's concurrency layer (shared/exclusive store locks around each file
mutation, per-key write locks, heartbeated writer leases) must be close
to free on the path users actually feel: a warm store-backed rerun that
resolves every cell from the manifest.  The gate: the locked store's
warm rerun takes at most **10%** longer than the same rerun against a
``locking=False`` store (the PR 7 behaviour), plus a small absolute
slack so the gate is meaningful on runs whose total is a few dozen
milliseconds.

The warm rows must also stay bit-identical between the two modes —
locking is a concurrency-safety feature, never a behaviour change.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.store import ArtifactStore

NUM_DIES = 8
TROJANS = ("HT1", "HT2", "HT3")
SEED = 2015

#: Locked warm rerun may cost at most 10% over the unlocked baseline ...
OVERHEAD_GATE = 1.10
#: ... plus this absolute slack: a warm rerun is tens of milliseconds,
#: where scheduler noise alone can exceed 10%.
ABSOLUTE_SLACK_S = 0.25

#: Warm reruns per timing sample (averaging tames filesystem jitter).
REPEATS = 3


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="store-concurrency", trojans=TROJANS, die_counts=(NUM_DIES,),
        metrics=("local_maxima_sum", "delay_max_difference"),
        num_pk_pairs=8, delay_repetitions=5, seed=SEED,
    )


class _UnlockedEngineStore(ArtifactStore):
    """The PR 7 store: same directory layout, no locks, no leases."""

    def __init__(self, root):
        super().__init__(root, locking=False)


def _warm_rerun_seconds(spec: CampaignSpec, store_dir: Path,
                        locking: bool) -> tuple:
    start = time.perf_counter()
    for _ in range(REPEATS):
        engine = CampaignEngine(spec, store=store_dir)
        if not locking:
            engine.store = _UnlockedEngineStore(store_dir)
        result = engine.run()
    elapsed = (time.perf_counter() - start) / REPEATS
    return elapsed, [row.to_dict() for row in result.rows()]


def test_locking_overhead_on_warm_resume_is_within_10_percent(benchmark):
    spec = _spec()
    root = Path(tempfile.mkdtemp(prefix="bench_store_conc_"))
    try:
        store_dir = root / "store"
        CampaignEngine(spec, store=store_dir).run()  # populate (locked)

        # Interleave-free ordering: unlocked baseline first, locked
        # second — both fully warm, same store directory.
        unlocked_seconds, unlocked_rows = _warm_rerun_seconds(
            spec, store_dir, locking=False)
        locked_seconds, locked_rows = _warm_rerun_seconds(
            spec, store_dir, locking=True)

        assert locked_rows == unlocked_rows, (
            "locking must never change campaign rows"
        )

        overhead = locked_seconds / unlocked_seconds
        budget = unlocked_seconds * OVERHEAD_GATE + ABSOLUTE_SLACK_S
        benchmark.extra_info["unlocked_seconds"] = round(unlocked_seconds, 4)
        benchmark.extra_info["locked_seconds"] = round(locked_seconds, 4)
        benchmark.extra_info["overhead_factor"] = round(overhead, 3)
        benchmark.extra_info["gate_factor"] = OVERHEAD_GATE
        benchmark.extra_info["absolute_slack_s"] = ABSOLUTE_SLACK_S
        benchmark.extra_info["repeats"] = REPEATS
        benchmark.extra_info["cells"] = spec.num_cells()
        assert locked_seconds <= budget, (
            f"locking+leases cost {overhead:.2f}x on the warm resume path "
            f"(locked {locked_seconds:.3f} s vs unlocked "
            f"{unlocked_seconds:.3f} s; budget {budget:.3f} s)"
        )

        # The recorded benchmark is the steady-state locked warm rerun —
        # the configuration every campaign now runs with.
        benchmark(lambda: CampaignEngine(spec, store=store_dir).run())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_maintenance_during_warm_resume_changes_nothing():
    """gc + fsck --repair interleaved between warm reruns must neither
    slow correctness down nor remove anything a rerun needs."""
    spec = _spec()
    root = Path(tempfile.mkdtemp(prefix="bench_store_conc_"))
    try:
        store_dir = root / "store"
        first = CampaignEngine(spec, store=store_dir).run()
        store = ArtifactStore(store_dir)
        removed = store.gc(wait_s=10.0)
        assert removed["orphan_objects"] == 0
        assert store.fsck(repair=True, wait_s=10.0).clean()

        engine = CampaignEngine(spec, store=store_dir)
        computed = []
        original = engine.run_cell
        engine.run_cell = lambda cell: (computed.append(cell.index),
                                        original(cell))[1]
        again = engine.run()
        assert computed == [], (
            f"maintenance cost a recompute of cells {computed}"
        )
        assert [row.to_dict() for row in again.rows()] == \
            [row.to_dict() for row in first.rows()]
    finally:
        shutil.rmtree(root, ignore_errors=True)
