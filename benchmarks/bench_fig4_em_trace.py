"""FIG4 — averaged EM trace of a single AES-128 encryption.

Paper claim: at 5 GS/s and a 24 MHz clock one encryption spans roughly
3 000 samples and the ten rounds are clearly visible after 1 000-fold
averaging.
"""

from repro.experiments import fig4_em_trace


def test_fig4_single_encryption_trace(benchmark, config, platform):
    result = benchmark(fig4_em_trace.run, config, platform)
    benchmark.extra_info["num_samples"] = result.num_samples
    benchmark.extra_info["round_bursts"] = result.round_burst_count
    benchmark.extra_info["peak_amplitude"] = round(result.peak_amplitude, 1)
    assert 2000 <= result.num_samples <= 4000
    assert result.rounds_visible()
