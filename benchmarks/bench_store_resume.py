"""STORE — warm artifact-store rerun versus a cold campaign run.

The store's claim: re-running the fig3-scale campaign (8 dies, three
trojans, one EM and one delay metric — the Sec. III + Sec. V mix the
paper's Fig. 3 study sits in) against a store populated by a previous
run resolves every cell from the manifest and is at least **3x** faster
than the cold run that had to synthesise the design, acquire the EM
population and sweep the clock-glitch campaigns.  In practice the warm
run only reads a few JSON completion records, so the measured factor is
orders of magnitude above the gate; 3x is the regression floor.

The warm rows must also be *bit-identical* to the cold ones — resuming
from artifacts is a pure optimisation, never a behaviour change.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec

NUM_DIES = 8
TROJANS = ("HT1", "HT2", "HT3")
SEED = 2015


def _fig3_scale_spec() -> CampaignSpec:
    return CampaignSpec(
        name="store-resume", trojans=TROJANS, die_counts=(NUM_DIES,),
        metrics=("local_maxima_sum", "delay_max_difference"),
        num_pk_pairs=8, delay_repetitions=5, seed=SEED,
    )


def test_warm_store_rerun_is_3x_faster_than_cold(benchmark):
    spec = _fig3_scale_spec()
    store_root = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        store_dir = store_root / "store"

        start = time.perf_counter()
        cold = CampaignEngine(spec, store=store_dir).run()
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = CampaignEngine(spec, store=store_dir).run()
        warm_seconds = time.perf_counter() - start

        cold_rows = [row.to_dict() for row in cold.rows()]
        warm_rows = [row.to_dict() for row in warm.rows()]
        assert warm_rows == cold_rows, (
            "a warm store rerun must be bit-identical to the cold run"
        )

        speedup = cold_seconds / warm_seconds
        benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
        benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
        benchmark.extra_info["speedup"] = round(speedup, 1)
        benchmark.extra_info["gate"] = 3.0
        benchmark.extra_info["cells"] = len(cold.cells)
        assert speedup >= 3.0, (
            f"warm-store rerun must be >= 3x faster than cold "
            f"(cold {cold_seconds:.3f} s, warm {warm_seconds:.3f} s, "
            f"{speedup:.1f}x)"
        )

        # The timed contract is above; the benchmark records the
        # steady-state cost of one fully warm store-backed run.
        benchmark(lambda: CampaignEngine(spec, store=store_dir).run())
    finally:
        shutil.rmtree(store_root, ignore_errors=True)


def test_interrupted_run_resumes_only_missing_cells():
    """Resume does not redo finished work: shard 0 first, then the rest."""
    spec = _fig3_scale_spec()
    store_root = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        store_dir = store_root / "store"
        CampaignEngine(spec, store=store_dir).run(shard=(0, 2))

        engine = CampaignEngine(spec, store=store_dir)
        computed = []
        original = engine.run_cell
        engine.run_cell = lambda cell: (computed.append(cell.index),
                                        original(cell))[1]
        full = engine.run()
        expected = [cell.index for cell in spec.shard(1, 2)]
        assert computed == expected, (
            f"resume recomputed {computed}, expected only {expected}"
        )
        assert len(full.cells) == spec.num_cells()
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
