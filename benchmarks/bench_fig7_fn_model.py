"""FIG7/EQ5 — the two-Gaussian false-negative model.

Paper claim: the genuine and infected metric populations are Gaussians
separated by mu; the symmetric decision has
FN = FP = 1/2 - 1/2 erf(mu / (2 sigma sqrt(2))).
"""

from repro.experiments import fig7_model


def test_fig7_gaussian_error_model(benchmark, config, platform):
    result = benchmark(fig7_model.run, config, platform)
    benchmark.extra_info["mu"] = round(result.mu, 1)
    benchmark.extra_info["sigma"] = round(result.sigma, 1)
    benchmark.extra_info["analytic_false_negative"] = round(
        result.analytic_false_negative, 4
    )
    benchmark.extra_info["empirical_false_negative"] = round(
        result.empirical_false_negative, 4
    )
    assert abs(result.analytic_false_negative
               - result.empirical_false_negative) < 0.05
    assert abs(result.empirical_false_negative
               - result.empirical_false_positive) < 0.05
