"""SCORING — batched tensor-resident scoring versus the serial loops.

The last scalar stage goes vector: after acquisition (PRs 1/3), netlist
walks (PR 2) and the artifact store (PR 4), a *warm* campaign cell's
dominant cost was scoring — the population tensor was exploded into
per-die traces and pushed one at a time through Python loops
(``metric.score`` per trace, ``fit_gaussian``/``pooled_std`` per
trojan).  The batched kernel of :mod:`repro.analysis.batch` scores the
whole study — golden and every infected population — in a handful of
vectorised passes.

The benchmark replays a warm fig6-scale population study (8 dies,
HT1/HT2/HT3 already acquired — acquisition is excluded, as a store-hit
run pays nothing for it) three ways:

* **seed serial** — the scoring loop exactly as it stood before this
  change (the PR 1 ``find_local_maxima`` with list round-trips and
  per-peak bisects, one ``score`` call per trace, one Gaussian fit per
  trojan): the baseline the >= 5x gate measures against;
* **current serial** — the same per-trace loop over today's scalar
  reference (itself sped up by this change); recorded for transparency,
  not gated;
* **batched** — the tensor-resident study path a warm campaign cell
  runs.

All three must produce bit-identical mu/sigma/FN-rate rows.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right

import numpy as np

from repro.analysis.gaussian import fit_gaussian, pooled_std
from repro.analysis.traces import stack_traces
from repro.core.fingerprint import EMReference
from repro.core.metrics import LocalMaximaSumMetric, false_negative_rate
from repro.core.pipeline import (
    HTDetectionPlatform,
    PlatformConfig,
    run_population_em_study,
)

NUM_DIES = 8
TROJANS = ("HT1", "HT2", "HT3")
SEED = 2015
GATE_SPEEDUP = 5.0
TIMING_ROUNDS = 5
MIN_PEAK_DISTANCE = LocalMaximaSumMetric().min_peak_distance


def _seed_find_local_maxima(signal, min_height=None, min_distance=1):
    """The scalar peak finder as it stood at the seed (PR 1), verbatim.

    Kept frozen here so the gate keeps measuring the speedup this
    change delivered on warm studies even though the live scalar
    reference (:func:`repro.analysis.local_maxima.find_local_maxima`)
    was itself tightened by the same change.
    """
    x = np.asarray(signal, dtype=float)
    if x.size < 3:
        return np.array([], dtype=int)
    left = x[1:-1] > x[:-2]
    right = x[1:-1] >= x[2:]
    candidates = np.flatnonzero(left & right) + 1
    if min_height is not None:
        candidates = candidates[x[candidates] >= min_height]
    if candidates.size == 0 or min_distance == 1:
        return candidates
    order_positions = np.argsort(x[candidates])[::-1].tolist()
    candidate_list = candidates.tolist()
    suppressed = bytearray(len(candidate_list))
    kept = []
    for position in order_positions:
        if suppressed[position]:
            continue
        index = candidate_list[position]
        kept.append(index)
        low = bisect_left(candidate_list, index - min_distance + 1)
        high = bisect_right(candidate_list, index + min_distance - 1)
        suppressed[low:high] = b"\x01" * (high - low)
    return np.array(sorted(kept), dtype=int)


def _seed_score(trace, reference):
    """The seed ``LocalMaximaSumMetric.score`` call chain, layer for layer."""
    from repro.analysis.traces import abs_difference

    difference = np.asarray(abs_difference(trace, reference), dtype=float)
    indices = _seed_find_local_maxima(difference,
                                      min_distance=MIN_PEAK_DISTANCE)
    if indices.size == 0:
        return 0.0
    return float(difference[indices].sum())


def _acquire_population():
    platform = HTDetectionPlatform(
        config=PlatformConfig(num_dies=NUM_DIES, seed=SEED)
    )
    golden, infected = platform.acquire_population_traces(TROJANS)
    fractions = {name: platform.infected_design(name).area_fraction_of_aes()
                 for name in TROJANS}
    return golden, infected, fractions


def _characterise_rows(genuine_scores, scores_by_trojan):
    genuine_fit = fit_gaussian(genuine_scores)
    rows = {}
    for trojan, infected_scores in scores_by_trojan.items():
        mu = fit_gaussian(infected_scores).mean - genuine_fit.mean
        sigma = pooled_std(genuine_scores, infected_scores)
        rows[trojan] = (float(mu), float(sigma),
                        false_negative_rate(mu, sigma))
    return rows


def _score_seed_serial(golden, infected):
    """The pre-change warm-cell path: seed scalar kernel, per-trace loop.

    Mirrors the seed ``PopulationEMDetector`` flow: the genuine fit was
    re-evaluated inside every per-trojan ``characterise`` call.
    """
    reference = EMReference.from_traces(golden)
    genuine_scores = np.array([_seed_score(trace, reference.mean)
                               for trace in golden])
    rows = {}
    for trojan in TROJANS:
        infected_scores = np.array(
            [_seed_score(trace, reference.mean)
             for trace in infected[trojan]])
        genuine_fit = fit_gaussian(genuine_scores)
        mu = fit_gaussian(infected_scores).mean - genuine_fit.mean
        sigma = pooled_std(genuine_scores, infected_scores)
        rows[trojan] = (float(mu), float(sigma),
                        false_negative_rate(mu, sigma))
    return rows


def _score_current_serial(golden, infected):
    """The per-trace loop over today's scalar reference."""
    metric = LocalMaximaSumMetric()
    reference = EMReference.from_traces(golden)
    genuine_scores = metric.scores_serial(golden, reference.mean)
    scores = {
        trojan: metric.scores_serial(infected[trojan], reference.mean)
        for trojan in TROJANS
    }
    return _characterise_rows(genuine_scores, scores)


def _score_batched(golden_matrix, infected_matrices, fractions):
    """The tensor-resident study path a warm campaign cell runs."""
    study = run_population_em_study(
        None,
        trojan_names=TROJANS,
        traces=(golden_matrix, infected_matrices),
        area_fractions=fractions,
    )
    return {
        trojan: (study.characterisations[trojan].mu,
                 study.characterisations[trojan].sigma,
                 study.characterisations[trojan].false_negative_rate)
        for trojan in TROJANS
    }


def _best_of(rounds, func):
    """Best-of-N wall time after one untimed warmup pass.

    The warmup keeps allocator growth and lazily-initialised NumPy
    machinery out of the timed rounds for both contenders alike.
    """
    func()
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_scoring_matches_serial_and_is_5x_faster(benchmark):
    # The population is acquired up front: this is the warm-study
    # premise (a store-hit campaign loads the tensors for free); what is
    # timed is scoring the fig6-scale study.
    golden, infected, fractions = _acquire_population()
    golden_matrix = stack_traces(golden)
    infected_matrices = {name: stack_traces(infected[name])
                         for name in TROJANS}

    seed_seconds, seed_rows = _best_of(
        TIMING_ROUNDS, lambda: _score_seed_serial(golden, infected)
    )
    current_seconds, current_rows = _best_of(
        TIMING_ROUNDS, lambda: _score_current_serial(golden, infected)
    )
    batch_seconds, batch_rows = _best_of(
        TIMING_ROUNDS,
        lambda: _score_batched(golden_matrix, infected_matrices, fractions),
    )

    assert seed_rows == current_rows, (
        "the tightened scalar reference diverged from the seed scorer"
    )
    assert seed_rows == batch_rows, (
        f"batched scoring diverged from the serial reference: "
        f"{seed_rows} vs {batch_rows}"
    )

    speedup = seed_seconds / batch_seconds
    benchmark.extra_info["serial_seconds"] = round(seed_seconds, 4)
    benchmark.extra_info["current_serial_seconds"] = round(current_seconds, 4)
    benchmark.extra_info["batch_seconds"] = round(batch_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["speedup_vs_current_serial"] = round(
        current_seconds / batch_seconds, 2)
    benchmark.extra_info["gate"] = GATE_SPEEDUP
    benchmark.extra_info["num_dies"] = NUM_DIES
    benchmark.extra_info["fn_rates"] = {
        trojan: round(batch_rows[trojan][2], 4) for trojan in TROJANS
    }
    assert speedup >= GATE_SPEEDUP, (
        f"batched scoring must be >= {GATE_SPEEDUP}x faster than the serial "
        f"per-trace scoring path (serial {seed_seconds:.4f} s, batched "
        f"{batch_seconds:.4f} s, {speedup:.1f}x)"
    )

    # The timed comparison above is the contract; the benchmark records
    # the steady-state cost of one batched study scoring pass.
    benchmark(lambda: _score_batched(golden_matrix, infected_matrices,
                                     fractions))


def test_scoring_kernel_equivalence_at_campaign_scale():
    """One oversized matrix pass stays pinned to the scalar reference."""
    from repro.analysis.batch import sum_of_local_maxima_batch
    from repro.analysis.local_maxima import sum_of_local_maxima

    rng = np.random.default_rng(7)
    matrix = np.abs(rng.normal(size=(64, 1500))) \
        + np.sin(np.linspace(0, 400, 1500))[None, :] ** 2
    batched = sum_of_local_maxima_batch(matrix, min_distance=5)
    for index, row in enumerate(matrix):
        assert batched[index] == sum_of_local_maxima(row, min_distance=5)
