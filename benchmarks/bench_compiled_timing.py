"""COMPILED KERNEL — array-based timing versus the interpreted walk.

The compiled netlist kernel's claim: a Fig. 3-scale delay study (golden
fingerprint plus clean and infected devices, several (P, K) pairs,
everything through ``PathDelayMeter``) runs **at least 5x faster**
through the compiled batch path (``measure_batch`` on
:class:`~repro.netlist.compiled.CompiledTimingEngine`) than through the
interpreted per-cell reference loop (``measure`` per DUT on
:class:`~repro.netlist.timing.TimingEngine`) — while producing
bit-identical steps-to-fault matrices.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.measurement.delay_meter import (
    DelayMeasurementConfig,
    generate_pk_pairs,
)

NUM_PAIRS = 6
SEED = 2015
TROJANS = ("HT_comb", "HT_seq")
MIN_SPEEDUP = 5.0


def _build_bench() -> tuple:
    platform = HTDetectionPlatform(
        config=PlatformConfig(
            num_dies=2, seed=SEED,
            delay=DelayMeasurementConfig(repetitions=3, seed=SEED),
        )
    )
    meter = platform.delay_meter
    pairs = generate_pk_pairs(NUM_PAIRS, seed=SEED + 7)
    # The Fig. 3 device set: two clean controls and the two Sec. III
    # trojans, all on die 0, measured against per-pair sweeps calibrated
    # on the golden model.
    duts = [platform.golden_dut(0, label="Clean1"),
            platform.golden_dut(0, label="Clean2")]
    duts.extend(platform.infected_dut(name, 0) for name in TROJANS)
    glitch = meter.calibrate_glitches(duts[0], pairs)
    seeds = [SEED + 100 + index for index in range(len(duts))]
    # Shared one-time costs stay outside the timed region: the delay
    # annotation of every DUT (used identically by both paths) and the
    # one-off lowering of the netlist into the compiled form.
    for dut in duts:
        dut.delay_annotation()
    duts[0].circuit.netlist.compiled()
    return meter, duts, pairs, glitch, seeds


def test_compiled_delay_study_matches_interpreted_and_is_5x_faster(benchmark):
    meter, duts, pairs, glitch, seeds = _build_bench()

    start = time.perf_counter()
    serial = [meter.measure(dut, pairs, glitch, seed=seed)
              for dut, seed in zip(duts, seeds)]
    interpreted_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = meter.measure_batch(duts, pairs, glitch, seeds=seeds)
    compiled_seconds = time.perf_counter() - start

    for serial_measurement, batch_measurement in zip(serial, batch):
        assert serial_measurement.label == batch_measurement.label
        assert np.array_equal(serial_measurement.steps_matrix(),
                              batch_measurement.steps_matrix())
        for serial_pair, batch_pair in zip(serial_measurement.pairs,
                                           batch_measurement.pairs):
            same = ((np.isnan(serial_pair.arrival_ps)
                     & np.isnan(batch_pair.arrival_ps))
                    | (serial_pair.arrival_ps == batch_pair.arrival_ps))
            assert same.all(), "arrival times must be bit-identical"

    speedup = interpreted_seconds / compiled_seconds
    benchmark.extra_info["interpreted_seconds"] = round(interpreted_seconds, 4)
    benchmark.extra_info["compiled_seconds"] = round(compiled_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["gate"] = MIN_SPEEDUP
    benchmark.extra_info["devices"] = len(duts)
    benchmark.extra_info["pairs"] = NUM_PAIRS
    assert speedup >= MIN_SPEEDUP, (
        f"compiled delay study must be >= {MIN_SPEEDUP}x faster than the "
        f"interpreted loop (interpreted {interpreted_seconds:.3f} s, "
        f"compiled {compiled_seconds:.3f} s, {speedup:.1f}x)"
    )

    # Steady-state cost of one compiled campaign on warm caches.
    benchmark(lambda: meter.measure_batch(duts, pairs, glitch, seeds=seeds))


def test_compiled_two_vector_sweep_bitwise_matches_interpreted():
    """Spot-check at the engine level (below the meter's noise sampling)."""
    from repro.netlist.compiled import CompiledTimingEngine
    from repro.netlist.timing import TimingEngine

    meter, duts, pairs, _, _ = _build_bench()
    dut = duts[-1]
    before, after = meter.pair_transitions(dut, pairs[0])
    interpreted = TimingEngine(dut.netlist, dut.delay_annotation())
    compiled = CompiledTimingEngine(dut.netlist.compiled(),
                                    dut.delay_annotation())
    reference = interpreted.two_vector_arrival_times(before, after)
    result = compiled.two_vector_result(before, after)
    assert result.values_before == reference.values_before
    assert result.values_after == reference.values_after
    assert result.arrival_ps == reference.arrival_ps
