"""SUPERVISOR — fault-tolerant runner versus the bare process pool.

The supervisor's claim: retries, per-cell timeouts, death detection and
graceful drains are *bookkeeping*, not a tax on the physics.  On a
clean fig6-scale parallel campaign (no faults injected) the supervised
run must finish within **10%** of the bare, unsupervised
``ProcessPoolExecutor`` reference it replaced — plus a small absolute
slack so the gate stays meaningful when both runs are fast.

The supervised rows must also be *bit-identical* to the bare pool's:
supervision changes how cells are scheduled, never what they compute.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.campaigns.supervisor import CampaignSupervisor

OVERHEAD_GATE = 1.10
ABSOLUTE_SLACK_S = 1.0


def _fig6_scale_spec() -> CampaignSpec:
    return CampaignSpec(
        name="supervisor-overhead", trojans=("HT1", "HT3"),
        die_counts=(6, 8), metrics=("local_maxima_sum", "l1"),
        num_pk_pairs=4, seed=2015, workers=2,
    )


def test_supervised_run_overhead_within_10_percent(benchmark):
    spec = _fig6_scale_spec()
    root = Path(tempfile.mkdtemp(prefix="bench_supervisor_"))
    try:
        cells = spec.grid()

        # Bare pool reference: the unsupervised executor.map path the
        # supervisor replaced, kept on the engine for exactly this
        # comparison.
        bare_engine = CampaignEngine(spec, store=root / "bare")
        start = time.perf_counter()
        bare_results = bare_engine._run_parallel(cells)
        bare_seconds = time.perf_counter() - start

        supervised_engine = CampaignEngine(spec, store=root / "supervised")
        start = time.perf_counter()
        supervised_results = CampaignSupervisor(supervised_engine).run(cells)
        supervised_seconds = time.perf_counter() - start

        bare_rows = [row.to_dict()
                     for cell in sorted(bare_results, key=lambda c: c.index)
                     for row in cell.rows]
        supervised_rows = [row.to_dict()
                           for index in sorted(supervised_results)
                           for row in supervised_results[index].rows]
        assert supervised_rows == bare_rows, (
            "supervision must not change what the cells compute"
        )

        budget = bare_seconds * OVERHEAD_GATE + ABSOLUTE_SLACK_S
        overhead = supervised_seconds / bare_seconds
        benchmark.extra_info["bare_pool_seconds"] = round(bare_seconds, 4)
        benchmark.extra_info["supervised_seconds"] = round(
            supervised_seconds, 4)
        benchmark.extra_info["overhead_factor"] = round(overhead, 3)
        benchmark.extra_info["gate_factor"] = OVERHEAD_GATE
        benchmark.extra_info["absolute_slack_s"] = ABSOLUTE_SLACK_S
        benchmark.extra_info["cells"] = len(cells)
        benchmark.extra_info["workers"] = spec.workers
        assert supervised_seconds <= budget, (
            f"supervised run must stay within {OVERHEAD_GATE:.2f}x of the "
            f"bare pool + {ABSOLUTE_SLACK_S:.1f} s (bare {bare_seconds:.3f} s, "
            f"supervised {supervised_seconds:.3f} s, {overhead:.2f}x)"
        )

        # The timed contract is above; the benchmark records the
        # steady-state cost of one warm supervised run (scheduling +
        # store reads, no recompute) — the overhead floor.
        warm_engine = CampaignEngine(spec, store=root / "supervised")
        benchmark(lambda: CampaignSupervisor(warm_engine).run(cells))
    finally:
        shutil.rmtree(root, ignore_errors=True)
