"""DFA_RECOVER — vectorised DFA key-guess scoring versus the serial scan.

The DFA analyzer's hot loop scores all 256 last-round key guesses at
all 16 byte positions against every faulted capture.  The serial
reference walks (fault x position x guess) in Python; the vectorised
kernel (:func:`repro.analysis.dfa.dfa_key_scores`) resolves the whole
(F, 16, 256) score tensor in chunked table-lookup passes.  Both must
produce bit-identical score matrices; the kernel must be >= 5x faster
on an attack-campaign-sized fault population.

The timed population is the real thing: stale-capture faults
synthesised from the batched AES round states, exactly what a deep
clock glitch with stale-only resolution leaves in the ciphertext
register — and the recovered bytes are checked against the true
last-round key before anything is timed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.dfa import (
    dfa_key_scores,
    dfa_key_scores_serial,
    recover_last_round_key,
)
from repro.crypto.batch import BatchedAES
from repro.crypto.keyschedule import last_round_key

KEY = bytes(range(16))
SEED = 2015
NUM_STIMULI = 16
REPEATS = 2
GATE_SPEEDUP = 5.0
TIMING_ROUNDS = 5


def _stale_fault_population():
    """(F, 16) correct/faulted pairs: deep 8-byte stale captures, F = 256.

    A deep glitch violates many register bits at once; each synthesised
    capture latches the stale value on a rotating window of 8 of the 16
    register bytes, so every byte position carries fault evidence and
    the serial scan pays the real per-position cost.
    """
    rng = np.random.default_rng(SEED)
    plaintexts = rng.integers(0, 256, size=(NUM_STIMULI, 16), dtype=np.uint8)
    states = BatchedAES(KEY).round_states(plaintexts)
    correct = states[:, -1]
    stale = states[:, -2]
    correct_rows = []
    faulted_rows = []
    for _ in range(REPEATS):
        for start in range(8):
            window = [(start + offset) % 16 for offset in range(8)]
            faulted = correct.copy()
            faulted[:, window] = stale[:, window]
            correct_rows.append(correct)
            faulted_rows.append(faulted)
    return np.concatenate(correct_rows), np.concatenate(faulted_rows)


def _best_of(rounds, func):
    """Best-of-N wall time after one untimed warmup pass."""
    func()
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorised_dfa_scoring_matches_serial_and_is_5x_faster(benchmark):
    correct, faulted = _stale_fault_population()
    num_faults = correct.shape[0]

    # Recovery sanity before timing: the population must actually yield
    # the key it was synthesised from.
    recovery = recover_last_round_key(correct, faulted)
    expected = last_round_key(KEY)
    assert recovery.num_recovered >= 1
    assert recovery.matches(expected)

    serial_seconds, serial_scores = _best_of(
        TIMING_ROUNDS, lambda: dfa_key_scores_serial(correct, faulted)
    )
    vector_seconds, vector_scores = _best_of(
        TIMING_ROUNDS, lambda: dfa_key_scores(correct, faulted)
    )
    assert np.array_equal(serial_scores, vector_scores), (
        "vectorised DFA scoring diverged from the serial reference"
    )

    speedup = serial_seconds / vector_seconds
    benchmark.extra_info["num_faults"] = num_faults
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["vector_seconds"] = round(vector_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["gate"] = GATE_SPEEDUP
    benchmark.extra_info["recovered_bytes"] = recovery.num_recovered
    benchmark.extra_info["key_byte_coverage"] = round(
        recovery.key_byte_coverage(), 4)
    assert speedup >= GATE_SPEEDUP, (
        f"vectorised DFA scoring must be >= {GATE_SPEEDUP}x faster than the "
        f"serial scan (serial {serial_seconds:.4f} s, vectorised "
        f"{vector_seconds:.4f} s, {speedup:.1f}x)"
    )

    benchmark(lambda: dfa_key_scores(correct, faulted))
