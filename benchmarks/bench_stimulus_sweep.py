"""STIMULUS — whole-stimulus batched acquisition versus the serial loop.

The third hot axis goes vector: after the die population (PR 1,
``acquire_batch``) and the netlist walks (PR 2, the compiled kernel),
the *stimulus* dimension is lifted onto the batched AES kernel of
:mod:`repro.crypto.batch`.  ``EMSimulator.acquire_many_batch``
synthesises a fig-scale (32 plaintexts x 8 dies) infected-population
study as one (plaintexts x dies x samples) tensor — batched cipher,
one compiled trojan-activity evaluation over all encryptions, one
vectorised oscilloscope pass — and must be at least 5x faster than the
serial per-plaintext ``acquire_many`` loop while staying bit-identical
to it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.stimulus import DEFAULT_KEY, random_plaintexts

NUM_DIES = 8
NUM_PLAINTEXTS = 32
TROJAN = "HT2"
SEED = 2015


def _build_population():
    platform = HTDetectionPlatform(
        config=PlatformConfig(num_dies=NUM_DIES, seed=SEED)
    )
    duts = [platform.infected_dut(TROJAN, die) for die in range(NUM_DIES)]
    return platform, duts


def _die_rngs():
    return [np.random.default_rng(900 + die) for die in range(NUM_DIES)]


def test_stimulus_batch_matches_serial_and_is_5x_faster(benchmark):
    # The design is built (and the trojan inserted) up front — that
    # synthesis is a one-time cost shared by any acquisition strategy.
    # What is timed is the multi-plaintext population acquisition.
    platform, duts = _build_population()
    simulator = platform.em_simulator
    plaintexts = random_plaintexts(NUM_PLAINTEXTS, seed=11)

    start = time.perf_counter()
    serial = [
        simulator.acquire_many(dut, plaintexts, DEFAULT_KEY, rng,
                               new_setup_installation=True)
        for dut, rng in zip(duts, _die_rngs())
    ]
    serial_seconds = time.perf_counter() - start

    simulator.clear_caches()
    start = time.perf_counter()
    batch = simulator.acquire_many_batch(
        duts, plaintexts, DEFAULT_KEY, _die_rngs(),
        new_setup_installation=True,
    )
    batch_seconds = time.perf_counter() - start

    for serial_list, batch_list in zip(serial, batch):
        assert len(serial_list) == len(batch_list) == NUM_PLAINTEXTS
        for serial_trace, batch_trace in zip(serial_list, batch_list):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)

    speedup = serial_seconds / batch_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["batch_seconds"] = round(batch_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["gate"] = 5.0
    benchmark.extra_info["num_plaintexts"] = NUM_PLAINTEXTS
    benchmark.extra_info["num_dies"] = NUM_DIES
    assert speedup >= 5.0, (
        f"acquire_many_batch must be >= 5x faster than the serial "
        f"per-plaintext loop (serial {serial_seconds:.3f} s, batch "
        f"{batch_seconds:.3f} s, {speedup:.1f}x)"
    )

    # The timed comparison above is the contract; the benchmark records
    # the steady-state cost of one batched stimulus sweep (caches
    # cleared each round so the cipher and trojan passes are re-run).
    def batched_sweep():
        simulator.clear_caches()
        return simulator.acquire_many_batch(
            duts, plaintexts, DEFAULT_KEY, _die_rngs(),
            new_setup_installation=True,
        )

    benchmark(batched_sweep)


def test_random_plaintext_campaign_cell_runs_batched():
    """A num_plaintexts > 1 campaign cell produces finite, sane scores."""
    from repro.campaigns import CampaignEngine, CampaignSpec

    spec = CampaignSpec(name="stimulus-sweep", trojans=(TROJAN,),
                        die_counts=(4,), metrics=("local_maxima_sum",),
                        num_plaintexts=8, seed=SEED)
    result = CampaignEngine(spec).run()
    row = result.cells[0].rows[0]
    assert np.isfinite(row.mu) and np.isfinite(row.sigma)
    assert 0.0 <= row.false_negative_rate <= 1.0
