"""TAB-HT — trojan resource footprints.

Paper claim: the AES covers 38.26 % of the FPGA slices; HTcomb/HTseq use
0.19 %/0.36 % of the FPGA; HT1/HT2/HT3 occupy 0.5 %/1.0 %/1.7 % of the
AES area.
"""

from repro.experiments import table_ht_sizes


def test_trojan_resource_table(benchmark, config, platform):
    table = benchmark(table_ht_sizes.run, config, platform)
    benchmark.extra_info["aes_slices"] = table.aes_slice_count
    for row in table.rows:
        benchmark.extra_info[f"aes_fraction[{row.trojan_name}]"] = round(
            row.fraction_of_aes, 4
        )
        benchmark.extra_info[f"device_fraction[{row.trojan_name}]"] = round(
            row.fraction_of_device, 4
        )
    assert table.ordering_matches_paper()
    assert abs(table.row("HT3").fraction_of_aes - 0.017) < 0.005
