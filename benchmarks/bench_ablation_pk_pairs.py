"""Ablation — number of (P, K) pairs used by the delay detector.

DESIGN.md question (and the paper's own remark): each (P, K) pair
sensitises a different set of bits, so more pairs sample more of the
design and gather more evidence.  The benchmark measures how the number
of bits ever observed and the worst trojan-induced shift grow with the
number of pairs.
"""

import numpy as np
import pytest


@pytest.mark.parametrize("num_pairs", [1, 2, 4])
def test_pk_pair_count_ablation(benchmark, platform, num_pairs):
    def run_study():
        return platform.run_delay_study(
            trojan_names=("HT_comb",), num_pairs=num_pairs, pair_seed=7
        )

    study = benchmark(run_study)
    comparison = study.comparisons["HT_comb"]
    observed_bits = {
        int(bit)
        for pair in study.measurements["HT_comb"].pairs
        for bit in pair.observable_bits()
    }
    benchmark.extra_info["num_pairs"] = num_pairs
    benchmark.extra_info["bits_observed"] = len(observed_bits)
    benchmark.extra_info["max_shift_ps"] = round(comparison.max_difference_ps, 1)
    benchmark.extra_info["detected"] = comparison.outcome.is_infected
    assert len(observed_bits) > 0
