"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artefact (figure, table or
headline number) on the *fast* experiment profile — identical code
paths, reduced campaign sizes — and attaches the regenerated numbers to
the benchmark record through ``benchmark.extra_info`` so that the
paper-vs-measured comparison is part of the benchmark output.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def config():
    """Fast experiment profile shared by all benchmarks."""
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def platform(config):
    """One detection platform shared by all benchmarks."""
    return config.build_platform()
