"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artefact (figure, table or
headline number) on the *fast* experiment profile — identical code
paths, reduced campaign sizes — and attaches the regenerated numbers to
the benchmark record through ``benchmark.extra_info`` so that the
paper-vs-measured comparison is part of the benchmark output.

The harness is self-contained: it runs headless from a clean checkout
(``pytest benchmarks/``) with no install step — ``src/`` is put on
``sys.path`` here — and degrades gracefully to single-pass timing when
the ``pytest-benchmark`` plugin is not available.

Every ``bench_*.py`` module additionally emits an in-repo record,
``benchmarks/records/BENCH_<name>.json``, holding each test's
``extra_info`` (measured speedup, gate threshold, regenerated paper
numbers) with no timestamps — committing the records tracks the perf
trajectory of the repository alongside the code.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

# Make the bench suite importable from a clean checkout without
# installation or a PYTHONPATH export.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import ExperimentConfig  # noqa: E402

try:
    import pytest_benchmark  # noqa: F401
    _HAVE_BENCHMARK_PLUGIN = True
except ImportError:  # pragma: no cover - depends on the environment
    _HAVE_BENCHMARK_PLUGIN = False


if not _HAVE_BENCHMARK_PLUGIN:  # pragma: no cover - depends on the environment

    class _FallbackBenchmark:
        """Single-pass stand-in for the pytest-benchmark fixture."""

        def __init__(self):
            self.extra_info = {}
            self.stats = None

        def __call__(self, func, *args, **kwargs):
            start = time.perf_counter()
            result = func(*args, **kwargs)
            self.extra_info["single_pass_seconds"] = time.perf_counter() - start
            return result

        def pedantic(self, func, args=(), kwargs=None, **_options):
            return self(func, *args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()


#: Where the per-module benchmark records land (committed to the repo).
RECORDS_DIR = Path(__file__).resolve().parent / "records"


def _jsonable(value):
    """Coerce extra_info values (numpy scalars included) to plain JSON."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if hasattr(value, "item"):  # numpy scalar
        value = value.item()
    if isinstance(value, float):
        return round(value, 6)
    return value


def _record_benchmark(item) -> None:
    """Merge one test's ``extra_info`` into its module's BENCH record.

    The record file is ``BENCH_<module-minus-bench_>.json``: one
    ``tests`` entry per benchmark test, deterministic layout (sorted
    keys, no timestamps) so reruns produce reviewable diffs.
    """
    fixture = getattr(item, "funcargs", {}).get("benchmark")
    extra = getattr(fixture, "extra_info", None)
    if not extra:
        return
    module_name = item.module.__name__.rpartition(".")[2]
    if not module_name.startswith("bench_"):
        return
    name = module_name[len("bench_"):]
    RECORDS_DIR.mkdir(exist_ok=True)
    path = RECORDS_DIR / f"BENCH_{name}.json"
    record = {}
    if path.exists():
        try:
            record = json.loads(path.read_text())
        except ValueError:
            record = {}
    record["bench"] = name
    record.setdefault("tests", {})
    record["tests"][item.name] = _jsonable(dict(extra))
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item):
    yield
    _record_benchmark(item)


@pytest.fixture(scope="session")
def config():
    """Fast experiment profile shared by all benchmarks."""
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def platform(config):
    """One detection platform shared by all benchmarks."""
    return config.build_platform()
