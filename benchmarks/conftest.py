"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artefact (figure, table or
headline number) on the *fast* experiment profile — identical code
paths, reduced campaign sizes — and attaches the regenerated numbers to
the benchmark record through ``benchmark.extra_info`` so that the
paper-vs-measured comparison is part of the benchmark output.

The harness is self-contained: it runs headless from a clean checkout
(``pytest benchmarks/``) with no install step — ``src/`` is put on
``sys.path`` here — and degrades gracefully to single-pass timing when
the ``pytest-benchmark`` plugin is not available.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import pytest

# Make the bench suite importable from a clean checkout without
# installation or a PYTHONPATH export.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import ExperimentConfig  # noqa: E402

try:
    import pytest_benchmark  # noqa: F401
    _HAVE_BENCHMARK_PLUGIN = True
except ImportError:  # pragma: no cover - depends on the environment
    _HAVE_BENCHMARK_PLUGIN = False


if not _HAVE_BENCHMARK_PLUGIN:  # pragma: no cover - depends on the environment

    class _FallbackBenchmark:
        """Single-pass stand-in for the pytest-benchmark fixture."""

        def __init__(self):
            self.extra_info = {}
            self.stats = None

        def __call__(self, func, *args, **kwargs):
            start = time.perf_counter()
            result = func(*args, **kwargs)
            self.extra_info["single_pass_seconds"] = time.perf_counter() - start
            return result

        def pedantic(self, func, args=(), kwargs=None, **_options):
            return self(func, *args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()


@pytest.fixture(scope="session")
def config():
    """Fast experiment profile shared by all benchmarks."""
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def platform(config):
    """One detection platform shared by all benchmarks."""
    return config.build_platform()
