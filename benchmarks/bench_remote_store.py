"""STORE — tiered (local + loopback remote) overhead on warm resume.

ISSUE 10's remote layer (write-through :class:`TieredStore`, SHA-verified
:class:`RemoteStore` puts/gets, retry + circuit-breaker bookkeeping) must
stay close to free on the path users actually feel: a warm store-backed
rerun that resolves every cell from the local tier's manifest.  The gate:
the tiered store's warm rerun takes at most **20%** longer than the same
rerun against a plain local :class:`ArtifactStore`, plus a small absolute
slack so the gate is meaningful on runs whose total is a few dozen
milliseconds.

The warm rows must also stay bit-identical between the two modes —
tiering is a durability feature, never a behaviour change.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.store import LoopbackTransport, RemoteStore, TieredStore

NUM_DIES = 8
TROJANS = ("HT1", "HT2", "HT3")
SEED = 2015

#: Tiered warm rerun may cost at most 20% over the plain-local baseline ...
OVERHEAD_GATE = 1.20
#: ... plus this absolute slack: a warm rerun is tens of milliseconds,
#: where scheduler noise alone can exceed 20%.
ABSOLUTE_SLACK_S = 0.25

#: Warm reruns per timing sample (averaging tames filesystem jitter).
REPEATS = 3


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="remote-store-bench", trojans=TROJANS, die_counts=(NUM_DIES,),
        metrics=("local_maxima_sum", "delay_max_difference"),
        num_pk_pairs=8, delay_repetitions=5, seed=SEED,
    )


def _tiered(local_dir: Path, remote_dir: Path) -> TieredStore:
    return TieredStore(local_dir, RemoteStore(LoopbackTransport(remote_dir)))


def _warm_rerun_seconds(spec: CampaignSpec, make_store) -> tuple:
    start = time.perf_counter()
    for _ in range(REPEATS):
        result = CampaignEngine(spec, store=make_store()).run()
    elapsed = (time.perf_counter() - start) / REPEATS
    return elapsed, [row.to_dict() for row in result.rows()]


def test_tiered_overhead_on_warm_resume_is_within_20_percent(benchmark):
    spec = _spec()
    root = Path(tempfile.mkdtemp(prefix="bench_remote_store_"))
    try:
        local_dir = root / "local"
        remote_dir = root / "remote"
        plain_dir = root / "plain"

        # Populate both configurations cold.
        tiered = _tiered(local_dir, remote_dir)
        CampaignEngine(spec, store=tiered).run()
        assert tiered.pending_uploads() == [], (
            "loopback replication must never journal"
        )
        CampaignEngine(spec, store=str(plain_dir)).run()

        # Interleave-free ordering: plain baseline first, tiered second —
        # both fully warm, each against its own populated directory.
        plain_seconds, plain_rows = _warm_rerun_seconds(
            spec, lambda: str(plain_dir))
        tiered_seconds, tiered_rows = _warm_rerun_seconds(
            spec, lambda: _tiered(local_dir, remote_dir))

        assert tiered_rows == plain_rows, (
            "tiering must never change campaign rows"
        )

        overhead = tiered_seconds / plain_seconds
        budget = plain_seconds * OVERHEAD_GATE + ABSOLUTE_SLACK_S
        benchmark.extra_info["plain_seconds"] = round(plain_seconds, 4)
        benchmark.extra_info["tiered_seconds"] = round(tiered_seconds, 4)
        benchmark.extra_info["overhead_factor"] = round(overhead, 3)
        benchmark.extra_info["gate_factor"] = OVERHEAD_GATE
        benchmark.extra_info["absolute_slack_s"] = ABSOLUTE_SLACK_S
        benchmark.extra_info["repeats"] = REPEATS
        benchmark.extra_info["cells"] = spec.num_cells()
        assert tiered_seconds <= budget, (
            f"tiered store costs {overhead:.2f}x on the warm resume path "
            f"(tiered {tiered_seconds:.3f} s vs plain "
            f"{plain_seconds:.3f} s; budget {budget:.3f} s)"
        )

        # The recorded benchmark is the steady-state tiered warm rerun —
        # what a remote-backed campaign pays on every resume.
        benchmark(lambda: CampaignEngine(
            spec, store=_tiered(local_dir, remote_dir)).run())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_cold_remote_resume_recomputes_nothing():
    """A fresh host (empty local tier, warm remote) must resolve every
    cell by backfilling from the remote — zero recomputed cells, rows
    bit-identical to the original run."""
    spec = _spec()
    root = Path(tempfile.mkdtemp(prefix="bench_remote_store_"))
    try:
        remote_dir = root / "remote"
        first = CampaignEngine(
            spec, store=_tiered(root / "host-a", remote_dir)).run()

        host_b = _tiered(root / "host-b", remote_dir)
        engine = CampaignEngine(spec, store=host_b)
        for cell in spec.grid():
            assert engine.load_cell_result(cell) is not None, (
                f"cell {cell.index} missing from the remote tier"
            )
        second = engine.run()
        assert [row.to_dict() for row in second.rows()] == \
            [row.to_dict() for row in first.rows()]
        assert host_b.backfills > 0
    finally:
        shutil.rmtree(root, ignore_errors=True)
