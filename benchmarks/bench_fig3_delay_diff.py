"""FIG3 — per-bit delay differences for clean and infected designs.

Paper claim: the two clean control curves stay at the measurement-noise
floor while HTcomb and HTseq shift some bits by up to ~1.4 ns, for every
(P, K) pair studied.
"""

from repro.experiments import fig3_delay


def test_fig3_per_bit_delay_differences(benchmark, config, platform):
    result = benchmark(fig3_delay.run, config, platform)
    benchmark.extra_info["clean_max_ps"] = round(result.clean_max_ps(), 1)
    benchmark.extra_info["infected_max_ps"] = round(result.infected_max_ps(), 1)
    benchmark.extra_info["separation_ratio"] = round(result.separation_ratio(), 2)
    for label in ("Clean1", "HT_comb", "HT_seq"):
        series = result.series_for(label, result.representative_pairs[0])
        benchmark.extra_info[f"max_ps[{label}]"] = round(series.max_ps(), 1)
    assert result.separation_ratio() > 1.5
    assert result.study.comparisons["HT_comb"].outcome.is_infected
    assert result.study.comparisons["HT_seq"].outcome.is_infected
    assert not result.study.comparisons["Clean1"].outcome.is_infected
