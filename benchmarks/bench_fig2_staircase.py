"""FIG2 — faulted-bit staircase versus glitch step for one (P, K) pair.

Paper claim: decreasing the glitched clock period in 35 ps steps faults
more and more ciphertext bits; an inserted trojan shifts the onset.
"""

from repro.experiments import fig2_staircase


def test_fig2_fault_staircase(benchmark, config, platform):
    result = benchmark(fig2_staircase.run, config, platform)
    golden_counts = [result.golden_staircase[s]
                     for s in sorted(result.golden_staircase)]
    infected_counts = [result.infected_staircase[s]
                       for s in sorted(result.infected_staircase)]
    benchmark.extra_info["glitch_start_ps"] = round(result.glitch_start_ps, 1)
    benchmark.extra_info["golden_first_fault_step"] = result.golden_first_fault_step()
    benchmark.extra_info["infected_first_fault_step"] = \
        result.infected_first_fault_step()
    benchmark.extra_info["golden_faulted_bits_at_last_step"] = golden_counts[-1]
    benchmark.extra_info["infected_faulted_bits_at_last_step"] = infected_counts[-1]
    assert max(golden_counts) > 0
    assert result.infected_first_fault_step() <= result.golden_first_fault_step()
