"""BITSLICED KERNEL — uint64 bitplane sweep versus the uint8 sweep.

The bitsliced kernel's claim: on the campaign hot path — trojan-trigger
reduction grids (wide AND/OR/XOR trees, the logic every stimulus sweep
re-evaluates thousands of times) — the packed uint64 word kernel
(:meth:`~repro.netlist.bitslice.BitslicedNetlist.sweep_packed`) runs
**at least 8x faster** than the uint8 compiled sweep, with unpacked
outputs bit-identical.

The gate is on the packed-resident kernel: campaign-style callers keep
stimuli packed across many evaluations, so pack/unpack amortises away.
End-to-end ``evaluate_batch`` numbers (which pay pack + unpack every
call) and the S-box grid (generic LUT6 fallback, the kernel's worst
class) are recorded ungated in ``extra_info`` alongside the warm-eval
delta of the int32 scratch-buffer fix to the uint8 sweep itself.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import use_backend
from repro.netlist import Netlist, build_sbox_netlist
from repro.netlist.synth import synthesize_reduction_tree

NUM_VECTORS = 1 << 15
NUM_TREES = 24
NUM_INPUTS = 128
SEED = 2015
MIN_SPEEDUP = 8.0


def _build_trigger_grid() -> Netlist:
    """A grid of trojan-trigger-style reduction trees.

    The shapes the paper's trojans use: wide AND arming conditions,
    XOR parity chains, OR alarm collection — all of which lower to the
    cheap bitsliced word classes rather than the generic LUT ladder.
    """
    netlist = Netlist(
        "trigger_grid",
        inputs=[f"pi{index}" for index in range(NUM_INPUTS)])
    collected = []
    for tree in range(NUM_TREES):
        taps = [netlist.inputs[(tree * 7 + offset) % NUM_INPUTS]
                for offset in range(17)]
        synthesize_reduction_tree(netlist, f"arm{tree}", taps,
                                  f"armed{tree}", "and")
        parity_taps = [netlist.inputs[(tree * 11 + offset) % NUM_INPUTS]
                      for offset in range(13)]
        synthesize_reduction_tree(netlist, f"par{tree}", parity_taps,
                                  f"parity{tree}", "xor")
        collected += [f"armed{tree}", f"parity{tree}"]
    synthesize_reduction_tree(netlist, "alarm", collected, "alarm", "or")
    return netlist


def _best_of(repeats: int, call) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def _old_astype_sweep(compiled, state: np.ndarray) -> None:
    """The pre-fix uint8 sweep: a fresh int32 copy of every gathered
    pin slice, kept inline here as the scratch-fix reference."""
    for start, end in compiled.level_slices:
        arity = int(compiled.arity[start:end].max())
        address = state[:, compiled.input_idx[start:end, 0]].astype(np.int32)
        for pin in range(1, arity):
            address |= (state[:, compiled.input_idx[start:end, pin]]
                        .astype(np.int32) << pin)
        address += compiled.table_offset[start:end][None, :]
        state[:, compiled.output_idx[start:end]] = compiled.tables[address]


def test_bitsliced_trigger_grid_matches_uint8_and_is_8x_faster(benchmark):
    netlist = _build_trigger_grid()
    compiled = netlist.compiled()
    lowered = compiled.bitsliced()
    rng = np.random.default_rng(SEED)
    rows = rng.integers(0, 2, size=(NUM_VECTORS, NUM_INPUTS),
                        dtype=np.uint8)

    # Bit-identity first, through the public backend seam (pays pack +
    # unpack), on a ragged tail so the padding lanes are exercised too.
    reference = compiled.evaluate_batch(rows[:-17])
    with use_backend("bitslice"):
        assert np.array_equal(compiled.evaluate_batch(rows[:-17]),
                              reference)

    # The packed-resident kernel: stimuli packed once, swept in place.
    from repro.netlist.bitslice import pack_bits
    state = compiled._prepare_state(rows, None, None, None)
    words = pack_bits(state)

    compiled.evaluate_batch(rows)           # warm caches on both paths
    lowered.sweep_packed(words.copy())

    uint8_seconds = _best_of(3, lambda: compiled.evaluate_batch(rows))
    packed_seconds = _best_of(
        3, lambda: lowered.sweep_packed(words.copy()))
    kernel_speedup = uint8_seconds / packed_seconds

    start = time.perf_counter()
    with use_backend("bitslice"):
        compiled.evaluate_batch(rows)
    end_to_end_seconds = time.perf_counter() - start

    # Satellite note: warm-eval delta of the int32 scratch-buffer fix
    # (reused ufunc-out scratch versus a fresh .astype copy per pin).
    scratch_state = compiled._prepare_state(rows, None, None, None)
    old_state = scratch_state.copy()
    compiled._sweep(scratch_state)
    _old_astype_sweep(compiled, old_state)
    assert np.array_equal(scratch_state, old_state), \
        "scratch-buffer sweep must be bit-identical to the astype sweep"
    new_sweep_seconds = _best_of(
        3, lambda: compiled._sweep(scratch_state))
    old_sweep_seconds = _best_of(
        3, lambda: _old_astype_sweep(compiled, old_state))

    # The kernel's worst class: the S-box grid is generic LUT6 logic,
    # evaluated through the Shannon mux-ladder fallback.
    sbox = build_sbox_netlist().compiled()
    sbox_rows = rng.integers(0, 2, size=(NUM_VECTORS, 8), dtype=np.uint8)
    sbox_reference = sbox.evaluate_batch(sbox_rows[:100])
    with use_backend("bitslice"):
        assert np.array_equal(sbox.evaluate_batch(sbox_rows[:100]),
                              sbox_reference)
    sbox_uint8 = _best_of(3, lambda: sbox.evaluate_batch(sbox_rows))
    with use_backend("bitslice"):
        sbox_sliced = _best_of(3, lambda: sbox.evaluate_batch(sbox_rows))

    benchmark.extra_info["uint8_seconds"] = round(uint8_seconds, 4)
    benchmark.extra_info["packed_kernel_seconds"] = round(packed_seconds, 4)
    benchmark.extra_info["speedup"] = round(kernel_speedup, 2)
    benchmark.extra_info["gate"] = MIN_SPEEDUP
    benchmark.extra_info["end_to_end_seconds"] = round(end_to_end_seconds, 4)
    benchmark.extra_info["end_to_end_speedup"] = round(
        uint8_seconds / end_to_end_seconds, 2)
    benchmark.extra_info["sbox_end_to_end_speedup"] = round(
        sbox_uint8 / sbox_sliced, 2)
    benchmark.extra_info["scratch_fix_speedup"] = round(
        old_sweep_seconds / new_sweep_seconds, 2)
    benchmark.extra_info["num_vectors"] = NUM_VECTORS
    benchmark.extra_info["nets"] = compiled.num_nets
    benchmark.extra_info["levels"] = len(compiled.level_slices)
    assert kernel_speedup >= MIN_SPEEDUP, (
        f"bitsliced kernel must be >= {MIN_SPEEDUP}x faster than the "
        f"uint8 sweep (uint8 {uint8_seconds:.4f} s, packed "
        f"{packed_seconds:.4f} s, {kernel_speedup:.1f}x)"
    )

    # Steady-state cost of one packed-resident sweep on warm caches.
    benchmark(lambda: lowered.sweep_packed(words.copy()))
