"""CAMPAIGN — batched engine versus the old per-die acquisition loop.

The campaign engine's claim: a 16-die x 3-trojan EM campaign through
``CampaignEngine`` (vectorised ``acquire_batch``, shared design and
fingerprint caches) produces the same headline numbers as the sequential
``run_population_em_study`` path built on the per-die ``acquire`` loop,
at least 2x faster.

(The gate was 3x when the per-die loop still interpreted the trojan
netlist cycle by cycle; the compiled kernel of
:mod:`repro.netlist.compiled` sped that shared activity model up ~4x
for *both* paths, so the serial baseline itself got much faster and the
engine's remaining edge — batched trace synthesis and cache reuse — is
enforced at 2x.)
"""

from __future__ import annotations

import time

import numpy as np

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.core.pipeline import (
    HTDetectionPlatform,
    PlatformConfig,
    run_population_em_study,
)

NUM_DIES = 16
TROJANS = ("HT1", "HT2", "HT3")
SEED = 2015


def _build_platform() -> HTDetectionPlatform:
    return HTDetectionPlatform(
        config=PlatformConfig(num_dies=NUM_DIES, seed=SEED)
    )


def _serial_study(platform: HTDetectionPlatform):
    """The pre-engine path: one ``acquire`` per (design, die)."""
    traces = platform.acquire_population_traces_serial(TROJANS)
    return run_population_em_study(platform, trojan_names=TROJANS,
                                   traces=traces)


def test_batched_campaign_matches_serial_and_is_2x_faster(benchmark):
    # Both sides start from ready designs (golden built, trojans
    # inserted) — that synthesis is a one-time cost shared by any
    # acquisition strategy.  What is timed is the campaign itself:
    # acquisition of the 16-die x 3-trojan population plus detection.
    serial_platform = _build_platform()
    for name in TROJANS:
        serial_platform.infected_design(name)
    start = time.perf_counter()
    serial = _serial_study(serial_platform)
    serial_seconds = time.perf_counter() - start

    spec = CampaignSpec(name="sweep", trojans=TROJANS,
                        die_counts=(NUM_DIES,), seed=SEED)
    engine = CampaignEngine(spec)
    cell_spec = engine.spec.grid()[0]
    for name in TROJANS:
        engine.platform_for(cell_spec).infected_design(name)
    start = time.perf_counter()
    cell = engine.run_cell(cell_spec)
    engine_seconds = time.perf_counter() - start

    serial_rates = serial.false_negative_rates()
    engine_rates = cell.false_negative_rates()
    for name in TROJANS:
        np.testing.assert_allclose(engine_rates[name], serial_rates[name],
                                   rtol=1e-9, atol=1e-12)

    speedup = serial_seconds / engine_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["engine_seconds"] = round(engine_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["gate"] = 2.0
    for name in TROJANS:
        benchmark.extra_info[f"fn_rate[{name}]"] = round(engine_rates[name], 4)
    assert speedup >= 2.0, (
        f"batched engine must be >= 2x faster than the per-die loop "
        f"(serial {serial_seconds:.3f} s, engine {engine_seconds:.3f} s, "
        f"{speedup:.1f}x)"
    )

    # The timed comparison above is the contract; the benchmark records
    # the steady-state cost of one batched campaign on warm caches.
    benchmark(lambda: engine.run_cell(cell_spec))


def test_batched_acquisition_bitwise_matches_serial():
    """The batch path is not merely close — it is bit-identical."""
    platform_serial = _build_platform()
    platform_batch = _build_platform()
    golden_serial, infected_serial = (
        platform_serial.acquire_population_traces_serial(TROJANS)
    )
    golden_batch, infected_batch = (
        platform_batch.acquire_population_traces(TROJANS)
    )
    for serial_trace, batch_trace in zip(golden_serial, golden_batch):
        assert np.array_equal(serial_trace.samples, batch_trace.samples)
    for name in TROJANS:
        for serial_trace, batch_trace in zip(infected_serial[name],
                                             infected_batch[name]):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)
