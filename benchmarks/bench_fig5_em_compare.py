"""FIG5 — same-die comparison of genuine and infected averaged traces.

Paper claim: two genuine acquisitions (including a setup re-install) are
nearly identical, while the trace of the HT-infected AES departs at
specific samples, so the dormant trojan is detected by direct
comparison.
"""

from repro.experiments import fig5_em_compare


def test_fig5_same_die_comparison(benchmark, config, platform):
    result = benchmark(fig5_em_compare.run, config, platform)
    benchmark.extra_info["genuine_vs_genuine_max"] = round(
        result.genuine_vs_genuine_max, 1
    )
    benchmark.extra_info["genuine_vs_infected_max"] = round(
        result.genuine_vs_infected_max, 1
    )
    benchmark.extra_info["contrast"] = round(result.contrast(), 2)
    benchmark.extra_info["detected"] = result.detected
    assert result.detected
    assert result.contrast() > 1.5
