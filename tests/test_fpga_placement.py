"""Unit tests for slice maps, placement and routing."""

import pytest

from repro.fpga.device import virtex5_lx30
from repro.fpga.floorplan import Region
from repro.fpga.placement import Placer, net_endpoints
from repro.fpga.routing import Router, added_tap_delay_ps
from repro.fpga.slices import PlacementError, SliceMap, manhattan_distance
from repro.netlist.cells import make_dff, make_lut, make_xor
from repro.netlist.netlist import Netlist


@pytest.fixture()
def device():
    return virtex5_lx30()


def small_netlist() -> Netlist:
    netlist = Netlist("small")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_cell(make_xor("x0", "a", "b", "n0"))
    netlist.add_cell(make_xor("x1", "n0", "b", "n1"))
    netlist.add_cell(make_dff("r0", "n1", "q0"))
    netlist.add_output("q0")
    return netlist


def test_manhattan_distance():
    assert manhattan_distance((0, 0), (3, 4)) == 7
    assert manhattan_distance((2, 2), (2, 2)) == 0


def test_slice_map_capacity_enforced(device):
    slice_map = SliceMap(device)
    for index in range(device.luts_per_slice):
        slice_map.place_cell(f"lut{index}", (0, 0))
    with pytest.raises(PlacementError):
        slice_map.place_cell("overflow", (0, 0))


def test_slice_map_rejects_duplicates_and_out_of_bounds(device):
    slice_map = SliceMap(device)
    slice_map.place_cell("c0", (0, 0))
    with pytest.raises(PlacementError):
        slice_map.place_cell("c0", (0, 1))
    with pytest.raises(PlacementError):
        slice_map.place_cell("c1", (device.rows, 0))
    with pytest.raises(PlacementError):
        slice_map.slice_of("unknown")


def test_slice_map_queries(device):
    slice_map = SliceMap(device)
    slice_map.place_cell("c0", (0, 0))
    slice_map.place_cell("c1", (0, 1), uses_lut=False, uses_ff=True)
    assert slice_map.slice_of("c0") == (0, 0)
    assert slice_map.is_placed("c1")
    assert slice_map.used_slice_count() == 2
    assert (0, 0) in slice_map.occupied_slices()
    assert slice_map.cells_in_slice((0, 1)) == ["c1"]
    free = slice_map.free_slices([(0, 0), (0, 1), (0, 2)])
    assert free == [(0, 2)]
    assert 0 < slice_map.utilisation() < 1


def test_placer_places_all_cells_inside_region(device):
    netlist = small_netlist()
    region = Region("r", 0, 0, 3, 3)
    placement = Placer(device).place(netlist, region)
    assert placement.cell_count() == len(netlist.cells)
    for coord in placement.cell_positions.values():
        assert region.contains(*coord)


def test_placer_is_deterministic(device):
    netlist = small_netlist()
    region = Region("r", 0, 0, 3, 3)
    p1 = Placer(device).place(netlist, region)
    p2 = Placer(device).place(netlist, region)
    assert p1.cell_positions == p2.cell_positions


def test_placer_respects_avoid_list(device):
    netlist = small_netlist()
    region = Region("r", 0, 0, 1, 1)
    avoid = [(0, 0)]
    placement = Placer(device).place(netlist, region, avoid=avoid)
    assert all(coord != (0, 0) for coord in placement.cell_positions.values())


def test_placer_raises_when_region_full(device):
    # A 1x1 region cannot host 9 LUT cells on a 4-LUT slice.
    netlist = Netlist("big")
    netlist.add_input("a")
    previous = "a"
    for index in range(9):
        net = f"n{index}"
        netlist.add_cell(make_lut(f"l{index}", [previous], net, (0, 1)))
        previous = net
    netlist.add_output(previous)
    with pytest.raises(PlacementError):
        Placer(device).place(netlist, Region("tiny", 0, 0, 0, 0))


def test_placer_rejects_empty_usable_region(device):
    netlist = small_netlist()
    region = Region("r", 0, 0, 0, 0)
    with pytest.raises(PlacementError):
        Placer(device).place(netlist, region, avoid=[(0, 0)])


def test_net_endpoints_and_router(device):
    netlist = small_netlist()
    region = Region("r", 0, 0, 3, 3)
    placement = Placer(device).place(netlist, region)
    driver, loads = net_endpoints(netlist, placement, "n0")
    assert driver == placement.cell_positions["x0"]
    assert placement.cell_positions["x1"] in loads

    router = Router()
    routed = router.route(netlist, placement)
    assert set(routed) == netlist.nets()
    for net, info in routed.items():
        assert info.delay_ps >= router.base_delay_ps
    delays = router.net_delays(netlist, placement)
    assert delays.keys() == routed.keys()


def test_router_delay_grows_with_distance_and_fanout():
    router = Router(base_delay_ps=100, delay_per_hop_ps=10, delay_per_load_ps=5)
    device = virtex5_lx30()
    netlist = Netlist("fanout")
    netlist.add_input("a")
    netlist.add_cell(make_lut("src", ["a"], "n0", (0, 1)))
    for index in range(3):
        netlist.add_cell(make_lut(f"load{index}", ["n0"], f"o{index}", (0, 1)))
        netlist.add_output(f"o{index}")
    placement = Placer(device).place(netlist, Region("r", 0, 0, 40, 40))
    routed = Router().route_net(netlist, placement, "n0")
    assert routed.fanout == 3
    single = Router().route_net(netlist, placement, "o0")
    assert routed.delay_ps >= single.delay_ps


def test_router_rejects_negative_coefficients():
    with pytest.raises(ValueError):
        Router(base_delay_ps=-1)


def test_added_tap_delay_model():
    assert added_tap_delay_ps(0) == 0.0
    assert added_tap_delay_ps(2) == pytest.approx(2 * added_tap_delay_ps(1))
    with pytest.raises(ValueError):
        added_tap_delay_ps(-1)
