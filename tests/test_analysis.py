"""Tests for the analysis toolkit (traces, local maxima, Gaussian, ROC, stats)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.gaussian import (
    GaussianFit,
    fit_gaussian,
    overlap_threshold,
    pooled_std,
    separation,
)
from repro.analysis.local_maxima import (
    find_local_maxima,
    local_maxima_values,
    sum_of_local_maxima,
)
from repro.analysis.roc import roc_curve, roc_curve_serial
from repro.analysis.stats import (
    bootstrap_mean_ci,
    empirical_rate,
    mad,
    normalised_difference,
    robust_zscore,
    welch_t_test,
)
from repro.analysis.traces import (
    abs_difference,
    difference,
    mean_trace,
    peak_to_peak,
    per_sample_std,
    signal_to_noise_ratio,
    stack_traces,
)

# -- local maxima -------------------------------------------------------------


def test_find_local_maxima_simple_peaks():
    signal = [0, 1, 0, 2, 0, 3, 0]
    peaks = find_local_maxima(signal)
    assert list(peaks) == [1, 3, 5]
    assert list(local_maxima_values(signal)) == [1, 2, 3]


def test_find_local_maxima_endpoints_excluded():
    assert list(find_local_maxima([5, 1, 1, 1, 9])) == []


def test_find_local_maxima_min_height_and_distance():
    signal = [0, 5, 0, 1, 0, 4, 0]
    assert list(find_local_maxima(signal, min_height=2)) == [1, 5]
    spaced = find_local_maxima(signal, min_distance=3)
    assert 1 in spaced and 3 not in spaced


def test_find_local_maxima_validation():
    with pytest.raises(ValueError):
        find_local_maxima(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        find_local_maxima([0, 1, 0], min_distance=0)
    assert list(find_local_maxima([1, 2])) == []


def test_sum_of_local_maxima():
    signal = [0, 1, 0, 2, 0, 3, 0]
    assert sum_of_local_maxima(signal) == 6.0
    assert sum_of_local_maxima([0, 0, 0]) == 0.0


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=3, max_size=60))
@settings(max_examples=50, deadline=None)
def test_local_maxima_properties(values):
    peaks = find_local_maxima(values)
    arr = np.asarray(values)
    for index in peaks:
        assert 0 < index < len(values) - 1
        assert arr[index] > arr[index - 1]
        assert arr[index] >= arr[index + 1]
    assert sum_of_local_maxima(values) <= max(1e-9, arr[peaks].sum() + 1e-9)


# -- traces -------------------------------------------------------------------


def test_stack_and_mean_traces():
    traces = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
    matrix = stack_traces(traces)
    assert matrix.shape == (2, 2)
    assert np.array_equal(mean_trace(traces), np.array([2.0, 3.0]))
    with pytest.raises(ValueError):
        stack_traces([])
    with pytest.raises(ValueError):
        stack_traces([np.zeros(2), np.zeros(3)])


def test_difference_functions():
    a = np.array([1.0, -2.0, 3.0])
    b = np.array([0.0, 0.0, 0.0])
    assert np.array_equal(abs_difference(a, b), np.abs(a))
    assert np.array_equal(difference(a, b), a)
    with pytest.raises(ValueError):
        abs_difference(a, np.zeros(2))
    with pytest.raises(ValueError):
        difference(a, np.zeros(2))


def test_per_sample_std_and_peak_to_peak():
    traces = [np.array([0.0, 1.0]), np.array([2.0, 1.0])]
    std = per_sample_std(traces)
    assert std[0] > 0 and std[1] == 0
    assert per_sample_std([np.zeros(4)]).tolist() == [0, 0, 0, 0]
    assert peak_to_peak(np.array([-3.0, 5.0])) == 8.0


def test_signal_to_noise_ratio_increases_with_cleaner_traces(rng):
    base = np.sin(np.linspace(0, 10, 200)) * 100
    noisy = [base + rng.normal(0, 20, 200) for _ in range(5)]
    clean = [base + rng.normal(0, 2, 200) for _ in range(5)]
    assert signal_to_noise_ratio(clean) > signal_to_noise_ratio(noisy)


# -- gaussian -----------------------------------------------------------------


def test_fit_gaussian_and_pdf():
    fit = fit_gaussian([1.0, 2.0, 3.0, 4.0])
    assert fit.mean == pytest.approx(2.5)
    assert fit.std > 0
    assert fit.pdf([2.5])[0] > fit.pdf([10.0])[0]
    assert fit.cdf(2.5) == pytest.approx(0.5)
    single = fit_gaussian([3.0])
    assert single.std == 0.0
    with pytest.raises(ValueError):
        fit_gaussian([])
    with pytest.raises(ValueError):
        single.pdf([1.0])
    with pytest.raises(ValueError):
        GaussianFit(0.0, -1.0)


def test_pooled_std_and_separation():
    genuine = [10.0, 11.0, 9.0, 10.5]
    infected = [15.0, 16.0, 14.0, 15.5]
    mu, sigma = separation(genuine, infected)
    assert mu == pytest.approx(5.0, abs=0.5)
    assert sigma == pytest.approx(pooled_std(genuine, infected))
    with pytest.raises(ValueError):
        pooled_std([1.0], [1.0, 2.0])


def test_overlap_threshold_is_midpoint():
    threshold = overlap_threshold(GaussianFit(0, 1), GaussianFit(10, 1))
    assert threshold == pytest.approx(5.0)


# -- roc ----------------------------------------------------------------------


def test_roc_curve_perfect_separation():
    curve = roc_curve([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
    assert curve.auc() == pytest.approx(1.0)
    assert curve.equal_error_rate() == pytest.approx(0.0, abs=0.01)
    threshold, tpr = curve.operating_point(0.0)
    assert tpr == pytest.approx(1.0)


def test_roc_curve_no_separation():
    rng = np.random.default_rng(0)
    scores = rng.normal(0, 1, 200)
    curve = roc_curve(scores, scores)
    assert 0.45 < curve.auc() < 0.55
    assert 0.4 < curve.equal_error_rate() < 0.6


def test_roc_curve_validation():
    with pytest.raises(ValueError):
        roc_curve([], [1.0])
    with pytest.raises(ValueError):
        roc_curve_serial([], [1.0])


def test_roc_curve_matches_serial_reference_with_ties():
    rng = np.random.default_rng(3)
    # Heavy ties (scores quantised to a half-unit grid) exercise the
    # searchsorted side='right' boundary against the serial `>` scan.
    genuine = np.round(rng.normal(0, 2, 157) * 2) / 2
    infected = np.round(rng.normal(1, 2, 211) * 2) / 2
    fast = roc_curve(genuine, infected)
    serial = roc_curve_serial(genuine, infected)
    assert np.array_equal(fast.thresholds, serial.thresholds)
    assert np.array_equal(fast.false_positive_rates,
                          serial.false_positive_rates)
    assert np.array_equal(fast.true_positive_rates,
                          serial.true_positive_rates)


def test_operating_point_raises_on_infeasible_budget():
    curve = roc_curve([1.0, 2.0, 3.0], [2.5, 3.5])
    with pytest.raises(ValueError):
        curve.operating_point(-0.1)
    threshold, tpr = curve.operating_point(1.0)
    assert tpr == 1.0 and threshold < 2.5


# -- stats --------------------------------------------------------------------


def test_welch_t_test_detects_difference():
    statistic, p_value = welch_t_test([1, 1.1, 0.9, 1.05], [2, 2.1, 1.9, 2.05])
    assert p_value < 0.01
    assert statistic != 0
    with pytest.raises(ValueError):
        welch_t_test([1.0], [1.0, 2.0])


def test_normalised_difference_effect_size():
    assert normalised_difference([0, 0.1, -0.1, 0.05],
                                 [1, 1.1, 0.9, 1.05]) > 3
    assert normalised_difference([1.0, 1.0], [1.0, 1.0]) == 0.0


def test_mad_and_robust_zscore():
    values = [1.0, 1.1, 0.9, 1.0, 10.0]
    assert mad(values) < 0.2
    z = robust_zscore(values)
    assert abs(z[-1]) > 3
    assert robust_zscore([2.0, 2.0, 2.0]).tolist() == [0, 0, 0]
    with pytest.raises(ValueError):
        mad([])


def test_empirical_rate_and_bootstrap():
    assert empirical_rate([True, False, True, True]) == 0.75
    low, high = bootstrap_mean_ci([1.0, 2.0, 3.0, 4.0], seed=1)
    assert low <= 2.5 <= high
    with pytest.raises(ValueError):
        empirical_rate([])
    with pytest.raises(ValueError):
        bootstrap_mean_ci([1.0], confidence=1.5)
