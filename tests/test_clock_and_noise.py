"""Tests for the clock-glitch generator, timing budget and noise models."""

import numpy as np
import pytest

from repro.measurement.clock import ClockGlitchGenerator, TimingBudget
from repro.measurement.noise import DelayNoiseModel, EMNoiseModel


def test_timing_budget_equation_one():
    budget = TimingBudget(clk2q_ps=400, setup_ps=180, hold_ps=100,
                          skew_ps=50, jitter_ps=25)
    required = budget.required_period_ps(1000.0)
    assert required == pytest.approx(400 + 1000 + 180 - 50 + 25)
    assert budget.setup_slack_ps(required + 1, 1000.0) == pytest.approx(1.0)
    assert budget.violates_setup(required - 1, 1000.0)
    assert not budget.violates_setup(required + 1, 1000.0)
    assert budget.max_propagation_ps(required) == pytest.approx(1000.0)


def test_timing_budget_validation():
    with pytest.raises(ValueError):
        TimingBudget(clk2q_ps=-1)


def test_glitch_generator_periods():
    glitch = ClockGlitchGenerator(start_period_ps=4000, step_ps=35, num_steps=51)
    periods = glitch.periods()
    assert len(periods) == 52
    assert periods[0] == 4000
    assert periods[1] == pytest.approx(3965)
    assert periods[-1] == pytest.approx(4000 - 51 * 35)
    assert list(glitch) == periods
    with pytest.raises(ValueError):
        glitch.period_at_step(52)


def test_glitch_generator_validation():
    with pytest.raises(ValueError):
        ClockGlitchGenerator(start_period_ps=0)
    with pytest.raises(ValueError):
        ClockGlitchGenerator(start_period_ps=100, step_ps=35, num_steps=51)
    with pytest.raises(ValueError):
        ClockGlitchGenerator(start_period_ps=4000, step_ps=0)


def test_steps_to_violate_monotone_in_requirement():
    glitch = ClockGlitchGenerator(start_period_ps=4000, step_ps=35, num_steps=51)
    early = glitch.steps_to_violate(3990)
    late = glitch.steps_to_violate(2500)
    assert early < late
    assert glitch.steps_to_violate(5000) == 0
    assert glitch.steps_to_violate(10.0) == glitch.num_steps + 1
    with pytest.raises(ValueError):
        glitch.steps_to_violate(0)


def test_calibrated_glitch_covers_worst_path():
    budget = TimingBudget()
    glitch = ClockGlitchGenerator.calibrated(worst_path_ps=3000, budget=budget,
                                             margin_steps=5)
    required = budget.required_period_ps(3000)
    assert glitch.start_period_ps == pytest.approx(required + 5 * glitch.step_ps)
    # The worst path violates within the sweep but not at step 0.
    step = glitch.steps_to_violate(required)
    assert 0 < step <= glitch.num_steps


def test_delay_noise_model(rng):
    model = DelayNoiseModel(sigma_ps=10.0)
    samples = model.sample(rng, (5, 4))
    assert samples.shape == (5, 4)
    silent = DelayNoiseModel(sigma_ps=0.0).sample(rng, 8)
    assert np.all(silent == 0)
    with pytest.raises(ValueError):
        DelayNoiseModel(sigma_ps=-1)


def test_em_noise_model_averaging(rng):
    model = EMNoiseModel(sigma_single_shot=1000.0)
    assert model.averaged_sigma(100) == pytest.approx(100.0)
    trace_noise = model.sample_averaged(rng, 500, 100)
    assert trace_noise.shape == (500,)
    assert 50 < trace_noise.std() < 200
    with pytest.raises(ValueError):
        model.averaged_sigma(0)
    gain, offset = model.sample_setup_perturbation(rng)
    assert 0.9 < gain < 1.1
    assert abs(offset) < 200


def test_em_noise_model_validation():
    with pytest.raises(ValueError):
        EMNoiseModel(sigma_single_shot=-1)
    with pytest.raises(ValueError):
        EMNoiseModel(setup_gain_sigma=-0.1)
