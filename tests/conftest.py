"""Shared fixtures.

The expensive objects (the LUT-mapped golden design, the detection
platform, the campaign results) are built once per test session: they
are deterministic, and most tests only read them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.experiments.config import FIXED_KEY, FIXED_PLAINTEXT, ExperimentConfig
from repro.fpga.design import GoldenDesign
from repro.fpga.device import virtex5_lx30
from repro.measurement.delay_meter import DelayMeasurementConfig, generate_pk_pairs
from repro.trojan.combinational import build_combinational_trojan
from repro.trojan.insertion import insert_trojan
from repro.trojan.library import build_trojan
from repro.trojan.sequential import build_sequential_trojan
from repro.variation.inter_die import DiePopulation


@pytest.fixture(scope="session")
def device():
    return virtex5_lx30()


@pytest.fixture(scope="session")
def golden_design(device):
    return GoldenDesign.build(device=device)


@pytest.fixture(scope="session")
def small_trojan():
    """A small combinational trojan (8-bit trigger, no padding) for unit tests."""
    return build_combinational_trojan("HT_test", trigger_width=8, payload_luts=2)


@pytest.fixture(scope="session")
def sequential_trojan():
    """A small sequential trojan (8-bit counter) for unit tests."""
    return build_sequential_trojan("HT_seq_test", counter_width=8, payload_luts=2)


@pytest.fixture(scope="session")
def ht_comb(device):
    return build_trojan("HT_comb", device)


@pytest.fixture(scope="session")
def infected_design(golden_design, ht_comb):
    return insert_trojan(golden_design, ht_comb)


@pytest.fixture(scope="session")
def die_population():
    return DiePopulation(size=4, seed=99)


@pytest.fixture(scope="session")
def fast_config():
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def platform(golden_design):
    """A reduced but fully functional detection platform."""
    config = PlatformConfig(
        num_dies=4,
        seed=2015,
        delay=DelayMeasurementConfig(repetitions=5, seed=2015),
    )
    return HTDetectionPlatform(config=config, golden=golden_design)


@pytest.fixture(scope="session")
def pk_pairs():
    return generate_pk_pairs(3, seed=7)


@pytest.fixture(scope="session")
def delay_study(platform):
    """A small Sec. III campaign shared by the delay-detection tests."""
    return platform.run_delay_study(
        trojan_names=("HT_comb", "HT_seq"), num_pairs=3
    )


@pytest.fixture(scope="session")
def population_study(platform):
    """A small Sec. V campaign shared by the EM-detection tests."""
    return platform.run_population_em_study(
        trojan_names=("HT1", "HT3"),
        plaintext=FIXED_PLAINTEXT,
        key=FIXED_KEY,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
