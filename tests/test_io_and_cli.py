"""Tests for trace/result persistence and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io.results import load_result, save_result, to_jsonable
from repro.io.tracefile import load_traces, save_traces
from repro.measurement.em_simulator import EMTrace


def make_trace(label: str, seed: int) -> EMTrace:
    rng = np.random.default_rng(seed)
    return EMTrace(
        samples=rng.normal(0, 100, 256),
        label=label,
        plaintext=bytes(range(16)),
        sample_period_ns=0.2,
    )


def test_save_and_load_traces_round_trip(tmp_path):
    traces = [make_trace("golden", 1), make_trace("infected", 2)]
    path = save_traces(tmp_path / "campaign", traces)
    assert path.suffix == ".npz"
    loaded = load_traces(path)
    assert len(loaded) == 2
    assert loaded[0].label == "golden"
    assert loaded[1].plaintext == bytes(range(16))
    assert np.allclose(loaded[0].samples, traces[0].samples)
    assert loaded[0].sample_period_ns == pytest.approx(0.2)


def test_save_traces_validation(tmp_path):
    with pytest.raises(ValueError):
        save_traces(tmp_path / "x.npz", [])
    bad = [make_trace("a", 1), EMTrace(np.zeros(10), "b", bytes(16), 0.2)]
    with pytest.raises(ValueError):
        save_traces(tmp_path / "y.npz", bad)


def test_load_traces_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_traces(tmp_path / "missing.npz")


def test_to_jsonable_handles_numpy_and_dataclasses(population_study):
    payload = to_jsonable(population_study.characterisations["HT1"])
    assert isinstance(payload, dict)
    assert isinstance(payload["false_negative_rate"], float)
    assert to_jsonable(np.float64(1.5)) == 1.5
    assert to_jsonable(np.array([1, 2])) == [1, 2]
    assert to_jsonable(b"\x01\x02") == "0102"
    assert to_jsonable({"k": (1, 2)}) == {"k": [1, 2]}


def test_save_and_load_result_round_trip(tmp_path, population_study):
    path = save_result(tmp_path / "headline",
                       population_study.false_negative_rates())
    assert path.suffix == ".json"
    loaded = load_result(path)
    assert set(loaded) == {"HT1", "HT3"}
    # The file is valid JSON.
    json.loads(path.read_text())
    with pytest.raises(FileNotFoundError):
        load_result(tmp_path / "missing.json")


def test_cli_parser_has_all_subcommands():
    parser = build_parser()
    for command in ("trojans", "delay", "em", "headline", "experiments"):
        args = parser.parse_args([command, "--quick"])
        assert args.command == command
        assert args.quick


def test_cli_trojans_command(capsys):
    exit_code = main(["trojans", "--quick"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "HT3" in output
    assert "% of AES" in output


def test_cli_delay_command(capsys):
    exit_code = main(["delay", "--quick", "--trojan", "HT_comb"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Delay-based detection" in output
    assert "HT_comb" in output


def test_cli_em_command(capsys):
    exit_code = main(["em", "--quick"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Same-die EM detection" in output
