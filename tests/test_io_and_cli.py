"""Tests for trace/result persistence and the command-line interface."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import build_parser, main
from repro.io.results import load_result, save_result, to_jsonable
from repro.io.tracefile import load_traces, save_traces
from repro.measurement.em_simulator import EMTrace


def make_trace(label: str, seed: int) -> EMTrace:
    rng = np.random.default_rng(seed)
    return EMTrace(
        samples=rng.normal(0, 100, 256),
        label=label,
        plaintext=bytes(range(16)),
        sample_period_ns=0.2,
    )


def test_save_and_load_traces_round_trip(tmp_path):
    traces = [make_trace("golden", 1), make_trace("infected", 2)]
    path = save_traces(tmp_path / "campaign", traces)
    assert path.suffix == ".npz"
    loaded = load_traces(path)
    assert len(loaded) == 2
    assert loaded[0].label == "golden"
    assert loaded[1].plaintext == bytes(range(16))
    assert np.allclose(loaded[0].samples, traces[0].samples)
    assert loaded[0].sample_period_ns == pytest.approx(0.2)


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    num_traces=st.integers(1, 4),
    num_samples=st.integers(1, 64),
    dtype=st.sampled_from([np.float64, np.float32]),
)
def test_trace_round_trip_is_lossless(tmp_path_factory, data, num_traces,
                                      num_samples, dtype):
    """Every EMTrace field survives save/load bit-for-bit.

    Pins the v1 lossiness fix: sample dtype is preserved and
    ``cycle_sample_offsets`` — including ragged, per-trace lengths — is
    no longer dropped on save.
    """
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    traces = []
    for index in range(num_traces):
        num_offsets = data.draw(st.integers(0, 8))
        traces.append(EMTrace(
            samples=rng.normal(0, 100, num_samples).astype(dtype),
            label=data.draw(st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1, max_size=12)),
            plaintext=bytes(rng.integers(0, 256, 16, dtype=np.uint8)),
            sample_period_ns=float(data.draw(st.floats(
                1e-3, 10.0, allow_nan=False, allow_infinity=False))),
            cycle_sample_offsets=[int(v) for v in
                                  rng.integers(0, 4096, num_offsets)],
        ))
    path = tmp_path_factory.mktemp("traces") / "round_trip.npz"
    loaded = load_traces(save_traces(path, traces))
    assert len(loaded) == len(traces)
    for original, copy in zip(traces, loaded):
        assert copy.samples.dtype == original.samples.dtype
        assert copy.samples.tobytes() == original.samples.tobytes()
        assert copy.label == original.label
        assert copy.plaintext == original.plaintext
        assert copy.sample_period_ns == original.sample_period_ns
        assert copy.cycle_sample_offsets == original.cycle_sample_offsets


def test_v1_archives_still_load(tmp_path):
    """Archives written before the offsets fix load with empty offsets."""
    traces = [make_trace("legacy", 5)]
    path = tmp_path / "legacy.npz"
    np.savez_compressed(
        path,
        format_version=np.array(1),
        samples=np.vstack([traces[0].samples]),
        labels=np.array(["legacy"]),
        plaintexts=np.array([traces[0].plaintext.hex()]),
        sample_period_ns=np.array([0.2]),
    )
    loaded = load_traces(path)
    assert loaded[0].label == "legacy"
    assert loaded[0].cycle_sample_offsets == []
    assert np.array_equal(loaded[0].samples, traces[0].samples)


def test_unknown_version_rejected(tmp_path):
    path = tmp_path / "future.npz"
    np.savez_compressed(path, format_version=np.array(99),
                        samples=np.zeros((1, 4)))
    with pytest.raises(ValueError, match="version 99"):
        load_traces(path)


def test_save_traces_validation(tmp_path):
    with pytest.raises(ValueError):
        save_traces(tmp_path / "x.npz", [])
    bad = [make_trace("a", 1), EMTrace(np.zeros(10), "b", bytes(16), 0.2)]
    with pytest.raises(ValueError):
        save_traces(tmp_path / "y.npz", bad)


def test_load_traces_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_traces(tmp_path / "missing.npz")


def test_to_jsonable_handles_numpy_and_dataclasses(population_study):
    payload = to_jsonable(population_study.characterisations["HT1"])
    assert isinstance(payload, dict)
    assert isinstance(payload["false_negative_rate"], float)
    assert to_jsonable(np.float64(1.5)) == 1.5
    assert to_jsonable(np.array([1, 2])) == [1, 2]
    assert to_jsonable(b"\x01\x02") == "0102"
    assert to_jsonable({"k": (1, 2)}) == {"k": [1, 2]}


def test_save_and_load_result_round_trip(tmp_path, population_study):
    path = save_result(tmp_path / "headline",
                       population_study.false_negative_rates())
    assert path.suffix == ".json"
    loaded = load_result(path)
    assert set(loaded) == {"HT1", "HT3"}
    # The file is valid JSON.
    json.loads(path.read_text())
    with pytest.raises(FileNotFoundError):
        load_result(tmp_path / "missing.json")


def test_cli_parser_has_all_subcommands():
    parser = build_parser()
    for command in ("trojans", "delay", "em", "headline", "experiments"):
        args = parser.parse_args([command, "--quick"])
        assert args.command == command
        assert args.quick


def test_cli_parser_campaign_store_and_shard_flags():
    parser = build_parser()
    args = parser.parse_args(["campaign", "run", "--store", "artifacts",
                              "--shard", "1/4"])
    assert args.store == "artifacts"
    assert args.shard == (1, 4)
    assert args.backend is None
    args = parser.parse_args(["campaign", "run", "--backend", "bitslice"])
    assert args.backend == "bitslice"
    with pytest.raises(SystemExit):
        parser.parse_args(["campaign", "run", "--backend", "vulkan"])
    args = parser.parse_args(["campaign", "merge", "a", "b", "--out", "m"])
    assert args.shards == ["a", "b"] and args.out == "m"
    for bad_shard in ("2/2", "x/2", "1", "-1/2", "1/0"):
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "run", "--shard", bad_shard])


def test_cli_trojans_command(capsys):
    exit_code = main(["trojans", "--quick"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "HT3" in output
    assert "% of AES" in output


def test_cli_delay_command(capsys):
    exit_code = main(["delay", "--quick", "--trojan", "HT_comb"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Delay-based detection" in output
    assert "HT_comb" in output


def test_cli_em_command(capsys):
    exit_code = main(["em", "--quick"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Same-die EM detection" in output
