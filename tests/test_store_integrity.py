"""Store integrity: digests, quarantine, fsck/gc and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.cli import main
from repro.store import (
    ArtifactStore,
    STORE_FORMAT_VERSION,
    StoreIntegrityError,
    stable_key,
)


def _corrupt_object(store: ArtifactStore, key: str,
                    data: bytes = b"torn garbage") -> None:
    """Overwrite a stored object's payload behind the manifest's back."""
    entry = store.entry(key)
    (store.objects_dir / entry.filename).write_bytes(data)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# -- digests ------------------------------------------------------------------


def test_manifest_entries_record_payload_digests(store):
    json_entry = store.put_json(stable_key({"k": "j"}), {"value": 1})
    npz_entry = store.put_arrays(stable_key({"k": "n"}),
                                 {"x": np.arange(4.0)})
    for entry in (json_entry, npz_entry):
        assert entry.digest is not None
        assert len(entry.digest) == 64
        assert entry.to_dict()["format_version"] == STORE_FORMAT_VERSION
    assert json_entry.digest != npz_entry.digest


def test_corrupt_json_object_is_quarantined_never_returned(store):
    key = stable_key({"payload": "json"})
    store.put_json(key, {"value": 42})
    _corrupt_object(store, key)
    with pytest.raises(StoreIntegrityError) as excinfo:
        store.get_json(key)
    message = str(excinfo.value)
    assert key in message and f"{key}.json" in message
    # The corrupt object was moved aside and the key is a clean miss.
    assert key not in store
    assert (store.quarantine_dir / f"{key}.json").exists()
    assert not (store.objects_dir / f"{key}.json").exists()
    # Recomputing (re-putting) makes the key whole again.
    store.put_json(key, {"value": 42})
    assert store.get_json(key) == {"value": 42}


def test_truncated_npz_object_is_quarantined_never_returned(store):
    key = stable_key({"payload": "npz"})
    store.put_arrays(key, {"x": np.arange(100.0)})
    full = (store.objects_dir / f"{key}.npz").read_bytes()
    _corrupt_object(store, key, full[:len(full) // 2])
    with pytest.raises(StoreIntegrityError) as excinfo:
        store.get_arrays(key)
    assert key in str(excinfo.value)
    assert key not in store
    assert (store.quarantine_dir / f"{key}.npz").exists()


def test_unparseable_payload_with_legacy_entry_raises_integrity_error(store):
    """Format-v1 entries (no digest) still never leak raw parse errors."""
    key = stable_key({"payload": "legacy"})
    store.put_json(key, {"value": 1})
    manifest_path = store.manifest_dir / f"{key}.json"
    payload = json.loads(manifest_path.read_text())
    del payload["digest"]
    manifest_path.write_text(json.dumps(payload))
    _corrupt_object(store, key, b"{not json")
    with pytest.raises(StoreIntegrityError):
        store.get_json(key)
    assert key not in store


def test_load_helpers_fold_miss_and_corruption_into_none(store):
    key = stable_key({"payload": "load"})
    assert store.load_json(key) is None
    assert store.load_arrays(key) is None
    store.put_json(key, {"value": 2})
    assert store.load_json(key) == {"value": 2}
    _corrupt_object(store, key)
    assert store.load_json(key) is None
    assert (store.quarantine_dir / f"{key}.json").exists()


# -- fsck / gc ----------------------------------------------------------------


def test_fsck_clean_store(store):
    store.put_json(stable_key({"a": 1}), {"v": 1})
    store.put_arrays(stable_key({"a": 2}), {"x": np.zeros(3)})
    report = store.fsck()
    assert report.clean()
    assert len(report.ok) == 2
    assert "store is clean" in report.summary()


def test_fsck_finds_and_repairs_every_failure_mode(store):
    ok_key = stable_key({"keep": 1})
    store.put_json(ok_key, {"v": 1})
    corrupt_key = stable_key({"corrupt": 1})
    store.put_json(corrupt_key, {"v": 2})
    _corrupt_object(store, corrupt_key)
    dangling_key = stable_key({"dangling": 1})
    store.put_json(dangling_key, {"v": 3})
    (store.objects_dir / f"{dangling_key}.json").unlink()
    unreadable_key = stable_key({"unreadable": 1})
    store.put_json(unreadable_key, {"v": 4})
    (store.manifest_dir / f"{unreadable_key}.json").write_text("{torn")
    (store.objects_dir / "orphan.json").write_text("{}")
    (store.objects_dir / ".stray.json.abc.tmp").write_text("partial")

    report = store.fsck()
    assert not report.clean()
    assert report.ok == [ok_key]
    assert report.corrupt == [corrupt_key]
    assert report.missing_objects == [dangling_key]
    assert report.unreadable_manifests == [unreadable_key]
    assert report.orphan_objects == ["orphan.json"]
    assert len(report.stray_tmp) == 1
    assert "corrupt" in report.summary()

    repaired = store.fsck(repair=True)
    assert repaired.corrupt == [corrupt_key]
    assert (store.quarantine_dir / f"{corrupt_key}.json").exists()
    after = store.fsck()
    # Orphans are left for gc (a live writer may not have recorded its
    # manifest entry yet); everything else is repaired.
    assert after.corrupt == [] and after.missing_objects == []
    assert after.unreadable_manifests == [] and after.stray_tmp == []
    assert after.orphan_objects == ["orphan.json"]
    assert store.get_json(ok_key) == {"v": 1}


def test_sweep_tmp_age_guard(store):
    stray = store.objects_dir / ".payload.json.xyz.tmp"
    stray.write_text("partial")
    assert store.sweep_tmp(older_than_s=3600.0) == []
    assert stray.exists()
    assert store.sweep_tmp(older_than_s=0.0) == [stray]
    assert not stray.exists()


def test_gc_sweeps_orphans_tmp_and_quarantine(store):
    kept = stable_key({"keep": 1})
    store.put_json(kept, {"v": 1})
    (store.objects_dir / "orphan.npz").write_bytes(b"junk")
    (store.objects_dir / ".x.json.abc.tmp").write_text("partial")
    corrupt = stable_key({"corrupt": 1})
    store.put_json(corrupt, {"v": 2})
    _corrupt_object(store, corrupt)
    assert store.load_json(corrupt) is None  # quarantines

    removed = store.gc(tmp_older_than_s=0.0, purge_quarantine=True)
    assert removed == {"orphan_objects": 1, "stray_tmp": 1, "quarantined": 1}
    assert store.get_json(kept) == {"v": 1}
    assert not (store.objects_dir / "orphan.npz").exists()
    assert not any(store.quarantine_dir.iterdir())


# -- discard ------------------------------------------------------------------


def test_discard_removes_object_despite_unreadable_manifest(store):
    """Regression: a torn manifest entry must not leak the object forever."""
    key = stable_key({"discard": "me"})
    store.put_arrays(key, {"x": np.arange(3.0)})
    (store.manifest_dir / f"{key}.json").write_text("{torn")
    assert store.entry(key) is None
    assert store.discard(key)
    assert not (store.objects_dir / f"{key}.npz").exists()
    assert not (store.manifest_dir / f"{key}.json").exists()
    assert store.fsck().clean()


def test_discard_removes_entry_and_both_candidate_objects(store):
    key = stable_key({"discard": "both"})
    store.put_json(key, {"v": 1})
    assert store.discard(key)
    assert key not in store
    assert not store.discard(key)


# -- engine read-through ------------------------------------------------------


def test_engine_recomputes_through_corrupted_artifacts(tmp_path):
    """A torn store artifact costs a recompute, never a crashed campaign."""
    spec = CampaignSpec(name="integrity", trojans=("HT1",), die_counts=(2,),
                        metrics=("local_maxima_sum",), seed=11)
    store_root = tmp_path / "store"
    first = CampaignEngine(spec, store=store_root).run()
    store = ArtifactStore(store_root)
    keys = list(store.keys())
    assert keys
    for key in keys:
        _corrupt_object(store, key)
    again = CampaignEngine(spec, store=store_root).run()
    assert [row.to_dict() for row in again.rows()] == \
        [row.to_dict() for row in first.rows()]
    # Every corrupted object was quarantined on read and recomputed.
    assert store.fsck().clean()
    assert len(list(store.quarantine_dir.iterdir())) == len(keys)


# -- CLI ----------------------------------------------------------------------


def test_cli_store_fsck_and_gc(tmp_path, capsys):
    store = ArtifactStore(tmp_path / "store")
    good = stable_key({"cli": "good"})
    store.put_json(good, {"v": 1})
    bad = stable_key({"cli": "bad"})
    store.put_json(bad, {"v": 2})
    _corrupt_object(store, bad)
    (store.objects_dir / "orphan.json").write_text("{}")

    assert main(["store", "fsck", str(store.root)]) == 1
    out = capsys.readouterr().out
    assert "1 corrupt" in out and bad in out

    assert main(["store", "fsck", str(store.root), "--repair"]) == 1
    capsys.readouterr()
    assert (store.quarantine_dir / f"{bad}.json").exists()

    assert main(["store", "gc", str(store.root), "--tmp-age", "0",
                 "--purge-quarantine"]) == 0
    out = capsys.readouterr().out
    assert "1 orphan object(s)" in out and "1 quarantined" in out

    assert main(["store", "fsck", str(store.root)]) == 0
    assert "store is clean" in capsys.readouterr().out


def test_cli_store_fsck_missing_directory(tmp_path, capsys):
    assert main(["store", "fsck", str(tmp_path / "nope")]) == 2
    assert "does not exist" in capsys.readouterr().err
    assert main(["store", "gc", str(tmp_path / "nope")]) == 2
