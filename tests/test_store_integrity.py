"""Store integrity: digests, quarantine, fsck/gc and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.cli import main
from repro.store import (
    ArtifactStore,
    STORE_FORMAT_VERSION,
    StoreIntegrityError,
    stable_key,
)


def _corrupt_object(store: ArtifactStore, key: str,
                    data: bytes = b"torn garbage") -> None:
    """Overwrite a stored object's payload behind the manifest's back."""
    entry = store.entry(key)
    (store.objects_dir / entry.filename).write_bytes(data)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# -- digests ------------------------------------------------------------------


def test_manifest_entries_record_payload_digests(store):
    json_entry = store.put_json(stable_key({"k": "j"}), {"value": 1})
    npz_entry = store.put_arrays(stable_key({"k": "n"}),
                                 {"x": np.arange(4.0)})
    for entry in (json_entry, npz_entry):
        assert entry.digest is not None
        assert len(entry.digest) == 64
        assert entry.to_dict()["format_version"] == STORE_FORMAT_VERSION
    assert json_entry.digest != npz_entry.digest


def test_corrupt_json_object_is_quarantined_never_returned(store):
    key = stable_key({"payload": "json"})
    store.put_json(key, {"value": 42})
    _corrupt_object(store, key)
    with pytest.raises(StoreIntegrityError) as excinfo:
        store.get_json(key)
    message = str(excinfo.value)
    assert key in message and f"{key}.json" in message
    # The corrupt object was moved aside and the key is a clean miss.
    assert key not in store
    assert (store.quarantine_dir / f"{key}.json").exists()
    assert not (store.objects_dir / f"{key}.json").exists()
    # Recomputing (re-putting) makes the key whole again.
    store.put_json(key, {"value": 42})
    assert store.get_json(key) == {"value": 42}


def test_truncated_npz_object_is_quarantined_never_returned(store):
    key = stable_key({"payload": "npz"})
    store.put_arrays(key, {"x": np.arange(100.0)})
    full = (store.objects_dir / f"{key}.npz").read_bytes()
    _corrupt_object(store, key, full[:len(full) // 2])
    with pytest.raises(StoreIntegrityError) as excinfo:
        store.get_arrays(key)
    assert key in str(excinfo.value)
    assert key not in store
    assert (store.quarantine_dir / f"{key}.npz").exists()


def test_unparseable_payload_with_legacy_entry_raises_integrity_error(store):
    """Format-v1 entries (no digest) still never leak raw parse errors."""
    key = stable_key({"payload": "legacy"})
    store.put_json(key, {"value": 1})
    manifest_path = store.manifest_dir / f"{key}.json"
    payload = json.loads(manifest_path.read_text())
    del payload["digest"]
    manifest_path.write_text(json.dumps(payload))
    _corrupt_object(store, key, b"{not json")
    with pytest.raises(StoreIntegrityError):
        store.get_json(key)
    assert key not in store


def test_load_helpers_fold_miss_and_corruption_into_none(store):
    key = stable_key({"payload": "load"})
    assert store.load_json(key) is None
    assert store.load_arrays(key) is None
    store.put_json(key, {"value": 2})
    assert store.load_json(key) == {"value": 2}
    _corrupt_object(store, key)
    assert store.load_json(key) is None
    assert (store.quarantine_dir / f"{key}.json").exists()


# -- fsck / gc ----------------------------------------------------------------


def test_fsck_clean_store(store):
    store.put_json(stable_key({"a": 1}), {"v": 1})
    store.put_arrays(stable_key({"a": 2}), {"x": np.zeros(3)})
    report = store.fsck()
    assert report.clean()
    assert len(report.ok) == 2
    assert "store is clean" in report.summary()


def test_fsck_finds_and_repairs_every_failure_mode(store):
    ok_key = stable_key({"keep": 1})
    store.put_json(ok_key, {"v": 1})
    corrupt_key = stable_key({"corrupt": 1})
    store.put_json(corrupt_key, {"v": 2})
    _corrupt_object(store, corrupt_key)
    dangling_key = stable_key({"dangling": 1})
    store.put_json(dangling_key, {"v": 3})
    (store.objects_dir / f"{dangling_key}.json").unlink()
    unreadable_key = stable_key({"unreadable": 1})
    store.put_json(unreadable_key, {"v": 4})
    (store.manifest_dir / f"{unreadable_key}.json").write_text("{torn")
    (store.objects_dir / "orphan.json").write_text("{}")
    (store.objects_dir / ".stray.json.abc.tmp").write_text("partial")

    report = store.fsck()
    assert not report.clean()
    assert report.ok == [ok_key]
    assert report.corrupt == [corrupt_key]
    assert report.missing_objects == [dangling_key]
    assert report.unreadable_manifests == [unreadable_key]
    assert report.orphan_objects == ["orphan.json"]
    assert len(report.stray_tmp) == 1
    assert "corrupt" in report.summary()

    repaired = store.fsck(repair=True)
    assert repaired.corrupt == [corrupt_key]
    assert (store.quarantine_dir / f"{corrupt_key}.json").exists()
    # The torn manifest's object was intact, so the manifest is rebuilt
    # from it instead of the work being discarded.
    assert repaired.rebuilt_manifests == [unreadable_key]
    assert repaired.unreadable_manifests == []
    # The orphan has no live lease covering it: removed, not deferred.
    assert repaired.orphan_objects == ["orphan.json"]
    assert not (store.objects_dir / "orphan.json").exists()
    after = store.fsck()
    assert after.clean()
    assert after.corrupt == [] and after.missing_objects == []
    assert after.unreadable_manifests == [] and after.stray_tmp == []
    assert after.orphan_objects == []
    assert store.get_json(ok_key) == {"v": 1}
    assert store.get_json(unreadable_key) == {"v": 4}
    assert store.entry(unreadable_key).meta.get("rebuilt") is True


def test_sweep_tmp_age_guard(store):
    stray = store.objects_dir / ".payload.json.xyz.tmp"
    stray.write_text("partial")
    assert store.sweep_tmp(older_than_s=3600.0) == []
    assert stray.exists()
    assert store.sweep_tmp(older_than_s=0.0) == [stray]
    assert not stray.exists()


def test_gc_sweeps_orphans_tmp_and_quarantine(store):
    kept = stable_key({"keep": 1})
    store.put_json(kept, {"v": 1})
    (store.objects_dir / "orphan.npz").write_bytes(b"junk")
    (store.objects_dir / ".x.json.abc.tmp").write_text("partial")
    corrupt = stable_key({"corrupt": 1})
    store.put_json(corrupt, {"v": 2})
    _corrupt_object(store, corrupt)
    assert store.load_json(corrupt) is None  # quarantines

    removed = store.gc(tmp_older_than_s=0.0, purge_quarantine=True)
    assert removed["orphan_objects"] == 1
    assert removed["stray_tmp"] == 1
    assert removed["quarantined"] == 1
    assert removed["live_leases"] == []
    assert store.get_json(kept) == {"v": 1}
    assert not (store.objects_dir / "orphan.npz").exists()
    assert not any(store.quarantine_dir.iterdir())


def test_fsck_repair_is_idempotent(store):
    """A second repair pass over the same store reports all-clean."""
    store.put_json(stable_key({"keep": "idem"}), {"v": 1})
    corrupt = stable_key({"corrupt": "idem"})
    store.put_json(corrupt, {"v": 2})
    _corrupt_object(store, corrupt)
    torn = stable_key({"torn": "idem"})
    store.put_json(torn, {"v": 3})
    (store.manifest_dir / f"{torn}.json").write_text("{torn")
    (store.objects_dir / "orphan.json").write_text("{}")
    (store.objects_dir / ".stray.json.abc.tmp").write_text("partial")

    first = store.fsck(repair=True)
    assert not first.clean()
    second = store.fsck(repair=True)
    assert second.clean()
    assert second.corrupt == [] and second.orphan_objects == []
    assert second.rebuilt_manifests == [] and second.stray_tmp == []
    # Two verified keys: the untouched one and the rebuilt one.
    assert len(second.ok) == 2


def test_repeated_corruption_keeps_every_quarantined_payload(store):
    """Quarantining the same key twice must not clobber the first payload."""
    key = stable_key({"quarantine": "repeat"})
    store.put_json(key, {"v": 1})
    _corrupt_object(store, key, b"first corruption")
    assert store.load_json(key) is None
    store.put_json(key, {"v": 1})
    _corrupt_object(store, key, b"second corruption")
    assert store.load_json(key) is None
    first = store.quarantine_dir / f"{key}.json"
    second = store.quarantine_dir / f"{key}.json.1"
    assert first.read_bytes() == b"first corruption"
    assert second.read_bytes() == b"second corruption"


def test_read_vs_discard_race_is_a_clean_miss(store, monkeypatch):
    """An object vanishing between the manifest read and the payload read
    (concurrent discard/gc) must be a miss, not a raw FileNotFoundError."""
    key = stable_key({"race": "read"})
    store.put_json(key, {"v": 7})
    stale_entry = store.entry(key)
    (store.objects_dir / stale_entry.filename).unlink()
    # Freeze the manifest view at the pre-delete entry: this is exactly
    # what a reader that parsed the manifest just before the discard sees.
    monkeypatch.setattr(store, "entry", lambda _key: stale_entry)
    with pytest.raises(KeyError):
        store.get_json(key)
    assert store.load_json(key) is None
    assert store.load_arrays(key) is None


def test_manifest_entry_tolerates_unknown_extra_fields():
    """Entries written by a newer store stay readable by this code."""
    from repro.store import ManifestEntry

    payload = {"format_version": STORE_FORMAT_VERSION + 1, "key": "k",
               "kind": "json", "filename": "k.json", "meta": {"a": 1},
               "digest": "0" * 64,
               "compression": "zstd", "shards": [1, 2, 3]}
    entry = ManifestEntry.from_dict(payload)
    assert entry.key == "k" and entry.filename == "k.json"
    assert entry.meta == {"a": 1} and entry.digest == "0" * 64


# -- discard ------------------------------------------------------------------


def test_discard_removes_object_despite_unreadable_manifest(store):
    """Regression: a torn manifest entry must not leak the object forever."""
    key = stable_key({"discard": "me"})
    store.put_arrays(key, {"x": np.arange(3.0)})
    (store.manifest_dir / f"{key}.json").write_text("{torn")
    assert store.entry(key) is None
    assert store.discard(key)
    assert not (store.objects_dir / f"{key}.npz").exists()
    assert not (store.manifest_dir / f"{key}.json").exists()
    assert store.fsck().clean()


def test_discard_removes_entry_and_both_candidate_objects(store):
    key = stable_key({"discard": "both"})
    store.put_json(key, {"v": 1})
    assert store.discard(key)
    assert key not in store
    assert not store.discard(key)


# -- engine read-through ------------------------------------------------------


def test_engine_recomputes_through_corrupted_artifacts(tmp_path):
    """A torn store artifact costs a recompute, never a crashed campaign."""
    spec = CampaignSpec(name="integrity", trojans=("HT1",), die_counts=(2,),
                        metrics=("local_maxima_sum",), seed=11)
    store_root = tmp_path / "store"
    first = CampaignEngine(spec, store=store_root).run()
    store = ArtifactStore(store_root)
    keys = list(store.keys())
    assert keys
    for key in keys:
        _corrupt_object(store, key)
    again = CampaignEngine(spec, store=store_root).run()
    assert [row.to_dict() for row in again.rows()] == \
        [row.to_dict() for row in first.rows()]
    # Every corrupted object was quarantined on read and recomputed.
    assert store.fsck().clean()
    assert len(list(store.quarantine_dir.iterdir())) == len(keys)


# -- CLI ----------------------------------------------------------------------


def test_cli_store_fsck_and_gc(tmp_path, capsys):
    store = ArtifactStore(tmp_path / "store")
    good = stable_key({"cli": "good"})
    store.put_json(good, {"v": 1})
    bad = stable_key({"cli": "bad"})
    store.put_json(bad, {"v": 2})
    _corrupt_object(store, bad)
    (store.objects_dir / "orphan.json").write_text("{}")

    assert main(["store", "fsck", str(store.root)]) == 1
    out = capsys.readouterr().out
    assert "1 corrupt" in out and bad in out

    assert main(["store", "fsck", str(store.root), "--repair"]) == 1
    capsys.readouterr()
    assert (store.quarantine_dir / f"{bad}.json").exists()
    # Repair also removed the unleased orphan.
    assert not (store.objects_dir / "orphan.json").exists()

    assert main(["store", "gc", str(store.root), "--tmp-age", "0",
                 "--purge-quarantine"]) == 0
    out = capsys.readouterr().out
    assert "0 orphan object(s)" in out and "1 quarantined" in out

    assert main(["store", "fsck", str(store.root)]) == 0
    assert "store is clean" in capsys.readouterr().out


def test_cli_store_fsck_missing_directory(tmp_path, capsys):
    assert main(["store", "fsck", str(tmp_path / "nope")]) == 2
    assert "does not exist" in capsys.readouterr().err
    assert main(["store", "gc", str(tmp_path / "nope")]) == 2


# -- fresh / partially-materialised stores (regression) -----------------------


def test_fsck_repair_no_ops_cleanly_on_fresh_store(tmp_path, capsys):
    """``store fsck --repair`` on an empty, fresh store is a clean no-op."""
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    assert main(["store", "fsck", str(fresh), "--repair"]) == 0
    assert "store is clean" in capsys.readouterr().out
    assert main(["store", "gc", str(fresh)]) == 0


def test_fsck_and_gc_survive_missing_store_subdirectories(tmp_path):
    """Maintenance must audit a store whose objects/ or manifest/
    directory vanished (purge racing maintenance, partial copy) as
    empty — not crash with FileNotFoundError."""
    import shutil

    store = ArtifactStore(tmp_path / "store")
    shutil.rmtree(store.objects_dir)
    report = store.fsck(repair=True)
    assert report.clean()
    removed = store.gc()
    assert removed["orphan_objects"] == 0 and removed["stray_tmp"] == 0

    shutil.rmtree(store.manifest_dir)
    report = store.fsck(repair=True)
    assert report.clean()
    assert store.gc()["orphan_objects"] == 0
    # The store still works afterwards: a put recreates what it needs.
    store.manifest_dir.mkdir(parents=True, exist_ok=True)
    store.objects_dir.mkdir(parents=True, exist_ok=True)
    key = stable_key({"fresh": True})
    store.put_json(key, {"v": 1})
    assert store.load_json(key) == {"v": 1}
