"""Unit tests for the timing engine."""

import pytest

from repro.netlist.cells import make_dff, make_lut, make_xor
from repro.netlist.netlist import Netlist
from repro.netlist.timing import (
    DEFAULT_NET_DELAY_PS,
    DelayAnnotation,
    TimingEngine,
)


def build_chain() -> Netlist:
    """a -> xor1 -> xor2 -> DFF, with b as the other xor input."""
    netlist = Netlist("chain")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_cell(make_xor("x1", "a", "b", "n1"))
    netlist.add_cell(make_xor("x2", "n1", "b", "n2"))
    netlist.add_cell(make_dff("reg", "n2", "q"))
    netlist.add_output("q")
    return netlist


def test_annotation_defaults_and_offsets():
    annotation = DelayAnnotation()
    cell = make_xor("x", "a", "b", "y")
    base = annotation.cell_delay_ps(cell)
    assert base > 0
    annotation.add_cell_offset("x", 10.0)
    assert annotation.cell_delay_ps(cell) == pytest.approx(base + 10.0)
    annotation.add_net_delay("a", 5.0)
    assert annotation.net_delay_ps("a") == pytest.approx(DEFAULT_NET_DELAY_PS + 5.0)
    assert annotation.net_delay_ps("unknown") == DEFAULT_NET_DELAY_PS


def test_annotation_scale_and_clamping():
    cell = make_xor("x", "a", "b", "y")
    annotation = DelayAnnotation(cell_scale=2.0)
    assert annotation.cell_delay_ps(cell) == pytest.approx(
        2.0 * cell.intrinsic_delay_ps()
    )
    negative = DelayAnnotation(cell_offsets_ps={"x": -10000.0})
    assert negative.cell_delay_ps(cell) == 0.0


def test_annotation_copy_is_independent():
    annotation = DelayAnnotation()
    clone = annotation.copy()
    clone.add_cell_offset("x", 5.0)
    assert "x" not in annotation.cell_offsets_ps


def test_static_arrival_times_accumulate_along_path():
    netlist = build_chain()
    annotation = DelayAnnotation(net_delays_ps={}, default_net_delay_ps=10.0)
    engine = TimingEngine(netlist, annotation)
    arrivals = engine.static_arrival_times()
    gate = annotation.cell_delay_ps(netlist.cells["x1"])
    assert arrivals["n1"] == pytest.approx(10.0 + gate)
    assert arrivals["n2"] == pytest.approx(arrivals["n1"] + 10.0 + gate)


def test_critical_path_targets_register_inputs():
    netlist = build_chain()
    engine = TimingEngine(netlist, DelayAnnotation(default_net_delay_ps=10.0))
    critical = engine.critical_path_ps()
    arrivals = engine.static_arrival_times()
    assert critical == pytest.approx(arrivals["n2"] + 10.0)


def test_two_vector_no_input_change_means_no_transition():
    netlist = build_chain()
    engine = TimingEngine(netlist, DelayAnnotation())
    result = engine.two_vector_arrival_times({"a": 0, "b": 0}, {"a": 0, "b": 0})
    assert result.transition_time("n1") is None
    assert result.transition_time("n2") is None
    assert result.toggling_nets() == []


def test_two_vector_transition_propagates_with_delay():
    netlist = build_chain()
    annotation = DelayAnnotation(default_net_delay_ps=10.0)
    engine = TimingEngine(netlist, annotation)
    result = engine.two_vector_arrival_times({"a": 0, "b": 0}, {"a": 1, "b": 0})
    gate = annotation.cell_delay_ps(netlist.cells["x1"])
    assert result.toggled("n1")
    assert result.transition_time("n1") == pytest.approx(10.0 + gate)
    assert result.transition_time("n2") == pytest.approx(
        result.transition_time("n1") + 10.0 + gate
    )
    endpoint = engine.endpoint_delays(result, ["n2"])
    assert endpoint["n2"] == pytest.approx(result.transition_time("n2") + 10.0)


def test_two_vector_masked_transition_does_not_propagate():
    """If the output value is unchanged, downstream sees no transition."""
    netlist = Netlist("masking")
    netlist.add_input("a")
    netlist.add_input("b")
    # AND gate: toggling a while b=0 leaves the output stable at 0.
    netlist.add_cell(make_lut("and1", ["a", "b"], "n1", (0, 0, 0, 1)))
    netlist.add_cell(make_xor("x1", "n1", "b", "n2"))
    netlist.add_output("n2")
    engine = TimingEngine(netlist, DelayAnnotation())
    result = engine.two_vector_arrival_times({"a": 0, "b": 0}, {"a": 1, "b": 0})
    assert result.transition_time("n1") is None
    assert result.transition_time("n2") is None


def test_two_vector_is_data_dependent():
    netlist = Netlist("two_stage")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_cell(make_xor("x1", "a", "b", "n1"))
    netlist.add_cell(make_xor("x2", "n1", "c", "n2"))
    netlist.add_output("n2")
    engine = TimingEngine(netlist, DelayAnnotation())
    base = {"a": 0, "b": 0, "c": 0}
    flip_a = engine.two_vector_arrival_times(base, {"a": 1, "b": 0, "c": 0})
    flip_c = engine.two_vector_arrival_times(base, {"a": 0, "b": 0, "c": 1})
    # Flipping c reaches x2 directly, so n2's transition happens earlier
    # than when the transition has to cross x1 first.
    assert flip_c.transition_time("n2") < flip_a.transition_time("n2")


def test_input_arrival_offset_shifts_everything():
    netlist = build_chain()
    base = TimingEngine(netlist, DelayAnnotation()).static_arrival_times()
    shifted = TimingEngine(netlist, DelayAnnotation(),
                           input_arrival_ps=100.0).static_arrival_times()
    assert shifted["n2"] == pytest.approx(base["n2"] + 100.0)


def test_endpoint_delays_report_stable_endpoints_as_none():
    netlist = build_chain()
    engine = TimingEngine(netlist, DelayAnnotation())
    result = engine.two_vector_arrival_times({"a": 0, "b": 0}, {"a": 0, "b": 0})
    assert engine.endpoint_delays(result, ["n2"])["n2"] is None
