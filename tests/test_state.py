"""Unit tests for block/bit/state helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.crypto.state import (
    BLOCK_BITS,
    BLOCK_BYTES,
    bit_of_block,
    bits_to_bytes,
    bytes_to_bits,
    bytes_to_state,
    chunked,
    differing_bits,
    hamming_distance,
    hamming_weight,
    random_block,
    random_key,
    state_to_bytes,
    validate_block,
    validate_key,
    xor_bytes,
)

BLOCKS = st.binary(min_size=16, max_size=16)


def test_validate_block_accepts_16_bytes():
    assert validate_block(bytes(16)) == bytes(16)


def test_validate_block_rejects_other_lengths():
    with pytest.raises(ValueError):
        validate_block(bytes(15))
    with pytest.raises(ValueError):
        validate_block(bytes(17))


def test_validate_key_accepts_all_aes_lengths():
    for length in (16, 24, 32):
        assert validate_key(bytes(length)) == bytes(length)
    with pytest.raises(ValueError):
        validate_key(bytes(20))


def test_bytes_to_bits_msb_first():
    assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
    assert bytes_to_bits(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]


def test_bits_to_bytes_rejects_partial_bytes():
    with pytest.raises(ValueError):
        bits_to_bytes([1, 0, 1])


def test_bits_to_bytes_rejects_non_binary_values():
    with pytest.raises(ValueError):
        bits_to_bytes([0, 1, 2, 0, 0, 0, 0, 0])


def test_bit_of_block_matches_manual_expansion():
    block = bytes(range(16))
    bits = bytes_to_bits(block)
    for index in (0, 1, 7, 8, 64, 127):
        assert bit_of_block(block, index) == bits[index]


def test_bit_of_block_rejects_out_of_range_index():
    with pytest.raises(ValueError):
        bit_of_block(bytes(16), 128)


def test_xor_bytes_and_hamming_distance():
    a = bytes([0xFF] * 16)
    b = bytes([0x0F] * 16)
    assert xor_bytes(a, b) == bytes([0xF0] * 16)
    assert hamming_distance(a, b) == 4 * 16
    assert hamming_weight(b) == 4 * 16


def test_xor_bytes_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"\x00", b"\x00\x01")


def test_differing_bits_identifies_positions():
    a = bytes(16)
    b = bytearray(16)
    b[0] = 0x80
    b[15] = 0x01
    assert differing_bits(a, bytes(b)) == [0, 127]


def test_state_round_trip():
    block = bytes(range(16))
    assert state_to_bytes(bytes_to_state(block)) == block


def test_bytes_to_state_is_column_major():
    block = bytes(range(16))
    state = bytes_to_state(block)
    assert state[0][0] == 0
    assert state[1][0] == 1
    assert state[0][1] == 4


def test_state_to_bytes_rejects_bad_shape():
    with pytest.raises(ValueError):
        state_to_bytes([[0] * 4] * 3)


def test_random_block_and_key_shapes(rng):
    assert len(random_block(rng)) == BLOCK_BYTES
    assert len(random_key(rng)) == 16
    assert len(random_key(rng, 32)) == 32
    with pytest.raises(ValueError):
        random_key(rng, 20)


def test_chunked_splits_data():
    chunks = list(chunked(bytes(range(10)), 4))
    assert [len(c) for c in chunks] == [4, 4, 2]
    with pytest.raises(ValueError):
        list(chunked(bytes(4), 0))


@given(BLOCKS)
def test_bits_bytes_round_trip(block):
    assert bits_to_bytes(bytes_to_bits(block)) == block


@given(BLOCKS, BLOCKS)
def test_hamming_distance_equals_differing_bits(a, b):
    assert hamming_distance(a, b) == len(differing_bits(a, b))
    assert hamming_distance(a, b) == hamming_distance(b, a)
