"""Golden-value regression tests for the seeded headline outputs.

These tests pin the exact numbers the seeded reproduction produces for
the paper's headline campaigns — the per-trojan false-negative rates of
the Sec. V population study and the Sec. III delay-study verdicts.  They
were captured from the seed implementation (serial per-die loops) and
must survive every refactor bit-for-bit: the batched acquisition paths,
the campaign engine and any future optimisation are required to be
*exact* reimplementations, so a change in any of these numbers means a
silent behaviour change, not noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig

#: Campaign geometry the golden numbers were captured on.
NUM_DIES = 8
SEED = 2015

#: Seed-captured per-trojan false-negative rates (8 dies, seed 2015,
#: default acquisition config, local-maxima-sum metric).
GOLDEN_FALSE_NEGATIVE_RATES = {
    "HT1": 0.23984139297834622,
    "HT2": 0.16697142493686135,
    "HT3": 0.0195361345473109,
}

#: Seed-captured Gaussian separations of the same study.
GOLDEN_MU = {
    "HT1": 3766.146202154134,
    "HT2": 6345.426352893868,
    "HT3": 17355.591727855317,
}

#: Seed-captured delay-study device scores (max |Delta D| in ps) and
#: verdicts for the two clean controls and the two Sec. III trojans
#: (num_pairs=3, default measurement config).
GOLDEN_DELAY_SCORES_PS = {
    "Clean1": (28.0, False),
    "Clean2": (24.5, False),
    "HT_comb": (262.5, True),
    "HT_seq": (140.0, True),
}
GOLDEN_DELAY_THRESHOLD_PS = 65.86845977753815


@pytest.fixture(scope="module")
def golden_platform():
    return HTDetectionPlatform(
        config=PlatformConfig(num_dies=NUM_DIES, seed=SEED)
    )


@pytest.fixture(scope="module")
def population_study(golden_platform):
    return golden_platform.run_population_em_study()


@pytest.fixture(scope="module")
def delay_study(golden_platform):
    return golden_platform.run_delay_study(
        trojan_names=("HT_comb", "HT_seq"), num_pairs=3
    )


def test_headline_false_negative_rates_pinned(population_study):
    rates = population_study.false_negative_rates()
    assert set(rates) == set(GOLDEN_FALSE_NEGATIVE_RATES)
    for name, expected in GOLDEN_FALSE_NEGATIVE_RATES.items():
        assert rates[name] == pytest.approx(expected, abs=1e-12), name


def test_headline_gaussian_separation_pinned(population_study):
    for name, expected in GOLDEN_MU.items():
        measured = population_study.characterisations[name].mu
        assert measured == pytest.approx(expected, abs=1e-6), name


def test_delay_study_verdicts_pinned(delay_study):
    assert set(delay_study.comparisons) == set(GOLDEN_DELAY_SCORES_PS)
    for label, (score, infected) in GOLDEN_DELAY_SCORES_PS.items():
        comparison = delay_study.comparisons[label]
        assert comparison.outcome.is_infected is infected, label
        assert comparison.max_difference_ps == pytest.approx(score,
                                                             abs=1e-9), label
        assert comparison.outcome.threshold == pytest.approx(
            GOLDEN_DELAY_THRESHOLD_PS, abs=1e-9
        ), label


def test_campaign_engine_reproduces_golden_numbers():
    """The campaign engine path must agree with the pinned study."""
    from repro.campaigns import CampaignEngine, CampaignSpec

    spec = CampaignSpec(name="golden", trojans=("HT1", "HT2", "HT3"),
                        die_counts=(NUM_DIES,), seed=SEED)
    cell = CampaignEngine(spec).run().cells[0]
    rates = cell.false_negative_rates()
    for name, expected in GOLDEN_FALSE_NEGATIVE_RATES.items():
        assert rates[name] == pytest.approx(expected, abs=1e-12), name


def test_store_backed_campaign_cold_vs_warm_bit_identical(tmp_path):
    """A warm artifact-store run returns bit-identical rows to a cold run.

    Store-backed variant of the seeded headline study: the cold run
    populates the content-addressed store, the warm run (a fresh engine
    on the same store) must load every artifact and still reproduce the
    pinned false-negative rates exactly — byte-for-byte equal summary
    rows, not merely approximately equal scores.
    """
    from repro.campaigns import CampaignEngine, CampaignSpec

    spec = CampaignSpec(name="golden-store", trojans=("HT1", "HT2", "HT3"),
                        die_counts=(NUM_DIES,), seed=SEED)
    store_dir = tmp_path / "store"
    cold = CampaignEngine(spec, store=store_dir).run()
    warm = CampaignEngine(spec, store=store_dir).run()

    cold_rows = [row.to_dict() for row in cold.rows()]
    warm_rows = [row.to_dict() for row in warm.rows()]
    assert cold_rows == warm_rows
    for rows in (cold_rows, warm_rows):
        measured = {row["trojan"]: row["false_negative_rate"] for row in rows}
        for name, expected in GOLDEN_FALSE_NEGATIVE_RATES.items():
            assert measured[name] == pytest.approx(expected, abs=1e-12), name

    # The warm engine really did read through the store: the same spec
    # under a different campaign name (a pure execution detail) also
    # resolves every cell from the manifest without recomputing.
    renamed = CampaignSpec.from_dict({**spec.to_dict(), "name": "renamed"})
    engine = CampaignEngine(renamed, store=store_dir)
    engine.run_cell = None  # any recomputation would raise TypeError
    renamed_rows = [row.to_dict() for row in engine.run().rows()]
    assert renamed_rows == cold_rows


def test_pinned_numbers_fail_loudly_when_perturbed(golden_platform,
                                                   population_study):
    """A perturbed acquisition must move the pinned headline numbers.

    This guards the regression tests themselves: the pinned quantities
    must be *sensitive* to the physics, not constants that would survive
    a broken pipeline.
    """
    from repro.campaigns.engine import run_population_em_study

    golden_traces = [trace.copy() for trace in population_study.golden_traces]
    infected = {
        name: [trace.copy() for trace in traces]
        for name, traces in population_study.infected_traces.items()
    }
    # Inject a tiny extra emission into every infected trace — the FN
    # rates must respond.
    for traces in infected.values():
        for trace in traces:
            trace.samples = trace.samples + 50.0 * np.sin(
                np.arange(trace.samples.size) / 7.0
            )
    perturbed = run_population_em_study(
        golden_platform, trojan_names=tuple(GOLDEN_FALSE_NEGATIVE_RATES),
        traces=(golden_traces, infected),
    )
    rates = perturbed.false_negative_rates()
    assert any(
        abs(rates[name] - GOLDEN_FALSE_NEGATIVE_RATES[name]) > 1e-6
        for name in GOLDEN_FALSE_NEGATIVE_RATES
    )
