"""Determinism: same seed => byte-identical traces and campaign results.

The whole reproduction is seeded — two fresh platforms with the same
``PlatformConfig.seed`` must produce *bit-identical* traces and
measurements, including through the batched acquisition paths and the
campaign engine's process pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaigns import AcquisitionVariant, CampaignEngine, CampaignSpec
from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.measurement.delay_meter import DelayMeasurementConfig, generate_pk_pairs

TROJANS = ("HT1", "HT3")


def _fresh_platform(num_dies: int = 4, seed: int = 77) -> HTDetectionPlatform:
    return HTDetectionPlatform(
        config=PlatformConfig(
            num_dies=num_dies, seed=seed,
            delay=DelayMeasurementConfig(repetitions=3, seed=seed),
        )
    )


def test_same_seed_byte_identical_population_traces():
    golden_a, infected_a = _fresh_platform().acquire_population_traces(TROJANS)
    golden_b, infected_b = _fresh_platform().acquire_population_traces(TROJANS)
    for trace_a, trace_b in zip(golden_a, golden_b):
        assert trace_a.samples.tobytes() == trace_b.samples.tobytes()
    for name in TROJANS:
        for trace_a, trace_b in zip(infected_a[name], infected_b[name]):
            assert trace_a.samples.tobytes() == trace_b.samples.tobytes()


def test_same_seed_identical_population_study():
    study_a = _fresh_platform().run_population_em_study(TROJANS)
    study_b = _fresh_platform().run_population_em_study(TROJANS)
    assert study_a.false_negative_rates() == study_b.false_negative_rates()
    for name in TROJANS:
        assert study_a.characterisations[name].mu == \
            study_b.characterisations[name].mu
        assert study_a.characterisations[name].sigma == \
            study_b.characterisations[name].sigma


def test_same_seed_byte_identical_delay_measurements():
    pairs = generate_pk_pairs(2, seed=3)

    def run(platform):
        dut = platform.infected_dut("HT_comb", 1)
        return platform.delay_meter.measure(dut, pairs, seed=9)

    measurement_a = run(_fresh_platform())
    measurement_b = run(_fresh_platform())
    assert measurement_a.steps_matrix().tobytes() == \
        measurement_b.steps_matrix().tobytes()


def test_batch_paths_are_deterministic_too():
    """The vectorised EM path must inherit the seed determinism."""
    platform_a = _fresh_platform()
    platform_b = _fresh_platform()
    plaintext, key = bytes(range(16)), bytes(16)

    def batch(platform):
        rngs = [np.random.default_rng(5 + die) for die in range(4)]
        duts = [platform.infected_dut("HT3", die) for die in range(4)]
        return platform.em_simulator.acquire_batch(
            duts, plaintext, key, rngs, new_setup_installation=True
        )

    for trace_a, trace_b in zip(batch(platform_a), batch(platform_b)):
        assert trace_a.samples.tobytes() == trace_b.samples.tobytes()


@pytest.fixture(scope="module")
def campaign_spec():
    return CampaignSpec(
        name="determinism",
        trojans=TROJANS,
        die_counts=(3, 4),
        variants=(
            AcquisitionVariant.make("paper"),
            AcquisitionVariant.make("fast-scope",
                                    {"oscilloscope.num_averages": 100}),
        ),
        metrics=("local_maxima_sum",),
        seed=123,
    )


def _row_dicts(result):
    return [row.to_dict() for row in result.rows()]


def test_campaign_engine_deterministic(campaign_spec):
    result_a = CampaignEngine(campaign_spec).run()
    result_b = CampaignEngine(campaign_spec).run()
    assert _row_dicts(result_a) == _row_dicts(result_b)


def test_campaign_parallel_matches_serial(campaign_spec):
    serial = CampaignEngine(campaign_spec).run()
    parallel_spec = CampaignSpec.from_dict(
        {**campaign_spec.to_dict(), "workers": 2}
    )
    parallel = CampaignEngine(parallel_spec).run()
    assert _row_dicts(serial) == _row_dicts(parallel)


def test_sharded_process_pool_matches_serial(campaign_spec, tmp_path):
    """Shards run over process pools merge to the serial unsharded rows.

    The strongest composition of the engine's execution modes: each
    shard spreads its cells over its own process pool and writes through
    a shared artifact store; the merged result must still be
    row-for-row identical to one serial in-memory run.
    """
    from repro.campaigns import merge_campaign_results

    serial = CampaignEngine(campaign_spec).run()
    parallel_spec = CampaignSpec.from_dict(
        {**campaign_spec.to_dict(), "workers": 2}
    )
    store = tmp_path / "store"
    shards = [
        CampaignEngine(parallel_spec, store=store).run(shard=(index, 2))
        for index in range(2)
    ]
    merged = merge_campaign_results(shards)
    assert _row_dicts(merged) == _row_dicts(serial)

    # And a warm store-backed rerun (serial workers) reproduces the
    # pool-computed rows bit-for-bit.
    warm = CampaignEngine(campaign_spec, store=store).run()
    assert _row_dicts(warm) == _row_dicts(serial)
