"""Unit and property tests for LUT synthesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.netlist import Netlist
from repro.netlist.synth import (
    SynthesisError,
    cofactors,
    is_constant,
    synthesize_function,
    synthesize_reduction_tree,
    synthesize_xor2,
    truth_table_from_function,
)


def _evaluate_synthesised(num_inputs, table):
    """Synthesise ``table`` and evaluate the result exhaustively."""
    netlist = Netlist("under_test")
    inputs = [netlist.add_input(f"i{k}") for k in range(num_inputs)]
    netlist.add_output("y")
    synthesize_function(netlist, "f_", inputs, "y", table)
    netlist.validate()
    observed = []
    for index in range(1 << num_inputs):
        values = {f"i{k}": (index >> k) & 1 for k in range(num_inputs)}
        observed.append(netlist.evaluate_outputs(values)["y"])
    return observed, netlist


def test_truth_table_from_function():
    table = truth_table_from_function(lambda idx: (idx >> 1) & 1, 2)
    assert table == (0, 0, 1, 1)
    with pytest.raises(SynthesisError):
        truth_table_from_function(lambda idx: 0, -1)


def test_cofactors_split_on_variable():
    # f(a, b) = a AND b, table index bit0=a bit1=b.
    table = (0, 0, 0, 1)
    f0, f1 = cofactors(table, 1)
    assert f0 == (0, 0)      # b = 0 -> constant 0
    assert f1 == (0, 1)      # b = 1 -> a
    with pytest.raises(SynthesisError):
        cofactors(table, 2)


def test_is_constant():
    assert is_constant((0, 0, 0, 0))
    assert not is_constant((0, 1, 0, 0))


def test_small_function_maps_to_single_lut():
    table = tuple((i ^ (i >> 1)) & 1 for i in range(16))
    observed, netlist = _evaluate_synthesised(4, table)
    assert tuple(observed) == table
    assert len(netlist.cells) == 1


def test_eight_input_function_uses_lut_mux_tree():
    table = tuple((bin(i).count("1") & 1) for i in range(256))
    observed, netlist = _evaluate_synthesised(8, table)
    assert tuple(observed) == table
    stats = netlist.stats()
    assert stats["LUT"] == 4
    assert stats["MUX2"] == 3


def test_truth_table_length_must_match_inputs():
    netlist = Netlist("bad")
    inputs = [netlist.add_input(f"i{k}") for k in range(3)]
    netlist.add_output("y")
    with pytest.raises(SynthesisError):
        synthesize_function(netlist, "f_", inputs, "y", (0, 1, 1, 0))


def test_reduction_tree_and_matches_python_all():
    netlist = Netlist("wide_and")
    inputs = [netlist.add_input(f"i{k}") for k in range(13)]
    netlist.add_output("y")
    cells = synthesize_reduction_tree(netlist, "and_", inputs, "y", "and")
    netlist.validate()
    assert len(cells) >= 3
    all_ones = {f"i{k}": 1 for k in range(13)}
    assert netlist.evaluate_outputs(all_ones)["y"] == 1
    one_zero = dict(all_ones, i7=0)
    assert netlist.evaluate_outputs(one_zero)["y"] == 0


def test_reduction_tree_xor_matches_parity():
    netlist = Netlist("wide_xor")
    inputs = [netlist.add_input(f"i{k}") for k in range(9)]
    netlist.add_output("y")
    synthesize_reduction_tree(netlist, "xor_", inputs, "y", "xor")
    values = {f"i{k}": (1 if k in (0, 3, 8) else 0) for k in range(9)}
    assert netlist.evaluate_outputs(values)["y"] == 1  # three ones -> odd parity


def test_reduction_tree_single_input_is_buffer():
    netlist = Netlist("single")
    netlist.add_input("i0")
    netlist.add_output("y")
    synthesize_reduction_tree(netlist, "r_", ["i0"], "y", "or")
    assert netlist.evaluate_outputs({"i0": 1})["y"] == 1
    assert netlist.evaluate_outputs({"i0": 0})["y"] == 0


def test_reduction_tree_rejects_bad_arguments():
    netlist = Netlist("bad")
    netlist.add_input("i0")
    netlist.add_output("y")
    with pytest.raises(SynthesisError):
        synthesize_reduction_tree(netlist, "r_", [], "y", "and")
    with pytest.raises(SynthesisError):
        synthesize_reduction_tree(netlist, "r_", ["i0"], "y", "nand")
    with pytest.raises(SynthesisError):
        synthesize_reduction_tree(netlist, "r_", ["i0"], "y", "and", lut_width=1)


def test_synthesize_xor2_helper():
    netlist = Netlist("xor2")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    synthesize_xor2(netlist, "g_", "a", "b", "y")
    assert netlist.evaluate_outputs({"a": 1, "b": 0})["y"] == 1
    assert netlist.evaluate_outputs({"a": 1, "b": 1})["y"] == 0


@given(st.integers(min_value=1, max_value=8), st.data())
@settings(max_examples=30, deadline=None)
def test_synthesis_equivalence_random_tables(num_inputs, data):
    """Shannon/LUT synthesis is functionally equivalent to the truth table."""
    table = tuple(
        data.draw(st.integers(min_value=0, max_value=1))
        for _ in range(1 << num_inputs)
    )
    observed, _ = _evaluate_synthesised(num_inputs, table)
    assert tuple(observed) == table
