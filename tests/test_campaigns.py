"""Unit tests for the campaign spec and engine."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns import (
    AcquisitionVariant,
    CampaignEngine,
    CampaignSpec,
    apply_em_overrides,
    build_metric,
    run_campaign,
)
from repro.core.metrics import L1TraceMetric, LocalMaximaSumMetric
from repro.io.results import load_result
from repro.io.tracefile import load_traces
from repro.measurement.em_simulator import EMAcquisitionConfig


# -- spec ----------------------------------------------------------------------

def test_spec_grid_expansion_order():
    spec = CampaignSpec(
        name="grid", trojans=("HT1",), die_counts=(2, 4),
        variants=(AcquisitionVariant.make("a"), AcquisitionVariant.make("b")),
        metrics=("local_maxima_sum", "l1"),
    )
    cells = spec.grid()
    assert len(cells) == spec.num_cells() == 8
    assert [cell.index for cell in cells] == list(range(8))
    assert cells[0].num_dies == 2 and cells[0].variant.name == "a"
    assert cells[-1].num_dies == 4 and cells[-1].variant.name == "b"
    assert cells[0].metric == "local_maxima_sum"
    assert cells[1].metric == "l1"
    assert cells[0].acquisition_key == cells[1].acquisition_key


def test_spec_round_trips_through_json(tmp_path):
    spec = CampaignSpec(
        name="roundtrip", trojans=("HT2", "HT3"), die_counts=(4,),
        variants=(AcquisitionVariant.make(
            "quiet", {"noise.sigma_single_shot": 100.0}),),
        metrics=("l1",), seed=7, workers=2, save_traces=True,
    )
    path = spec.save(tmp_path / "spec.json")
    loaded = CampaignSpec.load(path)
    assert loaded == spec
    # the stored document is plain JSON (hand-editable)
    payload = json.loads(path.read_text())
    assert payload["trojans"] == ["HT2", "HT3"]
    assert payload["variants"][0]["em_overrides"] == {
        "noise.sigma_single_shot": 100.0
    }


@pytest.mark.parametrize("bad_kwargs", [
    {"trojans": ()},
    {"trojans": ("HT_unknown",)},
    {"die_counts": (1,)},
    {"metrics": ("not_a_metric",)},
    {"workers": 0},
    {"plaintext": b"short"},
])
def test_spec_rejects_invalid_configurations(bad_kwargs):
    with pytest.raises(ValueError):
        CampaignSpec(**bad_kwargs)


def test_apply_em_overrides_nested_and_flat():
    config = apply_em_overrides(
        EMAcquisitionConfig(),
        {"clock_frequency_mhz": 48.0,
         "noise.sigma_single_shot": 123.0,
         "oscilloscope.num_averages": 10},
    )
    assert config.clock_frequency_mhz == 48.0
    assert config.noise.sigma_single_shot == 123.0
    assert config.oscilloscope.num_averages == 10
    # the original default object is untouched
    assert EMAcquisitionConfig().noise.sigma_single_shot != 123.0


def test_apply_em_overrides_rejects_unknown_paths():
    with pytest.raises(ValueError):
        apply_em_overrides(EMAcquisitionConfig(), {"no_such_field": 1.0})
    with pytest.raises(ValueError):
        apply_em_overrides(EMAcquisitionConfig(), {"noise.no_such": 1.0})


def test_build_metric_registry():
    assert isinstance(build_metric("local_maxima_sum"), LocalMaximaSumMetric)
    assert isinstance(build_metric("l1"), L1TraceMetric)
    with pytest.raises(KeyError):
        build_metric("nope")


# -- engine --------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_campaign(golden_design):
    spec = CampaignSpec(
        name="unit", trojans=("HT1", "HT3"), die_counts=(3,),
        variants=(AcquisitionVariant.make("paper"),
                  AcquisitionVariant.make(
                      "quiet", {"noise.sigma_single_shot": 200.0})),
        metrics=("local_maxima_sum", "l1"), seed=55,
    )
    engine = CampaignEngine(spec, golden=golden_design)
    return engine, engine.run()


def test_engine_runs_every_cell(small_campaign):
    engine, result = small_campaign
    assert len(result.cells) == engine.spec.num_cells() == 4
    assert [cell.index for cell in result.cells] == [0, 1, 2, 3]
    for cell in result.cells:
        assert set(cell.false_negative_rates()) == {"HT1", "HT3"}
        for row in cell.rows:
            assert 0.0 <= row.false_negative_rate <= 1.0
            assert row.detection_probability == pytest.approx(
                1.0 - row.false_negative_rate
            )


def test_engine_shares_infected_designs_and_acquisitions(small_campaign):
    engine, _ = small_campaign
    # one insertion per trojan for the whole grid
    assert set(engine._infected_cache) == {"HT1", "HT3"}
    # cells differing only in metric share one acquisition
    assert len(engine._acquisition_cache) == 2
    # bigger trojan is easier to catch under every scenario
    for cell in engine._platform_cache.values():
        assert cell.golden is engine.golden


def test_larger_trojan_detected_more_reliably(small_campaign):
    _, result = small_campaign
    for cell in result.cells:
        rates = cell.false_negative_rates()
        assert rates["HT3"] <= rates["HT1"] + 1e-9


def test_engine_matches_platform_study(small_campaign, golden_design):
    """Acceptance: the engine cell equals the run_population_em_study path."""
    from repro.core.pipeline import HTDetectionPlatform, PlatformConfig

    engine, result = small_campaign
    platform = HTDetectionPlatform(
        config=PlatformConfig(num_dies=3, seed=55), golden=golden_design
    )
    study = platform.run_population_em_study(("HT1", "HT3"))
    cell = result.cells[0]  # paper variant, local_maxima_sum
    for name, rate in study.false_negative_rates().items():
        assert cell.false_negative_rates()[name] == pytest.approx(
            rate, abs=1e-12
        )


def test_parallel_workers_use_the_engine_golden_design(golden_design):
    """A custom golden design must reach the pool workers unchanged."""
    spec = CampaignSpec(name="custom", trojans=("HT1",), die_counts=(3, 4),
                        metrics=("l1",), seed=4)
    serial = CampaignEngine(spec, golden=golden_design).run()
    parallel_spec = CampaignSpec.from_dict({**spec.to_dict(), "workers": 2})
    parallel = CampaignEngine(parallel_spec, golden=golden_design).run()
    assert [row.to_dict() for row in serial.rows()] == \
        [row.to_dict() for row in parallel.rows()]


def test_save_traces_without_artifact_dir_fails_loudly(golden_design):
    spec = CampaignSpec(name="loud", trojans=("HT1",), die_counts=(2,),
                        save_traces=True)
    with pytest.raises(ValueError, match="artifact_dir"):
        CampaignEngine(spec, golden=golden_design).run()


def test_run_campaign_persists_summary_and_traces(tmp_path, golden_design):
    spec = CampaignSpec(name="persist", trojans=("HT1",), die_counts=(2,),
                        metrics=("l1",), seed=9, save_traces=True)
    engine = CampaignEngine(spec, golden=golden_design)
    result = engine.run(artifact_dir=tmp_path)
    summary = load_result(tmp_path / "persist.json")
    assert summary["spec"]["name"] == "persist"
    assert len(summary["cells"]) == 1
    assert summary["cells"][0]["rows"][0]["trojan"] == "HT1"
    assert (tmp_path / "persist.csv").exists()
    archive = summary["cells"][0]["trace_archive"]
    traces = load_traces(archive)
    # 2 golden + 2 infected traces
    assert len(traces) == 4
    assert all(np.isfinite(trace.samples).all() for trace in traces)
