"""Unit tests for the campaign spec and engine."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns import (
    AcquisitionVariant,
    CampaignEngine,
    CampaignSpec,
    apply_em_overrides,
    build_metric,
    run_campaign,
)
from repro.core.metrics import L1TraceMetric, LocalMaximaSumMetric
from repro.io.results import load_result
from repro.io.tracefile import load_traces
from repro.measurement.em_simulator import EMAcquisitionConfig


# -- spec ----------------------------------------------------------------------

def test_spec_grid_expansion_order():
    spec = CampaignSpec(
        name="grid", trojans=("HT1",), die_counts=(2, 4),
        variants=(AcquisitionVariant.make("a"), AcquisitionVariant.make("b")),
        metrics=("local_maxima_sum", "l1"),
    )
    cells = spec.grid()
    assert len(cells) == spec.num_cells() == 8
    assert [cell.index for cell in cells] == list(range(8))
    assert cells[0].num_dies == 2 and cells[0].variant.name == "a"
    assert cells[-1].num_dies == 4 and cells[-1].variant.name == "b"
    assert cells[0].metric == "local_maxima_sum"
    assert cells[1].metric == "l1"
    assert cells[0].acquisition_key == cells[1].acquisition_key


def test_spec_round_trips_through_json(tmp_path):
    spec = CampaignSpec(
        name="roundtrip", trojans=("HT2", "HT3"), die_counts=(4,),
        variants=(AcquisitionVariant.make(
            "quiet", {"noise.sigma_single_shot": 100.0}),),
        metrics=("l1",), seed=7, workers=2, save_traces=True,
    )
    path = spec.save(tmp_path / "spec.json")
    loaded = CampaignSpec.load(path)
    assert loaded == spec
    # the stored document is plain JSON (hand-editable)
    payload = json.loads(path.read_text())
    assert payload["trojans"] == ["HT2", "HT3"]
    assert payload["variants"][0]["em_overrides"] == {
        "noise.sigma_single_shot": 100.0
    }


@pytest.mark.parametrize("bad_kwargs", [
    {"trojans": ()},
    {"trojans": ("HT_unknown",)},
    {"die_counts": (1,)},
    {"metrics": ("not_a_metric",)},
    {"workers": 0},
    {"plaintext": b"short"},
])
def test_spec_rejects_invalid_configurations(bad_kwargs):
    with pytest.raises(ValueError):
        CampaignSpec(**bad_kwargs)


def test_apply_em_overrides_nested_and_flat():
    config = apply_em_overrides(
        EMAcquisitionConfig(),
        {"clock_frequency_mhz": 48.0,
         "noise.sigma_single_shot": 123.0,
         "oscilloscope.num_averages": 10},
    )
    assert config.clock_frequency_mhz == 48.0
    assert config.noise.sigma_single_shot == 123.0
    assert config.oscilloscope.num_averages == 10
    # the original default object is untouched
    assert EMAcquisitionConfig().noise.sigma_single_shot != 123.0


def test_apply_em_overrides_rejects_unknown_paths():
    with pytest.raises(ValueError):
        apply_em_overrides(EMAcquisitionConfig(), {"no_such_field": 1.0})
    with pytest.raises(ValueError):
        apply_em_overrides(EMAcquisitionConfig(), {"noise.no_such": 1.0})


def test_build_metric_registry():
    assert isinstance(build_metric("local_maxima_sum"), LocalMaximaSumMetric)
    assert isinstance(build_metric("l1"), L1TraceMetric)
    with pytest.raises(KeyError):
        build_metric("nope")


# -- engine --------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_campaign(golden_design):
    spec = CampaignSpec(
        name="unit", trojans=("HT1", "HT3"), die_counts=(3,),
        variants=(AcquisitionVariant.make("paper"),
                  AcquisitionVariant.make(
                      "quiet", {"noise.sigma_single_shot": 200.0})),
        metrics=("local_maxima_sum", "l1"), seed=55,
    )
    engine = CampaignEngine(spec, golden=golden_design)
    return engine, engine.run()


def test_engine_runs_every_cell(small_campaign):
    engine, result = small_campaign
    assert len(result.cells) == engine.spec.num_cells() == 4
    assert [cell.index for cell in result.cells] == [0, 1, 2, 3]
    for cell in result.cells:
        assert set(cell.false_negative_rates()) == {"HT1", "HT3"}
        for row in cell.rows:
            assert 0.0 <= row.false_negative_rate <= 1.0
            assert row.detection_probability == pytest.approx(
                1.0 - row.false_negative_rate
            )


def test_engine_shares_infected_designs_and_acquisitions(small_campaign):
    engine, _ = small_campaign
    # one insertion per trojan for the whole grid
    assert set(engine._infected_cache) == {"HT1", "HT3"}
    # cells differing only in metric share one acquisition; without a
    # store or trace archiving the populations stay tensor-resident
    # (no EMTrace objects are ever built)
    assert len(engine._tensor_cache) == 2
    assert len(engine._matrix_cache) == 2
    assert len(engine._acquisition_cache) == 0
    # bigger trojan is easier to catch under every scenario
    for cell in engine._platform_cache.values():
        assert cell.golden is engine.golden


def test_larger_trojan_detected_more_reliably(small_campaign):
    _, result = small_campaign
    for cell in result.cells:
        rates = cell.false_negative_rates()
        assert rates["HT3"] <= rates["HT1"] + 1e-9


def test_engine_matches_platform_study(small_campaign, golden_design):
    """Acceptance: the engine cell equals the run_population_em_study path."""
    from repro.core.pipeline import HTDetectionPlatform, PlatformConfig

    engine, result = small_campaign
    platform = HTDetectionPlatform(
        config=PlatformConfig(num_dies=3, seed=55), golden=golden_design
    )
    study = platform.run_population_em_study(("HT1", "HT3"))
    cell = result.cells[0]  # paper variant, local_maxima_sum
    for name, rate in study.false_negative_rates().items():
        assert cell.false_negative_rates()[name] == pytest.approx(
            rate, abs=1e-12
        )


def test_parallel_workers_use_the_engine_golden_design(golden_design):
    """A custom golden design must reach the pool workers unchanged."""
    spec = CampaignSpec(name="custom", trojans=("HT1",), die_counts=(3, 4),
                        metrics=("l1",), seed=4)
    serial = CampaignEngine(spec, golden=golden_design).run()
    parallel_spec = CampaignSpec.from_dict({**spec.to_dict(), "workers": 2})
    parallel = CampaignEngine(parallel_spec, golden=golden_design).run()
    assert [row.to_dict() for row in serial.rows()] == \
        [row.to_dict() for row in parallel.rows()]


def test_save_traces_without_artifact_dir_fails_loudly(golden_design):
    spec = CampaignSpec(name="loud", trojans=("HT1",), die_counts=(2,),
                        save_traces=True)
    with pytest.raises(ValueError, match="artifact_dir"):
        CampaignEngine(spec, golden=golden_design).run()


def test_run_campaign_persists_summary_and_traces(tmp_path, golden_design):
    spec = CampaignSpec(name="persist", trojans=("HT1",), die_counts=(2,),
                        metrics=("l1",), seed=9, save_traces=True)
    engine = CampaignEngine(spec, golden=golden_design)
    result = engine.run(artifact_dir=tmp_path)
    summary = load_result(tmp_path / "persist.json")
    assert summary["spec"]["name"] == "persist"
    assert len(summary["cells"]) == 1
    assert summary["cells"][0]["rows"][0]["trojan"] == "HT1"
    assert (tmp_path / "persist.csv").exists()
    archive = summary["cells"][0]["trace_archive"]
    traces = load_traces(archive)
    # 2 golden + 2 infected traces
    assert len(traces) == 4
    assert all(np.isfinite(trace.samples).all() for trace in traces)


# -- delay-study cells ---------------------------------------------------------

@pytest.fixture(scope="module")
def delay_campaign(golden_design):
    spec = CampaignSpec(
        name="delay", trojans=("HT_comb", "HT_seq"), die_counts=(3,),
        metrics=("delay_max_difference", "delay_mean_pair_max"),
        seed=19, num_pk_pairs=2, delay_repetitions=2,
    )
    engine = CampaignEngine(spec, golden=golden_design)
    return engine, engine.run()


def test_delay_cells_execute_end_to_end(delay_campaign):
    engine, result = delay_campaign
    assert len(result.cells) == 2
    for cell in result.cells:
        assert cell.metric.startswith("delay_")
        assert cell.trace_archive is None  # no EM traces acquired
        assert set(cell.false_negative_rates()) == {"HT_comb", "HT_seq"}
        for row in cell.rows:
            assert 0.0 <= row.false_negative_rate <= 1.0
            assert row.detection_probability == pytest.approx(
                1.0 - row.false_negative_rate
            )
            assert row.sigma >= 0.0


def test_delay_cells_share_one_measurement(delay_campaign):
    engine, _ = delay_campaign
    # Both metrics re-score the same cached difference matrices.
    assert list(engine._delay_cache) == [3]
    data = engine._delay_cache[3]
    assert len(data.golden_differences) == 3
    assert set(data.infected_differences) == {"HT_comb", "HT_seq"}


def test_delay_cell_detects_the_tapping_trojan(delay_campaign):
    """The datapath-tapping trojan must shift delays well past the clean
    noise floor (the paper's Sec. III headline)."""
    _, result = delay_campaign
    for cell in result.cells:
        comb_row = next(r for r in cell.rows if r.trojan == "HT_comb")
        assert comb_row.mu > 0.0
        assert comb_row.detection_probability > 0.9


def test_delay_spec_round_trips(tmp_path):
    spec = CampaignSpec(name="delay_rt", metrics=("delay_max_difference",),
                        num_pk_pairs=5, delay_repetitions=4)
    path = spec.save(tmp_path / "spec.json")
    loaded = CampaignSpec.load(path)
    assert loaded.num_pk_pairs == 5
    assert loaded.delay_repetitions == 4
    assert loaded.metrics == ("delay_max_difference",)
    assert loaded.grid()[0].is_delay


def test_mixed_em_and_delay_grid(golden_design, tmp_path):
    """EM and delay metrics coexist in one grid; archives are owned by
    the EM cells only."""
    spec = CampaignSpec(
        name="mixed", trojans=("HT1",), die_counts=(2,),
        metrics=("delay_max_difference", "l1"), seed=3,
        num_pk_pairs=2, delay_repetitions=2, save_traces=True,
    )
    engine = CampaignEngine(spec, golden=golden_design)
    result = engine.run(artifact_dir=tmp_path)
    delay_cell, em_cell = result.cells
    assert delay_cell.metric == "delay_max_difference"
    assert delay_cell.trace_archive is None
    assert em_cell.trace_archive is not None
    assert len(load_traces(em_cell.trace_archive)) == 4


def test_delay_metrics_not_crossed_with_em_variants():
    """The clock-glitch bench ignores EM variants: one delay cell per
    die count, not one per (variant, die count)."""
    spec = CampaignSpec(
        name="collapse", trojans=("HT1",), die_counts=(2, 3),
        variants=(AcquisitionVariant.make("paper"),
                  AcquisitionVariant.make(
                      "quiet", {"noise.sigma_single_shot": 200.0})),
        metrics=("delay_max_difference", "l1"),
    )
    cells = spec.grid()
    assert spec.num_cells() == len(cells) == 6  # 2 dies x (2 EM + 1 delay)
    delay_cells = [cell for cell in cells if cell.is_delay]
    assert [cell.variant.name for cell in delay_cells] == ["paper", "paper"]
    assert sorted(cell.num_dies for cell in delay_cells) == [2, 3]
    assert [cell.index for cell in cells] == list(range(6))


def test_build_delay_scorer_rejects_unknown_names():
    from repro.campaigns import build_delay_scorer

    with pytest.raises(KeyError, match="delay_max_difference"):
        build_delay_scorer("nope")
