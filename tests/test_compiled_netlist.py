"""Compiled-kernel equivalence with the interpreted netlist walks.

The compiled kernel (:mod:`repro.netlist.compiled`) is a pure
performance refactor: for every catalog trojan netlist and for the AES
last-round circuit, batched evaluation and two-vector timing must
reproduce the interpreted reference **bit for bit** — identical net
values, identical arrival times including the NaN/stable-net handling,
identical toggle counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netlist.aes_round_circuit import AESLastRoundCircuit
from repro.netlist.cells import make_dff, make_lut, make_mux2, make_xor, Cell, CellType
from repro.netlist.compiled import CompiledNetlist, CompiledTimingEngine
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.timing import DelayAnnotation, TimingEngine
from repro.trojan.library import available_trojans, build_trojan

pytestmark = []


@pytest.fixture(scope="module")
def circuit():
    return AESLastRoundCircuit.build()


@pytest.fixture(scope="module")
def trojans():
    return {name: build_trojan(name) for name in available_trojans()}


def _random_annotation(netlist: Netlist, seed: int,
                       scale: float = 1.0) -> DelayAnnotation:
    rng = np.random.default_rng(seed)
    annotation = DelayAnnotation(cell_scale=scale)
    cell_names = list(netlist.cells)
    for name in cell_names[:: max(1, len(cell_names) // 40)]:
        annotation.add_cell_offset(name, float(rng.normal(0.0, 8.0)))
    nets = sorted(netlist.nets())
    for net in nets[:: max(1, len(nets) // 40)]:
        annotation.add_net_delay(net, float(abs(rng.normal(0.0, 30.0))))
    return annotation


def _random_inputs(netlist: Netlist, rng) -> dict:
    return {net: int(rng.integers(0, 2)) for net in netlist.inputs}


# -- value equivalence ----------------------------------------------------


@pytest.mark.parametrize("trojan_name", available_trojans())
def test_trojan_values_match_interpreted(trojans, trojan_name):
    netlist = trojans[trojan_name].netlist
    compiled = netlist.compiled()
    rng = np.random.default_rng(hash(trojan_name) % 2**32)
    for _ in range(5):
        stimulus = _random_inputs(netlist, rng)
        reference = netlist.evaluate(stimulus)
        result = compiled.evaluate(stimulus)
        assert result == reference


def test_circuit_values_match_interpreted(circuit):
    netlist = circuit.netlist
    compiled = netlist.compiled()
    rng = np.random.default_rng(11)
    stimulus = _random_inputs(netlist, rng)
    assert compiled.evaluate(stimulus) == netlist.evaluate(stimulus)


def test_circuit_evaluate_batch_matches_interpreted(circuit):
    rng = np.random.default_rng(5)
    states = [bytes(int(x) for x in rng.integers(0, 256, 16))
              for _ in range(8)]
    keys = [bytes(int(x) for x in rng.integers(0, 256, 16))
            for _ in range(8)]
    batch = circuit.evaluate_batch(states, keys)
    for state, key, result in zip(states, keys, batch):
        assert result == circuit.evaluate_interpreted(state, key)
        assert result == circuit.evaluate(state, key)


def test_register_values_match_interpreted():
    netlist = Netlist(name="regs")
    netlist.add_input("a")
    netlist.add_cell(make_xor("x", "a", "q", "d"))
    netlist.add_cell(make_dff("r", "d", "q", init=1))
    netlist.add_output("d")
    compiled = netlist.compiled()
    for registers in (None, {"q": 0}, {"q": 1}, {"q": 1, "stray": 1}):
        for a in (0, 1):
            reference = netlist.evaluate({"a": a}, registers)
            assert compiled.evaluate({"a": a}, registers) == reference


def test_constants_and_mux_match_interpreted():
    netlist = Netlist(name="mix")
    netlist.add_input("s")
    netlist.add_input("b")
    netlist.add_cell(Cell("one", CellType.CONST1, (), "c1"))
    netlist.add_cell(Cell("zero", CellType.CONST0, (), "c0"))
    netlist.add_cell(make_mux2("m", "s", "c0", "b", "y"))
    netlist.add_cell(make_lut("l", ["y", "c1"], "z", (0, 1, 1, 0)))
    netlist.add_output("z")
    compiled = netlist.compiled()
    for s in (0, 1):
        for b in (0, 1):
            stimulus = {"s": s, "b": b}
            assert compiled.evaluate(stimulus) == netlist.evaluate(stimulus)


def test_missing_primary_input_raises(circuit):
    compiled = circuit.netlist.compiled()
    with pytest.raises(NetlistError):
        compiled.evaluate({"st_b0_0": 1})


# -- two-vector timing equivalence ------------------------------------------


@pytest.mark.parametrize("trojan_name", available_trojans())
def test_trojan_two_vector_timing_matches_interpreted(trojans, trojan_name):
    netlist = trojans[trojan_name].netlist
    annotation = _random_annotation(netlist, seed=3, scale=1.07)
    interpreted = TimingEngine(netlist, annotation, input_arrival_ps=25.0)
    compiled = CompiledTimingEngine(netlist.compiled(), annotation,
                                    input_arrival_ps=25.0)
    rng = np.random.default_rng(17)
    for _ in range(3):
        before = _random_inputs(netlist, rng)
        after = _random_inputs(netlist, rng)
        reference = interpreted.two_vector_arrival_times(before, after)
        result = compiled.two_vector_result(before, after)
        assert result.values_before == reference.values_before
        assert result.values_after == reference.values_after
        # Bit-identical arrivals, including None for stable nets.
        assert result.arrival_ps == reference.arrival_ps


def test_circuit_timing_broadcast_over_dies(circuit):
    """One batched pass over (pairs x dies) equals per-die interpreted runs."""
    netlist = circuit.netlist
    annotations = [_random_annotation(netlist, seed=die, scale=1.0 + 0.04 * die)
                   for die in range(3)]
    engine = CompiledTimingEngine(netlist.compiled(), annotations)
    rng = np.random.default_rng(23)
    pairs = []
    for _ in range(4):
        state = bytes(int(x) for x in rng.integers(0, 256, 16))
        key = bytes(int(x) for x in rng.integers(0, 256, 16))
        pairs.append(circuit.input_values(state, key))
    input_nets = list(netlist.inputs)
    rows = np.array([[vector[net] for net in input_nets] for vector in pairs],
                    dtype=np.uint8)
    before_rows, after_rows = rows[:-1], rows[1:]
    _, _, arrivals = engine.two_vector_arrivals(before_rows, after_rows,
                                                input_nets)
    endpoints = engine.endpoint_arrivals(arrivals, circuit.output_d_nets())

    for die, annotation in enumerate(annotations):
        interpreted = TimingEngine(netlist, annotation)
        for pair_index in range(before_rows.shape[0]):
            reference = interpreted.two_vector_arrival_times(
                pairs[pair_index], pairs[pair_index + 1]
            )
            reference_endpoints = interpreted.endpoint_delays(
                reference, circuit.output_d_nets()
            )
            for bit, net in enumerate(circuit.output_d_nets()):
                expected = reference_endpoints[net]
                observed = endpoints[pair_index, die, bit]
                if expected is None:
                    assert np.isnan(observed)
                else:
                    assert observed == expected  # bit-identical float


def test_stable_transition_is_all_nan(circuit):
    """Identical before/after vectors leave every net stable (all NaN)."""
    netlist = circuit.netlist
    engine = CompiledTimingEngine(netlist.compiled(), DelayAnnotation())
    vector = circuit.input_values(bytes(16), bytes(16))
    rows = np.array([[vector[net] for net in netlist.inputs]], dtype=np.uint8)
    _, _, arrivals = engine.two_vector_arrivals(rows, rows)
    assert np.all(np.isnan(arrivals))


# -- trojan activity equivalence -------------------------------------------


@pytest.mark.parametrize("trojan_name", available_trojans())
def test_encryption_activity_matches_interpreted(trojans, trojan_name):
    trojan = trojans[trojan_name]
    rng = np.random.default_rng(29)
    states = [bytes(int(x) for x in rng.integers(0, 256, 16))
              for _ in range(12)]
    for encryption_index in (0, 3, 1023):
        reference = trojan.encryption_activity_interpreted(
            states, encryption_index=encryption_index
        )
        assert trojan.encryption_activity(
            states, encryption_index=encryption_index
        ) == reference


# -- cache maintenance -------------------------------------------------------


def test_add_cell_maintains_driver_cache_incrementally():
    netlist = Netlist(name="incremental")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_cell(make_xor("x0", "a", "b", "n0"))
    cache = netlist.__dict__.get("_driver_cache")
    assert cache is not None and "n0" in cache
    netlist.add_cell(make_xor("x1", "a", "n0", "n1"))
    # Same dict object, updated in place — not rebuilt per added cell.
    assert netlist.__dict__["_driver_cache"] is cache
    assert cache["n1"] is netlist.cells["x1"]
    assert netlist.driver_of("n1") is netlist.cells["x1"]
    assert netlist.driver_of("a") is None


def test_structural_edit_invalidates_compiled_cache():
    netlist = Netlist(name="invalidate")
    netlist.add_input("a")
    netlist.add_cell(make_xor("x0", "a", "a", "n0"))
    netlist.add_output("n0")
    first = netlist.compiled()
    assert netlist.compiled() is first  # cached
    netlist.add_cell(make_xor("x1", "a", "n0", "n1"))
    second = netlist.compiled()
    assert second is not first
    assert second.evaluate({"a": 1})["n1"] == \
        netlist.evaluate({"a": 1})["n1"]


def test_compiled_netlist_shape(circuit):
    compiled = circuit.netlist.compiled()
    assert compiled.num_comb_cells == \
        len(circuit.netlist.topological_order())
    assert compiled.num_nets == len(circuit.netlist.nets())
    # Levels partition the combinational cells.
    covered = sum(end - start for start, end in compiled.level_slices)
    assert covered == compiled.num_comb_cells
