"""Tests for the differential fault analysis (DFA) key-recovery analyzer."""

import numpy as np
import pytest

from repro.analysis.dfa import (
    PHANTOM_TOGGLE_WEIGHT,
    dfa_key_scores,
    dfa_key_scores_serial,
    localise_faults,
    recover_last_round_key,
)
from repro.crypto.aes import INV_SHIFT_ROWS_PERM, SHIFT_ROWS_PERM
from repro.crypto.batch import BatchedAES
from repro.crypto.keyschedule import last_round_key

KEY = bytes(range(16))


def _stale_fault_population(num_stimuli, register_bytes, seed=3,
                            repeats=3):
    """Synthesise full-byte stale captures at the given register bytes.

    Returns ``(correct, faulted, expected_key)``: each stimulus's
    faulted rows replace the chosen ciphertext-register bytes with the
    stale (last-round input) value — exactly what a deep clock glitch
    with stale-only resolution captures.
    """
    rng = np.random.default_rng(seed)
    plaintexts = rng.integers(0, 256, size=(num_stimuli, 16), dtype=np.uint8)
    states = BatchedAES(KEY).round_states(plaintexts)
    correct = states[:, -1]
    stale = states[:, -2]
    correct_rows = []
    faulted_rows = []
    for _ in range(repeats):
        for byte in register_bytes:
            faulted = correct.copy()
            faulted[:, byte] = stale[:, byte]
            correct_rows.append(correct)
            faulted_rows.append(faulted)
    return (np.concatenate(correct_rows), np.concatenate(faulted_rows),
            last_round_key(KEY))


# -- scoring kernel -----------------------------------------------------------


def test_dfa_key_scores_matches_serial_reference():
    rng = np.random.default_rng(11)
    correct = rng.integers(0, 256, size=(40, 16), dtype=np.uint8)
    flips = rng.integers(0, 256, size=(40, 16), dtype=np.uint8)
    flips[rng.random((40, 16)) < 0.7] = 0
    faulted = correct ^ flips
    assert np.array_equal(dfa_key_scores(correct, faulted),
                          dfa_key_scores_serial(correct, faulted))


def test_dfa_key_scores_matches_serial_with_observable_bits():
    rng = np.random.default_rng(12)
    correct = rng.integers(0, 256, size=(24, 16), dtype=np.uint8)
    faulted = correct ^ rng.integers(0, 256, size=(24, 16), dtype=np.uint8)
    observable = rng.integers(0, 256, size=16, dtype=np.uint8)
    assert np.array_equal(
        dfa_key_scores(correct, faulted, observable_bits=observable),
        dfa_key_scores_serial(correct, faulted, observable_bits=observable),
    )


def test_dfa_key_scores_shape_and_fault_free_is_flat():
    correct = np.zeros((4, 16), dtype=np.uint8)
    scores = dfa_key_scores(correct, correct)
    assert scores.shape == (16, 256)
    # No faults: every guess is equally (un)supported.
    assert np.all(scores == 0)


def test_true_key_minimises_score_on_stale_faults():
    correct, faulted, expected = _stale_fault_population(
        num_stimuli=8, register_bytes=(0, 5))
    scores = dfa_key_scores(correct, faulted)
    for register_byte in (0, 5):
        position = INV_SHIFT_ROWS_PERM[register_byte]
        assert int(np.argmin(scores[position])) == expected[position]


# -- key recovery -------------------------------------------------------------


def test_recover_known_key_bytes_end_to_end():
    register_bytes = (2, 7, 13)
    correct, faulted, expected = _stale_fault_population(
        num_stimuli=8, register_bytes=register_bytes)
    result = recover_last_round_key(correct, faulted)
    recovered = result.recovered_bytes()
    assert result.num_recovered >= 1
    assert result.matches(expected)
    for register_byte in register_bytes:
        position = INV_SHIFT_ROWS_PERM[register_byte]
        assert recovered.get(position) == expected[position]


def test_unfaulted_positions_abstain():
    correct, faulted, _ = _stale_fault_population(
        num_stimuli=6, register_bytes=(4,))
    result = recover_last_round_key(correct, faulted)
    faulted_position = INV_SHIFT_ROWS_PERM[4]
    for entry in result.bytes:
        if entry.position != faulted_position:
            assert entry.value is None
            assert entry.num_faults == 0


def test_recover_gates_block_thin_evidence():
    # A single stimulus can never clear the min_stimuli gate, however
    # deep its faults.
    correct, faulted, _ = _stale_fault_population(
        num_stimuli=1, register_bytes=(0,))
    result = recover_last_round_key(correct, faulted)
    assert result.num_recovered == 0


def test_recover_dedups_repeated_captures():
    correct, faulted, expected = _stale_fault_population(
        num_stimuli=6, register_bytes=(9,), repeats=1)
    once = recover_last_round_key(correct, faulted)
    thrice = recover_last_round_key(np.tile(correct, (3, 1)),
                                    np.tile(faulted, (3, 1)))
    assert once.recovered_bytes() == thrice.recovered_bytes()
    position = INV_SHIFT_ROWS_PERM[9]
    assert once.recovered_bytes().get(position) == expected[position]


def test_recover_validation():
    correct = np.zeros((4, 16), dtype=np.uint8)
    with pytest.raises(ValueError):
        recover_last_round_key(correct, np.zeros((4, 15), dtype=np.uint8))
    with pytest.raises(ValueError):
        recover_last_round_key(correct, correct, min_evidence_bits=0)
    with pytest.raises(ValueError):
        recover_last_round_key(correct, correct, min_stimuli=0)


def test_margin_gate_reflects_score_gap():
    correct, faulted, _ = _stale_fault_population(
        num_stimuli=8, register_bytes=(3,))
    result = recover_last_round_key(correct, faulted)
    for entry in result.bytes:
        if entry.value is not None:
            assert entry.margin >= PHANTOM_TOGGLE_WEIGHT
            assert entry.evidence_bits >= 8
            assert entry.num_stimuli >= 2


# -- localisation -------------------------------------------------------------


def test_localise_faults_covers_faulted_bytes():
    correct, faulted, _ = _stale_fault_population(
        num_stimuli=6, register_bytes=(1, 10))
    localisation = localise_faults(correct, faulted)
    assert localisation.covered_bytes() == [1, 10]
    assert localisation.faulted_fraction > 0.9
    assert localisation.last_round_consistent


def test_localise_faults_rejects_non_last_round_pattern():
    # Random dense garbage at one byte is not explainable by any
    # last-round key guess: the consistency check must fail.
    rng = np.random.default_rng(5)
    correct = rng.integers(0, 256, size=(64, 16), dtype=np.uint8)
    faulted = correct.copy()
    faulted[:, 6] = rng.integers(0, 256, size=64, dtype=np.uint8)
    localisation = localise_faults(correct, faulted)
    assert not localisation.last_round_consistent


def test_localise_faults_empty_population_is_trivially_inconsistent():
    correct = np.zeros((4, 16), dtype=np.uint8)
    localisation = localise_faults(correct, correct)
    assert localisation.covered_bytes() == []
    assert localisation.faulted_fraction == 0.0
    assert not localisation.last_round_consistent


def test_shift_rows_position_mapping_roundtrip():
    for position in range(16):
        assert INV_SHIFT_ROWS_PERM[SHIFT_ROWS_PERM[position]] == position
