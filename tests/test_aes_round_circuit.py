"""Equivalence and structure tests for the last-round circuit."""

import numpy as np
import pytest

from repro.crypto.aes import AES
from repro.crypto.state import BLOCK_BITS, differing_bits, random_block, random_key
from repro.netlist.aes_round_circuit import (
    AESLastRoundCircuit,
    byte_bit_to_paper_bit,
    paper_bit_to_byte_bit,
)


@pytest.fixture(scope="module")
def circuit(golden_design):
    # Reuse the circuit embedded in the session-scoped golden design.
    return golden_design.circuit


def test_paper_bit_mapping_round_trip():
    for paper_bit in range(BLOCK_BITS):
        byte, bit = paper_bit_to_byte_bit(paper_bit)
        assert byte_bit_to_paper_bit(byte, bit) == paper_bit
    with pytest.raises(ValueError):
        paper_bit_to_byte_bit(128)
    with pytest.raises(ValueError):
        byte_bit_to_paper_bit(16, 0)
    with pytest.raises(ValueError):
        byte_bit_to_paper_bit(0, 8)


def test_paper_bit_zero_is_msb_of_byte_zero():
    assert paper_bit_to_byte_bit(0) == (0, 7)
    assert paper_bit_to_byte_bit(7) == (0, 0)
    assert paper_bit_to_byte_bit(8) == (1, 7)


def test_circuit_structure(circuit):
    stats = circuit.netlist.stats()
    assert stats["DFF"] == 128
    assert len(circuit.netlist.inputs) == 256  # 128 state + 128 key bits
    assert len(circuit.netlist.outputs) == 128
    assert len(circuit.subbytes_input_nets) == 128
    # 16 S-boxes x 32 LUTs + 128 AddRoundKey LUTs.
    assert stats["LUT"] == 16 * 32 + 128


def test_circuit_matches_behavioural_last_round(circuit, rng):
    for _ in range(5):
        key = random_key(rng)
        plaintext = random_block(rng)
        aes = AES(key)
        trace = aes.encrypt_trace(plaintext)
        observed = circuit.evaluate(trace.last_round.state_in, aes.last_round_key())
        assert observed == trace.ciphertext


def test_circuit_differs_when_key_bit_flipped(circuit, rng):
    key = random_key(rng)
    plaintext = random_block(rng)
    aes = AES(key)
    trace = aes.encrypt_trace(plaintext)
    round_key = bytearray(aes.last_round_key())
    round_key[0] ^= 0x80
    observed = circuit.evaluate(trace.last_round.state_in, bytes(round_key))
    assert differing_bits(observed, trace.ciphertext) == [0]


def test_output_net_accessors_are_consistent(circuit):
    d_nets = circuit.output_d_nets()
    assert len(d_nets) == BLOCK_BITS
    assert len(set(d_nets)) == BLOCK_BITS
    for paper_bit in (0, 63, 127):
        assert circuit.output_d_net(paper_bit) in d_nets
        assert circuit.output_q_net(paper_bit) in circuit.netlist.outputs
        assert circuit.state_net(paper_bit) in circuit.netlist.inputs
        assert circuit.key_net(paper_bit) in circuit.netlist.inputs


def test_input_values_cover_all_inputs(circuit):
    values = circuit.input_values(bytes(16), bytes(16))
    assert set(values) == set(circuit.netlist.inputs)
    assert all(v in (0, 1) for v in values.values())


def test_lut_equivalent_area_positive(circuit):
    assert circuit.lut_equivalent_area() > 500
