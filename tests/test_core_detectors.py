"""Tests for fingerprints, decision policies and the two detectors."""

import numpy as np
import pytest

from repro.core.decision import DetectionOutcome, FixedThresholdPolicy, ThresholdPolicy
from repro.core.delay_detector import DelayDetector
from repro.core.em_detector import PopulationEMDetector, SameDieEMDetector
from repro.core.fingerprint import DelayFingerprint, EMReference
from repro.core.metrics import LocalMaximaSumMetric


# -- decision policies -----------------------------------------------------------


def test_threshold_policy_from_reference_scores():
    policy = ThresholdPolicy(num_sigmas=2.0)
    reference = [10.0, 12.0, 11.0, 9.0]
    threshold = policy.threshold(reference)
    assert threshold > np.mean(reference)
    outcome = policy.decide("dut", threshold + 1, reference)
    assert outcome.is_infected
    assert outcome.margin() == pytest.approx(1.0)
    clean = policy.decide("dut", threshold - 1, reference)
    assert not clean.is_infected
    with pytest.raises(ValueError):
        policy.threshold([])
    with pytest.raises(ValueError):
        ThresholdPolicy(num_sigmas=-1)


def test_fixed_threshold_policy():
    policy = FixedThresholdPolicy(100.0)
    assert policy.threshold([1.0]) == 100.0
    assert policy.decide("d", 150.0, []).is_infected
    assert not policy.decide("d", 50.0, []).is_infected


def test_detection_outcome_fields():
    outcome = DetectionOutcome("x", 5.0, 3.0, True, details="why")
    assert outcome.margin() == pytest.approx(2.0)


# -- fingerprints ---------------------------------------------------------------


def test_delay_fingerprint_from_measurement(delay_study):
    fingerprint = delay_study.fingerprint
    assert fingerprint.num_pairs == 3
    assert fingerprint.num_bits == 128
    assert fingerprint.mean_delay_ps().shape == (3, 128)
    assert fingerprint.noise_floor_ps() >= 0
    clone = DelayFingerprint.from_measurement(delay_study.measurements["Clean1"])
    assert clone.num_pairs == 3


def test_delay_fingerprint_validation():
    with pytest.raises(ValueError):
        DelayFingerprint(np.zeros((2, 128)), np.zeros((3, 128)), 35.0, 10)
    with pytest.raises(ValueError):
        DelayFingerprint(np.zeros((2, 128)), np.zeros((2, 128)), 0.0, 10)
    with pytest.raises(ValueError):
        DelayFingerprint(np.zeros((2, 128)), np.zeros((2, 128)), 35.0, 0)


def test_em_reference_from_traces():
    traces = [np.ones(50), np.ones(50) * 3]
    reference = EMReference.from_traces(traces)
    assert reference.num_samples == 50
    assert np.allclose(reference.mean, 2.0)
    assert reference.noise_floor() > 0
    single = EMReference.from_traces([np.ones(10)])
    assert single.noise_floor() == 0.0
    with pytest.raises(ValueError):
        EMReference(np.zeros(5), np.zeros(4), 2)
    with pytest.raises(ValueError):
        EMReference(np.zeros(5), np.zeros(5), 0)


# -- delay detector -----------------------------------------------------------------


def test_delay_detector_separates_clean_and_infected(delay_study):
    comparisons = delay_study.comparisons
    assert not comparisons["Clean1"].outcome.is_infected
    assert not comparisons["Clean2"].outcome.is_infected
    assert comparisons["HT_comb"].outcome.is_infected
    assert comparisons["HT_seq"].outcome.is_infected
    assert comparisons["HT_comb"].max_difference_ps > \
        comparisons["Clean2"].max_difference_ps


def test_delay_detector_suspicious_bits_only_for_infected(delay_study):
    assert delay_study.comparisons["Clean1"].suspicious_bits() == []
    assert len(delay_study.comparisons["HT_comb"].suspicious_bits()) > 0


def test_delay_detector_pair_profile_shape(delay_study):
    profile = delay_study.comparisons["HT_comb"].pair_profile(0)
    assert profile.shape == (128,)
    with pytest.raises(ValueError):
        delay_study.comparisons["HT_comb"].pair_profile(99)


def test_delay_detector_rejects_mismatched_campaigns(delay_study, platform):
    detector = DelayDetector(delay_study.fingerprint)
    other = platform.run_delay_study(trojan_names=(), num_pairs=2,
                                     pair_seed=123)
    with pytest.raises(ValueError):
        detector.compare(other.measurements["Clean1"])


def test_delay_detector_compare_many(delay_study):
    detector = DelayDetector(delay_study.fingerprint)
    detector.calibrate_with_clean([delay_study.measurements["Clean1"]])
    results = detector.compare_many(list(delay_study.measurements.values()))
    assert set(results) == set(delay_study.measurements)


# -- same-die EM detector ----------------------------------------------------------


def test_same_die_detector_flags_infected(platform):
    study = platform.run_same_die_em_study(("HT_comb",))
    comparison = study.comparisons["HT_comb"]
    assert comparison.outcome.is_infected
    assert comparison.max_difference > comparison.noise_floor
    assert comparison.significant_samples().size > 0


def test_same_die_detector_accepts_genuine(platform, rng):
    study = platform.run_same_die_em_study(("HT_comb",))
    detector = SameDieEMDetector(study.reference)
    genuine = study.golden_traces[1]
    comparison = detector.compare(genuine, label="genuine-recheck")
    assert not comparison.outcome.is_infected


def test_same_die_detector_rejects_length_mismatch(platform):
    study = platform.run_same_die_em_study(("HT_comb",))
    detector = SameDieEMDetector(study.reference)
    with pytest.raises(ValueError):
        detector.compare(np.zeros(10))
    with pytest.raises(ValueError):
        SameDieEMDetector(study.reference, num_sigmas=0)


# -- population EM detector -----------------------------------------------------------


def test_population_detector_requires_fit(population_study):
    detector = PopulationEMDetector()
    with pytest.raises(RuntimeError):
        detector.score(population_study.golden_traces[0])
    with pytest.raises(RuntimeError):
        detector.golden_scores()
    with pytest.raises(ValueError):
        detector.fit_reference(population_study.golden_traces[:1])


def test_population_detector_characterisation(population_study):
    characterisations = population_study.characterisations
    assert characterisations["HT3"].mu > characterisations["HT1"].mu
    assert characterisations["HT3"].false_negative_rate <= \
        characterisations["HT1"].false_negative_rate
    for char in characterisations.values():
        assert 0.0 <= char.false_negative_rate <= 0.5
        assert char.detection_probability == pytest.approx(
            1.0 - char.false_negative_rate
        )


def test_population_detector_flags_large_trojan(population_study):
    detector = PopulationEMDetector(metric=LocalMaximaSumMetric())
    detector.fit_reference(population_study.golden_traces)
    flagged = 0
    for trace in population_study.infected_traces["HT3"]:
        if detector.compare(trace).outcome.is_infected:
            flagged += 1
    assert flagged >= len(population_study.infected_traces["HT3"]) // 2


def test_population_detector_characterise_requires_traces(population_study):
    detector = PopulationEMDetector()
    detector.fit_reference(population_study.golden_traces)
    with pytest.raises(ValueError):
        detector.characterise([])
