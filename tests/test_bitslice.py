"""Bitsliced kernel and array-backend seam tests.

The contract under test: the uint64 bitplane kernel
(:mod:`repro.netlist.bitslice`), reached through the
:mod:`repro.backend` seam, is **bit-identical** to the uint8 compiled
sweep, which is itself pinned against the interpreted walk — the same
reference-chain pattern as the earlier batch kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import (
    ArrayBackend,
    BackendError,
    active_backend,
    get_backend,
    known_backend_names,
    popcount,
    register_backend,
    use_backend,
)
from repro.netlist import Netlist, NetlistError, make_dff, make_lut, make_mux2
from repro.netlist.bitslice import (
    BitslicedNetlist,
    classify_table,
    pack_bits,
    unpack_words,
)
from repro.netlist.cells import Cell, CellType
from repro.netlist.sbox_circuit import build_sbox_netlist
from repro.netlist.synth import synthesize_reduction_tree


# -- backend seam --------------------------------------------------------------


def test_builtin_backends_and_gating():
    assert set(known_backend_names()) >= {"numpy", "bitslice", "cupy"}
    assert get_backend("numpy").bitslice is False
    assert get_backend("bitslice").bitslice is True
    assert get_backend("bitslice").xp is np
    with pytest.raises(BackendError, match="unknown array backend"):
        get_backend("does-not-exist")
    try:
        backend = get_backend("cupy")
    except BackendError as error:
        # The gated path: selecting cupy without the package installed
        # must fail loudly, not import-error somewhere deep in a kernel.
        assert "cupy" in str(error)
    else:  # pragma: no cover - only on hosts with cupy installed
        assert backend.bitslice is True


def test_use_backend_scoping_restores_previous():
    assert active_backend().name == "numpy"
    with use_backend("bitslice") as backend:
        assert backend.name == "bitslice"
        assert active_backend().bitslice
        with use_backend("numpy"):
            assert active_backend().name == "numpy"
        assert active_backend().name == "bitslice"
    assert active_backend().name == "numpy"


def test_register_backend_drop_in():
    register_backend("test-alias",
                     lambda: ArrayBackend(name="test-alias", xp=np,
                                          bitslice=True))
    assert "test-alias" in known_backend_names()
    assert get_backend("test-alias").bitslice is True


def test_popcount_matches_python():
    rng = np.random.default_rng(3)
    words = rng.integers(0, 1 << 63, size=37, dtype=np.uint64)
    expected = np.array([bin(int(word)).count("1") for word in words],
                        dtype=np.int64)
    assert np.array_equal(popcount(words), expected)
    assert popcount(words).dtype == np.int64


# -- table classification and single-cell exhaustive equivalence ---------------


def _single_lut_netlist(table):
    arity = len(table).bit_length() - 1
    netlist = Netlist("one", inputs=[f"pi{pin}" for pin in range(arity)])
    netlist.add_cell(make_lut("cell", [f"pi{pin}" for pin in range(arity)],
                              "out", table))
    return netlist


@pytest.mark.parametrize("arity", [1, 2, 3])
def test_every_small_table_classifies_and_evaluates_exactly(arity):
    """Exhaustive over all 2**2**k truth tables for k <= 3.

    Covers every operator class the lowering can emit (const, copy,
    and, or, xor, mux, generic lut) against the interpreted cell
    semantics, on all 2**k input combinations at once.
    """
    size = 1 << arity
    stimuli = np.array([[(index >> pin) & 1 for pin in range(arity)]
                        for index in range(size)], dtype=np.uint8)
    for encoded in range(1 << size):
        table = tuple((encoded >> entry) & 1 for entry in range(size))
        kind, _ = classify_table(table)
        assert kind in ("const", "copy", "and", "or", "xor", "mux", "lut")
        compiled = _single_lut_netlist(table).compiled()
        expected = compiled.evaluate_batch(stimuli)
        with use_backend("bitslice"):
            sliced = compiled.evaluate_batch(stimuli)
        assert np.array_equal(expected, sliced), (table, kind)
        out_col = compiled.net_index["out"]
        assert [int(v) for v in sliced[:, out_col]] == list(table)


def test_mux2_primitive_classifies_as_mux():
    from repro.netlist.compiled import _MUX2_TABLE
    assert classify_table(tuple(_MUX2_TABLE)) == ("mux", None)


@given(arity=st.integers(4, 6), data=st.data())
@settings(max_examples=30, deadline=None)
def test_wide_random_tables_bit_identical(arity, data):
    seed = data.draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    table = tuple(int(bit) for bit in rng.integers(0, 2, size=1 << arity))
    compiled = _single_lut_netlist(table).compiled()
    stimuli = rng.integers(0, 2, size=(97, arity), dtype=np.uint8)
    expected = compiled.evaluate_batch(stimuli)
    with use_backend("bitslice"):
        sliced = compiled.evaluate_batch(stimuli)
    assert np.array_equal(expected, sliced)


# -- pack / unpack -------------------------------------------------------------


@given(num_vectors=st.integers(0, 200), cols=st.integers(1, 9),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_pack_unpack_round_trip(num_vectors, cols, seed):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(num_vectors, cols), dtype=np.uint8)
    words = pack_bits(bits)
    assert words.shape == ((num_vectors + 63) // 64, cols)
    assert words.dtype == np.uint64
    assert np.array_equal(unpack_words(words, num_vectors), bits)


# -- random-netlist property suite ---------------------------------------------


@st.composite
def random_netlists(draw):
    """Random netlists covering DFFs, constants, MUXes and LUTs."""
    num_inputs = draw(st.integers(1, 5))
    netlist = Netlist("rand",
                      inputs=[f"pi{index}" for index in range(num_inputs)])
    nets = list(netlist.inputs)
    if draw(st.booleans()):
        netlist.add_cell(Cell("konst0", CellType.CONST0, (), "k0"))
        nets.append("k0")
    if draw(st.booleans()):
        netlist.add_cell(Cell("konst1", CellType.CONST1, (), "k1"))
        nets.append("k1")
    for index in range(draw(st.integers(1, 10))):
        out = f"n{index}"
        kind = draw(st.sampled_from(
            ["lut", "lut", "mux", "dff", "xor", "and", "inv"]))
        if kind == "lut":
            arity = draw(st.integers(1, 4))
            pins = [draw(st.sampled_from(nets)) for _ in range(arity)]
            table = draw(st.lists(st.integers(0, 1), min_size=1 << arity,
                                  max_size=1 << arity))
            netlist.add_cell(make_lut(f"c{index}", pins, out, table))
        elif kind == "mux":
            netlist.add_cell(make_mux2(
                f"c{index}", draw(st.sampled_from(nets)),
                draw(st.sampled_from(nets)), draw(st.sampled_from(nets)),
                out))
        elif kind == "dff":
            netlist.add_cell(make_dff(f"c{index}",
                                      draw(st.sampled_from(nets)), out,
                                      init=draw(st.integers(0, 1))))
        elif kind == "xor":
            netlist.add_cell(Cell(f"c{index}", CellType.XOR2,
                                  (draw(st.sampled_from(nets)),
                                   draw(st.sampled_from(nets))), out))
        elif kind == "and":
            netlist.add_cell(Cell(f"c{index}", CellType.AND2,
                                  (draw(st.sampled_from(nets)),
                                   draw(st.sampled_from(nets))), out))
        else:
            netlist.add_cell(Cell(f"c{index}", CellType.INV,
                                  (draw(st.sampled_from(nets)),), out))
        nets.append(out)
    return netlist


@given(netlist=random_netlists(), data=st.data())
@settings(max_examples=30, deadline=None)
def test_bitsliced_equals_uint8_equals_interpreted(netlist, data):
    """The tentpole property: bitsliced == uint8 == interpreted.

    Random netlists with DFFs and constants, stray stimulus nets,
    ragged batch sizes (num_vectors not a multiple of 64) and the
    zero-vector batch.
    """
    compiled = netlist.compiled()
    num_vectors = data.draw(st.sampled_from([0, 1, 5, 63, 64, 65, 130]))
    seed = data.draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)

    input_nets = list(netlist.inputs)
    if data.draw(st.booleans()):  # stray nets the netlist does not know
        input_nets += ["stray_a", "stray_b"]
    rows = rng.integers(0, 2, size=(num_vectors, len(input_nets)),
                        dtype=np.uint8)

    register_rows = None
    register_nets = None
    dff_nets = sorted(compiled.dff_index)
    if dff_nets and data.draw(st.booleans()):
        register_nets = dff_nets
        register_rows = rng.integers(0, 2,
                                     size=(num_vectors, len(dff_nets)),
                                     dtype=np.uint8)

    reference = compiled.evaluate_batch(rows, input_nets,
                                        register_rows, register_nets)
    with use_backend("bitslice"):
        sliced = compiled.evaluate_batch(rows, input_nets,
                                         register_rows, register_nets)
    assert reference.dtype == sliced.dtype == np.uint8
    assert np.array_equal(reference, sliced)

    for vector in range(min(num_vectors, 3)):
        stimulus = {net: int(rows[vector, position])
                    for position, net in enumerate(input_nets)}
        registers = None
        if register_nets is not None:
            registers = {net: int(register_rows[vector, position])
                         for position, net in enumerate(register_nets)}
        walked = netlist.evaluate(stimulus, registers)
        for net, column in compiled.net_index.items():
            assert int(sliced[vector, column]) == walked[net], net


def test_direct_bitsliced_lowering_is_cached():
    netlist = build_sbox_netlist()
    compiled = netlist.compiled()
    lowered = compiled.bitsliced()
    assert isinstance(lowered, BitslicedNetlist)
    assert compiled.bitsliced() is lowered
    assert len(lowered.levels) == len(compiled.level_slices)


def test_single_vector_evaluate_under_bitslice_backend():
    netlist = build_sbox_netlist()
    compiled = netlist.compiled()
    stimulus = {net: (index * 5 + 1) % 2
                for index, net in enumerate(netlist.inputs)}
    reference = compiled.evaluate(stimulus)
    with use_backend("bitslice"):
        assert compiled.evaluate(stimulus) == reference


# -- duplicate stimulus nets (satellite bugfix) --------------------------------


def _two_input_netlist():
    netlist = Netlist("dup", inputs=["a", "b"])
    netlist.add_cell(Cell("g", CellType.XOR2, ("a", "b"), "y"))
    netlist.add_cell(make_dff("r", "y", "q"))
    return netlist


def test_duplicate_known_input_nets_raise():
    compiled = _two_input_netlist().compiled()
    rows = np.zeros((4, 3), dtype=np.uint8)
    with pytest.raises(NetlistError, match=r"duplicate stimulus net\(s\)"):
        compiled.evaluate_batch(rows, ["a", "b", "a"])
    with use_backend("bitslice"), \
            pytest.raises(NetlistError, match="duplicate stimulus"):
        compiled.evaluate_batch(rows, ["a", "b", "a"])


def test_duplicate_register_nets_raise_but_stray_duplicates_do_not():
    compiled = _two_input_netlist().compiled()
    rows = np.zeros((2, 2), dtype=np.uint8)
    with pytest.raises(NetlistError, match=r"duplicate register net\(s\)"):
        compiled.evaluate_batch(rows, ["a", "b"],
                                np.zeros((2, 2), dtype=np.uint8),
                                ["q", "q"])
    # Stray (unknown) nets are ignored, duplicated or not — matching the
    # interpreted walk, which accepts and ignores stray stimulus keys.
    stray = np.zeros((2, 4), dtype=np.uint8)
    values = compiled.evaluate_batch(stray, ["a", "b", "ghost", "ghost"])
    assert values.shape == (2, compiled.num_nets)
    # Register entries for non-DFF nets are ignored even when duplicated.
    values = compiled.evaluate_batch(rows, ["a", "b"],
                                     np.zeros((2, 2), dtype=np.uint8),
                                     ["ghost", "ghost"])
    assert values.shape == (2, compiled.num_nets)


# -- lean toggle counts (satellite bugfix) -------------------------------------


@given(groups=st.integers(1, 4), states=st.integers(0, 6),
       seed=st.integers(0, 2**32 - 1), as_3d=st.booleans())
@settings(max_examples=40, deadline=None)
def test_toggle_counts_match_full_tensor_reference(groups, states, seed,
                                                   as_3d):
    compiled = build_sbox_netlist().compiled()
    rng = np.random.default_rng(seed)
    shape = ((groups, states, compiled.num_nets) if as_3d
             else (states, compiled.num_nets))
    values = rng.integers(0, 2, size=shape, dtype=np.uint8)

    # The old implementation, kept inline as the reference: full
    # (groups x states x nets) toggle tensor, then two column gathers.
    toggles = values[..., 1:, :] != values[..., :-1, :]
    expected_outputs = toggles[..., compiled.all_output_columns] \
        .sum(axis=-1).astype(np.int64)
    expected_pins = toggles[..., compiled.all_pin_columns] \
        .sum(axis=-1).astype(np.int64)

    outputs, pins = compiled.toggle_counts(values)
    assert outputs.dtype == pins.dtype == np.int64
    assert np.array_equal(outputs, expected_outputs)
    assert np.array_equal(pins, expected_pins)


def test_toggle_counts_chunking_is_exact_on_many_transitions():
    """Force several chunks through the bounded kernel."""
    import repro.netlist.compiled as compiled_module

    compiled = build_sbox_netlist().compiled()
    rng = np.random.default_rng(7)
    values = rng.integers(0, 2, size=(3, 40, compiled.num_nets),
                          dtype=np.uint8)
    toggles = values[..., 1:, :] != values[..., :-1, :]
    expected = toggles[..., compiled.all_output_columns].sum(axis=-1)
    original = compiled_module._TOGGLE_CHUNK_ELEMS
    compiled_module._TOGGLE_CHUNK_ELEMS = 1024  # a few transitions/chunk
    try:
        outputs, _ = compiled.toggle_counts(values)
    finally:
        compiled_module._TOGGLE_CHUNK_ELEMS = original
    assert np.array_equal(outputs, expected)


# -- campaign seam -------------------------------------------------------------


def test_campaign_rows_bit_identical_across_backends():
    """The acceptance property: campaign rows through the backend seam
    equal the numpy default, for both EM and delay (timing) cells."""
    from repro.campaigns import CampaignEngine, CampaignSpec
    from repro.store import spec_content_fragment

    spec = CampaignSpec(name="seam", trojans=("HT1",), die_counts=(2,),
                        metrics=("local_maxima_sum",
                                 "delay_max_difference"),
                        seed=11, num_pk_pairs=2, delay_repetitions=2)
    reference = [row.to_dict() for row in CampaignEngine(spec).run().rows()]
    sliced_spec = CampaignSpec.from_dict(
        {**spec.to_dict(), "kernel_backend": "bitslice"})
    sliced = [row.to_dict()
              for row in CampaignEngine(sliced_spec).run().rows()]
    assert reference == sliced
    # Execution-only: the backend knob never enters store content keys.
    assert spec_content_fragment(spec.to_dict()) == \
        spec_content_fragment(sliced_spec.to_dict())


def test_spec_rejects_unknown_kernel_backend():
    from repro.campaigns import CampaignSpec

    with pytest.raises(ValueError, match="kernel_backend"):
        CampaignSpec(kernel_backend="vulkan")


def test_trigger_tree_classes_cover_and_or_xor():
    """The trojan-trigger reduction trees lower to cheap word classes."""
    netlist = Netlist("wide",
                      inputs=[f"pi{index}" for index in range(40)])
    synthesize_reduction_tree(netlist, "all_and", netlist.inputs[:40],
                              "armed", "and")
    synthesize_reduction_tree(netlist, "parity", netlist.inputs[:13],
                              "par", "xor")
    lowered = netlist.compiled().bitsliced()
    kinds = {op.kind for level in lowered.levels for op in level}
    assert "lut" not in kinds
    assert {"and", "xor"} <= kinds
