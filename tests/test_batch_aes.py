"""Equivalence of the vectorised AES kernel with the scalar cipher.

``repro.crypto.batch`` is a pure performance refactor: for every key
length, every plaintext and every intermediate quantity (round-state
tensor, switching activities, ciphertexts) it must reproduce the scalar
:class:`repro.crypto.aes.AES` bit for bit — the scalar cipher stays the
serial reference, exactly as the interpreted netlist does for the
compiled kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.aes import (
    AES,
    INV_SHIFT_ROWS_PERM,
    SHIFT_ROWS_PERM,
)
from repro.crypto.batch import (
    BatchedAES,
    as_block_matrix,
    encrypt_round_states,
    expand_keys,
    switching_activity_counts,
)
from repro.crypto.keyschedule import expand_key

#: FIPS-197 appendix C known-answer vectors (one per key length).
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]

KEY_LENGTHS = (16, 24, 32)


def _random_blocks(rng, count, size=16):
    return [bytes(int(x) for x in rng.integers(0, 256, size=size))
            for _ in range(count)]


@pytest.mark.parametrize("key_hex,ciphertext_hex", FIPS_VECTORS)
def test_fips_known_answer_batched_and_scalar(key_hex, ciphertext_hex):
    key = bytes.fromhex(key_hex)
    expected = bytes.fromhex(ciphertext_hex)
    assert AES(key).encrypt(FIPS_PLAINTEXT) == expected
    batched = BatchedAES(key).encrypt([FIPS_PLAINTEXT])
    assert bytes(batched[0]) == expected
    assert AES(key).decrypt(expected) == FIPS_PLAINTEXT


@pytest.mark.parametrize("key_length", KEY_LENGTHS)
def test_round_state_tensor_matches_scalar_trace(key_length, rng):
    key = bytes(int(x) for x in rng.integers(0, 256, size=key_length))
    plaintexts = _random_blocks(rng, 8)
    batched = BatchedAES(key)
    states = batched.round_states(plaintexts)
    assert states.shape == (8, batched.num_rounds + 2, 16)
    for row, plaintext in enumerate(plaintexts):
        trace = AES(key).encrypt_trace(plaintext)
        assert bytes(states[row, 0]) == plaintext
        assert bytes(states[row, 1]) == trace.initial_state
        for round_index, record in enumerate(trace.rounds, start=1):
            assert bytes(states[row, round_index + 1]) == record.state_out
        assert bytes(states[row, -1]) == trace.ciphertext


@pytest.mark.parametrize("key_length", KEY_LENGTHS)
def test_switching_activity_matrix_matches_scalar_trace(key_length, rng):
    key = bytes(int(x) for x in rng.integers(0, 256, size=key_length))
    plaintexts = _random_blocks(rng, 6)
    batched = BatchedAES(key)
    activities = batched.switching_activities(plaintexts)
    assert activities.shape == (6, batched.num_rounds + 1)
    for row, plaintext in enumerate(plaintexts):
        scalar = AES(key).encrypt_trace(plaintext).switching_activities()
        assert list(activities[row]) == scalar


@pytest.mark.parametrize("key_length", KEY_LENGTHS)
def test_per_row_keys_match_scalar(key_length, rng):
    keys = _random_blocks(rng, 5, size=key_length)
    plaintexts = _random_blocks(rng, 5)
    states = encrypt_round_states(plaintexts, keys)
    for row, (plaintext, key) in enumerate(zip(plaintexts, keys)):
        assert bytes(states[row, -1]) == AES(key).encrypt(plaintext)


def test_expand_keys_matches_scalar_key_schedule(rng):
    for key_length in KEY_LENGTHS:
        key = bytes(int(x) for x in rng.integers(0, 256, size=key_length))
        tensor = expand_keys(key)
        scalar = expand_key(key)
        assert tensor.shape == (1, len(scalar), 16)
        for round_index, round_key in enumerate(scalar):
            assert bytes(tensor[0, round_index]) == round_key


def test_expand_keys_rejects_mixed_lengths():
    with pytest.raises(ValueError):
        expand_keys([bytes(16), bytes(24)])


def test_encrypt_round_states_rejects_key_count_mismatch():
    with pytest.raises(ValueError):
        encrypt_round_states([bytes(16)] * 3, [bytes(16)] * 2)


def test_as_block_matrix_validates_shape():
    with pytest.raises(ValueError):
        as_block_matrix([b"short"])
    matrix = as_block_matrix([bytes(range(16))])
    assert matrix.shape == (1, 16) and matrix.dtype == np.uint8


def test_switching_activity_counts_rejects_bad_shape():
    with pytest.raises(ValueError):
        switching_activity_counts(np.zeros((3, 4), dtype=np.uint8))


def test_scalar_encrypt_fast_path_matches_trace(rng):
    """``AES.encrypt`` no longer builds a trace but must equal it."""
    for key_length in KEY_LENGTHS:
        key = bytes(int(x) for x in rng.integers(0, 256, size=key_length))
        for plaintext in _random_blocks(rng, 4):
            aes = AES(key)
            assert aes.encrypt(plaintext) == \
                aes.encrypt_trace(plaintext).ciphertext
            assert aes.decrypt(aes.encrypt(plaintext)) == plaintext


def test_inv_shift_rows_perm_is_the_inverse_permutation():
    assert sorted(INV_SHIFT_ROWS_PERM) == list(range(16))
    for position in range(16):
        assert SHIFT_ROWS_PERM[INV_SHIFT_ROWS_PERM[position]] == position
        assert INV_SHIFT_ROWS_PERM[SHIFT_ROWS_PERM[position]] == position
