"""Property-based tests for the AES implementation."""

from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.state import hamming_distance

BLOCKS = st.binary(min_size=16, max_size=16)
KEYS_128 = st.binary(min_size=16, max_size=16)
KEYS_ANY = st.one_of(
    st.binary(min_size=16, max_size=16),
    st.binary(min_size=24, max_size=24),
    st.binary(min_size=32, max_size=32),
)


@given(KEYS_ANY, BLOCKS)
@settings(max_examples=40, deadline=None)
def test_encrypt_decrypt_round_trip(key, plaintext):
    aes = AES(key)
    assert aes.decrypt(aes.encrypt(plaintext)) == plaintext


@given(KEYS_128, BLOCKS)
@settings(max_examples=25, deadline=None)
def test_encryption_is_deterministic(key, plaintext):
    assert AES(key).encrypt(plaintext) == AES(key).encrypt(plaintext)


@given(KEYS_128, BLOCKS, st.integers(min_value=0, max_value=127))
@settings(max_examples=25, deadline=None)
def test_plaintext_avalanche(key, plaintext, bit):
    """Flipping one plaintext bit changes roughly half the ciphertext bits."""
    aes = AES(key)
    flipped = bytearray(plaintext)
    flipped[bit // 8] ^= 1 << (7 - bit % 8)
    distance = hamming_distance(aes.encrypt(plaintext), aes.encrypt(bytes(flipped)))
    assert 20 <= distance <= 108


@given(KEYS_128, BLOCKS)
@settings(max_examples=25, deadline=None)
def test_trace_ciphertext_matches_encrypt(key, plaintext):
    aes = AES(key)
    assert aes.encrypt_trace(plaintext).ciphertext == aes.encrypt(plaintext)


@given(KEYS_128, BLOCKS)
@settings(max_examples=20, deadline=None)
def test_trace_switching_activity_matches_state_transitions(key, plaintext):
    aes = AES(key)
    trace = aes.encrypt_trace(plaintext)
    for record in trace.rounds:
        assert record.switching_activity == hamming_distance(
            record.state_in, record.state_out
        )
