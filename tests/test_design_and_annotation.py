"""Tests for the golden design and the delay-annotation builder."""

import pytest

from repro.fpga.annotation import build_delay_annotation
from repro.fpga.design import GoldenDesign, build_golden_design_cached
from repro.fpga.device import virtex5_lx30
from repro.fpga.power_grid import PowerGrid
from repro.netlist.timing import TimingEngine
from repro.variation.inter_die import DiePopulation
from repro.variation.intra_die import IntraDieVariation


def test_golden_design_build_is_deterministic(golden_design):
    other = GoldenDesign.build(device=golden_design.device)
    assert other.placement.cell_positions == golden_design.placement.cell_positions
    assert other.net_delays_ps == golden_design.net_delays_ps


def test_golden_design_area_accounting(golden_design):
    assert golden_design.aes_total_slices() == 1836
    assert 0 < golden_design.modelled_slice_count() < golden_design.aes_total_slices()
    assert golden_design.area_fraction_of_aes(18.36) == pytest.approx(0.01)


def test_golden_design_net_delays_cover_all_nets(golden_design):
    assert set(golden_design.net_delays_ps) == golden_design.netlist.nets()
    assert all(delay > 0 for delay in golden_design.net_delays_ps.values())


def test_golden_design_placement_within_aes_region(golden_design):
    region = golden_design.floorplan.aes_region
    for coord in golden_design.placement.cell_positions.values():
        assert region.contains(*coord)


def test_build_golden_design_cached_reuses_instance():
    first = build_golden_design_cached(virtex5_lx30())
    second = build_golden_design_cached(virtex5_lx30())
    assert first is second


def test_annotation_without_variation_uses_routed_delays(golden_design):
    annotation = build_delay_annotation(golden_design)
    assert annotation.cell_scale == 1.0
    assert annotation.cell_offsets_ps == {}
    some_net = next(iter(golden_design.net_delays_ps))
    assert annotation.net_delay_ps(some_net) == pytest.approx(
        golden_design.net_delays_ps[some_net]
    )


def test_annotation_applies_die_scale_and_intra_die_offsets(golden_design):
    population = DiePopulation(size=2, seed=5)
    die = population[0]
    intra = IntraDieVariation(seed=die.intra_die_seed)
    annotation = build_delay_annotation(golden_design, die=die, intra_die=intra)
    assert annotation.cell_scale == pytest.approx(die.delay_scale)
    assert len(annotation.cell_offsets_ps) == len(
        golden_design.placement.cell_positions
    )


def test_annotation_adds_tap_delays_and_droop(golden_design, infected_design):
    grid = PowerGrid(golden_design.device)
    annotation = build_delay_annotation(
        golden_design,
        extra_net_delays_ps=infected_design.tap_extra_delay_ps,
        aggressor_positions=infected_design.aggressor_positions(),
        power_grid=grid,
    )
    tapped_net = next(iter(infected_design.tap_extra_delay_ps))
    assert annotation.net_delay_ps(tapped_net) > golden_design.net_delays_ps[tapped_net]
    assert any(offset > 0 for offset in annotation.cell_offsets_ps.values())


def test_annotation_changes_critical_path(golden_design, infected_design):
    grid = PowerGrid(golden_design.device)
    clean = build_delay_annotation(golden_design)
    infected = build_delay_annotation(
        golden_design,
        extra_net_delays_ps=infected_design.tap_extra_delay_ps,
        aggressor_positions=infected_design.aggressor_positions(),
        power_grid=grid,
    )
    clean_cp = TimingEngine(golden_design.netlist, clean).critical_path_ps()
    infected_cp = TimingEngine(golden_design.netlist, infected).critical_path_ps()
    assert infected_cp > clean_cp
