"""Tests for the process-variation models."""

import numpy as np
import pytest

from repro.variation.bowman import (
    BowmanParameters,
    die_to_die_dominance,
    fmax_statistics,
    sample_die_critical_delays,
)
from repro.variation.inter_die import DiePopulation, DieProfile
from repro.variation.intra_die import IntraDieVariation


def test_intra_die_variation_is_deterministic():
    a = IntraDieVariation(seed=42)
    b = IntraDieVariation(seed=42)
    assert a.cell_offset_ps("cell_x", (3, 4)) == b.cell_offset_ps("cell_x", (3, 4))


def test_intra_die_variation_differs_across_dies():
    a = IntraDieVariation(seed=1)
    b = IntraDieVariation(seed=2)
    offsets_a = [a.cell_offset_ps(f"c{k}", (k, k)) for k in range(20)]
    offsets_b = [b.cell_offset_ps(f"c{k}", (k, k)) for k in range(20)]
    assert offsets_a != offsets_b


def test_intra_die_spatial_correlation():
    """Neighbouring cells see similar spatial components."""
    variation = IntraDieVariation(seed=7, sigma_random_ps=0.0)
    near = abs(variation.spatial_field((10, 10)) - variation.spatial_field((11, 10)))
    far = abs(variation.spatial_field((10, 10)) - variation.spatial_field((70, 55)))
    # Not guaranteed pointwise, but with zero random part the field is smooth;
    # neighbouring slices must be much closer than a 1-sigma swing.
    assert near < 0.5


def test_intra_die_offsets_for_positions():
    variation = IntraDieVariation(seed=3)
    positions = {f"c{k}": (k, 2 * k) for k in range(10)}
    offsets = variation.offsets_for(positions)
    assert set(offsets) == set(positions)
    assert variation.total_sigma_ps() == pytest.approx(
        np.hypot(variation.sigma_spatial_ps, variation.sigma_random_ps)
    )


def test_intra_die_validation():
    with pytest.raises(ValueError):
        IntraDieVariation(seed=0, sigma_spatial_ps=-1)
    with pytest.raises(ValueError):
        IntraDieVariation(seed=0, die_rows=0)


def test_die_profile_validation():
    with pytest.raises(ValueError):
        DieProfile(0, delay_scale=0.0, em_gain=1.0, em_offset=0.0, intra_die_seed=0)
    with pytest.raises(ValueError):
        DieProfile(0, delay_scale=1.0, em_gain=0.0, em_offset=0.0, intra_die_seed=0)
    profile = DieProfile(3, 1.02, 0.98, 1.0, 17)
    assert "die 3" in profile.describe()


def test_die_population_reproducible_and_prefix_stable():
    small = DiePopulation(size=4, seed=11)
    large = DiePopulation(size=8, seed=11)
    assert len(small) == 4
    for index in range(4):
        assert small[index] == large[index]
    assert [d.die_id for d in small] == [0, 1, 2, 3]


def test_die_population_spread_parameters():
    population = DiePopulation(size=50, seed=1, sigma_delay_scale=0.05)
    scales = np.array(population.delay_scales())
    assert 0.9 < scales.mean() < 1.1
    assert scales.std() > 0.01
    assert len(population.em_gains()) == 50


def test_die_population_validation():
    with pytest.raises(ValueError):
        DiePopulation(size=0)
    with pytest.raises(ValueError):
        DiePopulation(size=2, sigma_em_gain=-0.1)


def test_bowman_parameters_validation():
    with pytest.raises(ValueError):
        BowmanParameters(nominal_delay_ps=0, sigma_within_die_ps=1,
                         sigma_die_to_die_ps=1)
    with pytest.raises(ValueError):
        BowmanParameters(nominal_delay_ps=100, sigma_within_die_ps=-1,
                         sigma_die_to_die_ps=1)


def test_bowman_critical_delay_exceeds_nominal():
    params = BowmanParameters(nominal_delay_ps=1000, sigma_within_die_ps=20,
                              sigma_die_to_die_ps=30, num_critical_paths=64)
    delays = sample_die_critical_delays(params, num_dies=200, seed=3)
    assert delays.shape == (200,)
    # Taking a max over many paths biases the critical delay above nominal.
    assert delays.mean() > params.nominal_delay_ps


def test_bowman_statistics_and_dominance():
    params = BowmanParameters(nominal_delay_ps=1000, sigma_within_die_ps=20,
                              sigma_die_to_die_ps=30)
    stats = fmax_statistics(params, num_dies=500, seed=1)
    assert stats["mean_delay_ps"] > 1000
    assert stats["std_delay_ps"] > 0
    assert 0 < stats["mean_fmax_ghz"] < 1.1
    dominance = die_to_die_dominance(params)
    assert 0.5 < dominance < 1.0
    assert die_to_die_dominance(
        BowmanParameters(1000, 0.0, 0.0)
    ) == 0.0


def test_bowman_rejects_bad_die_count():
    params = BowmanParameters(1000, 10, 10)
    with pytest.raises(ValueError):
        sample_die_critical_delays(params, num_dies=0)
