"""Unit tests for primitive cells."""

import pytest

from repro.netlist.cells import (
    Cell,
    CellType,
    DEFAULT_CELL_DELAY_PS,
    make_and,
    make_dff,
    make_lut,
    make_mux2,
    make_xor,
)


def test_lut_requires_matching_truth_table_length():
    with pytest.raises(ValueError):
        make_lut("bad", ["a", "b"], "y", (0, 1))
    with pytest.raises(ValueError):
        Cell("bad", CellType.LUT, ("a",), "y", truth_table=None)


def test_lut_rejects_non_binary_truth_table():
    with pytest.raises(ValueError):
        make_lut("bad", ["a"], "y", (0, 2))


def test_lut_rejects_too_many_inputs():
    with pytest.raises(ValueError):
        make_lut("bad", [f"i{k}" for k in range(7)], "y", (0,) * 128)


def test_lut_evaluation_addresses_by_input_order():
    # Truth table index: input 0 is the LSB of the address.
    lut = make_lut("lut", ["a", "b"], "y", (0, 1, 0, 0))  # y = a AND NOT b
    assert lut.evaluate([1, 0]) == 1
    assert lut.evaluate([0, 0]) == 0
    assert lut.evaluate([1, 1]) == 0


def test_basic_gate_evaluation():
    assert make_xor("x", "a", "b", "y").evaluate([1, 1]) == 0
    assert make_xor("x", "a", "b", "y").evaluate([1, 0]) == 1
    assert make_and("a", "a", "b", "y").evaluate([1, 1]) == 1
    assert Cell("o", CellType.OR2, ("a", "b"), "y").evaluate([0, 1]) == 1
    assert Cell("i", CellType.INV, ("a",), "y").evaluate([1]) == 0
    assert Cell("b", CellType.BUF, ("a",), "y").evaluate([0]) == 0


def test_mux2_selects_between_inputs():
    mux = make_mux2("m", "sel", "a", "b", "y")
    assert mux.evaluate([0, 1, 0]) == 1  # sel=0 -> input a
    assert mux.evaluate([1, 1, 0]) == 0  # sel=1 -> input b


def test_mux2_requires_three_inputs():
    with pytest.raises(ValueError):
        Cell("m", CellType.MUX2, ("s", "a"), "y")


def test_constants_take_no_inputs():
    const = Cell("one", CellType.CONST1, (), "y")
    assert const.evaluate([]) == 1
    with pytest.raises(ValueError):
        Cell("bad", CellType.CONST0, ("a",), "y")


def test_dff_properties():
    dff = make_dff("r", "d", "q")
    assert dff.is_sequential
    assert not dff.is_combinational
    assert dff.evaluate([1]) == 1
    assert dff.lut_equivalents() == 0.0


def test_evaluate_rejects_wrong_operand_count():
    gate = make_xor("x", "a", "b", "y")
    with pytest.raises(ValueError):
        gate.evaluate([1])


def test_intrinsic_delays_positive_for_logic():
    for cell_type in (CellType.LUT, CellType.XOR2, CellType.MUX2):
        assert DEFAULT_CELL_DELAY_PS[cell_type] > 0
    assert DEFAULT_CELL_DELAY_PS[CellType.DFF] == 0.0


def test_lut_equivalents_accounting():
    lut = make_lut("l", ["a"], "y", (0, 1))
    assert lut.lut_equivalents() == 1.0
    assert make_mux2("m", "s", "a", "b", "y").lut_equivalents() == 0.0
