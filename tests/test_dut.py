"""Tests for the device-under-test abstraction."""

import pytest

from repro.measurement.dut import DeviceUnderTest


def test_golden_dut_properties(golden_design, die_population):
    dut = DeviceUnderTest(golden_design, die_population[0])
    assert not dut.is_infected
    assert dut.trojan is None
    assert dut.infected is None
    assert dut.golden is golden_design
    assert dut.netlist is golden_design.netlist
    assert dut.label == "golden_die0"
    assert dut.em_gain() == pytest.approx(die_population[0].em_gain)
    assert dut.em_offset() == pytest.approx(die_population[0].em_offset)


def test_infected_dut_properties(infected_design, die_population):
    dut = DeviceUnderTest(infected_design, die_population[1], label="suspect")
    assert dut.is_infected
    assert dut.trojan is infected_design.trojan
    assert dut.infected is infected_design
    assert dut.golden is infected_design.golden
    assert dut.label == "suspect"


def test_nominal_die_defaults(golden_design):
    dut = DeviceUnderTest(golden_design)
    assert dut.die is None
    assert dut.em_gain() == 1.0
    assert dut.em_offset() == 0.0
    assert dut.intra_die_variation() is None
    annotation = dut.delay_annotation()
    assert annotation.cell_scale == 1.0


def test_annotation_cached_per_dut(golden_design, die_population):
    dut = DeviceUnderTest(golden_design, die_population[0])
    assert dut.delay_annotation() is dut.delay_annotation()


def test_infected_annotation_includes_taps(infected_design, die_population):
    dut = DeviceUnderTest(infected_design, die_population[0])
    annotation = dut.delay_annotation()
    tapped = next(iter(infected_design.tap_extra_delay_ps))
    golden_delay = infected_design.golden.net_delays_ps[tapped]
    assert annotation.net_delay_ps(tapped) > golden_delay


def test_intra_die_variation_can_be_disabled(golden_design, die_population):
    with_variation = DeviceUnderTest(golden_design, die_population[0])
    without = DeviceUnderTest(golden_design, die_population[0],
                              enable_intra_die_variation=False)
    assert with_variation.intra_die_variation() is not None
    assert without.intra_die_variation() is None
    assert without.delay_annotation().cell_offsets_ps == {}


def test_same_die_same_design_same_annotation(golden_design, die_population):
    a = DeviceUnderTest(golden_design, die_population[2])
    b = DeviceUnderTest(golden_design, die_population[2])
    ann_a = a.delay_annotation()
    ann_b = b.delay_annotation()
    assert ann_a.cell_offsets_ps == ann_b.cell_offsets_ps
    assert ann_a.cell_scale == ann_b.cell_scale
