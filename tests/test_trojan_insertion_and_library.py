"""Tests for trojan insertion and the trojan catalog."""

import pytest

from repro.fpga.device import virtex5_lx30
from repro.trojan.insertion import InsertionError, insert_trojan
from repro.trojan.library import (
    TROJAN_SPECS,
    available_trojans,
    build_size_sweep,
    build_trojan,
)
from repro.trojan.payload import payload_luts_for_target_area


def test_insertion_preserves_golden_layout(golden_design, infected_design):
    golden_slices = set(golden_design.placement.slice_map.occupied_slices())
    for coord in infected_design.trojan_placement.cell_positions.values():
        assert coord not in golden_slices
    infected_design.verify_layout_preserved()
    # The golden design object is shared, not copied.
    assert infected_design.golden is golden_design


def test_insertion_reports_tap_loading(golden_design, infected_design):
    taps = infected_design.tap_extra_delay_ps
    assert set(taps) == set(infected_design.trojan.tapped_host_nets)
    assert all(extra > 0 for extra in taps.values())
    assert all(net in golden_design.netlist.nets() for net in taps)


def test_insertion_area_accounting(infected_design):
    assert infected_design.trojan_slice_count() > 0
    assert 0 < infected_design.area_fraction_of_aes() < 0.05
    assert infected_design.area_fraction_of_device() < \
        infected_design.area_fraction_of_aes()


def test_insertion_rejects_unknown_tapped_net(golden_design, small_trojan):
    small_trojan_bad = small_trojan
    original = list(small_trojan_bad.tapped_host_nets)
    small_trojan_bad.tapped_host_nets[0] = "no_such_net"
    try:
        with pytest.raises(InsertionError):
            insert_trojan(golden_design, small_trojan_bad)
    finally:
        small_trojan_bad.tapped_host_nets[:] = original


def test_insertion_of_sequential_trojan(golden_design, sequential_trojan):
    infected = insert_trojan(golden_design, sequential_trojan)
    assert infected.tap_extra_delay_ps == {}
    assert infected.trojan_slice_count() > 0
    assert infected.aggressor_positions()


def test_catalog_names_and_specs():
    assert set(available_trojans()) == {"HT_comb", "HT_seq", "HT1", "HT2", "HT3"}
    assert TROJAN_SPECS["HT3"].trigger_width == 128
    with pytest.raises(KeyError):
        build_trojan("HT_unknown")


def test_catalog_sizes_match_paper_fractions(golden_design):
    device = golden_design.device
    expected = {"HT1": 0.005, "HT2": 0.010, "HT3": 0.017}
    for name, fraction in expected.items():
        trojan = build_trojan(name, device)
        infected = insert_trojan(golden_design, trojan)
        assert infected.area_fraction_of_aes() == pytest.approx(fraction, rel=0.25)


def test_catalog_size_ordering(golden_design):
    sweep = build_size_sweep(golden_design.device)
    luts = [trojan.lut_count() for trojan in sweep]
    assert luts[0] < luts[1] < luts[2]


def test_ht_comb_matches_section2_footprint(golden_design, ht_comb):
    infected = insert_trojan(golden_design, ht_comb)
    # Paper: 0.19 % of the FPGA slices; accept a modest modelling margin.
    assert infected.area_fraction_of_device() == pytest.approx(0.0019, rel=0.35)


def test_payload_padding_helper():
    assert payload_luts_for_target_area(40, 10) == 30
    assert payload_luts_for_target_area(5, 10) == 0
    with pytest.raises(ValueError):
        payload_luts_for_target_area(-1, 0)
