"""Unit tests for the AES S-box construction."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.gf import gf_inv
from repro.crypto.sbox import (
    INV_SBOX,
    SBOX,
    inv_sub_byte,
    sbox_output_bit,
    sub_byte,
    sub_bytes,
)

# FIPS-197 reference values.
KNOWN_SBOX = {
    0x00: 0x63,
    0x01: 0x7C,
    0x10: 0xCA,
    0x53: 0xED,
    0xAA: 0xAC,
    0xFF: 0x16,
    0x9A: 0xB8,
}


def test_sbox_known_answer_values():
    for value, expected in KNOWN_SBOX.items():
        assert SBOX[value] == expected


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))


def test_inverse_sbox_inverts_forward_sbox():
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value
        assert SBOX[INV_SBOX[value]] == value


def test_sbox_has_no_fixed_points():
    assert all(SBOX[value] != value for value in range(256))


def test_sbox_affine_of_inverse():
    # SBOX(x) differs from the raw field inverse by the affine transform,
    # so SBOX(x) xor SBOX(y) never equals inv(x) xor inv(y) systematically;
    # instead verify the defining relation on a few points through gf_inv.
    for value in (1, 2, 0x53, 0xCA):
        inverse = gf_inv(value)
        # Applying the affine map twice is checked indirectly through the
        # generated tables; here we only assert the inverse feeds the table.
        assert SBOX[value] == SBOX[value]
        assert INV_SBOX[SBOX[inverse]] == inverse


def test_sub_byte_rejects_out_of_range():
    with pytest.raises(ValueError):
        sub_byte(256)
    with pytest.raises(ValueError):
        inv_sub_byte(-1)


def test_sub_bytes_applies_elementwise():
    data = bytes([0x00, 0x01, 0x53])
    assert sub_bytes(data) == [0x63, 0x7C, 0xED]


def test_sbox_output_bit_matches_table():
    for value in (0, 1, 0x53, 0xFF):
        for bit in range(8):
            assert sbox_output_bit(value, bit) == (SBOX[value] >> bit) & 1


def test_sbox_output_bit_rejects_bad_bit_index():
    with pytest.raises(ValueError):
        sbox_output_bit(0, 8)


@given(st.integers(min_value=0, max_value=255))
def test_sbox_round_trip_property(value):
    assert inv_sub_byte(sub_byte(value)) == value
