"""Unit tests for GF(2^8) arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.gf import (
    build_log_tables,
    gf_inv,
    gf_mul,
    gf_pow,
    xtime,
)

BYTES = st.integers(min_value=0, max_value=255)


def test_xtime_known_values():
    assert xtime(0x57) == 0xAE
    assert xtime(0xAE) == 0x47
    assert xtime(0x47) == 0x8E
    assert xtime(0x8E) == 0x07


def test_gf_mul_known_value_fips():
    # FIPS-197 example: 0x57 * 0x83 = 0xC1.
    assert gf_mul(0x57, 0x83) == 0xC1


def test_gf_mul_identity_and_zero():
    for value in range(256):
        assert gf_mul(value, 1) == value
        assert gf_mul(value, 0) == 0


def test_gf_mul_rejects_out_of_range():
    with pytest.raises(ValueError):
        gf_mul(256, 1)
    with pytest.raises(ValueError):
        gf_mul(1, -1)
    with pytest.raises(TypeError):
        gf_mul(1.5, 1)


def test_gf_pow_matches_repeated_multiplication():
    value = 0x53
    acc = 1
    for exponent in range(8):
        assert gf_pow(value, exponent) == acc
        acc = gf_mul(acc, value)


def test_gf_pow_rejects_negative_exponent():
    with pytest.raises(ValueError):
        gf_pow(2, -1)


def test_gf_inv_zero_maps_to_zero():
    assert gf_inv(0) == 0


def test_gf_inv_of_one_is_one():
    assert gf_inv(1) == 1


def test_gf_inv_all_nonzero_elements():
    for value in range(1, 256):
        assert gf_mul(value, gf_inv(value)) == 1


def test_log_tables_consistent_with_mul():
    log, alog = build_log_tables()
    for a in (3, 0x53, 0xCA, 0xFF):
        for b in (5, 0x11, 0x80):
            expected = gf_mul(a, b)
            via_log = alog[(log[a] + log[b]) % 255]
            assert via_log == expected


@given(BYTES, BYTES)
def test_gf_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(BYTES, BYTES, BYTES)
def test_gf_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(BYTES, BYTES, BYTES)
def test_gf_mul_distributes_over_xor(a, b, c):
    assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


@given(BYTES)
def test_xtime_equals_mul_by_two(a):
    assert xtime(a) == gf_mul(a, 2)
