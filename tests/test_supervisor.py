"""Fault-tolerant campaign supervision: retries, quarantine, chaos runs.

The acceptance test points the paper's own methodology at the runner:
a seeded :class:`~repro.testing.chaos.FaultPlan` injects worker
crashes, a hang and a mid-write truncation into a multi-worker
store-backed campaign, and the merged result must come out bit-identical
to a clean serial run — with exactly the one scripted torn object in
quarantine and nothing quarantined spuriously.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import (
    CampaignCellResult,
    CampaignEngine,
    CampaignResult,
    CampaignSpec,
    SupervisorPolicy,
    merge_campaign_results,
)
from repro.store import ArtifactStore, spec_content_fragment
from repro.testing import FaultInjection, FaultKind, FaultPlan

#: One small two-chunk grid shared by every test in this module; retry
#: backoff is near-zero so retries don't dominate the test wall-clock.
SPEC_KWARGS = dict(
    name="supervised", trojans=("HT1",), die_counts=(2, 3),
    metrics=("local_maxima_sum", "l1"), seed=7,
    max_retries=2, retry_backoff_s=0.01,
)


@pytest.fixture(scope="module")
def serial_rows():
    result = CampaignEngine(CampaignSpec(**SPEC_KWARGS)).run()
    return [row.to_dict() for row in result.rows()]


def _flaky_run_cell(engine, fail_attempts):
    """Wrap ``engine.run_cell`` to raise on scripted (cell, attempt)s."""
    seen: dict = {}
    original = engine.run_cell

    def run_cell(cell):
        attempt = seen.get(cell.index, 0) + 1
        seen[cell.index] = attempt
        if (cell.index, attempt) in fail_attempts:
            raise RuntimeError(f"scripted failure {cell.index}/{attempt}")
        return original(cell)

    engine.run_cell = run_cell
    return seen


# -- spec knobs ---------------------------------------------------------------


def test_spec_validates_fault_tolerance_knobs():
    with pytest.raises(ValueError, match="max_retries"):
        CampaignSpec(trojans=("HT1",), die_counts=(2,), max_retries=-1)
    with pytest.raises(ValueError, match="cell_timeout_s"):
        CampaignSpec(trojans=("HT1",), die_counts=(2,), cell_timeout_s=0.0)
    with pytest.raises(ValueError, match="retry_backoff_s"):
        CampaignSpec(trojans=("HT1",), die_counts=(2,),
                     retry_backoff_s=-0.5)
    spec = CampaignSpec(trojans=("HT1",), die_counts=(2,), max_retries=5,
                        cell_timeout_s=30.0, retry_backoff_s=0.0)
    round_tripped = CampaignSpec.from_dict(
        json.loads(json.dumps(spec.to_dict())))
    assert round_tripped.max_retries == 5
    assert round_tripped.cell_timeout_s == 30.0
    assert round_tripped.retry_backoff_s == 0.0


def test_retry_knobs_are_execution_only():
    """Tuning retries/timeouts must keep every stored artifact warm."""
    patient = CampaignSpec(**SPEC_KWARGS)
    impatient = CampaignSpec(**{**SPEC_KWARGS, "max_retries": 0,
                                "cell_timeout_s": 1.0,
                                "retry_backoff_s": 9.0})
    assert spec_content_fragment(patient.to_dict()) == \
        spec_content_fragment(impatient.to_dict())


def test_policy_backoff_is_deterministic_and_exponential():
    policy = SupervisorPolicy(retry_backoff_s=0.5, seed=3)
    first = policy.backoff_s(cell_index=1, attempt=1)
    assert first == policy.backoff_s(cell_index=1, attempt=1)
    assert 0.25 <= first <= 0.75
    assert 1.0 <= policy.backoff_s(cell_index=1, attempt=3) <= 3.0
    assert SupervisorPolicy(retry_backoff_s=0.0).backoff_s(1, 1) == 0.0


# -- fault-plan validation ----------------------------------------------------


def test_fault_plan_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultInjection(cell_index=0, attempt=1, kind="meteor")
    with pytest.raises(ValueError, match="attempt numbers"):
        FaultInjection(cell_index=0, attempt=0, kind=FaultKind.CRASH)
    duplicate = (FaultInjection(0, 1, FaultKind.CRASH),
                 FaultInjection(0, 1, FaultKind.HANG))
    with pytest.raises(ValueError, match="one fault per"):
        FaultPlan(injections=duplicate)
    plan = FaultPlan(injections=(FaultInjection(2, 1, FaultKind.CRASH),
                                 FaultInjection(3, 1, FaultKind.INTERRUPT)))
    assert plan.lookup(2, 1).kind == FaultKind.CRASH
    assert plan.lookup(2, 2) is None
    assert plan.worker_fault(3, 1) is None  # interrupts are parent-side
    assert plan.interrupts_at(3, 1) and not plan.interrupts_at(2, 1)


def test_fault_plan_requires_multi_worker_run(tmp_path):
    spec = CampaignSpec(**SPEC_KWARGS)  # workers=1
    plan = FaultPlan(injections=(FaultInjection(0, 1, FaultKind.CRASH),))
    with pytest.raises(ValueError, match="multi-worker"):
        CampaignEngine(spec, store=tmp_path / "store").run(fault_plan=plan)


# -- serial retry semantics ---------------------------------------------------


def test_serial_run_retries_transient_failures(tmp_path, serial_rows):
    spec = CampaignSpec(**SPEC_KWARGS)
    engine = CampaignEngine(spec, store=tmp_path / "store")
    attempts = _flaky_run_cell(engine, {(0, 1), (2, 1), (2, 2)})
    result = engine.run()
    assert [row.to_dict() for row in result.rows()] == serial_rows
    assert result.failed_cells() == []
    assert attempts[0] == 2 and attempts[2] == 3
    by_index = {cell.index: cell for cell in result.cells}
    assert by_index[0].attempts == 2
    assert by_index[2].attempts == 3
    assert by_index[1].attempts == 1


def test_serial_poison_cell_yields_failed_row_and_recovers_on_resume(
        tmp_path, serial_rows):
    spec = CampaignSpec(**SPEC_KWARGS)
    store_root = tmp_path / "store"
    engine = CampaignEngine(spec, store=store_root)
    _flaky_run_cell(engine, {(1, attempt) for attempt in range(1, 10)})
    degraded = engine.run(artifact_dir=tmp_path / "out")

    failed = degraded.failed_cells()
    assert [cell.index for cell in failed] == [1]
    assert failed[0].status == "failed"
    assert failed[0].attempts == spec.max_retries + 1
    assert "scripted failure 1/3" in failed[0].error
    # Reporting skips the quarantined cell but names it.
    assert len(degraded.rows()) == len(serial_rows) - 1
    assert "cell 1 FAILED after 3 attempt(s)" in degraded.report()
    # The CSV carries an explicit degraded stub row.
    csv_text = (tmp_path / "out" / f"{spec.name}.csv").read_text()
    assert "failed" in csv_text and "status" in csv_text
    # The JSON summary round-trips the failed cell.
    loaded = CampaignResult.from_dict(
        json.loads((tmp_path / "out" / f"{spec.name}.json").read_text()))
    assert [cell.index for cell in loaded.failed_cells()] == [1]

    # Resume: the failed record counts as pending; a healthy engine
    # retries exactly that cell and the result comes out whole.
    healthy = CampaignEngine(spec, store=store_root)
    computed = _flaky_run_cell(healthy, set())
    recovered = healthy.run()
    assert recovered.failed_cells() == []
    assert [row.to_dict() for row in recovered.rows()] == serial_rows
    assert set(computed) == {1}


# -- merge semantics ----------------------------------------------------------


def test_merge_prefers_ok_over_failed_duplicates(serial_rows):
    spec = CampaignSpec(**SPEC_KWARGS)
    grid = spec.grid()
    ok = CampaignEngine(spec).run()
    failed_cells = [CampaignCellResult.failed(cell, error="boom", attempts=3)
                    for cell in grid]
    degraded = CampaignResult(spec=spec, cells=failed_cells)
    for ordering in ([degraded, ok], [ok, degraded]):
        merged = merge_campaign_results(ordering)
        assert merged.failed_cells() == []
        assert [row.to_dict() for row in merged.rows()] == serial_rows
    # A degraded-only merge stays degraded instead of erroring: failed
    # cells count as coverage.
    still_degraded = merge_campaign_results([degraded])
    assert len(still_degraded.failed_cells()) == len(grid)


def test_merge_truncates_missing_cell_listing():
    spec = CampaignSpec(name="wide", trojans=("HT1",),
                        die_counts=(2, 3, 4, 5),
                        metrics=("local_maxima_sum", "l1", "max_difference"),
                        seed=7)
    assert spec.num_cells() == 12
    empty = CampaignResult(spec=spec, cells=[])
    with pytest.raises(ValueError, match="missing cell") as excinfo:
        merge_campaign_results([empty])
    message = str(excinfo.value)
    assert "12 missing cell indices" in message
    assert "… and 4 more" in message
    assert "11" not in message  # the tail is elided, not enumerated


# -- chaos acceptance ---------------------------------------------------------


def test_chaos_run_matches_clean_serial_run_bit_for_bit(tmp_path,
                                                        serial_rows):
    """Acceptance: >= 3 crashes + 1 hang + 1 mid-write truncation into a
    two-worker store-backed campaign; the run completes, quarantines
    exactly the scripted torn object, and the merged rows are
    bit-identical to the clean serial run."""
    plan = FaultPlan(injections=(
        # Three worker crashes (one cell crashes twice, succeeding on
        # its third and final attempt).
        FaultInjection(cell_index=0, attempt=1, kind=FaultKind.CRASH),
        FaultInjection(cell_index=1, attempt=1, kind=FaultKind.CRASH),
        FaultInjection(cell_index=2, attempt=2, kind=FaultKind.CRASH),
        # One hang, resolved only by the supervisor's cell timeout.
        FaultInjection(cell_index=3, attempt=1, kind=FaultKind.HANG),
        # One torn store write: cell 2's first attempt records a
        # manifest entry then truncates the object and dies; the retry
        # must quarantine it on read and recompute.
        FaultInjection(cell_index=2, attempt=1, kind=FaultKind.TRUNCATE),
    ))
    store_root = tmp_path / "store"
    spec = CampaignSpec(**{**SPEC_KWARGS, "workers": 2,
                           "cell_timeout_s": 15.0})
    engine = CampaignEngine(spec, store=store_root)
    result = engine.run(fault_plan=plan)

    assert result.failed_cells() == []
    assert [row.to_dict() for row in result.rows()] == serial_rows
    # Retries were really consumed (crash coordinates burnt attempts).
    by_index = {cell.index: cell for cell in result.cells}
    assert by_index[0].attempts == 2
    assert by_index[2].attempts == 3
    # Exactly the scripted torn object was quarantined — nothing
    # spurious — and the store audit comes back clean.
    store = ArtifactStore(store_root)
    assert len(list(store.quarantine_dir.iterdir())) == 1
    assert store.fsck().clean()


def test_chaos_timeout_exhaustion_quarantines_the_hanging_cell(tmp_path,
                                                               serial_rows):
    """A cell that hangs on every attempt becomes a failed row, not an
    aborted campaign — and a healthy rerun recovers it."""
    plan = FaultPlan(injections=tuple(
        FaultInjection(cell_index=1, attempt=attempt, kind=FaultKind.HANG)
        for attempt in (1, 2)))
    store_root = tmp_path / "store"
    spec = CampaignSpec(**{**SPEC_KWARGS, "workers": 2, "max_retries": 1,
                           "cell_timeout_s": 3.0})
    degraded = CampaignEngine(spec, store=store_root).run(fault_plan=plan)
    failed = degraded.failed_cells()
    assert [cell.index for cell in failed] == [1]
    assert "cell_timeout_s" in failed[0].error
    assert len(degraded.rows()) == len(serial_rows) - 1

    recovered = CampaignEngine(spec, store=store_root).run()
    assert recovered.failed_cells() == []
    assert [row.to_dict() for row in recovered.rows()] == serial_rows
