"""Unit tests for the behavioural AES implementation."""

import pytest

from repro.crypto.aes import (
    AES,
    decrypt_block,
    encrypt_block,
    inv_mix_columns_block,
    inv_shift_rows_block,
    inv_sub_bytes_block,
    mix_columns_block,
    shift_rows_block,
    sub_bytes_block,
)

# FIPS-197 Appendix C known-answer vectors.
FIPS_KEY_128 = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT_128 = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
FIPS_KEY_192 = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
FIPS_CT_192 = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
FIPS_KEY_256 = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
)
FIPS_CT_256 = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")


def test_fips197_aes128_known_answer():
    assert encrypt_block(FIPS_KEY_128, FIPS_PT) == FIPS_CT_128


def test_fips197_aes192_known_answer():
    assert encrypt_block(FIPS_KEY_192, FIPS_PT) == FIPS_CT_192


def test_fips197_aes256_known_answer():
    assert encrypt_block(FIPS_KEY_256, FIPS_PT) == FIPS_CT_256


def test_decrypt_inverts_encrypt_for_all_key_sizes():
    for key, ct in ((FIPS_KEY_128, FIPS_CT_128), (FIPS_KEY_192, FIPS_CT_192),
                    (FIPS_KEY_256, FIPS_CT_256)):
        assert decrypt_block(key, ct) == FIPS_PT


def test_encrypt_rejects_bad_block_size():
    aes = AES(FIPS_KEY_128)
    with pytest.raises(ValueError):
        aes.encrypt(bytes(15))
    with pytest.raises(ValueError):
        aes.decrypt(bytes(17))


def test_round_operations_invert_each_other():
    block = bytes(range(16))
    assert inv_sub_bytes_block(sub_bytes_block(block)) == block
    assert inv_shift_rows_block(shift_rows_block(block)) == block
    assert inv_mix_columns_block(mix_columns_block(block)) == block


def test_shift_rows_moves_expected_bytes():
    block = bytes(range(16))
    shifted = shift_rows_block(block)
    # Row 0 untouched, row 1 rotated by one column.
    assert shifted[0] == 0
    assert shifted[1] == 5
    assert shifted[2] == 10
    assert shifted[3] == 15


def test_mix_columns_fips_example():
    # FIPS-197 Sec. 5.1.3 example column: d4 bf 5d 30 -> 04 66 81 e5.
    column = bytes.fromhex("d4bf5d30") + bytes(12)
    mixed = mix_columns_block(column)
    assert mixed[:4] == bytes.fromhex("046681e5")


def test_encrypt_trace_structure():
    aes = AES(FIPS_KEY_128)
    trace = aes.encrypt_trace(FIPS_PT)
    assert trace.num_rounds == 10
    assert trace.ciphertext == FIPS_CT_128
    assert trace.rounds[-1].state_out == FIPS_CT_128
    assert trace.round(1).round_index == 1
    with pytest.raises(ValueError):
        trace.round(11)
    with pytest.raises(ValueError):
        trace.round(0)


def test_encrypt_trace_round_chaining():
    aes = AES(FIPS_KEY_128)
    trace = aes.encrypt_trace(FIPS_PT)
    previous = trace.initial_state
    for record in trace.rounds:
        assert record.state_in == previous
        previous = record.state_out


def test_last_round_has_no_mix_columns():
    aes = AES(FIPS_KEY_128)
    trace = aes.encrypt_trace(FIPS_PT)
    last = trace.last_round
    assert last.after_mix_columns == last.after_shift_rows


def test_switching_activities_length_and_range():
    aes = AES(FIPS_KEY_128)
    trace = aes.encrypt_trace(FIPS_PT)
    activities = trace.switching_activities()
    assert len(activities) == 11
    assert all(0 <= a <= 128 for a in activities)


def test_last_round_input_helper_matches_trace():
    aes = AES(FIPS_KEY_128)
    trace = aes.encrypt_trace(FIPS_PT)
    assert aes.last_round_input(FIPS_PT) == trace.last_round.state_in
    assert aes.last_round_key() == trace.last_round.round_key


def test_trace_records_round_keys():
    aes = AES(FIPS_KEY_128)
    trace = aes.encrypt_trace(FIPS_PT)
    for index, record in enumerate(trace.rounds, start=1):
        assert record.round_key == aes.round_keys[index]
