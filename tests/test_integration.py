"""End-to-end integration and robustness tests.

These tests walk the full story of the paper on a reduced campaign: an
untrusted foundry inserts a trojan, the verifier builds golden
references, and both side-channel methods must convict the infected
devices while acquitting the genuine ones — including under degraded
measurement conditions.
"""

import numpy as np
import pytest

from repro.core.delay_detector import DelayDetector
from repro.core.em_detector import PopulationEMDetector, SameDieEMDetector
from repro.core.fingerprint import DelayFingerprint, EMReference
from repro.core.metrics import L1TraceMetric, LocalMaximaSumMetric
from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.measurement.delay_meter import DelayMeasurementConfig
from repro.measurement.em_simulator import EMAcquisitionConfig
from repro.measurement.noise import DelayNoiseModel, EMNoiseModel


def test_full_story_delay_and_em_agree(platform, delay_study, population_study):
    """Both methods convict the trojans and acquit the genuine devices."""
    # Delay method (same die, Sec. III).
    verdicts = {label: comparison.outcome.is_infected
                for label, comparison in delay_study.comparisons.items()}
    assert verdicts == {"Clean1": False, "Clean2": False,
                        "HT_comb": True, "HT_seq": True}

    # EM method across dies (Sec. V): the big trojan separates clearly.
    characterisation = population_study.characterisations["HT3"]
    assert characterisation.detection_probability > 0.8


def test_detection_improves_with_trojan_size(population_study):
    mus = {name: char.mu
           for name, char in population_study.characterisations.items()}
    assert mus["HT3"] > mus["HT1"]


def test_local_maxima_metric_beats_plain_l1(population_study):
    """Ablation: the paper's metric separates at least as well as plain L1."""
    golden = population_study.golden_traces
    infected = population_study.infected_traces["HT3"]

    def effect_size(metric):
        detector = PopulationEMDetector(metric=metric)
        detector.fit_reference(golden)
        characterisation = detector.characterise(infected)
        if characterisation.sigma == 0:
            return float("inf")
        return characterisation.mu / characterisation.sigma

    assert effect_size(LocalMaximaSumMetric()) > 0
    # Both should separate; the local-maxima metric must not be worse than
    # half the L1 baseline (it is usually better).
    assert effect_size(LocalMaximaSumMetric()) >= 0.5 * effect_size(L1TraceMetric())


def test_noise_free_campaign_has_zero_clean_difference(golden_design):
    """With every stochastic effect off, two clean campaigns are identical."""
    from repro.measurement.fault_injection import SetupViolationFaultModel

    deterministic_faults = SetupViolationFaultModel(
        metastability_window_ps=0.0, stale_capture_probability=1.0
    )
    config = PlatformConfig(
        num_dies=2,
        delay=DelayMeasurementConfig(repetitions=2,
                                     noise=DelayNoiseModel(sigma_ps=0.0),
                                     fault_model=deterministic_faults),
    )
    platform = HTDetectionPlatform(config=config, golden=golden_design)
    study = platform.run_delay_study(trojan_names=(), num_pairs=2)
    difference = np.abs(study.measurements["Clean1"].mean_delay_ps()
                        - study.measurements["Clean2"].mean_delay_ps())
    assert difference.max() == pytest.approx(0.0)


def test_detection_survives_noisier_em_chain(golden_design):
    """Failure injection: a 4x noisier oscilloscope still catches HT3."""
    noisy_em = EMAcquisitionConfig(noise=EMNoiseModel(sigma_single_shot=3200.0))
    platform = HTDetectionPlatform(
        config=PlatformConfig(num_dies=4, em=noisy_em), golden=golden_design
    )
    study = platform.run_population_em_study(("HT3",))
    assert study.characterisations["HT3"].detection_probability > 0.7


def test_small_reference_population_degrades_gracefully(golden_design):
    """With only 2 reference dies the detector still runs and yields a rate."""
    platform = HTDetectionPlatform(
        config=PlatformConfig(num_dies=2), golden=golden_design
    )
    study = platform.run_population_em_study(("HT2",))
    rate = study.characterisations["HT2"].false_negative_rate
    assert 0.0 <= rate <= 0.5


def test_detectors_are_reusable_across_duts(platform, delay_study):
    """One fingerprint serves any number of devices under test."""
    detector = DelayDetector(delay_study.fingerprint)
    detector.calibrate_with_clean([delay_study.measurements["Clean1"]])
    first = detector.compare(delay_study.measurements["HT_comb"])
    second = detector.compare(delay_study.measurements["HT_comb"])
    assert first.outcome.score == pytest.approx(second.outcome.score)


def test_same_die_detector_with_single_reference_trace(platform, rng):
    """Degenerate golden set (one trace) still produces a usable threshold."""
    study = platform.run_same_die_em_study(("HT_comb",))
    reference = EMReference.from_traces(study.golden_traces[:1])
    detector = SameDieEMDetector(reference)
    comparison = detector.compare(study.infected_traces["HT_comb"].samples)
    assert comparison.outcome.threshold > 0
    assert comparison.outcome.is_infected


def test_campaigns_are_reproducible(golden_design):
    """Same seeds, same platform configuration => identical headline numbers."""
    def run_once():
        platform = HTDetectionPlatform(
            config=PlatformConfig(num_dies=3, seed=77), golden=golden_design
        )
        study = platform.run_population_em_study(("HT2",))
        return study.characterisations["HT2"].false_negative_rate

    assert run_once() == pytest.approx(run_once())
