"""Tests for the clock-glitch delay meter."""

import numpy as np
import pytest

from repro.measurement.delay_meter import (
    DelayMeasurementConfig,
    PathDelayMeter,
    PlaintextKeyPair,
    generate_pk_pairs,
)
from repro.measurement.dut import DeviceUnderTest
from repro.measurement.noise import DelayNoiseModel


@pytest.fixture(scope="module")
def meter():
    return PathDelayMeter(DelayMeasurementConfig(repetitions=3, seed=0))


@pytest.fixture(scope="module")
def clean_dut(golden_design):
    return DeviceUnderTest(golden_design, die=None, label="clean")


@pytest.fixture(scope="module")
def infected_dut(infected_design):
    return DeviceUnderTest(infected_design, die=None, label="HT_comb")


def test_generate_pk_pairs_reproducible():
    a = generate_pk_pairs(5, seed=3)
    b = generate_pk_pairs(5, seed=3)
    assert a == b
    assert len({pair.plaintext for pair in a}) == 5
    with pytest.raises(ValueError):
        generate_pk_pairs(0)


def test_generate_pk_pairs_fixed_key():
    key = bytes(range(16))
    pairs = generate_pk_pairs(4, seed=1, fixed_key=key)
    assert all(pair.key == key for pair in pairs)


def test_pk_pair_validation():
    with pytest.raises(ValueError):
        PlaintextKeyPair(0, bytes(10), bytes(16))
    with pytest.raises(ValueError):
        PlaintextKeyPair(0, bytes(16), bytes(10))


def test_config_validation():
    with pytest.raises(ValueError):
        DelayMeasurementConfig(repetitions=0)
    with pytest.raises(ValueError):
        DelayMeasurementConfig(glitch_step_ps=0)


def test_arrival_times_shape_and_data_dependence(meter, clean_dut, pk_pairs):
    arrivals_a = meter.arrival_times_ps(clean_dut, pk_pairs[0])
    arrivals_b = meter.arrival_times_ps(clean_dut, pk_pairs[1])
    assert arrivals_a.shape == (128,)
    finite = arrivals_a[~np.isnan(arrivals_a)]
    assert finite.size > 32
    assert finite.min() > 0
    # Different (P, K) pairs sensitise different paths.
    assert not np.array_equal(np.isnan(arrivals_a), np.isnan(arrivals_b)) or \
        not np.allclose(arrivals_a[~np.isnan(arrivals_a)],
                        arrivals_b[~np.isnan(arrivals_b)])


def test_calibrated_glitch_covers_observed_paths(meter, clean_dut, pk_pairs):
    glitch = meter.calibrate_glitch(clean_dut, pk_pairs)
    arrivals = meter.arrival_times_ps(clean_dut, pk_pairs[0])
    worst = np.nanmax(arrivals)
    assert glitch.start_period_ps > meter.config.budget.required_period_ps(worst)
    with pytest.raises(ValueError):
        meter.calibrate_glitch(clean_dut, [])


def test_measure_pair_output_shape(meter, clean_dut, pk_pairs, rng):
    glitch = meter.calibrate_glitch(clean_dut, pk_pairs)
    result = meter.measure_pair(clean_dut, pk_pairs[0], glitch, rng)
    assert result.steps_to_fault.shape == (3, 128)
    never = glitch.num_steps + 1
    assert np.all(result.steps_to_fault <= never)
    # Bits that never toggle are never faulted.
    stable = np.isnan(result.arrival_ps)
    assert np.all(result.steps_to_fault[:, stable] == never)
    assert set(result.observable_bits()) == set(np.flatnonzero(~stable))


def test_longer_paths_fault_earlier(meter, clean_dut, pk_pairs, rng):
    glitch = meter.calibrate_glitch(clean_dut, pk_pairs)
    result = meter.measure_pair(clean_dut, pk_pairs[0], glitch, rng)
    arrivals = result.arrival_ps
    steps = result.mean_steps()
    observable = ~np.isnan(arrivals)
    longest = int(np.nanargmax(arrivals))
    shortest_candidates = np.where(observable, arrivals, np.inf)
    shortest = int(np.argmin(shortest_candidates))
    assert steps[longest] <= steps[shortest]


def test_measure_full_campaign(meter, clean_dut, pk_pairs):
    measurement = meter.measure(clean_dut, pk_pairs, seed=5)
    assert measurement.num_pairs == len(pk_pairs)
    assert measurement.steps_matrix().shape == (len(pk_pairs), 3, 128)
    assert measurement.mean_delay_ps().shape == (len(pk_pairs), 128)
    assert np.all(measurement.repetition_std_ps() >= 0)
    with pytest.raises(ValueError):
        meter.measure(clean_dut, [])


def test_measurement_reproducible_with_same_seed(meter, clean_dut, pk_pairs):
    glitch = meter.calibrate_glitch(clean_dut, pk_pairs)
    a = meter.measure(clean_dut, pk_pairs, glitch, seed=9)
    b = meter.measure(clean_dut, pk_pairs, glitch, seed=9)
    assert np.array_equal(a.steps_matrix(), b.steps_matrix())


def test_calibrate_glitches_per_pair(meter, clean_dut, pk_pairs):
    glitches = meter.calibrate_glitches(clean_dut, pk_pairs)
    assert set(glitches) == {pair.index for pair in pk_pairs}
    for pair in pk_pairs:
        worst = np.nanmax(meter.arrival_times_ps(clean_dut, pair))
        required = meter.config.budget.required_period_ps(worst)
        sweep = glitches[pair.index]
        assert sweep.start_period_ps > required
        assert sweep.periods()[-1] < required


def test_infected_dut_shifts_steps(meter, clean_dut, infected_dut, pk_pairs):
    glitches = meter.calibrate_glitches(clean_dut, pk_pairs)
    clean = meter.measure(clean_dut, pk_pairs, glitches, seed=3)
    infected = meter.measure(infected_dut, pk_pairs, glitches, seed=3)
    difference = np.abs(clean.mean_delay_ps() - infected.mean_delay_ps())
    assert difference.max() > 2 * meter.config.glitch_step_ps


def test_fault_staircase_monotone_trend(meter, clean_dut, pk_pairs):
    glitch = meter.calibrate_glitch(clean_dut, [pk_pairs[0]])
    staircase = meter.fault_staircase(clean_dut, pk_pairs[0], glitch, seed=1)
    assert set(staircase) == set(range(glitch.num_steps + 1))
    counts = [staircase[step] for step in sorted(staircase)]
    assert counts[0] <= counts[-1]
    assert max(counts) > 0
    assert max(counts) <= 128
