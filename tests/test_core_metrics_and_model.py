"""Tests for the delay model (Eqs. 2-4) and the detection metrics (Eq. 5)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.delay_model import (
    NetDelayModel,
    delay_difference,
    detectable_trojan_delay_ps,
    expected_difference_noise_ps,
)
from repro.core.metrics import (
    L1TraceMetric,
    LocalMaximaSumMetric,
    MaxDifferenceMetric,
    detection_probability,
    false_negative_rate,
    required_separation,
)

# -- Eq. (5) -------------------------------------------------------------------


def test_false_negative_rate_known_points():
    # mu = 0: the populations coincide, FN = 50 %.
    assert false_negative_rate(0.0, 1.0) == pytest.approx(0.5)
    # Very large separation: FN ~ 0.
    assert false_negative_rate(100.0, 1.0) == pytest.approx(0.0, abs=1e-9)
    # Known value: mu = 2 sigma sqrt(2) -> FN = (1 - erf(1)) / 2.
    sigma = 3.0
    mu = 2 * sigma * math.sqrt(2)
    assert false_negative_rate(mu, sigma) == pytest.approx(
        0.5 - 0.5 * math.erf(1.0)
    )


def test_false_negative_rate_degenerate_sigma():
    assert false_negative_rate(1.0, 0.0) == 0.0
    assert false_negative_rate(0.0, 0.0) == 0.5
    with pytest.raises(ValueError):
        false_negative_rate(1.0, -1.0)


def test_detection_probability_complements_fn():
    assert detection_probability(2.0, 1.0) == pytest.approx(
        1.0 - false_negative_rate(2.0, 1.0)
    )


def test_required_separation_inverts_fn_rate():
    sigma = 5.0
    for target in (0.26, 0.17, 0.05):
        mu = required_separation(target, sigma)
        assert false_negative_rate(mu, sigma) == pytest.approx(target, abs=1e-6)
    assert required_separation(0.3, 0.0) == 0.0
    with pytest.raises(ValueError):
        required_separation(0.7, 1.0)


def test_paper_headline_rates_imply_increasing_separation():
    """The paper's 26/17/5 % FN rates correspond to growing mu/sigma."""
    sigma = 1.0
    separations = [required_separation(rate, sigma) for rate in (0.26, 0.17, 0.05)]
    assert separations[0] < separations[1] < separations[2]


@given(st.floats(min_value=0.0, max_value=50.0),
       st.floats(min_value=0.01, max_value=10.0))
@settings(max_examples=60, deadline=None)
def test_fn_rate_bounds_and_monotonicity(mu, sigma):
    rate = false_negative_rate(mu, sigma)
    assert 0.0 <= rate <= 0.5
    assert false_negative_rate(mu + 1.0, sigma) <= rate + 1e-12


# -- trace metrics ---------------------------------------------------------------


def test_local_maxima_sum_metric_scores_offsets_higher():
    reference = np.zeros(100)
    reference[::10] = 5.0
    clean = reference + 0.1
    shifted = reference.copy()
    shifted[::10] += 3.0
    metric = LocalMaximaSumMetric(min_peak_distance=2)
    assert metric.score(shifted, reference) > metric.score(clean, reference)
    scores = metric.scores([clean, shifted], reference)
    assert scores.shape == (2,)


def test_local_maxima_metric_difference_trace():
    metric = LocalMaximaSumMetric()
    diff = metric.difference_trace(np.array([1.0, -1.0]), np.zeros(2))
    assert np.array_equal(diff, np.array([1.0, 1.0]))


def test_baseline_metrics():
    reference = np.zeros(10)
    trace = np.zeros(10)
    trace[3] = 4.0
    assert L1TraceMetric().score(trace, reference) == pytest.approx(0.4)
    assert MaxDifferenceMetric().score(trace, reference) == pytest.approx(4.0)
    assert MaxDifferenceMetric().scores([trace], reference)[0] == pytest.approx(4.0)


# -- delay model ------------------------------------------------------------------


def test_net_delay_model_composition(rng):
    clean = NetDelayModel("n", static_ps=1000.0, process_variation_ps=50.0)
    infected = NetDelayModel("n", static_ps=1000.0, process_variation_ps=50.0,
                             trojan_extra_ps=300.0)
    assert not clean.is_infected
    assert infected.is_infected
    assert clean.nominal_delay_ps() == pytest.approx(1050.0)
    assert infected.nominal_delay_ps() == pytest.approx(1350.0)
    measured = clean.measure(rng, noise_sigma_ps=0.0)
    assert measured == pytest.approx(1050.0)
    with pytest.raises(ValueError):
        NetDelayModel("n", static_ps=-1.0)
    with pytest.raises(ValueError):
        clean.measure(rng, noise_sigma_ps=-1.0)
    with pytest.raises(ValueError):
        clean.measure_mean(rng, repetitions=0)


def test_delay_difference_observable(rng):
    clean = NetDelayModel("n", static_ps=1000.0)
    infected = NetDelayModel("n", static_ps=1000.0, trojan_extra_ps=400.0)
    golden_mean = clean.measure_mean(rng, repetitions=10, noise_sigma_ps=20.0)
    clean_diff = delay_difference(golden_mean, clean.measure(rng, 20.0))
    infected_diff = delay_difference(golden_mean, infected.measure(rng, 20.0))
    assert infected_diff > clean_diff
    assert infected_diff == pytest.approx(400.0, abs=150.0)


def test_expected_noise_and_detectability_threshold():
    noise = expected_difference_noise_ps(20.0, golden_repetitions=10)
    assert noise == pytest.approx(20.0 * math.sqrt(1.1))
    threshold = detectable_trojan_delay_ps(20.0, 10, confidence_sigmas=3.0)
    assert threshold == pytest.approx(3.0 * noise)
    with pytest.raises(ValueError):
        expected_difference_noise_ps(-1.0)
    with pytest.raises(ValueError):
        detectable_trojan_delay_ps(10.0, 10, confidence_sigmas=0.0)


def test_mean_of_repetitions_reduces_noise(rng):
    model = NetDelayModel("n", static_ps=1000.0)
    singles = [model.measure(rng, 30.0) for _ in range(200)]
    means = [model.measure_mean(rng, 10, 30.0) for _ in range(200)]
    assert np.std(means) < np.std(singles)
