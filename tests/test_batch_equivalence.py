"""Equivalence of the batched acquisition paths with the serial loops.

``EMSimulator.acquire_batch``/``acquire_many_batch`` and
``PathDelayMeter.measure_batch`` are pure performance refactors: for
every trojan in the catalog (and the golden design) they must reproduce
the per-DUT serial results within float tolerance — in fact
bit-for-bit, which is what most of these assertions check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.crypto.batch import encrypt_round_states
from repro.measurement.delay_meter import DelayMeasurementConfig, generate_pk_pairs
from repro.stimulus import random_plaintexts
from repro.trojan.base import HardwareTrojan
from repro.trojan.library import available_trojans, build_trojan

NUM_DIES = 3
PLAINTEXT = bytes(range(16))
KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
STIMULI = random_plaintexts(4, seed=91)


@pytest.fixture(scope="module")
def batch_platform(golden_design):
    return HTDetectionPlatform(
        config=PlatformConfig(
            num_dies=NUM_DIES, seed=31,
            delay=DelayMeasurementConfig(repetitions=3, seed=31),
        ),
        golden=golden_design,
    )


def _duts(platform, trojan_name):
    if trojan_name is None:
        return [platform.golden_dut(die) for die in range(NUM_DIES)]
    return [platform.infected_dut(trojan_name, die)
            for die in range(NUM_DIES)]


@pytest.mark.parametrize("trojan_name", [None] + available_trojans())
def test_noiseless_batch_matches_per_die_loop(batch_platform, trojan_name):
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, trojan_name)
    serial = [simulator.noiseless_trace(dut, PLAINTEXT, KEY) for dut in duts]
    batch = simulator.batch_noiseless_traces(duts, PLAINTEXT, KEY)
    for serial_trace, batch_trace in zip(serial, batch):
        assert serial_trace.label == batch_trace.label
        assert serial_trace.cycle_sample_offsets == \
            batch_trace.cycle_sample_offsets
        np.testing.assert_allclose(batch_trace.samples, serial_trace.samples,
                                   rtol=1e-12, atol=1e-9)


@pytest.mark.parametrize("trojan_name", [None] + available_trojans())
def test_acquire_batch_matches_per_die_loop(batch_platform, trojan_name):
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, trojan_name)
    serial = [
        simulator.acquire(dut, PLAINTEXT, KEY,
                          np.random.default_rng(100 + die),
                          new_setup_installation=True)
        for die, dut in enumerate(duts)
    ]
    batch = simulator.acquire_batch(
        duts, PLAINTEXT, KEY,
        [np.random.default_rng(100 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    for serial_trace, batch_trace in zip(serial, batch):
        assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_acquire_batch_with_shared_generator_matches_serial(batch_platform):
    """A single shared generator is consumed in DUT order, like a loop."""
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, "HT_comb")
    rng_serial = np.random.default_rng(7)
    serial = [simulator.acquire(dut, PLAINTEXT, KEY, rng_serial)
              for dut in duts]
    batch = simulator.acquire_batch(duts, PLAINTEXT, KEY,
                                    np.random.default_rng(7))
    for serial_trace, batch_trace in zip(serial, batch):
        assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_acquire_batch_rejects_mismatched_generators(batch_platform):
    duts = _duts(batch_platform, None)
    with pytest.raises(ValueError):
        batch_platform.em_simulator.acquire_batch(
            duts, PLAINTEXT, KEY, [np.random.default_rng(0)]
        )


def test_population_acquisition_matches_serial_reference(batch_platform):
    trojans = ("HT1", "HT_seq")
    golden_serial, infected_serial = (
        batch_platform.acquire_population_traces_serial(trojans)
    )
    golden_batch, infected_batch = (
        batch_platform.acquire_population_traces(trojans)
    )
    for serial_trace, batch_trace in zip(golden_serial, golden_batch):
        assert np.array_equal(serial_trace.samples, batch_trace.samples)
    for name in trojans:
        for serial_trace, batch_trace in zip(infected_serial[name],
                                             infected_batch[name]):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)


@pytest.mark.parametrize("trojan_name", [None] + available_trojans())
def test_acquire_many_batch_matches_serial_acquire_many(batch_platform,
                                                        trojan_name):
    """The whole-stimulus tensor path equals the per-plaintext loop."""
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, trojan_name)
    serial = [
        simulator.acquire_many(dut, STIMULI, KEY,
                               np.random.default_rng(300 + die),
                               new_setup_installation=True)
        for die, dut in enumerate(duts)
    ]
    simulator.clear_caches()
    batch = simulator.acquire_many_batch(
        duts, STIMULI, KEY,
        [np.random.default_rng(300 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    for serial_list, batch_list in zip(serial, batch):
        assert len(serial_list) == len(batch_list) == len(STIMULI)
        for serial_trace, batch_trace in zip(serial_list, batch_list):
            assert serial_trace.plaintext == batch_trace.plaintext
            assert serial_trace.cycle_sample_offsets == \
                batch_trace.cycle_sample_offsets
            assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_acquire_many_batch_with_shared_generator_matches(batch_platform):
    """A shared generator is consumed DUT-major, like the nested loop."""
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, "HT2")
    rng_serial = np.random.default_rng(17)
    serial = [simulator.acquire_many(dut, STIMULI, KEY, rng_serial)
              for dut in duts]
    simulator.clear_caches()
    batch = simulator.acquire_many_batch(duts, STIMULI, KEY,
                                         np.random.default_rng(17))
    for serial_list, batch_list in zip(serial, batch):
        for serial_trace, batch_trace in zip(serial_list, batch_list):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_population_stimuli_acquisition_matches_serial(batch_platform):
    trojans = ("HT1", "HT_seq")
    golden_serial, infected_serial = (
        batch_platform.acquire_population_traces_stimuli_serial(
            trojans, STIMULI)
    )
    batch_platform.em_simulator.clear_caches()
    golden_batch, infected_batch = (
        batch_platform.acquire_population_traces_stimuli(trojans, STIMULI)
    )
    for serial_list, batch_list in zip(golden_serial, golden_batch):
        for serial_trace, batch_trace in zip(serial_list, batch_list):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)
    for name in trojans:
        for serial_list, batch_list in zip(infected_serial[name],
                                           infected_batch[name]):
            for serial_trace, batch_trace in zip(serial_list, batch_list):
                assert np.array_equal(serial_trace.samples,
                                      batch_trace.samples)


@pytest.mark.parametrize("trojan_name", available_trojans())
def test_encryption_activity_counts_match_reference_loop(device,
                                                         trojan_name):
    """Vectorised per-trojan overrides equal the per-encryption walk."""
    trojan = build_trojan(trojan_name, device)
    states = encrypt_round_states(STIMULI, KEY)
    indices = [0, 3, 1, 255]
    reference = HardwareTrojan.encryption_activity_counts(
        trojan, states, indices
    )
    batched = trojan.encryption_activity_counts(states, indices)
    assert np.array_equal(reference[0], batched[0])
    assert np.array_equal(reference[1], batched[1])


def test_activity_caches_are_bounded_and_clearable(batch_platform):
    simulator = batch_platform.em_simulator
    simulator.clear_caches()
    original = simulator.host_activity_cache_entries
    try:
        simulator.host_activity_cache_entries = 8
        dut = batch_platform.golden_dut(0)
        plaintexts = random_plaintexts(20, seed=3)
        simulator.acquire_many_batch(
            [dut], plaintexts, KEY, [np.random.default_rng(0)]
        )
        assert len(simulator._host_activity_cache) <= 8
        # The most recent insertions survive, the oldest are evicted.
        assert (bytes(KEY), plaintexts[-1]) in simulator._host_activity_cache
        assert (bytes(KEY), plaintexts[0]) not in simulator._host_activity_cache
        simulator.clear_caches()
        assert not simulator._host_activity_cache
        assert not simulator._trojan_activity_cache
    finally:
        simulator.host_activity_cache_entries = original
        simulator.clear_caches()


def test_delay_measure_batch_matches_per_dut_loop(batch_platform):
    meter = batch_platform.delay_meter
    pairs = generate_pk_pairs(2, seed=11)
    duts = [batch_platform.golden_dut(0, label="GM"),
            batch_platform.infected_dut("HT_comb", 0),
            batch_platform.infected_dut("HT_seq", 0)]
    glitch = meter.calibrate_glitches(duts[0], pairs)
    seeds = [41, 42, 43]
    serial = [meter.measure(dut, pairs, glitch, seed=seed)
              for dut, seed in zip(duts, seeds)]
    batch = meter.measure_batch(duts, pairs, glitch, seeds=seeds)
    for serial_measurement, batch_measurement in zip(serial, batch):
        assert serial_measurement.label == batch_measurement.label
        np.testing.assert_allclose(batch_measurement.steps_matrix(),
                                   serial_measurement.steps_matrix(),
                                   rtol=0, atol=0)


def test_pair_transitions_batch_matches_serial(batch_platform):
    """Batched-cipher attacked-round stimuli equal the scalar walk."""
    meter = batch_platform.delay_meter
    dut = batch_platform.golden_dut(0)
    for pairs in (generate_pk_pairs(4, seed=21),
                  generate_pk_pairs(3, seed=22, fixed_key=KEY)):
        serial = [meter.pair_transitions(dut, pair) for pair in pairs]
        assert meter.pair_transitions_batch(dut, pairs) == serial
    assert meter.pair_transitions_batch(dut, []) == []


def test_delay_measure_batch_self_calibration_matches(batch_platform):
    meter = batch_platform.delay_meter
    pairs = generate_pk_pairs(2, seed=13)
    duts = [batch_platform.golden_dut(1), batch_platform.infected_dut("HT3", 1)]
    serial = [meter.measure(dut, pairs, None, seed=5) for dut in duts]
    batch = meter.measure_batch(duts, pairs, None, seeds=[5, 5])
    for serial_measurement, batch_measurement in zip(serial, batch):
        assert np.array_equal(serial_measurement.steps_matrix(),
                              batch_measurement.steps_matrix())
        for serial_pair, batch_pair in zip(serial_measurement.pairs,
                                           batch_measurement.pairs):
            assert serial_pair.glitch.periods() == batch_pair.glitch.periods()


# -- batched scoring (PR 5): campaign/experiment scores vs serial loops -------


def test_acquire_batch_matrix_matches_wrapped_traces(batch_platform):
    """The matrix core and its EMTrace wrapper carry identical samples."""
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, "HT1")
    matrix, offsets = simulator.acquire_batch_matrix(
        duts, PLAINTEXT, KEY,
        [np.random.default_rng(500 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    traces = simulator.acquire_batch(
        duts, PLAINTEXT, KEY,
        [np.random.default_rng(500 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    assert matrix.shape == (len(duts), len(traces[0]))
    for row, trace in enumerate(traces):
        assert np.array_equal(matrix[row], trace.samples)
        assert trace.cycle_sample_offsets == list(offsets)


def test_acquire_many_batch_tensor_matches_wrapped_grid(batch_platform):
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, "HT2")
    simulator.clear_caches()
    tensor, offsets = simulator.acquire_many_batch_tensor(
        duts, STIMULI, KEY,
        [np.random.default_rng(700 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    simulator.clear_caches()
    grid = simulator.acquire_many_batch(
        duts, STIMULI, KEY,
        [np.random.default_rng(700 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    assert tensor.shape[:2] == (len(STIMULI), len(duts))
    for column, trace_list in enumerate(grid):
        for row, trace in enumerate(trace_list):
            assert np.array_equal(tensor[row, column], trace.samples)
            assert trace.cycle_sample_offsets == list(offsets)


def test_population_tensors_match_trace_acquisition(batch_platform):
    """The tensor-resident population equals the EMTrace population."""
    trojans = ("HT1", "HT_seq")
    tensors = batch_platform.acquire_population_tensors(trojans)
    golden_traces, infected_traces = (
        batch_platform.acquire_population_traces(trojans)
    )
    for row, trace in enumerate(golden_traces):
        assert np.array_equal(tensors.golden[row], trace.samples)
        assert tensors.golden_labels[row] == trace.label
    for name in trojans:
        for row, trace in enumerate(infected_traces[name]):
            assert np.array_equal(tensors.infected[name][row], trace.samples)
    wrapped_golden, wrapped_infected = tensors.to_traces()
    for wrapped, trace in zip(wrapped_golden, golden_traces):
        assert np.array_equal(wrapped.samples, trace.samples)
        assert wrapped.label == trace.label
        assert wrapped.plaintext == trace.plaintext
        assert wrapped.sample_period_ns == trace.sample_period_ns
        assert wrapped.cycle_sample_offsets == trace.cycle_sample_offsets
    for name in trojans:
        for wrapped, trace in zip(wrapped_infected[name],
                                  infected_traces[name]):
            assert np.array_equal(wrapped.samples, trace.samples)


def test_average_stimulus_tensor_matches_trace_average(batch_platform):
    from repro.core.pipeline import (
        average_stimulus_tensor,
        average_stimulus_traces,
    )

    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, "HT3")
    simulator.clear_caches()
    tensor, _ = simulator.acquire_many_batch_tensor(
        duts, STIMULI, KEY,
        [np.random.default_rng(800 + die) for die in range(len(duts))],
    )
    simulator.clear_caches()
    grid = simulator.acquire_many_batch(
        duts, STIMULI, KEY,
        [np.random.default_rng(800 + die) for die in range(len(duts))],
    )
    averaged_matrix = average_stimulus_tensor(tensor)
    averaged_traces = average_stimulus_traces(grid)
    for row, trace in enumerate(averaged_traces):
        assert np.array_equal(averaged_matrix[row], trace.samples)


def test_stimulus_tensors_match_averaged_traces(batch_platform):
    """acquire_population_tensors_stimuli equals the serial average path."""
    from repro.core.pipeline import average_stimulus_traces

    trojans = ("HT1",)
    batch_platform.em_simulator.clear_caches()
    tensors = batch_platform.acquire_population_tensors_stimuli(
        trojans, STIMULI)
    batch_platform.em_simulator.clear_caches()
    golden_grid, infected_grid = (
        batch_platform.acquire_population_traces_stimuli(trojans, STIMULI)
    )
    for row, trace in enumerate(average_stimulus_traces(golden_grid)):
        assert np.array_equal(tensors.golden[row], trace.samples)
    for name in trojans:
        for row, trace in enumerate(
                average_stimulus_traces(infected_grid[name])):
            assert np.array_equal(tensors.infected[name][row], trace.samples)


def test_delay_difference_batch_matches_serial(batch_platform):
    from repro.core.delay_detector import DelayDetector
    from repro.core.fingerprint import DelayFingerprint

    meter = batch_platform.delay_meter
    pairs = generate_pk_pairs(2, seed=19)
    golden_dut = batch_platform.golden_dut(0, label="GM")
    fingerprint_measurement = meter.measure_batch(
        [golden_dut], pairs, None, seeds=[3])[0]
    glitch = {
        pair.index: pair_measurement.glitch
        for pair, pair_measurement in zip(pairs,
                                          fingerprint_measurement.pairs)
    }
    detector = DelayDetector(
        DelayFingerprint.from_measurement(fingerprint_measurement))
    duts = [batch_platform.golden_dut(die) for die in range(NUM_DIES)]
    duts += [batch_platform.infected_dut("HT_comb", die)
             for die in range(NUM_DIES)]
    measurements = meter.measure_batch(duts, pairs, glitch,
                                       seeds=list(range(40, 40 + len(duts))))
    batched = detector.difference_ps_batch(measurements)
    assert batched.shape[0] == len(measurements)
    for index, measurement in enumerate(measurements):
        assert np.array_equal(batched[index],
                              detector.difference_ps(measurement))
    assert detector.difference_ps_batch([]).shape == (
        0, *detector.fingerprint.mean_steps.shape)


def test_campaign_em_rows_match_serial_scoring(batch_platform):
    """Campaign cell mu/sigma/FN are bit-identical to the serial loops."""
    from repro.analysis.gaussian import fit_gaussian, pooled_std
    from repro.campaigns import CampaignEngine, CampaignSpec
    from repro.campaigns.engine import build_metric
    from repro.core.metrics import false_negative_rate

    spec = CampaignSpec(
        name="batch-equivalence", trojans=("HT1", "HT3"), die_counts=(3,),
        metrics=("local_maxima_sum", "l1", "max_difference"), seed=31,
    )
    engine = CampaignEngine(spec, golden=batch_platform.golden)
    result = engine.run()
    for cell, cell_result in zip(spec.grid(), result.cells):
        golden_traces, infected_traces = engine.acquire_cell_traces(cell)
        metric = build_metric(cell.metric)
        reference = np.mean([trace.samples for trace in golden_traces],
                            axis=0)
        genuine_scores = metric.scores_serial(golden_traces, reference)
        genuine_fit = fit_gaussian(genuine_scores)
        assert cell_result.golden_score_mean == float(genuine_fit.mean)
        assert cell_result.golden_score_std == float(genuine_fit.std)
        for row in cell_result.rows:
            infected_scores = metric.scores_serial(
                infected_traces[row.trojan], reference)
            infected_fit = fit_gaussian(infected_scores)
            mu = infected_fit.mean - genuine_fit.mean
            sigma = pooled_std(genuine_scores, infected_scores)
            assert row.mu == float(mu)
            assert row.sigma == float(sigma)
            assert row.false_negative_rate == false_negative_rate(mu, sigma)


def test_campaign_delay_rows_match_serial_scoring(batch_platform):
    """Delay cells' batched scorers equal the per-die serial scorers."""
    from repro.analysis.gaussian import fit_gaussian, pooled_std
    from repro.campaigns import CampaignEngine, CampaignSpec
    from repro.campaigns.engine import build_delay_scorer
    from repro.core.metrics import false_negative_rate

    spec = CampaignSpec(
        name="delay-batch-equivalence", trojans=("HT_comb",),
        die_counts=(3,),
        metrics=("delay_max_difference", "delay_mean_pair_max"),
        num_pk_pairs=2, delay_repetitions=3, seed=31,
    )
    engine = CampaignEngine(spec, golden=batch_platform.golden)
    result = engine.run()
    for cell, cell_result in zip(spec.grid(), result.cells):
        data = engine.delay_study_data(cell)
        scorer = build_delay_scorer(cell.metric)
        genuine_scores = np.array(
            [scorer(plane) for plane in data.golden_differences])
        genuine_fit = fit_gaussian(genuine_scores)
        assert cell_result.golden_score_mean == float(genuine_fit.mean)
        for row in cell_result.rows:
            infected_scores = np.array(
                [scorer(plane)
                 for plane in data.infected_differences[row.trojan]])
            mu = float(fit_gaussian(infected_scores).mean - genuine_fit.mean)
            sigma = float(pooled_std(genuine_scores, infected_scores))
            assert row.mu == mu
            assert row.sigma == sigma
            assert row.false_negative_rate == false_negative_rate(mu, sigma)


def test_population_study_matches_serial_replica(batch_platform):
    """The tensor-resident Sec. V study equals a fully serial replica."""
    from repro.analysis.gaussian import fit_gaussian, pooled_std
    from repro.core.metrics import LocalMaximaSumMetric, false_negative_rate

    trojans = ("HT1", "HT_seq")
    study = batch_platform.run_population_em_study(trojan_names=trojans)
    golden_serial, infected_serial = (
        batch_platform.acquire_population_traces_serial(trojans)
    )
    metric = LocalMaximaSumMetric()
    reference = np.mean([trace.samples for trace in golden_serial], axis=0)
    assert np.array_equal(study.reference.mean, reference)
    genuine_scores = metric.scores_serial(golden_serial, reference)
    for name in trojans:
        infected_scores = metric.scores_serial(infected_serial[name],
                                               reference)
        mu = fit_gaussian(infected_scores).mean \
            - fit_gaussian(genuine_scores).mean
        sigma = pooled_std(genuine_scores, infected_scores)
        char = study.characterisations[name]
        assert char.mu == float(mu)
        assert char.sigma == float(sigma)
        assert char.false_negative_rate == false_negative_rate(mu, sigma)
    # The report-boundary EMTrace objects carry the serial samples.
    for study_trace, serial_trace in zip(study.golden_traces, golden_serial):
        assert np.array_equal(study_trace.samples, serial_trace.samples)
        assert study_trace.label == serial_trace.label
