"""Equivalence of the batched acquisition paths with the serial loops.

``EMSimulator.acquire_batch``/``acquire_many_batch`` and
``PathDelayMeter.measure_batch`` are pure performance refactors: for
every trojan in the catalog (and the golden design) they must reproduce
the per-DUT serial results within float tolerance — in fact
bit-for-bit, which is what most of these assertions check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.crypto.batch import encrypt_round_states
from repro.measurement.delay_meter import DelayMeasurementConfig, generate_pk_pairs
from repro.stimulus import random_plaintexts
from repro.trojan.base import HardwareTrojan
from repro.trojan.library import available_trojans, build_trojan

NUM_DIES = 3
PLAINTEXT = bytes(range(16))
KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
STIMULI = random_plaintexts(4, seed=91)


@pytest.fixture(scope="module")
def batch_platform(golden_design):
    return HTDetectionPlatform(
        config=PlatformConfig(
            num_dies=NUM_DIES, seed=31,
            delay=DelayMeasurementConfig(repetitions=3, seed=31),
        ),
        golden=golden_design,
    )


def _duts(platform, trojan_name):
    if trojan_name is None:
        return [platform.golden_dut(die) for die in range(NUM_DIES)]
    return [platform.infected_dut(trojan_name, die)
            for die in range(NUM_DIES)]


@pytest.mark.parametrize("trojan_name", [None] + available_trojans())
def test_noiseless_batch_matches_per_die_loop(batch_platform, trojan_name):
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, trojan_name)
    serial = [simulator.noiseless_trace(dut, PLAINTEXT, KEY) for dut in duts]
    batch = simulator.batch_noiseless_traces(duts, PLAINTEXT, KEY)
    for serial_trace, batch_trace in zip(serial, batch):
        assert serial_trace.label == batch_trace.label
        assert serial_trace.cycle_sample_offsets == \
            batch_trace.cycle_sample_offsets
        np.testing.assert_allclose(batch_trace.samples, serial_trace.samples,
                                   rtol=1e-12, atol=1e-9)


@pytest.mark.parametrize("trojan_name", [None] + available_trojans())
def test_acquire_batch_matches_per_die_loop(batch_platform, trojan_name):
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, trojan_name)
    serial = [
        simulator.acquire(dut, PLAINTEXT, KEY,
                          np.random.default_rng(100 + die),
                          new_setup_installation=True)
        for die, dut in enumerate(duts)
    ]
    batch = simulator.acquire_batch(
        duts, PLAINTEXT, KEY,
        [np.random.default_rng(100 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    for serial_trace, batch_trace in zip(serial, batch):
        assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_acquire_batch_with_shared_generator_matches_serial(batch_platform):
    """A single shared generator is consumed in DUT order, like a loop."""
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, "HT_comb")
    rng_serial = np.random.default_rng(7)
    serial = [simulator.acquire(dut, PLAINTEXT, KEY, rng_serial)
              for dut in duts]
    batch = simulator.acquire_batch(duts, PLAINTEXT, KEY,
                                    np.random.default_rng(7))
    for serial_trace, batch_trace in zip(serial, batch):
        assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_acquire_batch_rejects_mismatched_generators(batch_platform):
    duts = _duts(batch_platform, None)
    with pytest.raises(ValueError):
        batch_platform.em_simulator.acquire_batch(
            duts, PLAINTEXT, KEY, [np.random.default_rng(0)]
        )


def test_population_acquisition_matches_serial_reference(batch_platform):
    trojans = ("HT1", "HT_seq")
    golden_serial, infected_serial = (
        batch_platform.acquire_population_traces_serial(trojans)
    )
    golden_batch, infected_batch = (
        batch_platform.acquire_population_traces(trojans)
    )
    for serial_trace, batch_trace in zip(golden_serial, golden_batch):
        assert np.array_equal(serial_trace.samples, batch_trace.samples)
    for name in trojans:
        for serial_trace, batch_trace in zip(infected_serial[name],
                                             infected_batch[name]):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)


@pytest.mark.parametrize("trojan_name", [None] + available_trojans())
def test_acquire_many_batch_matches_serial_acquire_many(batch_platform,
                                                        trojan_name):
    """The whole-stimulus tensor path equals the per-plaintext loop."""
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, trojan_name)
    serial = [
        simulator.acquire_many(dut, STIMULI, KEY,
                               np.random.default_rng(300 + die),
                               new_setup_installation=True)
        for die, dut in enumerate(duts)
    ]
    simulator.clear_caches()
    batch = simulator.acquire_many_batch(
        duts, STIMULI, KEY,
        [np.random.default_rng(300 + die) for die in range(len(duts))],
        new_setup_installation=True,
    )
    for serial_list, batch_list in zip(serial, batch):
        assert len(serial_list) == len(batch_list) == len(STIMULI)
        for serial_trace, batch_trace in zip(serial_list, batch_list):
            assert serial_trace.plaintext == batch_trace.plaintext
            assert serial_trace.cycle_sample_offsets == \
                batch_trace.cycle_sample_offsets
            assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_acquire_many_batch_with_shared_generator_matches(batch_platform):
    """A shared generator is consumed DUT-major, like the nested loop."""
    simulator = batch_platform.em_simulator
    duts = _duts(batch_platform, "HT2")
    rng_serial = np.random.default_rng(17)
    serial = [simulator.acquire_many(dut, STIMULI, KEY, rng_serial)
              for dut in duts]
    simulator.clear_caches()
    batch = simulator.acquire_many_batch(duts, STIMULI, KEY,
                                         np.random.default_rng(17))
    for serial_list, batch_list in zip(serial, batch):
        for serial_trace, batch_trace in zip(serial_list, batch_list):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)


def test_population_stimuli_acquisition_matches_serial(batch_platform):
    trojans = ("HT1", "HT_seq")
    golden_serial, infected_serial = (
        batch_platform.acquire_population_traces_stimuli_serial(
            trojans, STIMULI)
    )
    batch_platform.em_simulator.clear_caches()
    golden_batch, infected_batch = (
        batch_platform.acquire_population_traces_stimuli(trojans, STIMULI)
    )
    for serial_list, batch_list in zip(golden_serial, golden_batch):
        for serial_trace, batch_trace in zip(serial_list, batch_list):
            assert np.array_equal(serial_trace.samples, batch_trace.samples)
    for name in trojans:
        for serial_list, batch_list in zip(infected_serial[name],
                                           infected_batch[name]):
            for serial_trace, batch_trace in zip(serial_list, batch_list):
                assert np.array_equal(serial_trace.samples,
                                      batch_trace.samples)


@pytest.mark.parametrize("trojan_name", available_trojans())
def test_encryption_activity_counts_match_reference_loop(device,
                                                         trojan_name):
    """Vectorised per-trojan overrides equal the per-encryption walk."""
    trojan = build_trojan(trojan_name, device)
    states = encrypt_round_states(STIMULI, KEY)
    indices = [0, 3, 1, 255]
    reference = HardwareTrojan.encryption_activity_counts(
        trojan, states, indices
    )
    batched = trojan.encryption_activity_counts(states, indices)
    assert np.array_equal(reference[0], batched[0])
    assert np.array_equal(reference[1], batched[1])


def test_activity_caches_are_bounded_and_clearable(batch_platform):
    simulator = batch_platform.em_simulator
    simulator.clear_caches()
    original = simulator.host_activity_cache_entries
    try:
        simulator.host_activity_cache_entries = 8
        dut = batch_platform.golden_dut(0)
        plaintexts = random_plaintexts(20, seed=3)
        simulator.acquire_many_batch(
            [dut], plaintexts, KEY, [np.random.default_rng(0)]
        )
        assert len(simulator._host_activity_cache) <= 8
        # The most recent insertions survive, the oldest are evicted.
        assert (bytes(KEY), plaintexts[-1]) in simulator._host_activity_cache
        assert (bytes(KEY), plaintexts[0]) not in simulator._host_activity_cache
        simulator.clear_caches()
        assert not simulator._host_activity_cache
        assert not simulator._trojan_activity_cache
    finally:
        simulator.host_activity_cache_entries = original
        simulator.clear_caches()


def test_delay_measure_batch_matches_per_dut_loop(batch_platform):
    meter = batch_platform.delay_meter
    pairs = generate_pk_pairs(2, seed=11)
    duts = [batch_platform.golden_dut(0, label="GM"),
            batch_platform.infected_dut("HT_comb", 0),
            batch_platform.infected_dut("HT_seq", 0)]
    glitch = meter.calibrate_glitches(duts[0], pairs)
    seeds = [41, 42, 43]
    serial = [meter.measure(dut, pairs, glitch, seed=seed)
              for dut, seed in zip(duts, seeds)]
    batch = meter.measure_batch(duts, pairs, glitch, seeds=seeds)
    for serial_measurement, batch_measurement in zip(serial, batch):
        assert serial_measurement.label == batch_measurement.label
        np.testing.assert_allclose(batch_measurement.steps_matrix(),
                                   serial_measurement.steps_matrix(),
                                   rtol=0, atol=0)


def test_pair_transitions_batch_matches_serial(batch_platform):
    """Batched-cipher attacked-round stimuli equal the scalar walk."""
    meter = batch_platform.delay_meter
    dut = batch_platform.golden_dut(0)
    for pairs in (generate_pk_pairs(4, seed=21),
                  generate_pk_pairs(3, seed=22, fixed_key=KEY)):
        serial = [meter.pair_transitions(dut, pair) for pair in pairs]
        assert meter.pair_transitions_batch(dut, pairs) == serial
    assert meter.pair_transitions_batch(dut, []) == []


def test_delay_measure_batch_self_calibration_matches(batch_platform):
    meter = batch_platform.delay_meter
    pairs = generate_pk_pairs(2, seed=13)
    duts = [batch_platform.golden_dut(1), batch_platform.infected_dut("HT3", 1)]
    serial = [meter.measure(dut, pairs, None, seed=5) for dut in duts]
    batch = meter.measure_batch(duts, pairs, None, seeds=[5, 5])
    for serial_measurement, batch_measurement in zip(serial, batch):
        assert np.array_equal(serial_measurement.steps_matrix(),
                              batch_measurement.steps_matrix())
        for serial_pair, batch_pair in zip(serial_measurement.pairs,
                                           batch_measurement.pairs):
            assert serial_pair.glitch.periods() == batch_pair.glitch.periods()
