"""Tests for the fault-injection attack campaigns (glitch grids, engine, CLI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    GlitchGrid,
    device_fault_coverages,
    fault_coverage,
    recover_from_sweep,
)
from repro.campaigns import (
    AcquisitionVariant,
    CampaignEngine,
    CampaignSpec,
    KNOWN_FAULT_METRICS,
)
from repro.cli import build_parser, main
from repro.crypto.keyschedule import last_round_key
from repro.measurement.clock import TimingBudget


def _fault_spec(**overrides):
    kwargs = dict(
        name="fault-unit", trojans=("HT1",), die_counts=(3,),
        variants=(AcquisitionVariant.make("paper"),),
        metrics=("fault_coverage",), num_plaintexts=3, seed=9,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


# -- glitch grid ---------------------------------------------------------------


def test_glitch_grid_points_ordering_and_count():
    grid = GlitchGrid(offsets_ps=(1000.0, 2000.0), widths_ps=(500.0,),
                      periods_ps=(4000.0, 5000.0))
    points = grid.points()
    assert grid.num_points == len(points) == 4
    assert [point.index for point in points] == [0, 1, 2, 3]
    # period-major, then offset, then width
    assert [(p.period_ps, p.offset_ps) for p in points] == [
        (4000.0, 1000.0), (4000.0, 2000.0),
        (5000.0, 1000.0), (5000.0, 2000.0),
    ]
    assert np.array_equal(grid.effective_periods(),
                          [p.effective_period_ps for p in points])


def test_glitch_grid_validation():
    with pytest.raises(ValueError):
        GlitchGrid(offsets_ps=(), widths_ps=(1.0,), periods_ps=(1.0,))
    with pytest.raises(ValueError):
        GlitchGrid(offsets_ps=(-1.0,), widths_ps=(1.0,), periods_ps=(1.0,))


def test_calibrated_grid_spans_the_fault_depth_range():
    budget = TimingBudget()
    worst = 4000.0
    grid = GlitchGrid.calibrated(worst, budget)
    critical = budget.required_period_ps(worst)
    assert len(grid.periods_ps) == 1
    assert grid.periods_ps[0] > critical
    offsets = np.asarray(grid.offsets_ps)
    assert np.all(np.diff(offsets) > 0)
    assert offsets[0] == pytest.approx(0.35 * critical)
    assert offsets[-1] < critical
    assert len(grid.widths_ps) == 3


def test_calibrated_grid_validation():
    budget = TimingBudget()
    with pytest.raises(ValueError):
        GlitchGrid.calibrated(-1.0, budget)
    with pytest.raises(ValueError):
        GlitchGrid.calibrated(4000.0, budget, num_offsets=0)
    with pytest.raises(ValueError):
        GlitchGrid.calibrated(4000.0, budget, deep_fraction=1.5)


def test_fault_coverage_counts_faulted_captures():
    correct = np.zeros((4, 16), dtype=np.uint8)
    faulted = np.zeros((2, 4, 16), dtype=np.uint8)
    faulted[0, 0, 3] = 1
    faulted[1, 2, 7] = 9
    faulted[1, 3, 7] = 9
    assert fault_coverage(correct, faulted) == pytest.approx(3 / 8)
    per_device = device_fault_coverages(correct, faulted)
    assert per_device.tolist() == pytest.approx([1 / 4, 2 / 4])
    with pytest.raises(ValueError):
        device_fault_coverages(correct, correct)


# -- engine --------------------------------------------------------------------


@pytest.fixture(scope="module")
def fault_campaign(golden_design):
    spec = _fault_spec()
    engine = CampaignEngine(spec, golden=golden_design)
    return spec, engine, engine.run()


def test_fault_metric_is_registered():
    assert "fault_coverage" in KNOWN_FAULT_METRICS
    spec = _fault_spec()
    cells = spec.grid()
    assert len(cells) == 1
    assert cells[0].is_fault and not cells[0].is_delay


def test_fault_cell_produces_rows(fault_campaign):
    spec, _engine, result = fault_campaign
    rows = [row for cell in result.cells for row in cell.rows]
    assert [row.trojan for row in rows] == ["HT1"]
    for row in rows:
        assert row.metric == "fault_coverage"
        assert 0.0 <= row.detection_probability <= 1.0


def test_fault_sweep_data_shapes_and_coverage(fault_campaign):
    spec, engine, _result = fault_campaign
    cell = next(cell for cell in spec.grid() if cell.is_fault)
    data = engine.fault_sweep_data(cell)
    num_stimuli = spec.num_plaintexts
    assert data.correct.shape == (num_stimuli, 16)
    assert data.plaintexts.shape == (num_stimuli, 16)
    assert data.golden_faulted.shape == (
        3, data.grid.num_points, num_stimuli, 16)
    assert set(data.infected_faulted) == {"HT1"}
    golden_cov = device_fault_coverages(data.correct, data.golden_faulted)
    infected_cov = device_fault_coverages(data.correct,
                                          data.infected_faulted["HT1"])
    # The trojan lengthens sensitised paths: its dies fault on more of
    # the grid than their clean counterparts.
    assert infected_cov.mean() > golden_cov.mean()


def test_fault_cells_are_deterministic(golden_design):
    first = CampaignEngine(_fault_spec(), golden=golden_design).run()
    second = CampaignEngine(_fault_spec(), golden=golden_design).run()
    assert [cell.rows for cell in first.cells] == \
        [cell.rows for cell in second.cells]


def test_fault_sweep_store_roundtrip(golden_design, tmp_path):
    store = tmp_path / "store"
    spec = _fault_spec()
    cell = next(c for c in spec.grid() if c.is_fault)
    cold = CampaignEngine(spec, golden=golden_design, store=store)
    cold_data = cold.fault_sweep_data(cell)
    warm = CampaignEngine(_fault_spec(), golden=golden_design, store=store)
    warm_data = warm.fault_sweep_data(cell)
    assert np.array_equal(cold_data.correct, warm_data.correct)
    assert np.array_equal(cold_data.golden_faulted, warm_data.golden_faulted)
    assert np.array_equal(cold_data.infected_faulted["HT1"],
                          warm_data.infected_faulted["HT1"])
    assert cold_data.grid == warm_data.grid


def test_attack_shards_cover_the_grid(golden_design):
    spec = _fault_spec(die_counts=(2, 3))
    assert spec.num_cells() == 2
    indices = []
    for shard in range(2):
        result = CampaignEngine(spec, golden=golden_design).run(
            shard=(shard, 2))
        indices.extend(cell.index for cell in result.cells)
    assert sorted(indices) == [0, 1]


def test_recover_from_engine_sweep(fault_campaign):
    spec, engine, _result = fault_campaign
    cell = next(c for c in spec.grid() if c.is_fault)
    data = engine.fault_sweep_data(cell)
    dfa = recover_from_sweep(data.correct, data.golden_faulted)
    expected = last_round_key(spec.key)
    assert dfa.num_faults > 0
    assert dfa.matches(expected)


# -- CLI -----------------------------------------------------------------------


def test_cli_parser_attack_flags():
    parser = build_parser()
    args = parser.parse_args([
        "attack", "sweep", "--store", "/tmp/s", "--dies", "3",
        "--plaintexts", "4", "--offset", "2000", "--width", "1500",
        "--period", "6000", "--shard", "0/2",
    ])
    assert args.store == "/tmp/s"
    assert args.offset == [2000.0] and args.period == [6000.0]
    assert args.shard == (0, 2)
    args = parser.parse_args(["attack", "recover", "--min-evidence", "12"])
    assert args.min_evidence == 12


def test_cli_attack_sweep_then_recover(tmp_path, capsys):
    """The acceptance demo: a stored glitch sweep, then DFA key recovery."""
    store = str(tmp_path / "store")
    assert main(["attack", "sweep", "--store", store]) == 0
    sweep_out = capsys.readouterr().out
    assert "fault_coverage" in sweep_out
    assert main(["attack", "recover", "--store", store]) == 0
    recover_out = capsys.readouterr().out
    assert "all recovered bytes match: True" in recover_out
    assert "(correct)" in recover_out
    assert "(WRONG)" not in recover_out
