"""Equivalence tests for the gate-level S-box."""

import pytest

from repro.crypto.sbox import SBOX
from repro.netlist.cells import CellType
from repro.netlist.sbox_circuit import (
    build_sbox_netlist,
    evaluate_sbox_netlist,
    sbox_input_net,
    sbox_netlist_truth_table,
    sbox_output_net,
)


@pytest.fixture(scope="module")
def sbox_netlist():
    return build_sbox_netlist()


def test_net_namers_validate_bit_index():
    assert sbox_input_net(0) == "in0"
    assert sbox_output_net(7) == "out7"
    with pytest.raises(ValueError):
        sbox_input_net(8)
    with pytest.raises(ValueError):
        sbox_output_net(-1)


def test_sbox_netlist_structure(sbox_netlist):
    stats = sbox_netlist.stats()
    # 8 output bits x (4 LUT6 + 3 MUX) = 32 LUTs and 24 muxes.
    assert stats["LUT"] == 32
    assert stats["MUX2"] == 24
    assert len(sbox_netlist.inputs) == 8
    assert len(sbox_netlist.outputs) == 8


def test_sbox_netlist_full_equivalence(sbox_netlist):
    assert sbox_netlist_truth_table(sbox_netlist) == list(SBOX)


def test_evaluate_rejects_out_of_range(sbox_netlist):
    with pytest.raises(ValueError):
        evaluate_sbox_netlist(sbox_netlist, 256)


def test_sbox_netlist_is_purely_combinational(sbox_netlist):
    assert not any(cell.cell_type == CellType.DFF
                   for cell in sbox_netlist.cells.values())
