"""Tests for the EM probe, oscilloscope and trace simulator."""

import numpy as np
import pytest

from repro.measurement.dut import DeviceUnderTest
from repro.measurement.em_probe import Amplifier, EMProbe, probe_impulse_response
from repro.measurement.em_simulator import EMAcquisitionConfig, EMSimulator
from repro.measurement.noise import EMNoiseModel
from repro.measurement.oscilloscope import Oscilloscope

PLAINTEXT = bytes(range(16))
KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


@pytest.fixture(scope="module")
def simulator():
    return EMSimulator()


@pytest.fixture(scope="module")
def golden_dut(golden_design, die_population):
    return DeviceUnderTest(golden_design, die_population[0], label="golden")


@pytest.fixture(scope="module")
def infected_dut(infected_design, die_population):
    return DeviceUnderTest(infected_design, die_population[0], label="infected")


def test_probe_coupling_decays_with_distance():
    probe = EMProbe(position=(0.0, 0.0), coupling_decay_slices=10.0)
    assert probe.coupling((0.0, 0.0)) == pytest.approx(1.0)
    assert probe.coupling((10.0, 0.0)) == pytest.approx(np.exp(-1.0))
    with pytest.raises(ValueError):
        EMProbe(coupling_decay_slices=0.0)


def test_amplifier_gain():
    amp = Amplifier(gain_db=30.0)
    assert amp.linear_gain == pytest.approx(10 ** 1.5)
    assert amp.amplify(np.ones(3))[0] == pytest.approx(amp.linear_gain)
    with pytest.raises(ValueError):
        Amplifier(gain_db=-3)


def test_impulse_response_is_damped_and_normalised():
    kernel = probe_impulse_response(5.0, ringing_frequency_mhz=200, decay_ns=4)
    assert np.max(np.abs(kernel)) == pytest.approx(1.0)
    assert np.abs(kernel[-1]) < 0.1
    with pytest.raises(ValueError):
        probe_impulse_response(0.0)


def test_oscilloscope_sampling_and_quantisation():
    scope = Oscilloscope()
    assert scope.samples_for_duration_ns(10.0) == 50
    assert scope.effective_noise_sigma(800.0) == pytest.approx(800.0 / np.sqrt(1000))
    quantised = scope.quantise(np.array([0.0, 100.3, -1e9]))
    assert quantised[2] == -scope.full_scale / 2
    assert scope.effective_lsb() < scope.lsb
    with pytest.raises(ValueError):
        Oscilloscope(sample_rate_gsps=0)
    with pytest.raises(ValueError):
        scope.quantise(np.zeros(3), lsb=0.0)


def test_acquisition_config_geometry():
    config = EMAcquisitionConfig()
    assert config.clock_period_ns == pytest.approx(1000.0 / 24.0)
    assert config.samples_per_cycle == pytest.approx(208, abs=1)
    assert config.total_cycles(10) == 14
    with pytest.raises(ValueError):
        EMAcquisitionConfig(clock_frequency_mhz=0)
    with pytest.raises(ValueError):
        EMAcquisitionConfig(trojan_pin_toggle_weight=-1)


def test_host_activities_track_register_switching(simulator, golden_dut):
    from repro.crypto.aes import AES

    activities = simulator.host_cycle_activities(AES(KEY), PLAINTEXT)
    assert len(activities) == 11
    assert all(a >= simulator.config.baseline_activity for a in activities)


def test_trojan_activities_zero_for_clean_design(simulator, golden_dut):
    from repro.crypto.aes import AES

    activities = simulator.trojan_cycle_activities(golden_dut, AES(KEY), PLAINTEXT)
    assert activities == [0.0] * 11


def test_trojan_activities_positive_for_infected(simulator, infected_dut):
    from repro.crypto.aes import AES

    activities = simulator.trojan_cycle_activities(infected_dut, AES(KEY), PLAINTEXT)
    assert len(activities) == 11
    assert all(a > 0 for a in activities)


def test_noiseless_trace_structure(simulator, golden_dut):
    trace = simulator.noiseless_trace(golden_dut, PLAINTEXT, KEY)
    expected_samples = simulator.config.total_samples(10)
    assert len(trace) == expected_samples
    assert len(trace.cycle_sample_offsets) == 11
    assert np.abs(trace.samples).max() > 1000


def test_noiseless_trace_deterministic(simulator, golden_dut):
    a = simulator.noiseless_trace(golden_dut, PLAINTEXT, KEY)
    b = simulator.noiseless_trace(golden_dut, PLAINTEXT, KEY)
    assert np.array_equal(a.samples, b.samples)


def test_noiseless_trace_depends_on_plaintext(simulator, golden_dut):
    a = simulator.noiseless_trace(golden_dut, PLAINTEXT, KEY)
    b = simulator.noiseless_trace(golden_dut, bytes(16), KEY)
    assert not np.array_equal(a.samples, b.samples)


def test_infected_trace_differs_from_golden(simulator, golden_dut, infected_dut):
    golden = simulator.noiseless_trace(golden_dut, PLAINTEXT, KEY)
    infected = simulator.noiseless_trace(infected_dut, PLAINTEXT, KEY)
    difference = np.abs(golden.samples - infected.samples)
    assert difference.max() > 50
    # The trojan adds activity; it must not change the trace length.
    assert len(golden) == len(infected)


def test_trojan_size_increases_em_difference(simulator, golden_design,
                                             die_population):
    from repro.trojan.insertion import insert_trojan
    from repro.trojan.library import build_trojan

    die = die_population[0]
    golden_dut = DeviceUnderTest(golden_design, die)
    golden = simulator.noiseless_trace(golden_dut, PLAINTEXT, KEY)
    differences = {}
    for name in ("HT1", "HT3"):
        infected = insert_trojan(golden_design, build_trojan(name,
                                                             golden_design.device))
        dut = DeviceUnderTest(infected, die)
        trace = simulator.noiseless_trace(dut, PLAINTEXT, KEY)
        differences[name] = float(np.abs(trace.samples - golden.samples).max())
    assert differences["HT3"] > differences["HT1"]


def test_acquire_adds_bounded_noise(simulator, golden_dut, rng):
    noiseless = simulator.noiseless_trace(golden_dut, PLAINTEXT, KEY)
    acquired = simulator.acquire(golden_dut, PLAINTEXT, KEY, rng)
    residual = acquired.samples - noiseless.samples
    sigma = simulator.config.noise.averaged_sigma(
        simulator.config.oscilloscope.num_averages
    )
    assert residual.std() < 5 * sigma + simulator.config.oscilloscope.effective_lsb()


def test_acquire_many_counts(simulator, golden_dut, rng):
    traces = simulator.acquire_many(golden_dut, [PLAINTEXT, bytes(16)], KEY, rng)
    assert len(traces) == 2
    assert traces[0].plaintext == PLAINTEXT


def test_setup_installation_perturbs_trace(simulator, golden_dut):
    rng_a = np.random.default_rng(0)
    rng_b = np.random.default_rng(0)
    plain = simulator.acquire(golden_dut, PLAINTEXT, KEY, rng_a,
                              new_setup_installation=False)
    reinstalled = simulator.acquire(golden_dut, PLAINTEXT, KEY, rng_b,
                                    new_setup_installation=True)
    assert not np.array_equal(plain.samples, reinstalled.samples)


def test_die_cycle_gains_frozen_per_die(simulator, golden_dut):
    a = simulator.die_cycle_gains(golden_dut, 11)
    b = simulator.die_cycle_gains(golden_dut, 11)
    assert np.array_equal(a, b)
    assert a.shape == (11,)
    assert np.all(a > 0)
