"""Locks, leases and the shared retry/backoff policy."""

from __future__ import annotations

import errno
import json
import multiprocessing
import os
import time

import pytest

from repro.campaigns.supervisor import SupervisorPolicy
from repro.store import (
    FileLock,
    LockTimeout,
    RetryPolicy,
    WriterLease,
    backoff_delay_s,
    break_stale_leases,
    is_transient_os_error,
    list_leases,
    live_foreign_leases,
)
from repro.store.locks import HAVE_FCNTL


# -- FileLock -----------------------------------------------------------------


def _hold_exclusive(path, acquired, release):
    lock = FileLock(path)
    lock.acquire(shared=False, timeout_s=10.0)
    acquired.set()
    release.wait(30.0)
    lock.release()


@pytest.mark.skipif(not HAVE_FCNTL, reason="fcntl locks unavailable")
def test_exclusive_lock_excludes_other_processes(tmp_path):
    path = tmp_path / "store.lock"
    ctx = multiprocessing.get_context()
    acquired, release = ctx.Event(), ctx.Event()
    holder = ctx.Process(target=_hold_exclusive,
                         args=(path, acquired, release))
    holder.start()
    try:
        assert acquired.wait(10.0)
        mine = FileLock(path)
        assert not mine.try_acquire(shared=False)
        assert not mine.try_acquire(shared=True)
        with pytest.raises(LockTimeout):
            mine.acquire(shared=False, timeout_s=0.2)
    finally:
        release.set()
        holder.join(10.0)
    # Released by the holder: now acquirable.
    mine = FileLock(path)
    assert mine.try_acquire(shared=False)
    mine.release()


def _hold_shared(path, acquired, release):
    lock = FileLock(path)
    lock.acquire(shared=True, timeout_s=10.0)
    acquired.set()
    release.wait(30.0)
    lock.release()


@pytest.mark.skipif(not HAVE_FCNTL, reason="fcntl locks unavailable")
def test_shared_locks_coexist_and_block_exclusive(tmp_path):
    path = tmp_path / "store.lock"
    ctx = multiprocessing.get_context()
    acquired, release = ctx.Event(), ctx.Event()
    holder = ctx.Process(target=_hold_shared, args=(path, acquired, release))
    holder.start()
    try:
        assert acquired.wait(10.0)
        reader = FileLock(path)
        assert reader.try_acquire(shared=True)  # shared + shared: fine
        reader.release()
        writer = FileLock(path)
        assert not writer.try_acquire(shared=False)  # shared blocks excl
    finally:
        release.set()
        holder.join(10.0)


@pytest.mark.skipif(not HAVE_FCNTL, reason="fcntl locks released by kernel")
def test_kernel_releases_fcntl_lock_when_holder_is_killed(tmp_path):
    path = tmp_path / "store.lock"
    ctx = multiprocessing.get_context()
    acquired, release = ctx.Event(), ctx.Event()
    holder = ctx.Process(target=_hold_exclusive,
                         args=(path, acquired, release))
    holder.start()
    assert acquired.wait(10.0)
    holder.kill()  # SIGKILL: no release() ever runs
    holder.join(10.0)
    mine = FileLock(path)
    mine.acquire(shared=False, timeout_s=5.0)  # kernel dropped the lock
    mine.release()


def test_fallback_lock_is_exclusive_and_breaks_dead_holders(tmp_path):
    path = tmp_path / "store.lock"
    first = FileLock(path, use_fcntl=False)
    assert first.try_acquire()
    second = FileLock(path, use_fcntl=False)
    assert not second.try_acquire()
    assert not second.try_acquire(shared=True)  # fallback has no shared side
    first.release()
    assert second.try_acquire()
    second.release()

    # A lock file naming a dead pid is broken and then acquirable.
    held = path.with_name(path.name + ".held")
    held.write_text("999999999")
    third = FileLock(path, use_fcntl=False)
    third.acquire(timeout_s=5.0)
    assert third.held
    third.release()
    assert not held.exists()


def test_lock_is_not_reentrant_and_context_managers_release(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    with lock.exclusive():
        assert lock.held
        with pytest.raises(RuntimeError):
            lock.try_acquire()
    assert not lock.held
    with lock.shared():
        assert lock.held
    assert not lock.held


# -- retry / backoff ----------------------------------------------------------


def test_backoff_formula_matches_supervisor_schedule():
    """One formula for the whole repo: the supervisor's pinned backoff
    schedule and the shared helper must agree bit-for-bit."""
    policy = SupervisorPolicy(retry_backoff_s=0.5, seed=42)
    for cell_index in (0, 3, 17):
        for attempt in (1, 2, 3, 4):
            expected = backoff_delay_s(0.5, attempt,
                                       token=f"42:{cell_index}")
            assert policy.backoff_s(cell_index, attempt) == expected
    # Determinism and exponential envelope.
    assert backoff_delay_s(0.5, 1, "t") == backoff_delay_s(0.5, 1, "t")
    assert 0.25 <= backoff_delay_s(0.5, 1, "t") <= 0.75
    assert 1.0 <= backoff_delay_s(0.5, 3, "t") <= 3.0
    assert backoff_delay_s(0.0, 5, "t") == 0.0
    assert backoff_delay_s(10.0, 5, "t", cap_s=0.1) == 0.1


def test_retry_policy_retries_transient_errors_only():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError(errno.EAGAIN, "try again")
        return "ok"

    policy = RetryPolicy(attempts=4, base_s=0.0, token="test")
    assert policy.call(flaky) == "ok"
    assert calls["n"] == 3

    def always_enoent():
        raise FileNotFoundError(errno.ENOENT, "gone")

    with pytest.raises(FileNotFoundError):
        policy.call(always_enoent)  # non-transient: no retries

    calls["n"] = 0

    def always_eagain():
        calls["n"] += 1
        raise OSError(errno.EAGAIN, "busy forever")

    with pytest.raises(OSError):
        policy.call(always_eagain)
    assert calls["n"] == 4  # bounded

    assert is_transient_os_error(OSError(errno.EBUSY, "x"))
    assert not is_transient_os_error(ValueError("x"))
    assert not is_transient_os_error(OSError(errno.EACCES, "x"))


# -- leases -------------------------------------------------------------------


def test_lease_lifecycle(tmp_path):
    leases_dir = tmp_path / "leases"
    with WriterLease(leases_dir, owner="test", ttl_s=60.0) as lease:
        infos = list_leases(leases_dir)
        assert len(infos) == 1
        assert infos[0].pid == os.getpid()
        assert infos[0].owner == "test"
        assert infos[0].is_live()
        # Own leases are excluded from the foreign-live view.
        assert live_foreign_leases(leases_dir) == []
        assert live_foreign_leases(leases_dir, ignore_pid=-1) == infos
        # A fresh heartbeat is a no-op write-wise (cheap), force rewrites.
        before = lease.path.read_bytes()
        lease.heartbeat()
        assert lease.path.read_bytes() == before
        lease.heartbeat(force=True)
    assert list_leases(leases_dir) == []


def test_stale_leases_are_broken(tmp_path):
    leases_dir = tmp_path / "leases"
    leases_dir.mkdir()
    # Expired heartbeat (live pid): stale.
    expired = WriterLease(leases_dir, owner="expired", ttl_s=-1.0).acquire()
    # Dead pid (unexpired): stale.
    dead = leases_dir / "host-999999999-1.json"
    dead.write_text(json.dumps({"pid": 999999999, "host": "nowhere... no",
                                "owner": "dead",
                                "expires_at": time.time() + 3600}))
    # But same-host dead pid:
    import socket
    dead_local = leases_dir / f"{socket.gethostname()}-999999998-2.json"
    dead_local.write_text(json.dumps({
        "pid": 999999998, "host": socket.gethostname(), "owner": "deadpid",
        "expires_at": time.time() + 3600}))
    # Torn lease file: swept too.
    torn = leases_dir / "torn.json"
    torn.write_text("{not json")
    # Live lease: kept.
    live = WriterLease(leases_dir, owner="live", ttl_s=3600.0).acquire()

    broken = break_stale_leases(leases_dir)
    names = {info.owner for info in broken}
    assert names == {"expired", "deadpid"}
    assert not expired.path.exists()
    assert not dead_local.exists()
    assert not torn.exists()
    assert dead.exists()  # off-host + unexpired: not provably stale
    assert live.path.exists()
    live.release()


def test_broken_lease_resurrects_on_next_heartbeat(tmp_path):
    leases_dir = tmp_path / "leases"
    lease = WriterLease(leases_dir, ttl_s=60.0).acquire()
    lease.path.unlink()  # a maintenance pass broke it
    lease.heartbeat(force=True)
    assert lease.path.exists()
    lease.release()


def test_retryable_vs_fatal_classification():
    """Satellite pin: the explicit retryable/fatal split of store IO.

    Connection resets and timeouts retry; misses (KeyError) and
    corruption (StoreIntegrityError) never do — a miss is an answer and
    corrupt bytes stay corrupt.
    """
    from repro.store import StoreIntegrityError, is_retryable_error

    # Retryable: repeating can change the outcome.
    assert is_retryable_error(ConnectionResetError("peer reset"))
    assert is_retryable_error(ConnectionError("refused"))
    assert is_retryable_error(BrokenPipeError("pipe"))
    assert is_retryable_error(TimeoutError("budget exceeded"))
    assert is_retryable_error(OSError(errno.EAGAIN, "busy"))
    assert is_retryable_error(OSError(errno.EINTR, "interrupted"))
    # Never retryable.
    assert not is_retryable_error(KeyError("miss"))
    assert not is_retryable_error(LookupError("miss"))
    assert not is_retryable_error(StoreIntegrityError("digest mismatch"))
    assert not is_retryable_error(ValueError("bad payload"))
    assert not is_retryable_error(FileNotFoundError(errno.ENOENT, "gone"))
    assert not is_retryable_error(PermissionError(errno.EACCES, "denied"))


def test_retry_policy_with_classification_bounds_and_fatals():
    from repro.store import is_retryable_error

    policy = RetryPolicy(attempts=4, base_s=0.0, token="classify")
    calls = {"n": 0}

    def miss():
        calls["n"] += 1
        raise KeyError("miss")

    with pytest.raises(KeyError):
        policy.call(miss, retry_on=is_retryable_error)
    assert calls["n"] == 1  # a miss is never retried

    calls["n"] = 0

    def resets_then_ok():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionResetError("flaky network")
        return "ok"

    assert policy.call(resets_then_ok, retry_on=is_retryable_error) == "ok"
    assert calls["n"] == 3

    calls["n"] = 0

    def always_times_out():
        calls["n"] += 1
        raise TimeoutError("stuck")

    with pytest.raises(TimeoutError):
        policy.call(always_times_out, retry_on=is_retryable_error)
    assert calls["n"] == 4  # bounded, then the last failure propagates


# -- stale-lease breaking races -----------------------------------------------


def _race_breaker(leases_dir, start, results):
    start.wait(10.0)
    broken = break_stale_leases(leases_dir)
    results.put(sorted(info.owner for info in broken))


def test_stale_lease_breaking_race_exactly_one_winner(tmp_path):
    """Two maintenance processes contend for one dead writer's lease
    while a live writer keeps heartbeating: exactly one breaker wins
    the dead lease (the unlink race is the arbiter) and the live lease
    survives untouched."""
    import socket

    leases_dir = tmp_path / "leases"
    leases_dir.mkdir()
    # A dead writer: this host, a pid that cannot exist, unexpired —
    # provably stale by pid-liveness, not by clock.
    dead = leases_dir / f"{socket.gethostname()}-999999997-1.json"
    dead.write_text(json.dumps({
        "pid": 999999997, "host": socket.gethostname(),
        "owner": "deadwriter", "expires_at": time.time() + 3600}))
    live = WriterLease(leases_dir, owner="live", ttl_s=3600.0).acquire()

    ctx = multiprocessing.get_context()
    start, results = ctx.Event(), ctx.Queue()
    breakers = [ctx.Process(target=_race_breaker,
                            args=(leases_dir, start, results))
                for _ in range(2)]
    for proc in breakers:
        proc.start()
    start.set()
    # The racing heartbeat: the live writer refreshes its lease while
    # both breakers sweep the directory.
    deadline = time.monotonic() + 2.0
    while any(proc.is_alive() for proc in breakers) \
            and time.monotonic() < deadline:
        live.heartbeat(force=True)
        time.sleep(0.001)
    reported = [results.get(timeout=10.0) for _ in breakers]
    for proc in breakers:
        proc.join(10.0)

    wins = [owners for owners in reported if "deadwriter" in owners]
    assert len(wins) == 1, f"expected exactly one winner, got {reported}"
    assert not dead.exists()
    # The live, heartbeating lease was never broken.
    assert live.path.exists()
    assert {info.owner for info in list_leases(leases_dir)} == {"live"}
    live.release()
