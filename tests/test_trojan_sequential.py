"""Tests for the sequential (counter) trojan."""

import pytest

from repro.trojan.base import NO_ACTIVITY, TrojanKind
from repro.trojan.sequential import SequentialTrojan, build_sequential_trojan


def test_kind_and_structure(sequential_trojan):
    assert sequential_trojan.kind == TrojanKind.SEQUENTIAL
    assert sequential_trojan.tapped_host_nets == []
    assert sequential_trojan.counter_width == 8
    stats = sequential_trojan.netlist.stats()
    assert stats["DFF"] >= 8


def test_constructor_validation():
    with pytest.raises(ValueError):
        SequentialTrojan("bad", counter_width=1)
    with pytest.raises(ValueError):
        SequentialTrojan("bad", counter_width=8, compare_value=256)
    with pytest.raises(ValueError):
        SequentialTrojan("bad", increment_round=0)


def test_counter_register_values_encoding(sequential_trojan):
    values = sequential_trojan.counter_register_values(0b1011)
    assert values["cnt_q0"] == 1
    assert values["cnt_q1"] == 1
    assert values["cnt_q2"] == 0
    assert values["cnt_q3"] == 1
    # Values wrap at the counter width.
    wrapped = sequential_trojan.counter_register_values(1 << 8)
    assert all(bit == 0 for bit in wrapped.values())


def test_comparator_fires_only_at_compare_value():
    trojan = SequentialTrojan("t", counter_width=8, compare_value=0x5A)
    assert trojan.is_triggered_at(0x5A)
    assert not trojan.is_triggered_at(0x59)
    assert not trojan.is_triggered_at(0)


def test_default_compare_value_unreachable(sequential_trojan):
    assert sequential_trojan.compare_value == (1 << 8) - 1
    for value in range(0, 200, 13):
        if value != sequential_trojan.compare_value:
            assert not sequential_trojan.is_triggered_at(value)


def test_counter_increment_logic(sequential_trojan):
    """The ripple-carry increment produces value + 1 at the D inputs."""
    netlist = sequential_trojan.netlist
    for value in (0, 1, 7, 127, 254):
        regs = sequential_trojan.counter_register_values(value)
        next_regs = netlist.next_register_values({"inc": 1}, regs)
        observed = sum(next_regs[f"cnt_q{bit}"] << bit for bit in range(8))
        assert observed == (value + 1) % 256


def test_counter_holds_without_increment(sequential_trojan):
    netlist = sequential_trojan.netlist
    regs = sequential_trojan.counter_register_values(37)
    next_regs = netlist.next_register_values({"inc": 0}, regs)
    observed = sum(next_regs[f"cnt_q{bit}"] << bit for bit in range(8))
    assert observed == 37


def test_round_activity_only_at_increment_round(sequential_trojan):
    silent = sequential_trojan.round_activity(bytes(16), bytes(16),
                                              encryption_index=5, round_index=3)
    assert silent == NO_ACTIVITY
    active = sequential_trojan.round_activity(bytes(16), bytes(16),
                                              encryption_index=5, round_index=10)
    assert active.output_toggles > 0


def test_activity_larger_on_carry_chains(sequential_trojan):
    """Incrementing 0b0111...1 flips many bits; incrementing an even value flips one."""
    few = sequential_trojan.round_activity(bytes(16), bytes(16),
                                           encryption_index=0, round_index=10)
    many = sequential_trojan.round_activity(bytes(16), bytes(16),
                                            encryption_index=127, round_index=10)
    assert many.output_toggles > few.output_toggles


def test_tap_values_empty(sequential_trojan):
    assert sequential_trojan.tap_values(bytes(16)) == {}


def test_build_helper_with_payload():
    bare = build_sequential_trojan("s", counter_width=8, payload_luts=0)
    padded = build_sequential_trojan("s", counter_width=8, payload_luts=10)
    assert padded.lut_count() == pytest.approx(bare.lut_count() + 10)
