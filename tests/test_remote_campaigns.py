"""Campaigns over remote/tiered stores, through partitions and back.

The acceptance test of this suite (ISSUE 10) runs a 3-shard campaign
whose shards all write through :class:`~repro.store.tiered.TieredStore`
into one shared remote behind a :class:`~repro.store.transport
.FlakyTransport` — seeded faults including a full partition window that
opens mid-run.  The campaign must complete (degrading to local-only
writes), ``store sync`` must drain every journaled upload once the
remote heals, and the merged rows must be bit-identical to a plain
serial local-store run with zero lost cells: a fresh, empty local tier
over the healed remote resumes every cell as a warm hit.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.campaigns import (
    CampaignEngine,
    CampaignSpec,
    merge_campaign_results,
)
from repro.store import (
    ArtifactStore,
    FlakyTransport,
    LoopbackTransport,
    RemoteStore,
    RetryPolicy,
    TieredStore,
)
from repro.testing.faults import FaultSchedule, FaultWindow

#: Same small multi-chunk grid as the shared-store stress suite:
#: 2 die populations x 2 metrics = 4 cells.
SPEC_KWARGS = dict(
    name="remote-campaign", trojans=("HT1",), die_counts=(2, 3),
    metrics=("local_maxima_sum", "l1"), seed=13,
    max_retries=1, retry_backoff_s=0.01,
)

SHARDS = 3

#: Zero-sleep retries keep the fault schedules deterministic *and* fast.
FAST_RETRY = RetryPolicy(attempts=3, base_s=0.0, token="test")


def _stress_root(tmp_path, name):
    """Store parent dir — under $REPRO_STRESS_DIR when CI sets it, so a
    failing run's store state survives as an uploadable artifact."""
    base = os.environ.get("REPRO_STRESS_DIR")
    if base:
        root = Path(base) / f"{name}-{os.getpid()}"
        root.mkdir(parents=True, exist_ok=True)
        return root
    return tmp_path


def _remote(transport):
    return RemoteStore(transport, retry=FAST_RETRY)


def test_engine_accepts_tiered_store_and_resumes_from_remote(tmp_path):
    """A campaign through a (clean) tiered store is bit-identical to a
    local run, and a second host with an empty local tier resumes every
    cell from the remote without recomputing."""
    root = _stress_root(tmp_path, "tiered-clean")
    spec = CampaignSpec(**SPEC_KWARGS)
    serial = CampaignEngine(CampaignSpec(**SPEC_KWARGS),
                            store=str(root / "plain")).run()

    remote_dir = root / "remote"
    tiered = TieredStore(root / "host-a", _remote(
        LoopbackTransport(remote_dir)))
    result = CampaignEngine(spec, store=tiered).run()
    assert [r.to_dict() for r in result.rows()] == \
        [r.to_dict() for r in serial.rows()]
    assert tiered.pending_uploads() == []

    # Host B: empty local tier, same remote — every cell is already
    # complete, so the engine resumes with zero recomputed cells.
    host_b = TieredStore(root / "host-b", _remote(
        LoopbackTransport(remote_dir)))
    engine_b = CampaignEngine(CampaignSpec(**SPEC_KWARGS), store=host_b)
    for cell in engine_b.spec.grid():
        assert engine_b.load_cell_result(cell) is not None, \
            f"cell {cell.index} was lost in replication"
    result_b = engine_b.run()
    assert [r.to_dict() for r in result_b.rows()] == \
        [r.to_dict() for r in serial.rows()]


def test_supervised_workers_share_a_tiered_store(tmp_path):
    """The supervisor ships tiered stores to worker processes via
    spawn configs; worker-written artifacts reach the remote tier."""
    root = _stress_root(tmp_path, "tiered-workers")
    spec = CampaignSpec(workers=2, **SPEC_KWARGS)
    remote_dir = root / "remote"
    tiered = TieredStore(root / "local", _remote(
        LoopbackTransport(remote_dir)))
    result = CampaignEngine(spec, store=tiered).run()
    assert all(row.status == "ok" for row in result.cells)

    serial = CampaignEngine(CampaignSpec(**SPEC_KWARGS)).run()
    assert [r.to_dict() for r in result.rows()] == \
        [r.to_dict() for r in serial.rows()]
    # Every cell's completion record is readable from the remote alone.
    fresh = TieredStore(root / "fresh-local", _remote(
        LoopbackTransport(remote_dir)))
    engine = CampaignEngine(CampaignSpec(**SPEC_KWARGS), store=fresh)
    assert all(engine.load_cell_result(cell) is not None
               for cell in engine.spec.grid())


def test_sharded_campaign_through_partition_and_reconnect(tmp_path):
    """ISSUE 10 acceptance: a 3-shard campaign over a FlakyTransport
    remote — seeded faults including a full partition window opening
    mid-run — completes after ``store sync`` with merged rows
    bit-identical to a serial local-store run and zero lost cells."""
    from repro.cli import main

    root = _stress_root(tmp_path, "partition")
    remote_dir = root / "remote"
    spec = CampaignSpec(**SPEC_KWARGS)

    # Every transport op from ordinal 6 on fails: the partition opens
    # mid-run (the first puts replicate, the rest journal) and never
    # heals within the run.  A couple of scripted early blips exercise
    # the retry path before the partition.  One frozen schedule per
    # shard process — equal seeds replay equal fault sequences.
    schedule = FaultSchedule(at=((1, "connect"), (3, "timeout")),
                             windows=(FaultWindow(6, 10**9, "connect"),),
                             seed=20)

    shard_results = []
    degraded = 0
    for shard_index in range(SHARDS):
        tiered = TieredStore(
            root / f"shard-{shard_index}",
            _remote(FlakyTransport(LoopbackTransport(remote_dir), schedule)))
        engine = CampaignEngine(CampaignSpec(**SPEC_KWARGS), store=tiered)
        result = engine.run(shard=(shard_index, SHARDS))
        assert all(row.status == "ok" for row in result.cells), \
            "the partition must degrade writes, never fail cells"
        shard_results.append(result)
        degraded += tiered.degraded_writes
    assert degraded > 0, "the partition window never bit — schedule is stale"

    # The remote heals: drain every shard's journal via the CLI.
    for shard_index in range(SHARDS):
        rc = main(["store", "sync", str(root / f"shard-{shard_index}"),
                   "--remote", str(remote_dir)])
        assert rc == 0, f"store sync failed for shard {shard_index}"

    # Merged rows bit-identical to a clean serial local-store run.
    merged = merge_campaign_results(shard_results)
    serial = CampaignEngine(CampaignSpec(**SPEC_KWARGS),
                            store=str(root / "serial-store")).run()
    assert [row.to_dict() for row in merged.rows()] == \
        [row.to_dict() for row in serial.rows()]

    # Zero lost cells: a fresh host with an empty local tier sees every
    # cell of the full grid as complete on the healed remote.
    fresh = TieredStore(root / "fresh", _remote(
        LoopbackTransport(remote_dir)))
    engine = CampaignEngine(CampaignSpec(**SPEC_KWARGS), store=fresh)
    for cell in engine.spec.grid():
        assert engine.load_cell_result(cell) is not None, \
            f"cell {cell.index} was lost across the partition"

    # And the healed remote is internally consistent: every key's
    # payload verifies against its manifest digest.
    remote = _remote(LoopbackTransport(remote_dir))
    for key in remote.keys():
        assert remote.object_bytes(key) is not None

    # The local shard tiers remain verifiably clean stores.
    for shard_index in range(SHARDS):
        report = ArtifactStore(root / f"shard-{shard_index}").fsck()
        assert report.clean()
