"""Unit tests for FPGA device models and floorplans."""

import pytest

from repro.fpga.device import (
    AES_SLICE_UTILISATION,
    FPGADevice,
    aes_slice_budget,
    spartan3an_700,
    virtex5_lx30,
)
from repro.fpga.floorplan import Floorplan, Region, default_floorplan


def test_virtex5_lx30_parameters():
    device = virtex5_lx30()
    assert device.total_slices == 4800
    assert device.technology_nm == 65
    assert device.luts_per_slice == 4
    assert device.nominal_clock_period_ns == pytest.approx(1000.0 / 24.0)
    assert device.nominal_clock_period_ps == pytest.approx(1e6 / 24.0)


def test_spartan3_parameters():
    device = spartan3an_700()
    assert device.nominal_clock_period_ns == 10.0
    assert device.core_voltage_v == 1.2
    assert device.total_slices == device.rows * device.columns


def test_device_validation():
    with pytest.raises(ValueError):
        FPGADevice("bad", 65, 0, 10, 4, 4, 1.0, 10.0)
    with pytest.raises(ValueError):
        FPGADevice("bad", 65, 10, 10, 0, 4, 1.0, 10.0)


def test_device_contains_and_iteration():
    device = virtex5_lx30()
    assert device.contains(0, 0)
    assert device.contains(device.rows - 1, device.columns - 1)
    assert not device.contains(device.rows, 0)
    assert not device.contains(0, -1)
    coords = list(device.iter_slices())
    assert len(coords) == device.total_slices
    assert coords[0] == (0, 0)


def test_aes_slice_budget_matches_paper_utilisation():
    device = virtex5_lx30()
    budget = aes_slice_budget(device)
    assert budget == round(4800 * AES_SLICE_UTILISATION)
    assert device.slice_fraction(budget) == pytest.approx(AES_SLICE_UTILISATION,
                                                          abs=1e-3)


def test_region_geometry():
    region = Region("r", 2, 3, 5, 7)
    assert region.rows == 4
    assert region.columns == 5
    assert region.slice_count == 20
    assert region.contains(2, 3)
    assert not region.contains(6, 3)
    assert region.center == (3.5, 5.0)
    assert len(list(region.iter_slices())) == 20


def test_region_validation():
    with pytest.raises(ValueError):
        Region("bad", 5, 0, 2, 3)
    with pytest.raises(ValueError):
        Region("bad", -1, 0, 2, 3)


def test_region_overlap_detection():
    a = Region("a", 0, 0, 4, 4)
    b = Region("b", 3, 3, 6, 6)
    c = Region("c", 5, 5, 8, 8)
    assert a.overlaps(b)
    assert b.overlaps(a)
    assert not a.overlaps(c)


def test_default_floorplan_structure():
    device = virtex5_lx30()
    plan = default_floorplan(device)
    plan.validate()
    assert plan.aes_region.slice_count >= aes_slice_budget(device) * 0.9
    assert plan.free_slice_count() > 0
    for region in plan.free_regions:
        assert not region.overlaps(plan.aes_region)


def test_default_floorplan_rejects_bad_utilisation():
    with pytest.raises(ValueError):
        default_floorplan(virtex5_lx30(), aes_utilisation=0.0)
    with pytest.raises(ValueError):
        default_floorplan(virtex5_lx30(), aes_utilisation=1.0)


def test_floorplan_validate_rejects_out_of_device_regions():
    device = virtex5_lx30()
    bad = Floorplan(
        device=device,
        aes_region=Region("aes", 0, 0, device.rows + 5, 10),
        free_regions=(),
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_floorplan_validate_rejects_overlapping_free_region():
    device = virtex5_lx30()
    bad = Floorplan(
        device=device,
        aes_region=Region("aes", 0, 0, 10, 10),
        free_regions=(Region("free", 5, 5, 20, 20),),
    )
    with pytest.raises(ValueError):
        bad.validate()
