"""Multi-process store concurrency: races, maintenance, kill -9, leases.

The acceptance test of this suite runs real shard worker *processes*
sharing one store directory against a concurrent gc/fsck maintenance
loop, and requires the merged campaign rows to be bit-identical to a
clean serial run with zero cells lost to maintenance races.  The
narrower tests script each race individually with the
:class:`~repro.testing.chaos.WindowFaultStore` /
:class:`~repro.testing.chaos.SyncFlag` primitives: two writers racing
one key, ``gc`` inside a writer's object→manifest window, kill -9
mid-``put``, and a dead lease holder.

When ``REPRO_STRESS_DIR`` is set (the CI stress job sets it), every
store directory is created under it so a failing run's store state is
uploaded as a build artifact.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignEngine,
    CampaignResult,
    CampaignSpec,
    merge_campaign_results,
)
from repro.store import ArtifactStore, stable_key
from repro.testing import SyncFlag, WindowFaultStore

#: Small but multi-chunk campaign grid: 2 die populations x 2 metrics.
SPEC_KWARGS = dict(
    name="shared-store", trojans=("HT1",), die_counts=(2, 3),
    metrics=("local_maxima_sum", "l1"), seed=13,
    max_retries=1, retry_backoff_s=0.01,
)

SHARDS = 3


def _stress_root(tmp_path, name):
    """Store parent dir — under $REPRO_STRESS_DIR when CI sets it, so a
    failing run's store state survives as an uploadable artifact."""
    base = os.environ.get("REPRO_STRESS_DIR")
    if base:
        root = Path(base) / f"{name}-{os.getpid()}"
        root.mkdir(parents=True, exist_ok=True)
        return root
    return tmp_path


# -- two writers racing one key -----------------------------------------------


def _racing_writer(store_root, key, ready, go, done):
    store = ArtifactStore(store_root)
    ready.set()
    go.wait(30.0)
    # Identical payload from both writers: content-addressed producers
    # are deterministic, so a same-key race writes the same bytes.
    store.put_json(key, {"value": [1, 2, 3], "who": "deterministic"})
    store.release_lease()
    done.set()


def test_two_writers_racing_the_same_key(tmp_path):
    store_root = _stress_root(tmp_path, "race") / "store"
    key = stable_key({"race": "same-key"})
    ctx = multiprocessing.get_context()
    ready = [ctx.Event() for _ in range(2)]
    done = [ctx.Event() for _ in range(2)]
    go = ctx.Event()
    writers = [ctx.Process(target=_racing_writer,
                           args=(store_root, key, ready[i], go, done[i]))
               for i in range(2)]
    for writer in writers:
        writer.start()
    for event in ready:
        assert event.wait(10.0)
    go.set()  # both writers start their put as close together as possible
    for writer in writers:
        writer.join(30.0)
    assert all(event.is_set() for event in done)
    assert all(writer.exitcode == 0 for writer in writers)

    store = ArtifactStore(store_root)
    assert store.get_json(key) == {"value": [1, 2, 3],
                                   "who": "deterministic"}
    report = store.fsck()
    assert report.clean()
    assert store.gc()["orphan_objects"] == 0


# -- gc scripted into the object→manifest window ------------------------------


def _window_writer(store_root, key, window_flag, proceed_flag):
    store = WindowFaultStore(store_root, window_flag=window_flag,
                             proceed_flag=proceed_flag)
    store.put_json(key, {"v": "windowed"})
    store.release_lease()


def test_gc_inside_write_window_keeps_leased_orphan(tmp_path):
    """The exact interleaving that loses work on an unprotected store:
    gc runs while a live writer has its object on disk but no manifest
    entry yet.  The lease must keep the orphan alive."""
    root = _stress_root(tmp_path, "window")
    store_root = root / "store"
    key = stable_key({"window": "gc"})
    window = SyncFlag(root / "window.flag")
    proceed = SyncFlag(root / "proceed.flag")
    ctx = multiprocessing.get_context()
    writer = ctx.Process(target=_window_writer,
                         args=(store_root, key, window.path, proceed.path))
    writer.start()
    try:
        assert window.wait(30.0), "writer never reached its write window"
        store = ArtifactStore(store_root)
        # The window is open: object present, manifest absent.
        assert (store.objects_dir / f"{key}.json").exists()
        assert not (store.manifest_dir / f"{key}.json").exists()

        removed = store.gc(wait_s=10.0)
        assert removed["orphan_objects"] == 0
        assert removed["skipped_leased"] >= 1
        assert len(removed["live_leases"]) == 1
        assert (store.objects_dir / f"{key}.json").exists()

        report = store.fsck()
        assert f"{key}.json" in report.leased_orphans
        assert report.orphan_objects == []
    finally:
        proceed.set()
        writer.join(30.0)
    assert writer.exitcode == 0
    store = ArtifactStore(store_root)
    assert store.get_json(key) == {"v": "windowed"}
    assert store.fsck().clean()


# -- kill -9 mid-put ----------------------------------------------------------


def _doomed_writer(store_root, key, window_flag):
    store = WindowFaultStore(store_root, window_flag=window_flag,
                             kill_in_window=True)
    store.put_json(key, {"v": "never recorded"})  # dies inside


def test_kill9_mid_put_recovers_via_stale_lease_and_fsck(tmp_path):
    root = _stress_root(tmp_path, "kill9")
    store_root = root / "store"
    key = stable_key({"kill9": "mid-put"})
    window = SyncFlag(root / "window.flag")
    ctx = multiprocessing.get_context()
    writer = ctx.Process(target=_doomed_writer,
                         args=(store_root, key, window.path))
    writer.start()
    writer.join(30.0)
    assert writer.exitcode == 175  # died inside the window
    assert window.is_set()

    store = ArtifactStore(store_root)
    # The dead writer left an orphan object and a lease with a dead pid.
    assert (store.objects_dir / f"{key}.json").exists()
    assert not (store.manifest_dir / f"{key}.json").exists()
    assert len(store.leases()) == 1

    report = store.fsck(repair=True, wait_s=10.0)
    assert len(report.broken_leases) == 1  # dead pid = stale, broken
    assert report.orphan_objects == [f"{key}.json"]
    assert not (store.objects_dir / f"{key}.json").exists()
    assert store.fsck(repair=True).clean()  # idempotent second pass
    # No unreadable hits anywhere: the key is a clean miss.
    assert store.load_json(key) is None


def _killed_campaign_worker(spec_dict, store_root, window_flag):
    spec = CampaignSpec.from_dict(spec_dict)
    engine = CampaignEngine(spec, store=store_root)
    # Die inside the THIRD store write's window: earlier writes are
    # fully recorded (resumable), one object is torn off mid-put.
    engine.store = WindowFaultStore(store_root, window_flag=window_flag,
                                    kill_in_window=True, skip_writes=2)
    engine.run()


def test_killed_worker_campaign_resumes_only_missing_cells(tmp_path):
    """kill -9 during a campaign's store write: after lease breaking and
    fsck --repair, a resumed run computes only the missing cells."""
    root = _stress_root(tmp_path, "resume")
    store_root = root / "store"
    spec = CampaignSpec(**SPEC_KWARGS)

    ctx = multiprocessing.get_context()
    window = SyncFlag(root / "window.flag")
    crasher = ctx.Process(target=_killed_campaign_worker,
                          args=(spec.to_dict(), store_root, window.path))
    crasher.start()
    crasher.join(120.0)
    assert crasher.exitcode == 175
    assert window.is_set()

    store = ArtifactStore(store_root)
    report = store.fsck(repair=True, wait_s=10.0)
    assert len(report.broken_leases) == 1
    assert len(report.orphan_objects) >= 1  # the torn-off mid-put object
    assert store.fsck().clean()

    # Which cells still need computing, per the store's own records.
    engine = CampaignEngine(spec, store=store_root)
    missing = {cell.index for cell in spec.grid()
               if engine.load_cell_result(cell) is None}
    assert missing, "the crashed run should not have completed the grid"

    computed = []
    original = engine.run_cell

    def counting_run_cell(cell):
        computed.append(cell.index)
        return original(cell)

    engine.run_cell = counting_run_cell
    result = engine.run()
    assert all(row.status == "ok" for row in result.cells)
    # Exactly the missing cells were recomputed — nothing recorded
    # before the crash ran again.
    assert set(computed) == missing
    assert len(computed) == len(missing)


# -- lease-holder death -------------------------------------------------------


def _dying_lease_holder(store_root, ready):
    store = ArtifactStore(store_root)
    store.acquire_lease(owner="doomed")
    ready.set()
    os._exit(0)  # exits without releasing: the lease file stays behind


def test_dead_lease_holders_are_broken_by_gc(tmp_path):
    store_root = _stress_root(tmp_path, "deadlease") / "store"
    store = ArtifactStore(store_root)
    store.put_json(stable_key({"keep": 1}), {"v": 1})
    store.release_lease()
    (store.objects_dir / "orphan.json").write_text("{}")

    ctx = multiprocessing.get_context()
    ready = ctx.Event()
    holder = ctx.Process(target=_dying_lease_holder,
                         args=(store_root, ready))
    holder.start()
    assert ready.wait(10.0)
    holder.join(10.0)

    # The dead holder's lease is broken, so the orphan is sweepable.
    removed = store.gc(wait_s=10.0)
    assert len(removed["broken_leases"]) == 1
    assert removed["live_leases"] == []
    assert removed["orphan_objects"] == 1
    assert not (store.objects_dir / "orphan.json").exists()


# -- CLI ----------------------------------------------------------------------


def _hold_store_shared(store_root, ready, release):
    from repro.store import FileLock

    lock = FileLock(Path(store_root) / "locks" / "store.lock")
    lock.acquire(shared=True, timeout_s=10.0)
    ready.set()
    release.wait(30.0)
    lock.release()


def test_cli_reports_busy_store_and_lists_leases(tmp_path, capsys):
    from repro.cli import main
    from repro.store.locks import HAVE_FCNTL

    store_root = tmp_path / "store"
    store = ArtifactStore(store_root)
    store.put_json(stable_key({"cli": 1}), {"v": 1})

    out = capsys.readouterr()
    assert main(["store", "leases", str(store_root)]) == 0
    out = capsys.readouterr().out
    assert "live" in out and str(os.getpid()) in out
    store.release_lease()

    if not HAVE_FCNTL:  # pragma: no cover - non-POSIX
        pytest.skip("busy-store path needs a real shared/exclusive lock")
    ctx = multiprocessing.get_context()
    ready, release = ctx.Event(), ctx.Event()
    holder = ctx.Process(target=_hold_store_shared,
                         args=(store_root, ready, release))
    holder.start()
    try:
        assert ready.wait(10.0)
        # A writer holds the shared side: exclusive maintenance times out.
        assert main(["store", "gc", str(store_root), "--wait", "0.2"]) == 3
        assert "store busy" in capsys.readouterr().err
        assert main(["store", "fsck", str(store_root), "--repair",
                     "--wait", "0.2"]) == 3
        assert "store busy" in capsys.readouterr().err
        # The lock-free audit still works while the store is busy.
        assert main(["store", "fsck", str(store_root)]) == 0
    finally:
        release.set()
        holder.join(10.0)
    assert main(["store", "gc", str(store_root), "--wait", "5"]) == 0


# -- acceptance: shard fleet vs maintenance loop ------------------------------


def _shard_worker(spec_dict, store_root, out_dir, shard_index):
    spec = CampaignSpec.from_dict(spec_dict)
    engine = CampaignEngine(spec, store=store_root)
    result = engine.run(shard=(shard_index, SHARDS))
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"shard-{shard_index}.json").write_text(
        json.dumps(result.to_dict()))


def _maintenance_loop(store_root, stop_flag, log_path):
    """gc + fsck --repair in a tight loop until told to stop."""
    store = ArtifactStore(store_root)
    sweeps = 0
    destroyed = 0
    stop = SyncFlag(stop_flag)
    while not stop.is_set():
        try:
            removed = store.gc(wait_s=5.0)
            destroyed += removed["orphan_objects"] + removed["stray_tmp"]
            report = store.fsck(repair=True, wait_s=5.0)
            destroyed += len(report.orphan_objects)
            destroyed += len(report.corrupt)
            destroyed += len(report.missing_objects)
            sweeps += 1
        except TimeoutError:
            continue
    Path(log_path).write_text(json.dumps({"sweeps": sweeps,
                                          "destroyed": destroyed}))


def test_shard_fleet_with_concurrent_maintenance_is_bit_identical(tmp_path):
    """ISSUE 8 acceptance: >=3 real shard processes + a concurrent
    gc/fsck --repair loop over one shared store produce merged rows
    bit-identical to a clean serial run, with zero lost cells."""
    root = _stress_root(tmp_path, "acceptance")
    store_root = root / "store"
    out_dir = root / "shards"
    stop = SyncFlag(root / "stop.flag")
    log_path = root / "maintenance.json"
    spec = CampaignSpec(**SPEC_KWARGS)

    ctx = multiprocessing.get_context()
    maintenance = ctx.Process(target=_maintenance_loop,
                              args=(store_root, stop.path, log_path))
    maintenance.start()
    workers = [ctx.Process(target=_shard_worker,
                           args=(spec.to_dict(), store_root, out_dir, i))
               for i in range(SHARDS)]
    try:
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(300.0)
            assert worker.exitcode == 0
    finally:
        stop.set()
        maintenance.join(60.0)
        if maintenance.is_alive():  # pragma: no cover - defensive
            maintenance.kill()
    assert maintenance.exitcode == 0
    log = json.loads(log_path.read_text())
    assert log["sweeps"] >= 1, "maintenance loop never completed a sweep"
    # Zero cells lost: no completed record or in-flight object was
    # destroyed by the concurrent maintenance.
    assert log["destroyed"] == 0

    shard_results = [
        CampaignResult.from_dict(json.loads(path.read_text()))
        for path in sorted(out_dir.glob("shard-*.json"))]
    assert len(shard_results) == SHARDS
    merged = merge_campaign_results(shard_results)
    assert all(row.status == "ok" for row in merged.cells)

    serial = CampaignEngine(CampaignSpec(**SPEC_KWARGS)).run()
    assert [row.to_dict() for row in merged.rows()] == \
        [row.to_dict() for row in serial.rows()]

    # The shared store ends verifiably clean once the fleet is gone.
    store = ArtifactStore(store_root)
    final = store.fsck(repair=True, wait_s=10.0)
    assert final.clean()
