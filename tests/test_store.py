"""Tests for the content-addressed artifact store (`repro.store`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.measurement.em_simulator import EMTrace
from repro.store import (
    ArtifactStore,
    canonical_json,
    cell_result_key,
    infected_summary_key,
    pack_delay_differences,
    pack_population_traces,
    population_traces_key,
    spec_content_fragment,
    stable_key,
    unpack_delay_differences,
    unpack_population_traces,
)


def make_trace(label: str, seed: int, num_samples: int = 64,
               dtype=np.float64) -> EMTrace:
    rng = np.random.default_rng(seed)
    return EMTrace(
        samples=rng.normal(0, 100, num_samples).astype(dtype),
        label=label,
        plaintext=bytes(range(16)),
        sample_period_ns=0.2,
        cycle_sample_offsets=[4 * cycle + seed for cycle in range(5)],
    )


# -- keys ---------------------------------------------------------------------


def test_stable_key_is_order_independent_and_deterministic():
    key_a = stable_key({"b": 1, "a": [1, 2], "nested": {"y": 2.5, "x": None}})
    key_b = stable_key({"nested": {"x": None, "y": 2.5}, "a": [1, 2], "b": 1})
    assert key_a == key_b
    assert len(key_a) == 64 and set(key_a) <= set("0123456789abcdef")


def test_stable_key_same_spec_fragment_same_key():
    base = dict(device={"name": "lx30"}, golden="built-in",
                em_config={"noise": 400.0}, seed=2015, num_dies=8,
                trojans=("HT1", "HT2"), key=bytes(16),
                plaintexts=[bytes(range(16))])
    assert population_traces_key(**base) == population_traces_key(**base)


@pytest.mark.parametrize("perturbation", [
    {"seed": 2016},
    {"num_dies": 9},
    {"trojans": ("HT1", "HT3")},
    {"em_config": {"noise": 401.0}},
    {"key": bytes(15) + b"\x01"},
    {"plaintexts": [bytes(16)]},
    {"golden": "custom"},
])
def test_stable_key_perturbed_spec_new_key(perturbation):
    base = dict(device={"name": "lx30"}, golden="built-in",
                em_config={"noise": 400.0}, seed=2015, num_dies=8,
                trojans=("HT1", "HT2"), key=bytes(16),
                plaintexts=[bytes(range(16))])
    assert population_traces_key(**base) != \
        population_traces_key(**{**base, **perturbation})


def test_canonical_json_coerces_bytes_and_dataclasses():
    from repro.measurement.em_simulator import EMAcquisitionConfig

    text = canonical_json({"key": b"\x01\x02",
                           "config": EMAcquisitionConfig()})
    payload = json.loads(text)
    assert payload["key"] == "0102"
    assert payload["config"]["clock_frequency_mhz"] == 24.0


def test_cell_result_key_ignores_execution_only_fields():
    spec = CampaignSpec(name="a", trojans=("HT1",), die_counts=(2,))
    renamed = CampaignSpec(name="b", trojans=("HT1",), die_counts=(2,),
                           workers=4, save_traces=True)
    common = dict(device={"name": "lx30"}, golden="built-in", cell_index=0)
    assert cell_result_key(
        spec_payload=spec_content_fragment(spec.to_dict()), **common
    ) == cell_result_key(
        spec_payload=spec_content_fragment(renamed.to_dict()), **common
    )
    reseeded = CampaignSpec(name="a", trojans=("HT1",), die_counts=(2,),
                            seed=1)
    assert cell_result_key(
        spec_payload=spec_content_fragment(spec.to_dict()), **common
    ) != cell_result_key(
        spec_payload=spec_content_fragment(reseeded.to_dict()), **common
    )


# -- round trips --------------------------------------------------------------


def test_store_json_round_trip(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = stable_key({"payload": "json"})
    assert key not in store
    with pytest.raises(KeyError):
        store.get_json(key)
    entry = store.put_json(key, {"value": 1.5, "names": ["a", "b"]},
                           kind="summary", meta={"campaign": "x"})
    assert key in store and store.has(key)
    assert store.get_json(key) == {"value": 1.5, "names": ["a", "b"]}
    assert entry.kind == "summary" and entry.meta == {"campaign": "x"}
    assert store.index()[key].filename.endswith(".json")


def test_store_array_round_trip_preserves_dtype(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = stable_key({"payload": "arrays"})
    arrays = {
        "f32": np.linspace(0, 1, 7, dtype=np.float32),
        "i64": np.arange(5, dtype=np.int64),
        "mat": np.random.default_rng(3).normal(size=(4, 6)),
    }
    store.put_arrays(key, arrays)
    loaded = store.get_arrays(key)
    assert set(loaded) == set(arrays)
    for name, value in arrays.items():
        assert loaded[name].dtype == value.dtype
        assert np.array_equal(loaded[name], value)


def test_population_trace_payload_round_trip():
    golden = [make_trace("golden0", 1), make_trace("golden1", 2)]
    infected = {"HT1": [make_trace("HT1_0", 3), make_trace("HT1_1", 4)],
                "HT3": [make_trace("HT3_0", 5), make_trace("HT3_1", 6)]}
    arrays = pack_population_traces(golden, infected)
    loaded_golden, loaded_infected = unpack_population_traces(arrays)
    assert [t.label for t in loaded_golden] == ["golden0", "golden1"]
    assert set(loaded_infected) == {"HT1", "HT3"}
    for original, loaded in zip(golden + infected["HT1"] + infected["HT3"],
                                loaded_golden + loaded_infected["HT1"]
                                + loaded_infected["HT3"]):
        assert np.array_equal(original.samples, loaded.samples)
        assert original.samples.dtype == loaded.samples.dtype
        assert original.plaintext == loaded.plaintext
        assert original.sample_period_ns == loaded.sample_period_ns
        assert original.cycle_sample_offsets == loaded.cycle_sample_offsets


def test_delay_difference_payload_round_trip():
    rng = np.random.default_rng(8)
    golden = [rng.normal(size=(3, 8)) for _ in range(2)]
    infected = {"HT_comb": [rng.normal(size=(3, 8)) for _ in range(2)]}
    golden_back, infected_back = unpack_delay_differences(
        pack_delay_differences(golden, infected)
    )
    for original, loaded in zip(golden + infected["HT_comb"],
                                golden_back + infected_back["HT_comb"]):
        assert np.array_equal(original, loaded)


def test_store_rejects_unsafe_keys_and_empty_payloads(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    for bad in ("", "../escape", "a/b", ".hidden"):
        with pytest.raises(ValueError):
            store.put_json(bad, {})
    with pytest.raises(ValueError):
        store.put_arrays(stable_key("x"), {})


# -- atomic writes ------------------------------------------------------------


def test_partial_temp_file_never_surfaces_as_hit(tmp_path):
    """A crash mid-write leaves only a temp file — which must stay a miss."""
    store = ArtifactStore(tmp_path / "store")
    key = stable_key({"crash": "simulated"})
    # Simulate a writer dying before os.replace: the payload bytes sit
    # in a temp file next to the final name.
    (store.objects_dir / f".{key}.npz.12345.tmp").write_bytes(b"partial")
    (store.manifest_dir / f".{key}.json.12345.tmp").write_bytes(b"{")
    assert key not in store
    assert key not in store.index()
    with pytest.raises(KeyError):
        store.get_arrays(key)
    # A completed write afterwards becomes a clean hit.
    store.put_arrays(key, {"x": np.arange(3)})
    assert np.array_equal(store.get_arrays(key)["x"], np.arange(3))


def test_object_without_manifest_entry_is_a_miss(tmp_path):
    """Crash between object write and manifest record => recomputed."""
    store = ArtifactStore(tmp_path / "store")
    key = stable_key({"orphan": True})
    (store.objects_dir / f"{key}.json").write_text("{}")
    assert key not in store
    # And the converse: a manifest entry whose object vanished.
    key2 = stable_key({"dangling": True})
    store.put_json(key2, {"v": 1})
    (store.objects_dir / f"{key2}.json").unlink()
    assert key2 not in store
    assert key2 not in store.index()


def test_corrupt_manifest_entry_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = stable_key({"corrupt": True})
    store.put_json(key, {"v": 1})
    (store.manifest_dir / f"{key}.json").write_text("{not json")
    assert key not in store


def test_discard_removes_entry_and_object(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = stable_key({"gone": True})
    store.put_json(key, {"v": 1})
    assert store.discard(key)
    assert key not in store
    assert not store.discard(key)
    assert len(store) == 0


# -- manifest-driven resume ---------------------------------------------------


@pytest.fixture(scope="module")
def resume_spec():
    return CampaignSpec(
        name="resume", trojans=("HT1", "HT3"), die_counts=(3,),
        metrics=("local_maxima_sum", "l1", "delay_max_difference"),
        num_pk_pairs=2, delay_repetitions=2, seed=11,
    )


def _counting_engine(spec, store, computed):
    engine = CampaignEngine(spec, store=store)
    original = engine.run_cell

    def tracked(cell):
        computed.append(cell.index)
        return original(cell)

    engine.run_cell = tracked
    return engine


def test_manifest_resume_after_interrupt(tmp_path, resume_spec):
    store_dir = tmp_path / "store"

    # Simulate an interrupted run: only shard 0/2 of the grid finished.
    first_computed = []
    partial = _counting_engine(resume_spec, store_dir, first_computed).run(
        shard=(0, 2)
    )
    assert first_computed == [cell.index
                              for cell in resume_spec.shard(0, 2)]

    # The resumed full run computes exactly the missing cells.
    resumed_computed = []
    full = _counting_engine(resume_spec, store_dir, resumed_computed).run()
    missing = [cell.index for cell in resume_spec.shard(1, 2)]
    assert resumed_computed == missing
    assert [cell.index for cell in full.cells] == \
        [cell.index for cell in resume_spec.grid()]

    # A second rerun is fully warm: nothing recomputed, identical rows.
    warm_computed = []
    warm = _counting_engine(resume_spec, store_dir, warm_computed).run()
    assert warm_computed == []
    assert [row.to_dict() for row in warm.rows()] == \
        [row.to_dict() for row in full.rows()]

    # The partial shard's rows reappear untouched in the resumed result.
    for cell in partial.cells:
        matching = next(c for c in full.cells if c.index == cell.index)
        assert [row.to_dict() for row in matching.rows] == \
            [row.to_dict() for row in cell.rows]


def test_resumed_run_still_writes_trace_archives(tmp_path):
    """Archive ownership falls to a cell that actually executes.

    With ``save_traces``, the lowest-index EM cell of an acquisition
    key owns the archive.  On a resumed run the original owner may
    resolve from the manifest and never execute — ownership must then
    fall to a pending cell, or the new artifact dir would reference an
    archive nobody wrote.
    """
    spec = CampaignSpec(name="archive", trojans=("HT1",), die_counts=(3,),
                        metrics=("local_maxima_sum", "l1"), seed=13,
                        save_traces=True)
    store_dir = tmp_path / "store"
    engine = CampaignEngine(spec, store=store_dir)
    cold = engine.run(artifact_dir=tmp_path / "out1")
    assert (tmp_path / "out1" / "traces_d3_paper.npz").exists()

    # Interrupted-run shape: the owner cell (index 0) completed, the
    # other metric cell did not.
    owner, follower = spec.grid()
    assert engine.store.discard(engine._cell_result_store_key(follower))

    resumed = CampaignEngine(spec, store=store_dir).run(
        artifact_dir=tmp_path / "out2"
    )
    archive = tmp_path / "out2" / "traces_d3_paper.npz"
    assert archive.exists(), (
        "the resumed run's only executing cell must take archive ownership"
    )
    assert resumed.cells[follower.index].trace_archive == str(archive)
    assert [row.to_dict() for row in resumed.rows()] == \
        [row.to_dict() for row in cold.rows()]


def test_deleting_one_completion_recomputes_only_that_cell(tmp_path,
                                                           resume_spec):
    store_dir = tmp_path / "store"
    engine = CampaignEngine(resume_spec, store=store_dir)
    baseline = engine.run()

    victim = resume_spec.grid()[1]
    store_key = engine._cell_result_store_key(victim)
    assert engine.store.discard(store_key)

    recomputed = []
    rerun = _counting_engine(resume_spec, store_dir, recomputed).run()
    assert recomputed == [victim.index]
    assert [row.to_dict() for row in rerun.rows()] == \
        [row.to_dict() for row in baseline.rows()]
