"""Tests for the setup-violation fault model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.state import BLOCK_BITS, bytes_to_bits
from repro.measurement.clock import TimingBudget
from repro.measurement.fault_injection import SetupViolationFaultModel


@pytest.fixture()
def model():
    return SetupViolationFaultModel(budget=TimingBudget())


def test_validation():
    with pytest.raises(ValueError):
        SetupViolationFaultModel(metastability_window_ps=-1)
    with pytest.raises(ValueError):
        SetupViolationFaultModel(stale_capture_probability=1.5)


def test_violation_probability_regimes(model):
    budget = model.budget
    arrival = 2000.0
    required = budget.required_period_ps(arrival)
    # Plenty of slack: no violation.
    assert model.violation_probability(arrival, required + 500) == 0.0
    # Deep violation: certain.
    assert model.violation_probability(arrival, required - 10) == 1.0
    # Inside the metastability window: between 0 and 1.
    inside = model.violation_probability(
        arrival, required + model.metastability_window_ps / 2
    )
    assert 0.0 < inside < 1.0
    # Stable bits can never be violated.
    assert model.violation_probability(None, 100.0) == 0.0


def test_violation_probability_monotone_in_period(model):
    arrival = 2000.0
    periods = np.linspace(2000, 3500, 30)
    probabilities = [model.violation_probability(arrival, p) for p in periods]
    assert all(a >= b - 1e-12 for a, b in zip(probabilities, probabilities[1:]))


def test_zero_window_is_a_clean_step_at_zero_slack(model):
    """A zero-width metastability window must keep slack == 0 a violation.

    The dataclass default used to leave the boundary on the no-violation
    side: with ``window == 0`` the old ``slack < window`` branch order
    returned 0.0 at exactly zero slack even though zero slack *is* a
    setup violation.
    """
    zero = SetupViolationFaultModel(metastability_window_ps=0.0)
    arrival = 2000.0
    required = zero.budget.required_period_ps(arrival)
    assert zero.violation_probability(arrival, required) == 1.0
    assert zero.violation_probability(arrival, required - 1e-9) == 1.0
    assert zero.violation_probability(arrival, required + 1e-9) == 0.0
    # The windowed model agrees at the boundary.
    assert model.violation_probability(arrival, required) == 1.0


def test_fault_model_budget_defaults_are_not_shared():
    """Mutable-default bugfix: each model owns its TimingBudget."""
    first = SetupViolationFaultModel()
    second = SetupViolationFaultModel()
    assert first.budget is not second.budget
    assert first.budget == second.budget == TimingBudget()


def test_violation_probabilities_match_scalar_grid(model):
    arrivals = np.array([1500.0, 2000.0, np.nan, 3000.0])
    periods = np.linspace(1500.0, 3600.0, 25)
    for fault_model in (model,
                        SetupViolationFaultModel(metastability_window_ps=0.0)):
        batched = fault_model.violation_probabilities(
            arrivals[None, :], periods[:, None])
        assert batched.shape == (periods.size, arrivals.size)
        for i, period in enumerate(periods):
            for j, arrival in enumerate(arrivals):
                scalar = fault_model.violation_probability(
                    None if np.isnan(arrival) else float(arrival),
                    float(period))
                assert batched[i, j] == scalar


def test_capture_bit_correct_when_no_violation(model, rng):
    assert model.capture_bit(1, 0, 1000.0, 1e6, rng) == 1
    assert model.capture_bit(0, 1, None, 10.0, rng) == 0


def test_capture_bit_wrong_when_deeply_violated(rng):
    model = SetupViolationFaultModel(stale_capture_probability=1.0)
    # Deep violation with stale-only resolution always returns the stale bit.
    for _ in range(20):
        assert model.capture_bit(1, 0, 5000.0, 100.0, rng) == 0


def test_faulted_ciphertext_safe_clock_returns_correct(model, rng):
    correct = bytes(range(16))
    stale = bytes(16)
    arrivals = [1000.0] * BLOCK_BITS
    observed = model.faulted_ciphertext(correct, stale, arrivals, 1e6, rng)
    assert observed == correct


def test_faulted_ciphertext_aggressive_clock_faults_toggling_bits(rng):
    model = SetupViolationFaultModel(stale_capture_probability=1.0)
    correct = bytes([0xFF] * 16)
    stale = bytes(16)
    arrivals = [3000.0] * BLOCK_BITS
    observed = model.faulted_ciphertext(correct, stale, arrivals, 500.0, rng)
    assert observed == stale


def test_faulted_ciphertext_requires_full_arrival_vector(model, rng):
    with pytest.raises(ValueError):
        model.faulted_ciphertext(bytes(16), bytes(16), [None] * 10, 1000.0, rng)


def test_faulted_bit_mask(model):
    correct = bytes([0xF0] + [0] * 15)
    observed = bytes([0x0F] + [0] * 15)
    mask = model.faulted_bit_mask(correct, observed)
    assert mask.shape == (BLOCK_BITS,)
    assert mask[:8].sum() == 8
    assert mask[8:].sum() == 0


def test_stable_bits_never_observed_faulted(model, rng):
    """Bits with no transition keep their (correct) value whatever the clock."""
    correct = bytes(16)
    stale = bytes(16)
    arrivals = [None] * BLOCK_BITS
    observed = model.faulted_ciphertext(correct, stale, arrivals, 1.0, rng)
    assert observed == correct


# -- population kernel properties ----------------------------------------------


def _population(seed, num_grid, num_stimuli):
    """Deterministic random correct/stale/arrival tensors for one draw."""
    data_rng = np.random.default_rng(seed)
    correct = data_rng.integers(0, 2, size=(num_stimuli, BLOCK_BITS),
                                dtype=np.uint8)
    stale = data_rng.integers(0, 2, size=(num_stimuli, BLOCK_BITS),
                              dtype=np.uint8)
    arrivals = data_rng.uniform(1000.0, 4000.0,
                                size=(num_stimuli, BLOCK_BITS))
    arrivals[data_rng.random((num_stimuli, BLOCK_BITS)) < 0.3] = np.nan
    periods = data_rng.uniform(1000.0, 4500.0, size=num_grid)
    return correct, stale, arrivals, periods[:, None]


@given(seed=st.integers(0, 2**32 - 1), num_grid=st.integers(1, 3),
       num_stimuli=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_population_kernel_matches_serial_reference(seed, num_grid,
                                                    num_stimuli):
    model = SetupViolationFaultModel()
    correct, stale, arrivals, periods = _population(seed, num_grid,
                                                    num_stimuli)
    batched = model.faulted_bits_population(
        correct, stale, arrivals, periods, np.random.default_rng(seed))
    serial = model.faulted_bits_population_serial(
        correct, stale, arrivals, periods, np.random.default_rng(seed))
    assert np.array_equal(batched, serial)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_population_kernel_is_seed_deterministic(seed):
    model = SetupViolationFaultModel()
    correct, stale, arrivals, periods = _population(seed, 2, 2)
    first = model.faulted_bits_population(
        correct, stale, arrivals, periods, np.random.default_rng(seed + 1))
    second = model.faulted_bits_population(
        correct, stale, arrivals, periods, np.random.default_rng(seed + 1))
    assert np.array_equal(first, second)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_stale_only_resolution_captures_correct_or_stale(seed):
    """With stale probability 1 every bit is either correct or stale.

    Corollary: the faulted-bit mask is a subset of the toggled bits
    (``correct != stale``), so fault differentials always point at real
    register transitions — the invariant the DFA analyzer rests on.
    """
    model = SetupViolationFaultModel(stale_capture_probability=1.0)
    correct, stale, arrivals, periods = _population(seed, 2, 2)
    captured = model.faulted_bits_population(
        correct, stale, arrivals, periods, np.random.default_rng(seed))
    is_correct = captured == correct[None]
    is_stale = captured == stale[None]
    assert np.all(is_correct | is_stale)
    faulted_mask = ~is_correct
    toggled = (correct != stale)[None]
    assert np.all(faulted_mask <= toggled)
    # NaN arrivals (no transition in the timing model) never fault.
    assert not np.any(faulted_mask & np.isnan(arrivals)[None])


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_safe_clock_population_is_fault_free(seed):
    model = SetupViolationFaultModel()
    correct, stale, arrivals, _ = _population(seed, 1, 3)
    captured = model.faulted_bits_population(
        correct, stale, arrivals, np.array([[1e7]]),
        np.random.default_rng(seed))
    assert np.array_equal(captured, np.broadcast_to(correct, captured.shape))
