"""Tests for the setup-violation fault model."""

import numpy as np
import pytest

from repro.crypto.state import BLOCK_BITS, bytes_to_bits
from repro.measurement.clock import TimingBudget
from repro.measurement.fault_injection import SetupViolationFaultModel


@pytest.fixture()
def model():
    return SetupViolationFaultModel(budget=TimingBudget())


def test_validation():
    with pytest.raises(ValueError):
        SetupViolationFaultModel(metastability_window_ps=-1)
    with pytest.raises(ValueError):
        SetupViolationFaultModel(stale_capture_probability=1.5)


def test_violation_probability_regimes(model):
    budget = model.budget
    arrival = 2000.0
    required = budget.required_period_ps(arrival)
    # Plenty of slack: no violation.
    assert model.violation_probability(arrival, required + 500) == 0.0
    # Deep violation: certain.
    assert model.violation_probability(arrival, required - 10) == 1.0
    # Inside the metastability window: between 0 and 1.
    inside = model.violation_probability(
        arrival, required + model.metastability_window_ps / 2
    )
    assert 0.0 < inside < 1.0
    # Stable bits can never be violated.
    assert model.violation_probability(None, 100.0) == 0.0


def test_violation_probability_monotone_in_period(model):
    arrival = 2000.0
    periods = np.linspace(2000, 3500, 30)
    probabilities = [model.violation_probability(arrival, p) for p in periods]
    assert all(a >= b - 1e-12 for a, b in zip(probabilities, probabilities[1:]))


def test_capture_bit_correct_when_no_violation(model, rng):
    assert model.capture_bit(1, 0, 1000.0, 1e6, rng) == 1
    assert model.capture_bit(0, 1, None, 10.0, rng) == 0


def test_capture_bit_wrong_when_deeply_violated(rng):
    model = SetupViolationFaultModel(stale_capture_probability=1.0)
    # Deep violation with stale-only resolution always returns the stale bit.
    for _ in range(20):
        assert model.capture_bit(1, 0, 5000.0, 100.0, rng) == 0


def test_faulted_ciphertext_safe_clock_returns_correct(model, rng):
    correct = bytes(range(16))
    stale = bytes(16)
    arrivals = [1000.0] * BLOCK_BITS
    observed = model.faulted_ciphertext(correct, stale, arrivals, 1e6, rng)
    assert observed == correct


def test_faulted_ciphertext_aggressive_clock_faults_toggling_bits(rng):
    model = SetupViolationFaultModel(stale_capture_probability=1.0)
    correct = bytes([0xFF] * 16)
    stale = bytes(16)
    arrivals = [3000.0] * BLOCK_BITS
    observed = model.faulted_ciphertext(correct, stale, arrivals, 500.0, rng)
    assert observed == stale


def test_faulted_ciphertext_requires_full_arrival_vector(model, rng):
    with pytest.raises(ValueError):
        model.faulted_ciphertext(bytes(16), bytes(16), [None] * 10, 1000.0, rng)


def test_faulted_bit_mask(model):
    correct = bytes([0xF0] + [0] * 15)
    observed = bytes([0x0F] + [0] * 15)
    mask = model.faulted_bit_mask(correct, observed)
    assert mask.shape == (BLOCK_BITS,)
    assert mask[:8].sum() == 8
    assert mask[8:].sum() == 0


def test_stable_bits_never_observed_faulted(model, rng):
    """Bits with no transition keep their (correct) value whatever the clock."""
    correct = bytes(16)
    stale = bytes(16)
    arrivals = [None] * BLOCK_BITS
    observed = model.faulted_ciphertext(correct, stale, arrivals, 1.0, rng)
    assert observed == correct
