"""Tests for combinational trojans."""

import pytest

from repro.crypto.state import BLOCK_BITS
from repro.trojan.base import TrojanKind
from repro.trojan.combinational import (
    CombinationalTrojan,
    build_combinational_trojan,
    default_scanned_bits,
)


def test_default_scanned_bits():
    assert default_scanned_bits(32) == list(range(32))
    assert len(default_scanned_bits(128)) == BLOCK_BITS
    with pytest.raises(ValueError):
        default_scanned_bits(0)
    with pytest.raises(ValueError):
        default_scanned_bits(129)


def test_constructor_validation():
    with pytest.raises(ValueError):
        CombinationalTrojan("bad", scanned_bits=[])
    with pytest.raises(ValueError):
        CombinationalTrojan("bad", scanned_bits=[1, 1])
    with pytest.raises(ValueError):
        CombinationalTrojan("bad", scanned_bits=[200])
    with pytest.raises(ValueError):
        build_combinational_trojan("bad", 4, scanned_bits=[0, 1, 2])


def test_structure_and_kind(small_trojan):
    assert small_trojan.kind == TrojanKind.COMBINATIONAL
    assert len(small_trojan.tapped_host_nets) == 8
    assert len(small_trojan.tap_input_nets) == 8
    assert small_trojan.lut_count() > 0
    assert small_trojan.cell_count() > 0
    assert small_trojan.slice_count() == pytest.approx(small_trojan.lut_count() / 4)


def test_tapped_host_nets_are_state_register_bits(small_trojan):
    assert all(net.startswith("st_b") for net in small_trojan.tapped_host_nets)


def test_trigger_fires_only_on_all_ones():
    trojan = build_combinational_trojan("t", 8)
    all_ones = bytes([0xFF] + [0x00] * 15)
    assert trojan.is_triggered(all_ones)
    almost = bytes([0xFE] + [0x00] * 15)
    assert not trojan.is_triggered(almost)
    assert not trojan.is_triggered(bytes(16))


def test_trigger_probability_is_negligible_for_random_states(rng):
    trojan = build_combinational_trojan("t", 32)
    for _ in range(50):
        state = bytes(int(x) for x in rng.integers(0, 256, size=16))
        # The scanned 32 bits are all-1 with probability 2^-32.
        if state[:4] != b"\xff\xff\xff\xff":
            assert not trojan.is_triggered(state)


def test_tap_values_follow_state_bits(small_trojan):
    state = bytes([0b10100101] + [0] * 15)
    values = small_trojan.tap_values(state)
    expected_bits = [1, 0, 1, 0, 0, 1, 0, 1]  # MSB-first paper bits 0..7
    for tap_net, expected in zip(small_trojan.tap_input_nets, expected_bits):
        assert values[tap_net] == expected


def test_round_activity_counts_toggles(small_trojan):
    quiet = small_trojan.round_activity(bytes(16), bytes(16))
    assert quiet.output_toggles == 0
    assert quiet.input_pin_toggles == 0
    busy = small_trojan.round_activity(bytes(16), bytes([0xFF] * 16))
    assert busy.input_pin_toggles >= 8
    assert busy.weighted() > 0


def test_encryption_activity_length(small_trojan):
    states = [bytes([k] * 16) for k in range(5)]
    activities = small_trojan.encryption_activity(states)
    assert len(activities) == 4


def test_payload_is_dormant_without_trigger():
    trojan = build_combinational_trojan("t", 8, payload_luts=5)
    values = trojan.netlist.evaluate(trojan.tap_values(bytes(16)))
    payload_nets = [net for net in values if net.startswith("payload_")]
    assert payload_nets
    assert all(values[net] == 0 for net in payload_nets)


def test_payload_increases_area():
    bare = build_combinational_trojan("t", 16, payload_luts=0)
    padded = build_combinational_trojan("t", 16, payload_luts=20)
    assert padded.lut_count() == pytest.approx(bare.lut_count() + 20)
