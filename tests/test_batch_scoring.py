"""The batched scoring kernel against its scalar serial references.

Every function in :mod:`repro.analysis.batch` (and every scorer lifted
onto it) carries the serial-reference contract: the batched output must
be **bit-identical** to looping the scalar reference over the rows —
including the quicksort tie order of equal-height peaks during
min-distance suppression.  These tests pin that contract with hypothesis
property tests (random signals, plateaus, min_height/min_distance
grids) and with detector-level equivalence checks on simulated
populations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.batch import (
    abs_difference_matrix,
    false_negative_rates,
    find_local_maxima_batch,
    fit_gaussians_batch,
    pooled_std_batch,
    sum_of_local_maxima_batch,
)
from repro.analysis.gaussian import fit_gaussian, pooled_std
from repro.analysis.local_maxima import find_local_maxima, sum_of_local_maxima
from repro.analysis.traces import abs_difference, stack_traces
from repro.core.em_detector import PopulationEMDetector
from repro.core.fingerprint import EMReference
from repro.core.metrics import (
    L1TraceMetric,
    LocalMaximaSumMetric,
    MaxDifferenceMetric,
    false_negative_rate,
)

# -- hypothesis strategies ----------------------------------------------------

#: Signal values that exercise plateaus and exact ties (integer-valued
#: floats collide often) alongside generic floats.
_VALUE_STRATEGIES = st.one_of(
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    st.integers(min_value=0, max_value=6).map(float),
)

_MATRIX_STRATEGY = st.lists(
    st.lists(_VALUE_STRATEGIES, min_size=0, max_size=48),
    min_size=1, max_size=5,
).filter(lambda rows: len({len(row) for row in rows}) == 1)


@given(rows=_MATRIX_STRATEGY,
       min_distance=st.integers(min_value=1, max_value=12),
       min_height=st.one_of(st.none(),
                            st.floats(min_value=-5, max_value=5,
                                      allow_nan=False)))
@settings(max_examples=300, deadline=None)
def test_find_local_maxima_batch_pins_scalar_reference(rows, min_distance,
                                                       min_height):
    """Property: every row's mask equals the scalar reference indices."""
    matrix = np.asarray(rows, dtype=float)
    mask = find_local_maxima_batch(matrix, min_height=min_height,
                                   min_distance=min_distance)
    assert mask.shape == matrix.shape
    sums = sum_of_local_maxima_batch(matrix, min_height=min_height,
                                     min_distance=min_distance)
    for index, row in enumerate(matrix):
        expected = find_local_maxima(row, min_height=min_height,
                                     min_distance=min_distance)
        assert np.array_equal(np.flatnonzero(mask[index]), expected)
        expected_sum = sum_of_local_maxima(row, min_height=min_height,
                                           min_distance=min_distance)
        assert sums[index] == expected_sum  # bit-identical, not approx


@given(rows=st.integers(min_value=1, max_value=4),
       samples=st.integers(min_value=3, max_value=64),
       min_distance=st.integers(min_value=1, max_value=9),
       seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=150, deadline=None)
def test_find_local_maxima_batch_on_oscillating_signals(rows, samples,
                                                        min_distance, seed):
    """Property: dense ringing-like signals (many close peaks) match too."""
    rng = np.random.default_rng(seed)
    base = np.sin(np.linspace(0, samples / 2.0, samples))
    matrix = base[None, :] * rng.uniform(0.5, 2.0, size=(rows, 1)) \
        + rng.normal(0, 0.3, size=(rows, samples))
    mask = find_local_maxima_batch(matrix, min_distance=min_distance)
    for index, row in enumerate(matrix):
        expected = find_local_maxima(row, min_distance=min_distance)
        assert np.array_equal(np.flatnonzero(mask[index]), expected)


def test_find_local_maxima_batch_validation():
    with pytest.raises(ValueError):
        find_local_maxima_batch(np.zeros(4))
    with pytest.raises(ValueError):
        find_local_maxima_batch(np.zeros((2, 5)), min_distance=0)


def test_find_local_maxima_batch_degenerate_shapes():
    assert not find_local_maxima_batch(np.zeros((0, 7))).any()
    assert not find_local_maxima_batch(np.zeros((3, 2))).any()
    assert not find_local_maxima_batch(np.zeros((3, 40)),
                                       min_distance=5).any()


def test_abs_difference_matrix_matches_scalar():
    rng = np.random.default_rng(3)
    matrix = rng.normal(size=(5, 32))
    reference = rng.normal(size=32)
    batched = abs_difference_matrix(matrix, reference)
    for index, row in enumerate(matrix):
        assert np.array_equal(batched[index], abs_difference(row, reference))
    with pytest.raises(ValueError):
        abs_difference_matrix(matrix, np.zeros(5))
    with pytest.raises(ValueError):
        abs_difference_matrix(np.zeros(4), np.zeros(4))


@given(matrix=st.lists(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
             min_size=1, max_size=12),
    min_size=1, max_size=5,
).filter(lambda rows: len({len(row) for row in rows}) == 1))
@settings(max_examples=100, deadline=None)
def test_fit_gaussians_batch_pins_scalar_reference(matrix):
    scores = np.asarray(matrix, dtype=float)
    means, stds = fit_gaussians_batch(scores)
    for index, row in enumerate(scores):
        fit = fit_gaussian(row)
        assert means[index] == fit.mean
        assert stds[index] == fit.std


@given(reference=st.lists(st.floats(min_value=-1e4, max_value=1e4,
                                    allow_nan=False),
                          min_size=2, max_size=10),
       matrix=st.lists(
           st.lists(st.floats(min_value=-1e4, max_value=1e4,
                              allow_nan=False), min_size=2, max_size=10),
           min_size=1, max_size=4,
       ).filter(lambda rows: len({len(row) for row in rows}) == 1))
@settings(max_examples=100, deadline=None)
def test_pooled_std_batch_pins_scalar_reference(reference, matrix):
    scores = np.asarray(matrix, dtype=float)
    batched = pooled_std_batch(reference, scores)
    for index, row in enumerate(scores):
        assert batched[index] == pooled_std(reference, row)


def test_pooled_std_batch_validation():
    with pytest.raises(ValueError):
        pooled_std_batch([1.0], np.ones((2, 3)))
    with pytest.raises(ValueError):
        pooled_std_batch([1.0, 2.0], np.ones((2, 1)))


@given(mus=st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=1, max_size=6),
       sigmas=st.lists(st.floats(min_value=0, max_value=50,
                                 allow_nan=False), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_false_negative_rates_pin_scalar_reference(mus, sigmas):
    length = min(len(mus), len(sigmas))
    mu = np.asarray(mus[:length])
    sigma = np.asarray(sigmas[:length])
    rates = false_negative_rates(mu, sigma)
    for index in range(length):
        assert rates[index] == false_negative_rate(float(mu[index]),
                                                   float(sigma[index]))


def test_false_negative_rates_validation_and_degenerate():
    with pytest.raises(ValueError):
        false_negative_rates([1.0], [-1.0])
    rates = false_negative_rates([1.0, -1.0, 0.0], [0.0, 0.0, 0.0])
    assert list(rates) == [0.0, 0.5, 0.5]


# -- trace stacking pass-through ----------------------------------------------


def test_stack_traces_passes_prestacked_matrix_through():
    matrix = np.arange(12.0).reshape(3, 4)
    assert stack_traces(matrix) is matrix  # no copy, no re-validation
    with pytest.raises(ValueError):
        stack_traces(np.zeros((0, 4)))


def test_em_reference_from_matrix_matches_from_traces():
    rng = np.random.default_rng(11)
    traces = [rng.normal(size=16) for _ in range(4)]
    from_traces = EMReference.from_traces(traces)
    from_matrix = EMReference.from_matrix(np.vstack(traces))
    assert np.array_equal(from_traces.mean, from_matrix.mean)
    assert np.array_equal(from_traces.per_sample_std,
                          from_matrix.per_sample_std)
    assert from_traces.num_traces == from_matrix.num_traces
    with pytest.raises(ValueError):
        EMReference.from_matrix(np.zeros(5))


# -- metric / detector level ---------------------------------------------------

METRICS = [LocalMaximaSumMetric(), LocalMaximaSumMetric(min_peak_distance=1),
           LocalMaximaSumMetric(min_peak_distance=9, min_peak_height=1.0),
           L1TraceMetric(), MaxDifferenceMetric()]


@pytest.fixture(scope="module")
def small_population(platform):
    golden, infected = platform.acquire_population_traces(("HT1", "HT3"))
    return golden, infected


@pytest.mark.parametrize("metric", METRICS,
                         ids=lambda metric: type(metric).__name__ + "-"
                         + str(getattr(metric, "min_peak_distance", "")))
def test_metric_scores_equal_serial_loop(small_population, metric):
    golden, infected = small_population
    population = list(golden) + list(infected["HT1"]) + list(infected["HT3"])
    reference = stack_traces(golden).mean(axis=0)
    serial = metric.scores_serial(population, reference)
    batched = metric.scores(population, reference)
    matrix_scores = metric.scores_matrix(stack_traces(population), reference)
    assert np.array_equal(serial, batched)
    assert np.array_equal(serial, matrix_scores)


def test_population_detector_batched_paths_equal_serial(small_population):
    golden, infected = small_population
    detector = PopulationEMDetector()
    reference = detector.fit_reference(golden)
    metric = detector.metric

    serial_golden = np.array([metric.score(trace, reference.mean)
                              for trace in golden])
    assert np.array_equal(detector.golden_scores(), serial_golden)
    assert np.array_equal(detector.scores(golden), serial_golden)

    # characterise / characterise_many against the scalar replica.
    for name, population in infected.items():
        serial_scores = np.array([metric.score(trace, reference.mean)
                                  for trace in population])
        genuine_fit = fit_gaussian(serial_golden)
        infected_fit = fit_gaussian(serial_scores)
        mu = infected_fit.mean - genuine_fit.mean
        sigma = pooled_std(serial_golden, serial_scores)
        char = detector.characterise(population)
        assert char.mu == float(mu)
        assert char.sigma == float(sigma)
        assert char.false_negative_rate == false_negative_rate(mu, sigma)
    many = detector.characterise_many(infected)
    for name in infected:
        single = detector.characterise(infected[name])
        assert many[name].mu == single.mu
        assert many[name].sigma == single.sigma
        assert many[name].false_negative_rate == single.false_negative_rate


def test_population_detector_accepts_prestacked_matrices(small_population):
    golden, infected = small_population
    detector_traces = PopulationEMDetector()
    detector_traces.fit_reference(golden)
    detector_matrix = PopulationEMDetector()
    detector_matrix.fit_reference(stack_traces(golden))
    assert np.array_equal(detector_traces.golden_scores(),
                          detector_matrix.golden_scores())
    char_traces = detector_traces.characterise(infected["HT1"])
    char_matrix = detector_matrix.characterise(stack_traces(infected["HT1"]))
    assert char_traces.mu == char_matrix.mu
    assert char_traces.sigma == char_matrix.sigma
    with pytest.raises(ValueError):
        detector_matrix.characterise(np.zeros((0, 4)))


def test_custom_metric_without_matrix_path_still_works(small_population):
    """Metrics lacking scores_matrix fall back to their scores() path."""

    class _CustomMetric:
        def score(self, trace, reference):
            return float(np.sum(np.abs(np.asarray(trace, dtype=float)
                                       - reference)))

        def scores(self, traces, reference):
            return np.array([self.score(trace, reference)
                             for trace in stack_traces(traces)])

    golden, _ = small_population
    detector = PopulationEMDetector(metric=_CustomMetric())
    detector.fit_reference(golden)
    expected = np.array([detector.metric.score(trace.samples,
                                               detector.reference.mean)
                         for trace in golden])
    assert np.array_equal(detector.golden_scores(), expected)
