"""Unit tests for the power-distribution-network coupling model."""

import pytest

from repro.fpga.device import virtex5_lx30
from repro.fpga.power_grid import PowerGrid


@pytest.fixture()
def grid():
    return PowerGrid(virtex5_lx30())


def test_tile_partitioning(grid):
    assert grid.tile_of((0, 0)) == (0, 0)
    assert grid.tile_of((9, 9)) == (0, 0)
    assert grid.tile_of((10, 0)) == (1, 0)
    rows, cols = grid.tile_grid_shape()
    assert rows == 8 and cols == 6
    with pytest.raises(ValueError):
        grid.tile_of((1000, 0))


def test_tile_dimensions_validated():
    with pytest.raises(ValueError):
        PowerGrid(virtex5_lx30(), tile_rows=0)


def test_droop_zero_without_aggressors(grid):
    assert grid.droop_mv({}) == {}
    offsets = grid.victim_delay_offsets_ps({"victim": (0, 0)}, {})
    assert offsets["victim"] == 0.0


def test_droop_decays_with_distance(grid):
    aggressors = {f"t{k}": (5, 5) for k in range(20)}
    droop = grid.droop_mv(aggressors)
    near = droop[(0, 0)]
    far = droop[(7, 5)]
    assert near > far > 0


def test_droop_scales_with_aggressor_count(grid):
    few = grid.droop_mv({f"t{k}": (5, 5) for k in range(5)})[(0, 0)]
    many = grid.droop_mv({f"t{k}": (5, 5) for k in range(50)})[(0, 0)]
    assert many == pytest.approx(10 * few, rel=1e-6)


def test_victim_offsets_follow_droop(grid):
    aggressors = {f"t{k}": (5, 5) for k in range(30)}
    victims = {"near": (0, 0), "far": (79, 59)}
    offsets = grid.victim_delay_offsets_ps(victims, aggressors)
    assert offsets["near"] > offsets["far"] >= 0.0


def test_victim_offsets_magnitude_is_measurable(grid):
    """A trojan-sized aggressor group shifts nearby cells by >= a few ps."""
    aggressors = {f"t{k}": (2, 2) for k in range(60)}
    offsets = grid.victim_delay_offsets_ps({"victim": (1, 1)}, aggressors)
    assert offsets["victim"] > 1.0


def test_probe_coupling_monotone_in_distance(grid):
    probe = (40.0, 30.0)
    close = grid.probe_coupling((40, 30), probe)
    far = grid.probe_coupling((0, 0), probe)
    assert close == pytest.approx(1.0)
    assert 0 < far < close
    with pytest.raises(ValueError):
        grid.probe_coupling((0, 0), probe, decay_slices=0)
