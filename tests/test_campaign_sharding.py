"""Sharded campaign execution: partition properties and merge identity."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaigns import (
    AcquisitionVariant,
    CampaignEngine,
    CampaignResult,
    CampaignSpec,
    merge_campaign_results,
)
from repro.cli import main
from repro.testing import FaultInjection, FaultKind, FaultPlan


def _grid_spec(num_trojans, num_die_counts, num_variants, metrics):
    """A spec whose grid geometry is driven by the hypothesis draw."""
    trojans = ("HT1", "HT2", "HT3")[:num_trojans]
    die_counts = tuple(2 + i for i in range(num_die_counts))
    variants = tuple(
        AcquisitionVariant.make(
            f"v{i}", {"oscilloscope.num_averages": 100 + 50 * i})
        for i in range(num_variants)
    )
    return CampaignSpec(name="prop", trojans=trojans, die_counts=die_counts,
                        variants=variants, metrics=tuple(metrics))


@settings(max_examples=60, deadline=None)
@given(
    num_trojans=st.integers(1, 3),
    num_die_counts=st.integers(1, 4),
    num_variants=st.integers(1, 3),
    metrics=st.lists(
        st.sampled_from(["local_maxima_sum", "l1", "max_difference",
                         "delay_max_difference", "delay_mean_pair_max"]),
        min_size=1, max_size=5, unique=True),
    shard_count=st.integers(1, 7),
)
def test_shards_partition_the_grid(num_trojans, num_die_counts, num_variants,
                                   metrics, shard_count):
    """shard(i, n) is disjoint, exhaustive and deterministic."""
    spec = _grid_spec(num_trojans, num_die_counts, num_variants, metrics)
    grid_indices = [cell.index for cell in spec.grid()]
    seen = []
    for shard_index in range(shard_count):
        cells = spec.shard(shard_index, shard_count)
        # Deterministic: a second call gives the identical partition.
        again = spec.shard(shard_index, shard_count)
        assert [c.index for c in cells] == [c.index for c in again]
        assert all(first.describe() == second.describe()
                   for first, second in zip(cells, again))
        seen.extend(cell.index for cell in cells)
    # Disjoint (no index twice) and exhaustive (every index once).
    assert sorted(seen) == grid_indices


def test_shard_argument_validation():
    spec = CampaignSpec(trojans=("HT1",), die_counts=(2,))
    with pytest.raises(ValueError):
        spec.shard(0, 0)
    with pytest.raises(ValueError):
        spec.shard(2, 2)
    with pytest.raises(ValueError):
        spec.shard(-1, 2)


@pytest.fixture(scope="module")
def shard_spec():
    return CampaignSpec(
        name="sharded", trojans=("HT1", "HT3"), die_counts=(3, 4),
        variants=(AcquisitionVariant.make("paper"),
                  AcquisitionVariant.make(
                      "quiet", {"noise.sigma_single_shot": 200.0})),
        metrics=("local_maxima_sum", "delay_max_difference"),
        num_pk_pairs=2, delay_repetitions=2, seed=21,
    )


@pytest.fixture(scope="module")
def unsharded_rows(shard_spec, golden_design):
    result = CampaignEngine(shard_spec, golden=golden_design).run()
    return [row.to_dict() for row in result.rows()]


def test_merged_shards_identical_to_unsharded_run(tmp_path, shard_spec,
                                                  golden_design,
                                                  unsharded_rows):
    """Independent shard engines + merge == one unsharded run, row for row."""
    shard_results = [
        CampaignEngine(shard_spec, golden=golden_design).run(
            shard=(index, 3))
        for index in range(3)
    ]
    assert all(result.shard == (index, 3)
               for index, result in enumerate(shard_results))
    merged = merge_campaign_results(shard_results)
    assert [row.to_dict() for row in merged.rows()] == unsharded_rows
    assert [cell.index for cell in merged.cells] == \
        [cell.index for cell in shard_spec.grid()]


def test_merged_store_backed_shards_identical(tmp_path, shard_spec,
                                              golden_design, unsharded_rows):
    """Shards sharing one store still merge to the unsharded rows."""
    store = tmp_path / "store"
    shard_results = [
        CampaignEngine(shard_spec, golden=golden_design, store=store).run(
            shard=(index, 2))
        for index in range(2)
    ]
    merged = merge_campaign_results(shard_results)
    assert [row.to_dict() for row in merged.rows()] == unsharded_rows


def test_merge_rejects_mismatched_specs(shard_spec, golden_design):
    shard0 = CampaignEngine(shard_spec, golden=golden_design).run(
        shard=(0, 2))
    other_spec = CampaignSpec.from_dict(
        {**shard_spec.to_dict(), "seed": shard_spec.seed + 1}
    )
    other = CampaignEngine(other_spec, golden=golden_design).run(
        shard=(1, 2))
    with pytest.raises(ValueError, match="different physics"):
        merge_campaign_results([shard0, other])


def test_merge_rejects_incomplete_coverage(shard_spec, golden_design):
    shard0 = CampaignEngine(shard_spec, golden=golden_design).run(
        shard=(0, 3))
    shard1 = CampaignEngine(shard_spec, golden=golden_design).run(
        shard=(1, 3))
    with pytest.raises(ValueError, match="missing cell"):
        merge_campaign_results([shard0, shard1])


def test_merge_tolerates_duplicate_cells(shard_spec, golden_design,
                                         unsharded_rows):
    """Overlapping shard runs (e.g. a retried shard) merge cleanly."""
    full = CampaignEngine(shard_spec, golden=golden_design).run()
    shard0 = CampaignEngine(shard_spec, golden=golden_design).run(
        shard=(0, 2))
    merged = merge_campaign_results([full, shard0])
    assert [row.to_dict() for row in merged.rows()] == unsharded_rows


def test_campaign_result_round_trips_through_dict(shard_spec, golden_design):
    result = CampaignEngine(shard_spec, golden=golden_design).run(
        shard=(1, 2))
    payload = json.loads(json.dumps(result.to_dict()))
    loaded = CampaignResult.from_dict(payload)
    assert loaded.shard == (1, 2)
    assert [row.to_dict() for row in loaded.rows()] == \
        [row.to_dict() for row in result.rows()]
    assert loaded.spec.to_dict() == shard_spec.to_dict()


def test_cli_shard_run_and_merge_round_trip(tmp_path, capsys):
    """The documented two-shard quickstart, end to end through the CLI."""
    store = str(tmp_path / "store")
    common = ["campaign", "run", "--name", "cliq", "--trojan", "HT1",
              "--dies", "3", "--metric", "local_maxima_sum", "--metric",
              "l1", "--seed", "4", "--store", store,
              "--backend", "bitslice"]
    assert main(common + ["--shard", "0/2",
                          "--out", str(tmp_path / "shard0")]) == 0
    assert main(common + ["--shard", "1/2",
                          "--out", str(tmp_path / "shard1")]) == 0
    capsys.readouterr()
    assert main(["campaign", "merge", str(tmp_path / "shard0"),
                 str(tmp_path / "shard1"),
                 "--out", str(tmp_path / "merged")]) == 0
    merged_output = capsys.readouterr().out
    assert "merged 2 shard result(s) into 2 grid cells" in merged_output

    merged_payload = json.loads((tmp_path / "merged" / "cliq.json").read_text())
    unsharded = CampaignEngine(
        CampaignSpec.from_dict(merged_payload["spec"])
    ).run()
    assert [row.to_dict() for row in
            CampaignResult.from_dict(merged_payload).rows()] == \
        [row.to_dict() for row in unsharded.rows()]


def test_cli_merge_errors_on_incomplete_shards(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["campaign", "run", "--name", "half", "--trojan", "HT1",
                 "--dies", "3", "--metric", "local_maxima_sum", "--metric",
                 "l1", "--seed", "4", "--store", store, "--shard", "0/2",
                 "--out", str(tmp_path / "shard0")]) == 0
    capsys.readouterr()
    assert main(["campaign", "merge", str(tmp_path / "shard0")]) == 2
    assert "missing cell" in capsys.readouterr().err


def test_interrupted_run_resumes_from_the_store(tmp_path):
    """A mid-campaign SIGINT-style drain leaves the store resumable and
    the resumed run's rows bit-identical to an uninterrupted one."""
    spec = CampaignSpec(name="resume", trojans=("HT1",), die_counts=(2, 3),
                        metrics=("local_maxima_sum", "l1"), seed=7,
                        workers=2, max_retries=1, retry_backoff_s=0.01)
    baseline = [row.to_dict() for row in CampaignEngine(spec).run().rows()]

    store_root = tmp_path / "store"
    plan = FaultPlan(injections=(
        FaultInjection(cell_index=2, attempt=1, kind=FaultKind.INTERRUPT),))
    with pytest.raises(KeyboardInterrupt, match="resumable"):
        CampaignEngine(spec, store=store_root).run(fault_plan=plan)

    resumed = CampaignEngine(spec, store=store_root).run()
    assert resumed.failed_cells() == []
    assert [row.to_dict() for row in resumed.rows()] == baseline
