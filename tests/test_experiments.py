"""Integration tests for the experiment drivers (fast profile)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    fig1_timing,
    fig2_staircase,
    fig3_delay,
    fig4_em_trace,
    fig5_em_compare,
    fig6_pv,
    fig7_model,
    headline,
    table_ht_sizes,
)
from repro.experiments.headline import PAPER_FALSE_NEGATIVE_RATES


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.fast()


@pytest.fixture(scope="module")
def exp_platform(config):
    return config.build_platform()


def test_experiment_config_profiles():
    paper = ExperimentConfig.paper()
    fast = ExperimentConfig.fast()
    assert paper.num_dies == 8
    assert paper.num_pk_pairs == 50
    assert fast.num_pk_pairs < paper.num_pk_pairs
    assert fast.quick
    with pytest.raises(ValueError):
        ExperimentConfig(num_dies=1)
    with pytest.raises(ValueError):
        ExperimentConfig(num_pk_pairs=2, representative_pairs=(5, 6))


def test_fig1_timing_constraint(config, exp_platform):
    result = fig1_timing.run(config, exp_platform)
    assert result.critical_path_ps > 0
    assert result.required_period_ps > result.critical_path_ps
    assert result.nominal_slack_ps > 0
    assert result.first_violating_period_ps() is not None
    assert result.first_violating_period_ps() < result.required_period_ps


def test_fig2_staircase(config, exp_platform):
    result = fig2_staircase.run(config, exp_platform)
    assert result.glitch_step_ps == pytest.approx(35.0)
    assert max(result.golden_staircase.values()) > 0
    assert result.golden_first_fault_step() is not None
    assert result.infected_first_fault_step() is not None
    assert result.infected_first_fault_step() <= result.golden_first_fault_step()


def test_fig3_delay_differences(config, exp_platform):
    result = fig3_delay.run(config, exp_platform)
    assert set(result.labels()) == {"Clean1", "Clean2", "HT_comb", "HT_seq"}
    assert result.infected_max_ps() > result.clean_max_ps()
    assert result.separation_ratio() > 1.5
    series = result.series_for("HT_comb", result.representative_pairs[0])
    assert series.delay_difference_ps.shape == (128,)
    assert series.affected_bits(result.clean_max_ps()) != []
    with pytest.raises(KeyError):
        result.series_for("nonexistent", 0)


def test_fig4_em_trace(config, exp_platform):
    result = fig4_em_trace.run(config, exp_platform)
    assert 2000 <= result.num_samples <= 4000
    assert result.rounds_visible()
    assert result.peak_amplitude > 1000


def test_fig5_same_die_comparison(config, exp_platform):
    result = fig5_em_compare.run(config, exp_platform)
    assert result.detected
    assert result.genuine_vs_infected_max > result.genuine_vs_genuine_max
    assert result.contrast() > 1.5


def test_fig6_process_variation_envelope(config, exp_platform):
    result = fig6_pv.run(config, exp_platform, trojan_names=("HT1", "HT3"))
    assert len(result.golden_differences) == config.num_dies
    assert result.golden_envelope() > 0
    assert result.exceeds_pv_envelope("HT3") >= result.exceeds_pv_envelope("HT1")
    assert all(diff.shape == result.reference_mean.shape
               for diff in result.golden_differences)


def test_fig7_gaussian_model(config, exp_platform):
    result = fig7_model.run(config, exp_platform, trojan_name="HT3")
    assert result.mu > 0
    assert result.sigma > 0
    assert 0 <= result.analytic_false_negative <= 0.5
    # Eq. (5) matches the Monte-Carlo evaluation of the fitted model.
    assert result.analytic_false_negative == pytest.approx(
        result.empirical_false_negative, abs=0.05
    )
    assert result.empirical_false_positive == pytest.approx(
        result.empirical_false_negative, abs=0.05
    )


def test_table_ht_sizes(config, exp_platform):
    table = table_ht_sizes.run(config, exp_platform)
    assert table.aes_slice_count == 1836
    assert table.ordering_matches_paper()
    ht3 = table.row("HT3")
    assert ht3.fraction_of_aes == pytest.approx(0.017, rel=0.2)
    assert ht3.trigger_width == 128
    with pytest.raises(KeyError):
        table.row("unknown")


def test_headline_result(config, exp_platform):
    result = headline.run(config, exp_platform)
    assert result.is_monotone_decreasing()
    assert result.largest_trojan_detection() > 0.9
    rates = result.false_negative_rates()
    assert set(rates) == set(PAPER_FALSE_NEGATIVE_RATES)
    crossover = result.crossover_area_fraction(target_detection=0.9)
    assert crossover is not None and crossover <= 0.02
