"""Transport layer, circuit breaker, remote store and tiered store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.store import (
    ArtifactStore,
    CircuitBreaker,
    CircuitOpenError,
    FlakyTransport,
    LoopbackTransport,
    ManifestEntry,
    PendingUploadJournal,
    RemoteStore,
    RetryPolicy,
    StoreIntegrityError,
    TieredStore,
    TransportConnectionError,
    TransportTimeout,
    build_store,
    build_transport,
    stable_key,
)
from repro.testing.faults import (
    FaultClock,
    FaultSchedule,
    FaultWindow,
    OneShotTrigger,
)

#: A retry policy with zero sleeps — determinism without test latency.
FAST_RETRY = RetryPolicy(attempts=3, base_s=0.0, token="test")


def _remote(transport, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return RemoteStore(transport, **kwargs)


# -- fault-schedule primitives -------------------------------------------------


def test_one_shot_trigger_fires_exactly_once_after_skips():
    trigger = OneShotTrigger(skip=2)
    assert [trigger.should_fire() for _ in range(5)] == [
        False, False, True, False, False]
    assert trigger.fired


def test_fault_schedule_is_deterministic_and_ordered():
    schedule = FaultSchedule(
        at=((3, "timeout"),),
        windows=(FaultWindow(5, 8, "connect"),),
        rates=(("latency", 0.5),),
        seed=7,
    )
    faults = [schedule.fault_at(i) for i in range(10)]
    # Same schedule, same answers — a pure function of the ordinal.
    assert faults == [schedule.fault_at(i) for i in range(10)]
    assert faults[3] == "timeout"
    assert faults[5:8] == ["connect"] * 3
    # Rates draw per-(seed, kind, ordinal): changing the seed changes
    # the draw stream, equal seeds replay it.
    other = FaultSchedule(rates=(("latency", 0.5),), seed=8)
    assert [FaultSchedule(rates=(("latency", 0.5),), seed=8).fault_at(i)
            for i in range(64)] == [other.fault_at(i) for i in range(64)]
    assert schedule.horizon() == 8
    # Windows can target one operation kind.
    put_only = FaultSchedule(windows=(FaultWindow(0, 4, "connect", op="put"),))
    assert put_only.fault_at(1, op="put") == "connect"
    assert put_only.fault_at(1, op="get") is None
    clock = FaultClock(schedule)
    assert [clock.next_fault() for _ in range(4)] == faults[:4]


# -- loopback transport --------------------------------------------------------


def test_loopback_transport_semantics(tmp_path):
    transport = LoopbackTransport(tmp_path / "remote")
    with pytest.raises(KeyError):
        transport.get("objects/missing.json")
    transport.put("objects/a.json", b"payload")
    assert transport.get("objects/a.json") == b"payload"
    transport.put("tmp/a.part", b"payload2")
    transport.commit("tmp/a.part", "objects/b.json")
    assert transport.get("objects/b.json") == b"payload2"
    assert transport.list("objects") == ["objects/a.json", "objects/b.json"]
    assert transport.list("tmp") == []
    transport.delete("objects/a.json")
    transport.delete("objects/a.json")  # idempotent
    assert transport.list("objects") == ["objects/b.json"]
    with pytest.raises(KeyError):
        transport.commit("tmp/nope", "objects/c.json")
    for bad in ("", "../escape", "a//b", "objects/../../etc"):
        with pytest.raises(ValueError):
            transport.get(bad)
    rebuilt = build_transport(transport.spawn_config())
    assert rebuilt.get("objects/b.json") == b"payload2"


# -- flaky transport -----------------------------------------------------------


def test_flaky_transport_injects_scripted_faults(tmp_path):
    inner = LoopbackTransport(tmp_path / "remote")
    schedule = FaultSchedule(at=((0, "connect"), (2, "timeout"),
                                 (4, "truncate"), (6, "corrupt")), seed=3)
    flaky = FlakyTransport(inner, schedule)
    with pytest.raises(TransportConnectionError):
        flaky.put("objects/a.json", b"x" * 64)  # op 0: connect fault
    assert isinstance(TransportConnectionError("x"), ConnectionResetError)
    flaky.put("objects/a.json", b"x" * 64)  # op 1: clean
    with pytest.raises(TransportTimeout):
        flaky.get("objects/a.json")  # op 2: timeout fault
    assert isinstance(TransportTimeout("x"), TimeoutError)
    assert flaky.get("objects/a.json") == b"x" * 64  # op 3: clean
    assert len(flaky.get("objects/a.json")) == 32  # op 4: truncated
    assert flaky.get("objects/a.json") == b"x" * 64  # op 5: clean
    corrupted = flaky.get("objects/a.json")  # op 6: one byte flipped
    assert corrupted != b"x" * 64 and len(corrupted) == 64
    assert flaky.ops == 7
    assert flaky.fault_counts == {"connect": 1, "timeout": 1,
                                  "truncate": 1, "corrupt": 1}


def test_flaky_transport_replays_identically(tmp_path):
    schedule = FaultSchedule(rates=(("connect", 0.3),), seed=11)
    outcomes = []
    for round_ in range(2):
        inner = LoopbackTransport(tmp_path / f"remote{round_}")
        inner.put("objects/a.json", b"data")
        flaky = FlakyTransport(inner, schedule)
        row = []
        for _ in range(20):
            try:
                flaky.get("objects/a.json")
                row.append("ok")
            except ConnectionError:
                row.append("connect")
        outcomes.append(row)
    assert outcomes[0] == outcomes[1]
    assert "connect" in outcomes[0] and "ok" in outcomes[0]


# -- circuit breaker -----------------------------------------------------------


def test_breaker_transitions_are_deterministic():
    ticks = {"t": 0.0}
    breaker = CircuitBreaker(failure_threshold=3, reset_after=5.0,
                             clock=lambda: ticks["t"])
    assert breaker.state == "closed"
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed"  # below threshold
    breaker.record_success()
    assert breaker.consecutive_failures == 0  # success resets the count
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()  # cooldown not elapsed
    ticks["t"] = 4.9
    assert not breaker.allow()
    ticks["t"] = 5.0
    assert breaker.allow()  # the half-open probe
    assert breaker.state == "half-open"
    breaker.record_failure()  # probe failed: back to open, new cooldown
    assert breaker.state == "open"
    ticks["t"] = 9.9
    assert not breaker.allow()
    ticks["t"] = 10.0
    assert breaker.allow()
    breaker.record_success()  # probe succeeded: closed again
    assert breaker.state == "closed"
    assert [(frm, to) for _, frm, to in breaker.transitions] == [
        ("closed", "open"), ("open", "half-open"), ("half-open", "open"),
        ("open", "half-open"), ("half-open", "closed")]


def test_remote_store_breaker_opens_and_probes(tmp_path):
    """The full closed → open → half-open trajectory, deterministic.

    The breaker's default clock counts *store operations*, so with
    threshold 3 and reset_after 2 the exact sequence below is a pure
    function of the fault schedule: a partition over transport ops
    0..14 gives three failures (trip), one fast-fail, two failed
    probes with a fast-fail between, then a successful probe once the
    window heals (each failed call burns 3 retried transport ops).
    """
    schedule = FaultSchedule(windows=(FaultWindow(0, 15, "connect"),), seed=0)
    flaky = FlakyTransport(LoopbackTransport(tmp_path / "remote"), schedule)
    remote = _remote(flaky)
    remote.breaker.failure_threshold = 3
    remote.breaker.reset_after = 2.0
    for _ in range(3):  # store ops 1-3: transport failures
        with pytest.raises(ConnectionError):
            remote.entry("k")
    assert remote.breaker.state == "open"
    assert flaky.ops == 9  # 3 calls x 3 retried attempts
    with pytest.raises(CircuitOpenError):
        remote.entry("k")  # store op 4: fails fast...
    assert flaky.ops == 9  # ...without touching the transport
    assert isinstance(CircuitOpenError("x"), ConnectionError)
    with pytest.raises(ConnectionError):
        remote.entry("k")  # store op 5: the half-open probe — fails
    assert remote.breaker.state == "open"
    assert flaky.ops == 12
    with pytest.raises(CircuitOpenError):
        remote.entry("k")  # store op 6: fresh cooldown, fast-fail
    with pytest.raises(ConnectionError):
        remote.entry("k")  # store op 7: probe fails again
    with pytest.raises(CircuitOpenError):
        remote.entry("k")  # store op 8
    assert flaky.ops == 15  # the partition window is exhausted
    # Store op 9: the probe lands on a healed transport; a remote miss
    # is a *successful* round-trip, so the breaker closes.
    assert remote.entry("k") is None
    assert remote.breaker.state == "closed"
    assert [(frm, to) for _, frm, to in remote.breaker.transitions] == [
        ("closed", "open"),
        ("open", "half-open"), ("half-open", "open"),
        ("open", "half-open"), ("half-open", "open"),
        ("open", "half-open"), ("half-open", "closed")]


# -- remote store --------------------------------------------------------------


def test_remote_store_roundtrip_and_atomic_layout(tmp_path):
    transport = LoopbackTransport(tmp_path / "remote")
    remote = _remote(transport)
    key = stable_key({"remote": 1})
    entry = remote.put_json(key, {"v": 1}, meta={"m": 2})
    assert remote.load_json(key) == {"v": 1}
    assert remote.entry(key).meta == {"m": 2}
    akey = stable_key({"remote": "arrays"})
    remote.put_arrays(akey, {"x": np.arange(6.0)})
    assert (remote.load_arrays(akey)["x"] == np.arange(6.0)).all()
    assert sorted(remote.keys()) == sorted([key, akey])
    assert len(remote) == 2
    # Upload-then-commit left no tmp blobs behind.
    assert transport.list("tmp") == []
    # The manifest is valid JSON naming the digest.
    raw = json.loads(transport.get(f"manifest/{key}.json"))
    assert raw["digest"] == entry.digest
    assert remote.load_json("missing") is None
    assert remote.discard(key)
    assert remote.load_json(key) is None


def test_remote_store_verifies_and_quarantines_corruption(tmp_path):
    transport = LoopbackTransport(tmp_path / "remote")
    remote = _remote(transport)
    key = stable_key({"corrupt": True})
    remote.put_json(key, {"v": 1})
    # Corrupt the blob behind the manifest's back.
    transport.put(f"objects/{key}.json", b"garbage bytes")
    with pytest.raises(StoreIntegrityError):
        remote.get_json(key)
    # Quarantined remotely, manifest dropped: now a clean miss.
    assert transport.list("quarantine") == [f"quarantine/{key}.json"]
    assert remote.load_json(key) is None
    # Recompute lands cleanly over the quarantined state.
    remote.put_json(key, {"v": 2})
    assert remote.load_json(key) == {"v": 2}


def test_remote_store_corruption_is_never_retried(tmp_path):
    """An in-flight corrupt payload quarantines immediately — the retry
    loop must not burn attempts re-reading poisoned bytes."""
    schedule = FaultSchedule(at=((2, "corrupt"),), seed=5)
    inner = LoopbackTransport(tmp_path / "remote")
    flaky = FlakyTransport(inner, schedule)
    remote = _remote(flaky)
    key = stable_key({"flip": 1})
    remote.put_json(key, {"v": 1})  # ops 0-2: put, commit, manifest put
    ops_before = flaky.ops
    # op 3: manifest get (clean), op 4: object get — wait, the corrupt
    # fault hit op 2 (the manifest upload), so the manifest bytes were
    # corrupted in flight and the entry is unparseable: a clean miss.
    assert remote.load_json(key) is None
    assert flaky.ops == ops_before + 1  # one manifest get, no retries


def test_remote_store_truncated_payload_quarantines(tmp_path):
    schedule = FaultSchedule(at=((4, "truncate"),), seed=5)
    inner = LoopbackTransport(tmp_path / "remote")
    remote = _remote(FlakyTransport(inner, schedule))
    key = stable_key({"tear": 1})
    remote.put_json(key, {"v": [1, 2, 3]})  # ops 0-2
    # op 3: manifest get, op 4: object get → truncated in flight.
    with pytest.raises(StoreIntegrityError):
        remote.get_json(key)
    # The *stored* blob was fine — only the transfer tore — but the
    # reader cannot know; it quarantined the remote blob and the key
    # recomputes.  That is the safe direction.
    assert inner.list("quarantine") == [f"quarantine/{key}.json"]


# -- tiered store --------------------------------------------------------------


def test_tiered_store_write_through_and_backfill(tmp_path):
    remote_dir = tmp_path / "remote"
    tiered = TieredStore(tmp_path / "local", _remote(
        LoopbackTransport(remote_dir)))
    key = stable_key({"t": 1})
    tiered.put_json(key, {"v": 1})
    # Write-through: both tiers hold it.
    assert tiered.local.load_json(key) == {"v": 1}
    assert _remote(LoopbackTransport(remote_dir)).load_json(key) == {"v": 1}
    # A fresh local tier backfills from the remote on first read.
    tiered2 = TieredStore(tmp_path / "local2",
                          _remote(LoopbackTransport(remote_dir)))
    assert tiered2.load_json(key) == {"v": 1}
    assert tiered2.remote_hits == 1 and tiered2.backfills == 1
    assert tiered2.local.load_json(key) == {"v": 1}
    # Second read is purely local.
    assert tiered2.load_json(key) == {"v": 1}
    assert tiered2.remote_hits == 1
    akey = stable_key({"t": "arrays"})
    tiered.put_arrays(akey, {"x": np.arange(3)})
    assert (tiered2.load_arrays(akey)["x"] == np.arange(3)).all()
    assert sorted(tiered.keys()) == sorted([key, akey])


def test_tiered_store_degrades_and_syncs(tmp_path):
    remote_dir = tmp_path / "remote"
    # Ops 2+ are partitioned: the first put's upload lands, everything
    # after journals.  (Each put_object = 3 transport ops.)
    schedule = FaultSchedule(windows=(FaultWindow(3, 10**9, "connect"),))
    flaky = FlakyTransport(LoopbackTransport(remote_dir), schedule)
    tiered = TieredStore(tmp_path / "local", _remote(flaky))
    k1, k2, k3 = (stable_key({"d": i}) for i in range(3))
    tiered.put_json(k1, {"v": 1})  # replicated before the partition
    tiered.put_json(k2, {"v": 2})  # journaled
    tiered.put_arrays(k3, {"x": np.arange(4)})  # journaled
    assert tiered.degraded_writes == 2
    assert sorted(e.key for e in tiered.pending_uploads()) == sorted([k2, k3])
    # Reads still served locally; campaigns keep running.
    assert tiered.load_json(k2) == {"v": 2}
    remote_view = _remote(LoopbackTransport(remote_dir))
    assert remote_view.load_json(k1) == {"v": 1}
    assert remote_view.load_json(k2) is None
    # Remote heals: drain the journal through a clean transport.
    healed = TieredStore(tmp_path / "local",
                         _remote(LoopbackTransport(remote_dir)))
    stats = healed.sync()
    assert sorted(stats["uploaded"]) == sorted([k2, k3])
    assert stats["remaining"] == []
    assert healed.pending_uploads() == []
    assert remote_view.load_json(k2) == {"v": 2}
    # The drain is idempotent: a second sync is a no-op, and replaying
    # a stale journal only skips already-synced keys.
    assert healed.sync() == {"uploaded": [], "skipped": [],
                             "missing_local": [], "remaining": []}
    healed.journal.append(healed.local.entry(k2))
    assert healed.sync()["skipped"] == [k2]


def test_tiered_sync_keeps_journal_while_remote_is_down(tmp_path):
    schedule = FaultSchedule(windows=(FaultWindow(0, 10**9, "connect"),))
    flaky = FlakyTransport(LoopbackTransport(tmp_path / "remote"), schedule)
    tiered = TieredStore(tmp_path / "local", _remote(flaky))
    key = stable_key({"down": 1})
    tiered.put_json(key, {"v": 1})
    assert [e.key for e in tiered.pending_uploads()] == [key]
    stats = tiered.sync()  # still partitioned
    assert stats["remaining"] == [key]
    assert [e.key for e in tiered.pending_uploads()] == [key]  # kept


def test_pending_journal_survives_torn_tail(tmp_path):
    journal = PendingUploadJournal(tmp_path / "pending_uploads.jsonl")
    entry = ManifestEntry(key="k1", kind="json", filename="k1.json",
                          digest="0" * 64)
    journal.append(entry)
    journal.append(entry)  # duplicate appends dedup on read
    with open(journal.path, "a") as handle:
        handle.write('{"key": "torn')  # crash mid-append
    pending = journal.pending()
    assert [e.key for e in pending] == ["k1"]
    journal.rewrite([])
    assert not journal.path.exists()


def test_build_store_round_trips_every_flavour(tmp_path):
    local = ArtifactStore(tmp_path / "local")
    remote = _remote(LoopbackTransport(tmp_path / "remote"))
    tiered = TieredStore(local, remote)
    key = stable_key({"cfg": 1})
    tiered.put_json(key, {"v": 1})
    for store in (local, remote, tiered):
        rebuilt = build_store(store.spawn_config())
        assert type(rebuilt) is type(store)
        assert rebuilt.load_json(key) == {"v": 1}
    assert build_store(None) is None
    assert build_store(tiered) is tiered
    assert isinstance(build_store(str(tmp_path / "local")), ArtifactStore)
    with pytest.raises(ValueError):
        build_store({"kind": "martian"})


# -- CLI -----------------------------------------------------------------------


def test_cli_store_sync_drains_and_reports(tmp_path, capsys):
    remote_dir = tmp_path / "remote"
    schedule = FaultSchedule(windows=(FaultWindow(0, 10**9, "connect"),))
    flaky = FlakyTransport(LoopbackTransport(remote_dir), schedule)
    tiered = TieredStore(tmp_path / "local", _remote(flaky))
    key = stable_key({"cli": "sync"})
    tiered.put_json(key, {"v": 1})
    assert len(tiered.pending_uploads()) == 1

    assert main(["store", "sync", str(tmp_path / "local"),
                 "--remote", str(remote_dir)]) == 0
    out = capsys.readouterr().out
    assert "1 uploaded" in out and "journal drained" in out
    assert _remote(LoopbackTransport(remote_dir)).load_json(key) == {"v": 1}
    # Idempotent re-run.
    assert main(["store", "sync", str(tmp_path / "local"),
                 "--remote", str(remote_dir)]) == 0
    assert main(["store", "sync", str(tmp_path / "nope"),
                 "--remote", str(remote_dir)]) == 2
