"""Property-based tests for the detection metrics and the delay detector.

Hypothesis sweeps randomised traces/measurements through invariants the
paper's detection machinery must satisfy regardless of the data:

* the local-maxima-sum metric is non-negative and invariant under
  reordering of the trace population;
* it responds monotonically to the amplitude of an injected trojan
  emission;
* the delay detector's Eq. (4) differences are non-negative, a device
  identical to the golden fingerprint scores zero (and is accepted), and
  the device score grows monotonically with an injected delay shift.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delay_detector import DelayDetector
from repro.core.em_detector import PopulationEMDetector
from repro.core.fingerprint import DelayFingerprint
from repro.core.metrics import LocalMaximaSumMetric
from repro.measurement.delay_meter import (
    DelayMeasurement,
    DelayMeasurementConfig,
    PairMeasurement,
    PlaintextKeyPair,
)

SETTINGS = settings(max_examples=50, deadline=None)


# -- strategies -----------------------------------------------------------------

def traces(min_length: int = 8, max_length: int = 64):
    """Finite float traces of moderate length."""
    return st.lists(
        st.floats(min_value=-1e4, max_value=1e4,
                  allow_nan=False, allow_infinity=False),
        min_size=min_length, max_size=max_length,
    ).map(lambda values: np.asarray(values, dtype=float))


def trace_populations(num_traces_max: int = 6):
    """A population of equal-length traces (>= 2 of them).

    Samples are integer-valued (like quantised oscilloscope output), so
    population means are exact and order-independent — the reordering
    properties below then hold exactly instead of only up to summation
    order.
    """
    return st.integers(min_value=8, max_value=48).flatmap(
        lambda length: st.lists(
            st.lists(
                st.integers(min_value=-20000, max_value=20000),
                min_size=length, max_size=length,
            ).map(lambda values: np.asarray(values, dtype=float)),
            min_size=2, max_size=num_traces_max,
        )
    )


# -- LocalMaximaSumMetric -------------------------------------------------------

@SETTINGS
@given(trace=traces(), reference=traces())
def test_metric_score_is_non_negative(trace, reference):
    length = min(trace.size, reference.size)
    metric = LocalMaximaSumMetric()
    score = metric.score(trace[:length], reference[:length])
    assert score >= 0.0


@SETTINGS
@given(population=trace_populations(), seed=st.integers(0, 2**32 - 1))
def test_metric_scores_equivariant_under_reordering(population, seed):
    """Reordering the trace population permutes the scores with it."""
    metric = LocalMaximaSumMetric()
    reference = population[0]
    scores = metric.scores(population, reference)
    permutation = np.random.default_rng(seed).permutation(len(population))
    permuted_scores = metric.scores([population[i] for i in permutation],
                                    reference)
    np.testing.assert_array_equal(permuted_scores, scores[permutation])


@SETTINGS
@given(population=trace_populations(), seed=st.integers(0, 2**32 - 1))
def test_population_characterisation_invariant_under_reordering(population,
                                                                seed):
    """Fitting the detector on a reordered golden population is a no-op.

    The mean reference and the Gaussian fit are symmetric in the traces;
    only floating-point summation order may differ, hence the tolerance.
    """
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(population))
    detector_a = PopulationEMDetector()
    detector_b = PopulationEMDetector()
    detector_a.fit_reference(population)
    detector_b.fit_reference([population[i] for i in permutation])
    np.testing.assert_allclose(detector_b.reference.mean,
                               detector_a.reference.mean,
                               rtol=1e-9, atol=1e-6)
    np.testing.assert_allclose(np.sort(detector_b.golden_scores()),
                               np.sort(detector_a.golden_scores()),
                               rtol=1e-9, atol=1e-6)


@SETTINGS
@given(
    reference=traces(min_length=16),
    amplitudes=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                  allow_nan=False), min_size=2, max_size=6),
    seed=st.integers(0, 2**32 - 1),
)
def test_metric_monotone_in_injected_trojan_amplitude(reference, amplitudes,
                                                      seed):
    """A larger dormant emission can only raise the metric score."""
    metric = LocalMaximaSumMetric()
    rng = np.random.default_rng(seed)
    bump = np.abs(rng.normal(0.0, 1.0, size=reference.size))
    scores = [
        metric.score(reference + amplitude * bump, reference)
        for amplitude in sorted(amplitudes)
    ]
    for smaller, larger in zip(scores, scores[1:]):
        assert larger >= smaller - 1e-9


# -- DelayDetector --------------------------------------------------------------

NUM_BITS = 16


def _measurement(mean_steps: np.ndarray, label: str = "DUT",
                 repetitions: int = 4) -> DelayMeasurement:
    """A synthetic campaign whose per-repetition steps equal the mean."""
    config = DelayMeasurementConfig(repetitions=repetitions)
    pairs = []
    for pair_index, row in enumerate(mean_steps):
        pair = PlaintextKeyPair(index=pair_index, plaintext=bytes(16),
                                key=bytes(16))
        steps = np.tile(row, (repetitions, 1)).astype(float)
        pairs.append(PairMeasurement(pair=pair, steps_to_fault=steps,
                                     arrival_ps=np.full(row.size, 1000.0)))
    return DelayMeasurement(label=label, glitch=None, config=config,
                            pairs=pairs)


def steps_matrices():
    return st.integers(min_value=1, max_value=3).flatmap(
        lambda num_pairs: st.lists(
            st.lists(st.integers(min_value=0, max_value=50),
                     min_size=NUM_BITS, max_size=NUM_BITS),
            min_size=num_pairs, max_size=num_pairs,
        ).map(lambda rows: np.asarray(rows, dtype=float))
    )


@SETTINGS
@given(mean_steps=steps_matrices())
def test_delay_differences_non_negative(mean_steps):
    fingerprint = DelayFingerprint(
        mean_steps=mean_steps,
        repetition_std_steps=np.full(mean_steps.shape, 0.5),
        glitch_step_ps=35.0,
        num_repetitions=4,
    )
    detector = DelayDetector(fingerprint)
    shifted = _measurement(mean_steps + 1.0)
    assert (detector.difference_ps(shifted) >= 0.0).all()


@SETTINGS
@given(mean_steps=steps_matrices())
def test_identical_device_scores_zero_and_is_accepted(mean_steps):
    fingerprint = DelayFingerprint(
        mean_steps=mean_steps,
        repetition_std_steps=np.full(mean_steps.shape, 0.5),
        glitch_step_ps=35.0,
        num_repetitions=4,
    )
    detector = DelayDetector(fingerprint)
    comparison = detector.compare(_measurement(mean_steps.copy()))
    assert comparison.max_difference_ps == 0.0
    assert not comparison.outcome.is_infected


@SETTINGS
@given(
    mean_steps=steps_matrices(),
    shifts=st.lists(st.floats(min_value=0.0, max_value=30.0,
                              allow_nan=False), min_size=2, max_size=5),
    bit=st.integers(min_value=0, max_value=NUM_BITS - 1),
)
def test_delay_score_monotone_in_injected_shift(mean_steps, shifts, bit):
    """Loading one net with ever more delay can only raise the score."""
    fingerprint = DelayFingerprint(
        mean_steps=mean_steps,
        repetition_std_steps=np.full(mean_steps.shape, 0.5),
        glitch_step_ps=35.0,
        num_repetitions=4,
    )
    detector = DelayDetector(fingerprint)
    scores = []
    for shift in sorted(shifts):
        shifted = mean_steps.copy()
        shifted[:, bit] += shift
        scores.append(detector.compare(_measurement(shifted)).max_difference_ps)
    for smaller, larger in zip(scores, scores[1:]):
        assert larger >= smaller - 1e-9
