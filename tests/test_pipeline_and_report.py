"""Integration tests for the end-to-end platform and its reports."""

import pytest

from repro.core.pipeline import HTDetectionPlatform, PlatformConfig
from repro.core.report import (
    delay_study_report,
    format_table,
    headline_summary,
    percentage,
    population_em_report,
    same_die_em_report,
)


def test_platform_config_validation():
    with pytest.raises(ValueError):
        PlatformConfig(num_dies=0)


def test_platform_builds_and_caches_infected_designs(platform):
    first = platform.infected_design("HT_comb")
    second = platform.infected_design("HT_comb")
    assert first is second
    assert first.trojan.name == "HT_comb"


def test_platform_dut_factories(platform):
    golden = platform.golden_dut(1)
    infected = platform.infected_dut("HT1", 2)
    assert not golden.is_infected
    assert infected.is_infected
    assert golden.die.die_id == 1
    assert infected.die.die_id == 2


def test_delay_study_structure(delay_study):
    assert set(delay_study.comparisons) == {"Clean1", "Clean2", "HT_comb", "HT_seq"}
    assert set(delay_study.measurements) == set(delay_study.comparisons)
    assert delay_study.fingerprint.num_pairs == len(delay_study.pairs)
    assert delay_study.labels() == list(delay_study.comparisons)


def test_delay_study_detects_both_trojans(delay_study):
    assert delay_study.comparisons["HT_comb"].outcome.is_infected
    assert delay_study.comparisons["HT_seq"].outcome.is_infected
    assert not delay_study.comparisons["Clean1"].outcome.is_infected


def test_same_die_em_study(platform):
    study = platform.run_same_die_em_study(("HT_comb",))
    assert len(study.golden_traces) == 2
    assert "HT_comb" in study.infected_traces
    assert study.comparisons["HT_comb"].outcome.is_infected
    assert study.reference.num_samples == len(study.golden_traces[0])


def test_population_em_study(population_study, platform):
    assert len(population_study.golden_traces) == len(platform.population)
    rates = population_study.false_negative_rates()
    assert set(rates) == {"HT1", "HT3"}
    assert rates["HT3"] <= rates["HT1"]
    assert population_study.trojan_area_fractions["HT3"] > \
        population_study.trojan_area_fractions["HT1"]


def test_format_table_alignment():
    table = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    with pytest.raises(ValueError):
        format_table([], [])
    with pytest.raises(ValueError):
        format_table(["a"], [["1", "2"]])


def test_percentage_formatting():
    assert percentage(0.26) == "26.0%"
    assert percentage(0.051, digits=0) == "5%"


def test_reports_render(delay_study, population_study, platform):
    delay_text = delay_study_report(delay_study)
    assert "HT_comb" in delay_text and "verdict" in delay_text
    same_die = platform.run_same_die_em_study(("HT_comb",))
    em_text = same_die_em_report(same_die)
    assert "noise floor" in em_text
    population_text = population_em_report(population_study)
    assert "false negative" in population_text
    summary = headline_summary(population_study)
    assert set(summary) == {"HT1", "HT3"}
