"""Unit tests for the AES key schedule."""

import pytest

from repro.crypto.keyschedule import (
    expand_key,
    key_length_to_rounds,
    last_round_key,
    round_key,
)


def test_rounds_per_key_length():
    assert key_length_to_rounds(16) == 10
    assert key_length_to_rounds(24) == 12
    assert key_length_to_rounds(32) == 14
    with pytest.raises(ValueError):
        key_length_to_rounds(20)


def test_expand_key_returns_nr_plus_one_round_keys():
    keys = expand_key(bytes(16))
    assert len(keys) == 11
    assert all(len(k) == 16 for k in keys)
    assert len(expand_key(bytes(24))) == 13
    assert len(expand_key(bytes(32))) == 15


def test_round_zero_key_is_cipher_key_for_aes128():
    key = bytes(range(16))
    assert expand_key(key)[0] == key


def test_fips197_appendix_a_first_round_key():
    # FIPS-197 Appendix A.1 key expansion example.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    keys = expand_key(key)
    assert keys[1] == bytes.fromhex("a0fafe1788542cb123a339392a6c7605")
    assert keys[10] == bytes.fromhex("d014f9a8c9ee2589e13f0cc8b6630ca6")


def test_fips197_appendix_c_last_round_key():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    assert last_round_key(key) == bytes.fromhex("13111d7fe3944a17f307a78b4d2b30c5")


def test_round_key_accessor_bounds():
    key = bytes(16)
    assert round_key(key, 0) == key
    assert round_key(key, 10) == expand_key(key)[10]
    with pytest.raises(ValueError):
        round_key(key, 11)
    with pytest.raises(ValueError):
        round_key(key, -1)


def test_expand_key_rejects_bad_length():
    with pytest.raises(ValueError):
        expand_key(bytes(10))


def test_different_keys_give_different_schedules():
    a = expand_key(bytes(16))
    b = expand_key(bytes([1] + [0] * 15))
    assert a != b
