"""Unit tests for the netlist container."""

import pytest

from repro.netlist.cells import Cell, CellType, make_dff, make_lut, make_xor
from repro.netlist.netlist import Netlist, NetlistError


def build_half_adder() -> Netlist:
    netlist = Netlist("half_adder")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("sum")
    netlist.add_output("carry")
    netlist.add_cell(make_lut("sum_lut", ["a", "b"], "sum", (0, 1, 1, 0)))
    netlist.add_cell(make_lut("carry_lut", ["a", "b"], "carry", (0, 0, 0, 1)))
    return netlist


def test_half_adder_evaluation():
    netlist = build_half_adder()
    netlist.validate()
    for a in (0, 1):
        for b in (0, 1):
            outputs = netlist.evaluate_outputs({"a": a, "b": b})
            assert outputs["sum"] == a ^ b
            assert outputs["carry"] == a & b


def test_duplicate_names_rejected():
    netlist = build_half_adder()
    with pytest.raises(NetlistError):
        netlist.add_input("a")
    with pytest.raises(NetlistError):
        netlist.add_output("sum")
    with pytest.raises(NetlistError):
        netlist.add_cell(make_lut("sum_lut", ["a", "b"], "other", (0, 1, 1, 0)))


def test_multiple_drivers_rejected():
    netlist = build_half_adder()
    with pytest.raises(NetlistError):
        netlist.add_cell(make_lut("dup", ["a", "b"], "sum", (0, 0, 0, 1)))


def test_driving_a_primary_input_rejected():
    netlist = build_half_adder()
    with pytest.raises(NetlistError):
        netlist.add_cell(make_lut("drive_in", ["b", "sum"], "a", (0, 1, 1, 0)))


def test_validate_detects_undriven_nets():
    netlist = Netlist("broken")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_cell(make_xor("x", "a", "missing", "y"))
    with pytest.raises(NetlistError):
        netlist.validate()


def test_validate_detects_undriven_output():
    netlist = Netlist("broken")
    netlist.add_input("a")
    netlist.add_output("y")
    with pytest.raises(NetlistError):
        netlist.validate()


def test_combinational_cycle_detected():
    netlist = Netlist("cycle")
    netlist.add_input("a")
    netlist.add_cell(make_xor("x1", "a", "n2", "n1"))
    netlist.add_cell(make_xor("x2", "n1", "a", "n2"))
    with pytest.raises(NetlistError):
        netlist.topological_order()


def test_registers_break_cycles():
    netlist = Netlist("counter_bit")
    netlist.add_input("enable")
    netlist.add_cell(make_xor("toggle", "q", "enable", "d"))
    netlist.add_cell(make_dff("reg", "d", "q"))
    netlist.add_output("q")
    netlist.validate()
    # Register initialised to 0, enable=1 -> D becomes 1.
    assert netlist.next_register_values({"enable": 1})["q"] == 1
    # Feeding the captured value back toggles again.
    assert netlist.next_register_values({"enable": 1}, {"q": 1})["q"] == 0


def test_evaluate_requires_all_primary_inputs():
    netlist = build_half_adder()
    with pytest.raises(NetlistError):
        netlist.evaluate({"a": 1})


def test_structural_queries():
    netlist = build_half_adder()
    assert netlist.driver_of("sum").name == "sum_lut"
    assert netlist.driver_of("a") is None
    assert {c.name for c in netlist.loads_of("a")} == {"sum_lut", "carry_lut"}
    assert netlist.nets() == {"a", "b", "sum", "carry"}
    stats = netlist.stats()
    assert stats["cells"] == 2
    assert stats["LUT"] == 2


def test_fanin_and_fanout_cones():
    netlist = Netlist("chain")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_cell(make_xor("x1", "a", "b", "n1"))
    netlist.add_cell(make_xor("x2", "n1", "b", "n2"))
    netlist.add_output("n2")
    assert netlist.fanin_cone("n2") == {"x1", "x2"}
    assert netlist.fanout_cone("a") == {"x1", "x2"}
    assert netlist.fanout_cone("n2") == set()


def test_merge_with_prefix_and_port_map():
    inner = build_half_adder()
    outer = Netlist("outer")
    outer.add_input("x")
    outer.add_input("y")
    outer.add_output("s")
    net_map = outer.merge(inner, prefix="u0_",
                          port_map={"a": "x", "b": "y", "sum": "s"})
    assert net_map["a"] == "x"
    assert net_map["carry"] == "u0_carry"
    outer.validate()
    assert outer.evaluate_outputs({"x": 1, "y": 1})["s"] == 0


def test_lut_equivalent_area_counts_logic():
    netlist = build_half_adder()
    assert netlist.lut_equivalent_area() == 2.0


def test_register_and_combinational_cell_listing():
    netlist = Netlist("mixed")
    netlist.add_input("d")
    netlist.add_cell(make_dff("r0", "d", "q0"))
    netlist.add_cell(make_xor("x0", "d", "q0", "y"))
    netlist.add_output("y")
    assert [c.name for c in netlist.register_cells()] == ["r0"]
    assert [c.name for c in netlist.combinational_cells()] == ["x0"]
