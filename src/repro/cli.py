"""Command-line interface (``repro-ht``).

Sub-commands:

* ``trojans``    — list the trojan catalog and the measured footprints,
* ``delay``      — run the Sec. III delay study and print the verdicts,
* ``em``         — run the Sec. IV same-die EM study,
* ``headline``   — run the Sec. V inter-die study and print FN rates,
* ``experiments``— run the whole figure/table suite and print the
  paper-vs-measured summary.

Every command accepts ``--quick`` (reduced campaign, same code paths)
and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core.report import (
    delay_study_report,
    format_table,
    percentage,
    population_em_report,
    same_die_em_report,
)
from .experiments import ExperimentConfig, headline, runner, table_ht_sizes


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.fast() if args.quick else ExperimentConfig.paper()
    if args.seed is not None:
        config.seed = args.seed
    return config


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="reduced campaign sizes (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the campaign seed")


def cmd_trojans(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    table = table_ht_sizes.run(config)
    rows = [[row.trojan_name, str(row.trigger_width), f"{row.lut_count:.0f}",
             str(row.slice_count), percentage(row.fraction_of_aes),
             percentage(row.fraction_of_device)]
            for row in table.rows]
    print(format_table(
        ["trojan", "trigger bits", "LUTs", "slices", "% of AES", "% of FPGA"],
        rows,
    ))
    print(f"\nAES slice budget: {table.aes_slice_count} slices "
          f"({percentage(table.aes_slice_utilisation)} of the device)")
    return 0


def cmd_delay(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    platform = config.build_platform()
    study = platform.run_delay_study(
        trojan_names=tuple(args.trojan),
        num_pairs=config.num_pk_pairs,
    )
    print(delay_study_report(study))
    return 0


def cmd_em(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    platform = config.build_platform()
    study = platform.run_same_die_em_study(trojan_names=tuple(args.trojan))
    print(same_die_em_report(study))
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    platform = config.build_platform()
    study = platform.run_population_em_study()
    print(population_em_report(study))
    result = headline.run(config, platform)
    detection = result.largest_trojan_detection()
    print(f"\nLargest trojan detection probability: {percentage(detection)} "
          "(paper: > 95%)")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    suite = runner.run_all(config)
    print(suite.summary_table())
    return 0 if suite.all_shapes_match() else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ht",
        description=("Reproduction of 'Hardware Trojan Detection by Delay and "
                     "Electromagnetic Measurements' (DATE 2015)"),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_trojans = subparsers.add_parser("trojans", help="list the trojan catalog")
    _add_common_options(p_trojans)
    p_trojans.set_defaults(func=cmd_trojans)

    p_delay = subparsers.add_parser("delay", help="run the delay study (Sec. III)")
    _add_common_options(p_delay)
    p_delay.add_argument("--trojan", action="append",
                         default=None, help="trojan name (repeatable)")
    p_delay.set_defaults(func=cmd_delay)

    p_em = subparsers.add_parser("em", help="run the same-die EM study (Sec. IV)")
    _add_common_options(p_em)
    p_em.add_argument("--trojan", action="append", default=None,
                      help="trojan name (repeatable)")
    p_em.set_defaults(func=cmd_em)

    p_headline = subparsers.add_parser(
        "headline", help="run the inter-die study (Sec. V) and print FN rates"
    )
    _add_common_options(p_headline)
    p_headline.set_defaults(func=cmd_headline)

    p_exp = subparsers.add_parser(
        "experiments", help="run the full figure/table suite"
    )
    _add_common_options(p_exp)
    p_exp.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trojan", None) is None and args.command in ("delay", "em"):
        args.trojan = ["HT_comb", "HT_seq"] if args.command == "delay" else ["HT_comb"]
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
