"""Command-line interface (``repro-ht``).

Sub-commands:

* ``trojans``    — list the trojan catalog and the measured footprints,
* ``delay``      — run the Sec. III delay study and print the verdicts,
* ``em``         — run the Sec. IV same-die EM study,
* ``headline``   — run the Sec. V inter-die study and print FN rates,
* ``experiments``— run the whole figure/table suite and print the
  paper-vs-measured summary,
* ``campaign``   — batched scenario sweeps: ``campaign run`` executes a
  (trojans x dies x acquisition variants x metrics) grid through the
  :mod:`repro.campaigns` engine (EM metrics acquire traces; ``delay_*``
  metrics run the clock-glitch delay study on the compiled timing
  kernel); ``--store DIR`` attaches a content-addressed artifact store
  (warm reruns resume with only the missing cells) and ``--shard I/N``
  runs one deterministic partition of the grid; ``campaign merge``
  fuses shard result directories back into one full-grid summary;
  ``campaign report`` pretty-prints a stored summary.
* ``store``      — artifact-store maintenance: ``store fsck`` verifies
  every stored payload against its recorded SHA-256 digest (and with
  ``--repair`` quarantines what fails), ``store gc`` sweeps orphan
  objects and stray temp files left by interrupted writes, ``store
  leases`` lists the writer leases of a shared store, and ``store
  sync`` drains a tiered store's pending-upload journal to its remote
  once a partition heals (``campaign run --remote DIR`` mounts the
  remote tier and degrades to local-only when it is unreachable).
  Maintenance
  takes the exclusive store lock (``--wait`` bounds the wait, exit
  code 3 when writers keep it busy) and never touches objects covered
  by a live writer lease unless ``--force``.
* ``attack``     — fault-injection attack campaigns: ``attack sweep``
  drives a (clock period x glitch offset x pulse width) grid over the
  die population as a ``fault_coverage`` campaign cell (shardable and
  resumable through ``--store`` exactly like ``campaign run``);
  ``attack recover`` replays the stored sweep through the DFA
  analyzer (:mod:`repro.analysis.dfa`) and prints the recovered
  last-round key bytes with their fault localisation.

Every study command accepts ``--quick`` (reduced campaign, same code
paths) and ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .backend import known_backend_names
from .campaigns.spec import KNOWN_METRICS
from .core.report import (
    delay_study_report,
    format_table,
    percentage,
    population_em_report,
    same_die_em_report,
)
from .experiments import ExperimentConfig, headline, runner, table_ht_sizes


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.fast() if args.quick else ExperimentConfig.paper()
    if args.seed is not None:
        config.seed = args.seed
    return config


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="reduced campaign sizes (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the campaign seed")


def cmd_trojans(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    table = table_ht_sizes.run(config)
    rows = [[row.trojan_name, str(row.trigger_width), f"{row.lut_count:.0f}",
             str(row.slice_count), percentage(row.fraction_of_aes),
             percentage(row.fraction_of_device)]
            for row in table.rows]
    print(format_table(
        ["trojan", "trigger bits", "LUTs", "slices", "% of AES", "% of FPGA"],
        rows,
    ))
    print(f"\nAES slice budget: {table.aes_slice_count} slices "
          f"({percentage(table.aes_slice_utilisation)} of the device)")
    return 0


def cmd_delay(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    platform = config.build_platform()
    study = platform.run_delay_study(
        trojan_names=tuple(args.trojan),
        num_pairs=config.num_pk_pairs,
    )
    print(delay_study_report(study))
    return 0


def cmd_em(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    platform = config.build_platform()
    study = platform.run_same_die_em_study(trojan_names=tuple(args.trojan))
    print(same_die_em_report(study))
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    platform = config.build_platform()
    study = platform.run_population_em_study()
    print(population_em_report(study))
    result = headline.run(config, platform, study=study)
    detection = result.largest_trojan_detection()
    print(f"\nLargest trojan detection probability: {percentage(detection)} "
          "(paper: > 95%)")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    suite = runner.run_all(config, store=args.store)
    print(suite.summary_table())
    return 0 if suite.all_shapes_match() else 1


def _parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``--shard I/N`` argument into ``(index, count)``."""
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise argparse.ArgumentTypeError(
            f"shard must look like INDEX/COUNT (e.g. 0/2), got {text!r}"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must be in [0, count), got {text!r}"
        )
    return index, count


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaigns import AcquisitionVariant, CampaignEngine, CampaignSpec

    if args.spec is not None:
        spec = CampaignSpec.load(args.spec)
    else:
        spec = CampaignSpec(
            name=args.name,
            trojans=tuple(args.trojan or ("HT1", "HT2", "HT3")),
            die_counts=tuple(args.dies or (8,)),
            variants=(AcquisitionVariant.make("paper"),),
            metrics=tuple(args.metric or ("local_maxima_sum",)),
        )
    if args.seed is not None:
        spec.seed = args.seed
    if args.workers is not None:
        spec.workers = args.workers
    if args.pk_pairs is not None:
        spec.num_pk_pairs = args.pk_pairs
    if args.delay_repetitions is not None:
        spec.delay_repetitions = args.delay_repetitions
    if args.plaintexts is not None:
        spec.num_plaintexts = args.plaintexts
    if args.backend is not None:
        spec.kernel_backend = args.backend
    if args.save_traces:
        spec.save_traces = True
    if args.retries is not None:
        spec.max_retries = args.retries
    if args.cell_timeout is not None:
        spec.cell_timeout_s = args.cell_timeout
    if spec.save_traces and args.out is None:
        print("error: --save-traces needs --out DIR to write the archives to",
              file=sys.stderr)
        return 2
    store = args.store
    if getattr(args, "remote", None) is not None:
        if args.store is None:
            print("error: --remote needs --store DIR for the local tier",
                  file=sys.stderr)
            return 2
        from .store import TieredStore

        store = TieredStore(args.store, args.remote)
    engine = CampaignEngine(spec, store=store)
    result = engine.run(artifact_dir=args.out, shard=args.shard)
    print(result.report())
    shard_note = (f" (shard {args.shard[0]}/{args.shard[1]} of "
                  f"{spec.num_cells()})" if args.shard else "")
    print(f"\n{len(result.cells)} grid cells{shard_note} "
          f"in {result.elapsed_s:.2f} s")
    if args.out is not None:
        print(f"summary written to {args.out}")
    if args.store is not None:
        print(f"artifact store: {args.store}")
    if getattr(args, "remote", None) is not None:
        pending = store.pending_uploads()
        if pending:
            print(f"remote degraded: {len(pending)} upload(s) journaled — "
                  f"run `repro-ht store sync {args.store} "
                  f"--remote {args.remote}` once the remote heals")
        else:
            print(f"remote store: {args.remote} (in sync)")
    # A degraded (quarantined-cell) run exits non-zero so scripts notice.
    return 1 if result.failed_cells() else 0


def cmd_store_fsck(args: argparse.Namespace) -> int:
    from .store import ArtifactStore, LockTimeout

    root = Path(args.store)
    if not root.exists():
        print(f"error: store directory {root} does not exist",
              file=sys.stderr)
        return 2
    store = ArtifactStore(root)
    try:
        report = store.fsck(repair=args.repair, wait_s=args.wait,
                            force=args.force)
    except LockTimeout as error:
        print(f"store busy: {error}", file=sys.stderr)
        print("(writers hold the store lock; retry with a longer --wait)",
              file=sys.stderr)
        return 3
    print(report.summary())
    if args.repair and not report.clean():
        print("repairs applied; corrupt objects moved to "
              f"{store.quarantine_dir}")
    return 0 if report.clean() else 1


def cmd_store_gc(args: argparse.Namespace) -> int:
    from .store import ArtifactStore, LockTimeout

    root = Path(args.store)
    if not root.exists():
        print(f"error: store directory {root} does not exist",
              file=sys.stderr)
        return 2
    store = ArtifactStore(root)
    try:
        removed = store.gc(tmp_older_than_s=args.tmp_age,
                           purge_quarantine=args.purge_quarantine,
                           wait_s=args.wait, force=args.force)
    except LockTimeout as error:
        print(f"store busy: {error}", file=sys.stderr)
        print("(writers hold the store lock; retry with a longer --wait)",
              file=sys.stderr)
        return 3
    print(f"removed {removed['orphan_objects']} orphan object(s), "
          f"{removed['stray_tmp']} stray temp file(s), "
          f"{removed['quarantined']} quarantined object(s); "
          f"{len(store)} artifact(s) remain")
    if removed["broken_leases"]:
        print(f"broke {len(removed['broken_leases'])} stale lease(s): "
              + ", ".join(removed["broken_leases"]))
    if removed["live_leases"]:
        print(f"{len(removed['live_leases'])} live writer lease(s) — "
              f"{removed['skipped_leased']} candidate object(s) left "
              f"untouched (use --force only if the fleet is dead)")
    return 0


def cmd_store_sync(args: argparse.Namespace) -> int:
    from .store import TieredStore

    root = Path(args.store)
    if not root.exists():
        print(f"error: store directory {root} does not exist",
              file=sys.stderr)
        return 2
    tiered = TieredStore(root, args.remote)
    pending_before = len(tiered.pending_uploads())
    stats = tiered.sync()
    print(f"pending {pending_before} -> {len(stats['remaining'])}: "
          f"{len(stats['uploaded'])} uploaded, "
          f"{len(stats['skipped'])} already in sync, "
          f"{len(stats['missing_local'])} dropped (gone locally)")
    if stats["remaining"]:
        print("remote still unreachable for: "
              + ", ".join(stats["remaining"][:5])
              + (" …" if len(stats["remaining"]) > 5 else ""))
        return 1
    print("journal drained; local and remote are in sync")
    return 0


def cmd_store_leases(args: argparse.Namespace) -> int:
    from .store import ArtifactStore

    root = Path(args.store)
    if not root.exists():
        print(f"error: store directory {root} does not exist",
              file=sys.stderr)
        return 2
    store = ArtifactStore(root)
    leases = store.leases()
    if not leases:
        print("no writer leases registered")
        return 0
    for lease in leases:
        print(lease.describe())
    live = sum(1 for lease in leases if lease.is_live())
    print(f"{live} live / {len(leases)} total")
    return 0


def _load_campaign_payload(path: Path) -> dict:
    """Load one campaign summary JSON from a file or a shard directory."""
    if path.is_dir():
        candidates = []
        for json_path in sorted(path.glob("*.json")):
            try:
                payload = json.loads(json_path.read_text())
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict) and "spec" in payload \
                    and "cells" in payload:
                candidates.append((json_path, payload))
        if not candidates:
            raise FileNotFoundError(
                f"no campaign summary JSON found in directory {path}"
            )
        if len(candidates) > 1:
            names = ", ".join(str(json_path) for json_path, _ in candidates)
            raise ValueError(
                f"multiple campaign summaries in {path} ({names}); pass the "
                "file you mean directly"
            )
        return candidates[0][1]
    return json.loads(path.read_text())


def cmd_campaign_merge(args: argparse.Namespace) -> int:
    from .campaigns import CampaignResult, merge_campaign_results

    try:
        results = [CampaignResult.from_dict(_load_campaign_payload(Path(p)))
                   for p in args.shards]
        merged = merge_campaign_results(results)
    except (FileNotFoundError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(merged.report())
    print(f"\nmerged {len(results)} shard result(s) into "
          f"{len(merged.cells)} grid cells")
    if args.out is not None:
        merged.save(args.out)
        print(f"merged summary written to {args.out}")
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .campaigns import format_campaign_rows

    payload = json.loads(Path(args.results).read_text())
    rows = [row for cell in payload.get("cells", []) for row in cell["rows"]]
    if not rows:
        print("no campaign rows in", args.results)
        return 1
    print(f"campaign {payload['spec']['name']!r} "
          f"({len(payload['cells'])} cells, {payload['elapsed_s']:.2f} s)")
    print(format_campaign_rows(rows))
    return 0


def _attack_spec(args: argparse.Namespace):
    """Build the fault-sweep campaign spec shared by ``attack`` commands.

    ``attack sweep`` and ``attack recover`` must agree on every spec
    field that feeds the artifact-store keys (seed, stimuli, die count,
    glitch axes), so both build the spec here from the same flags.
    """
    from .campaigns import AcquisitionVariant, CampaignSpec

    spec = CampaignSpec(
        name=args.name,
        trojans=tuple(args.trojan or ("HT1",)),
        die_counts=tuple(args.dies or (3,)),
        variants=(AcquisitionVariant.make("paper"),),
        metrics=("fault_coverage",),
        num_plaintexts=args.plaintexts,
        glitch_offsets_ps=tuple(args.offset or ()),
        glitch_widths_ps=tuple(args.width or ()),
        glitch_periods_ps=tuple(args.period or ()),
    )
    if args.seed is not None:
        spec.seed = args.seed
    return spec


def cmd_attack_sweep(args: argparse.Namespace) -> int:
    from .campaigns import CampaignEngine

    spec = _attack_spec(args)
    if args.workers is not None:
        spec.workers = args.workers
    if args.retries is not None:
        spec.max_retries = args.retries
    if args.cell_timeout is not None:
        spec.cell_timeout_s = args.cell_timeout
    engine = CampaignEngine(spec, store=args.store)
    result = engine.run(artifact_dir=args.out, shard=args.shard)
    print(result.report())
    shard_note = (f" (shard {args.shard[0]}/{args.shard[1]} of "
                  f"{spec.num_cells()})" if args.shard else "")
    print(f"\n{len(result.cells)} grid cells{shard_note} "
          f"in {result.elapsed_s:.2f} s")
    if args.out is not None:
        print(f"summary written to {args.out}")
    if args.store is not None:
        print(f"artifact store: {args.store}")
    return 1 if result.failed_cells() else 0


def cmd_attack_recover(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.dfa import localise_faults
    from .attacks import recover_from_sweep
    from .campaigns import CampaignEngine
    from .crypto.keyschedule import last_round_key

    spec = _attack_spec(args)
    engine = CampaignEngine(spec, store=args.store)
    cell = next(cell for cell in spec.grid() if cell.is_fault)
    data = engine.fault_sweep_data(cell)
    grid = data.grid
    print(f"glitch grid: {len(grid.periods_ps)} period(s) x "
          f"{len(grid.offsets_ps)} offset(s) x {len(grid.widths_ps)} "
          f"width(s) = {grid.num_points} points")
    print(f"golden sweep: {data.golden_faulted.shape[0]} dies x "
          f"{grid.num_points} points x {data.correct.shape[0]} stimuli")

    flat_faulted = data.golden_faulted.reshape(-1, 16)
    flat_correct = np.broadcast_to(
        data.correct, data.golden_faulted.shape).reshape(-1, 16)
    localisation = localise_faults(flat_correct, flat_faulted)
    print(f"fault localisation: register bytes "
          f"{localisation.covered_bytes()}, faulted fraction "
          f"{percentage(localisation.faulted_fraction)}, last-round "
          f"consistent: {localisation.last_round_consistent}")

    dfa = recover_from_sweep(data.correct, data.golden_faulted,
                             min_evidence_bits=args.min_evidence)
    expected = last_round_key(spec.key)
    print(f"\nrecovered last-round key bytes "
          f"({dfa.num_recovered}/16, {dfa.num_faults} faulted captures):")
    for entry in dfa.bytes:
        if entry.value is None:
            continue
        verdict = "correct" if expected[entry.position] == entry.value \
            else "WRONG"
        print(f"  key[{entry.position:2d}] = 0x{entry.value:02X} "
              f"({verdict})  faults={entry.num_faults} "
              f"evidence={entry.evidence_bits} bits "
              f"stimuli={entry.num_stimuli} margin={entry.margin:.0f}")
    print(f"expected last-round key: {expected.hex()}")
    print(f"all recovered bytes match: {dfa.matches(expected)}")

    for name, tensor in data.infected_faulted.items():
        infected = recover_from_sweep(data.correct, tensor,
                                      min_evidence_bits=args.min_evidence)
        print(f"infected {name}: {infected.num_recovered}/16 bytes, "
              f"all match: {infected.matches(expected)}")

    return 0 if dfa.num_recovered >= 1 and dfa.matches(expected) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ht",
        description=("Reproduction of 'Hardware Trojan Detection by Delay and "
                     "Electromagnetic Measurements' (DATE 2015)"),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_trojans = subparsers.add_parser("trojans", help="list the trojan catalog")
    _add_common_options(p_trojans)
    p_trojans.set_defaults(func=cmd_trojans)

    p_delay = subparsers.add_parser("delay", help="run the delay study (Sec. III)")
    _add_common_options(p_delay)
    p_delay.add_argument("--trojan", action="append",
                         default=None, help="trojan name (repeatable)")
    p_delay.set_defaults(func=cmd_delay)

    p_em = subparsers.add_parser("em", help="run the same-die EM study (Sec. IV)")
    _add_common_options(p_em)
    p_em.add_argument("--trojan", action="append", default=None,
                      help="trojan name (repeatable)")
    p_em.set_defaults(func=cmd_em)

    p_headline = subparsers.add_parser(
        "headline", help="run the inter-die study (Sec. V) and print FN rates"
    )
    _add_common_options(p_headline)
    p_headline.set_defaults(func=cmd_headline)

    p_exp = subparsers.add_parser(
        "experiments", help="run the full figure/table suite"
    )
    _add_common_options(p_exp)
    p_exp.add_argument("--store", default=None,
                       help="content-addressed artifact store directory; the "
                            "shared population study reads through it")
    p_exp.set_defaults(func=cmd_experiments)

    p_campaign = subparsers.add_parser(
        "campaign", help="batched scenario sweeps (trojans x dies x configs)"
    )
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command",
                                             required=True)

    p_run = campaign_sub.add_parser(
        "run", help="execute a campaign grid and print the summary table"
    )
    p_run.add_argument("--spec", default=None,
                       help="JSON campaign spec (overrides the flags below)")
    p_run.add_argument("--name", default="campaign", help="campaign name")
    p_run.add_argument("--trojan", action="append", default=None,
                       help="trojan name (repeatable; default HT1 HT2 HT3)")
    p_run.add_argument("--dies", action="append", type=int, default=None,
                       help="die-population size (repeatable; default 8)")
    p_run.add_argument("--metric", action="append", default=None,
                       choices=list(KNOWN_METRICS),
                       help="detection metric (repeatable); delay_* metrics "
                            "run the clock-glitch delay study instead of an "
                            "EM acquisition")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the campaign seed")
    p_run.add_argument("--pk-pairs", type=int, default=None, dest="pk_pairs",
                       help="(P, K) stimuli per delay-study cell")
    p_run.add_argument("--delay-repetitions", type=int, default=None,
                       dest="delay_repetitions",
                       help="glitch-sweep repetitions per delay measurement")
    p_run.add_argument("--plaintexts", type=int, default=None,
                       help="EM stimulus diversity: 1 fixed plaintext "
                            "(paper), N sweeps N-1 extra random plaintexts "
                            "through the batched stimulus kernel")
    p_run.add_argument("--backend", default=None,
                       choices=list(known_backend_names()),
                       help="array/kernel backend for cell execution "
                            "(bit-identical results; 'bitslice' packs 64 "
                            "stimuli per uint64 word; default numpy)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="supervised worker processes for independent "
                            "grid cells")
    p_run.add_argument("--retries", type=int, default=None,
                       help="retries per failing cell before it is "
                            "quarantined as a failed row (default 2)")
    p_run.add_argument("--cell-timeout", type=float, default=None,
                       dest="cell_timeout", metavar="S",
                       help="per-cell attempt timeout in seconds "
                            "(multi-worker runs; default: no timeout)")
    p_run.add_argument("--out", default=None,
                       help="directory for the JSON/CSV summary and artifacts")
    p_run.add_argument("--save-traces", action="store_true",
                       help="also archive the acquired traces (.npz) per cell")
    p_run.add_argument("--store", default=None,
                       help="content-addressed artifact store directory: "
                            "acquisitions, delay measurements and finished "
                            "cells persist there, and a rerun resumes with "
                            "only the missing cells")
    p_run.add_argument("--shard", type=_parse_shard, default=None,
                       metavar="I/N",
                       help="run only shard I of N (deterministic partition "
                            "of the grid; fuse results with campaign merge)")
    p_run.add_argument("--remote", default=None, metavar="DIR",
                       help="remote artifact store (directory/mount used as "
                            "an object store) tiered behind --store: writes "
                            "replicate through, reads fall back to it, and "
                            "a partitioned remote degrades to local-only "
                            "with a pending-upload journal (drain with "
                            "`store sync`)")
    p_run.set_defaults(func=cmd_campaign_run)

    p_report = campaign_sub.add_parser(
        "report", help="pretty-print a stored campaign summary"
    )
    p_report.add_argument("results", help="campaign summary JSON file")
    p_report.set_defaults(func=cmd_campaign_report)

    p_merge = campaign_sub.add_parser(
        "merge", help="fuse shard result directories into one summary"
    )
    p_merge.add_argument("shards", nargs="+",
                         help="shard result directories (or summary JSON "
                              "files) written by campaign run --shard")
    p_merge.add_argument("--out", default=None,
                         help="directory for the merged JSON/CSV summary")
    p_merge.set_defaults(func=cmd_campaign_merge)

    p_store = subparsers.add_parser(
        "store", help="artifact-store maintenance: integrity audit and GC"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_fsck = store_sub.add_parser(
        "fsck", help="verify every artifact's digest and index consistency"
    )
    p_fsck.add_argument("store", help="artifact store directory")
    p_fsck.add_argument("--repair", action="store_true",
                        help="quarantine corrupt objects, rebuild/drop "
                             "broken manifest entries, remove unleased "
                             "orphans and sweep stray temp files (takes "
                             "the exclusive store lock)")
    p_fsck.add_argument("--wait", type=float, default=None, metavar="S",
                        help="bounded wait for the exclusive store lock "
                             "with --repair (default 30 s; exit code 3 "
                             "when the store stays busy)")
    p_fsck.add_argument("--force", action="store_true",
                        help="ignore live writer leases (only when the "
                             "fleet is known dead)")
    p_fsck.set_defaults(func=cmd_store_fsck)

    p_gc = store_sub.add_parser(
        "gc", help="sweep orphan objects, stray temp files and quarantine"
    )
    p_gc.add_argument("store", help="artifact store directory")
    p_gc.add_argument("--tmp-age", type=float, default=None,
                      dest="tmp_age", metavar="S",
                      help="only sweep temp files older than S seconds "
                           "(default: immediate with lease accounting — "
                           "liveness is explicit — and 3600 on stores "
                           "without it)")
    p_gc.add_argument("--purge-quarantine", action="store_true",
                      help="also delete previously quarantined objects")
    p_gc.add_argument("--wait", type=float, default=None, metavar="S",
                      help="bounded wait for the exclusive store lock "
                           "(default 30 s; exit code 3 when the store "
                           "stays busy)")
    p_gc.add_argument("--force", action="store_true",
                      help="ignore live writer leases (only when the "
                           "fleet is known dead)")
    p_gc.set_defaults(func=cmd_store_gc)

    p_sync = store_sub.add_parser(
        "sync", help="drain a local store's pending-upload journal to "
                     "its remote (idempotent: content keys make replays "
                     "safe)"
    )
    p_sync.add_argument("store", help="local artifact store directory")
    p_sync.add_argument("--remote", required=True, metavar="DIR",
                        help="remote store location (directory/mount)")
    p_sync.set_defaults(func=cmd_store_sync)

    p_leases = store_sub.add_parser(
        "leases", help="list writer leases registered on a store"
    )
    p_leases.add_argument("store", help="artifact store directory")
    p_leases.set_defaults(func=cmd_store_leases)

    p_attack = subparsers.add_parser(
        "attack", help="fault-injection attacks: glitch-grid sweeps + DFA"
    )
    attack_sub = p_attack.add_subparsers(dest="attack_command", required=True)

    def _add_attack_spec_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--name", default="attack", help="campaign name")
        sub.add_argument("--trojan", action="append", default=None,
                         help="trojan name (repeatable; default HT1)")
        sub.add_argument("--dies", action="append", type=int, default=None,
                         help="die-population size (repeatable; default 3)")
        sub.add_argument("--plaintexts", type=int, default=4,
                         help="stimulus diversity: the fixed plaintext plus "
                              "N-1 seed-derived random plaintexts (DFA needs "
                              ">= 2 distinct stimuli; default 4)")
        sub.add_argument("--seed", type=int, default=None,
                         help="override the campaign seed")
        sub.add_argument("--offset", action="append", type=float,
                         default=None, metavar="PS",
                         help="glitch offset in ps (repeatable); omit all "
                              "three axes to auto-calibrate the grid on the "
                              "golden die's worst path")
        sub.add_argument("--width", action="append", type=float,
                         default=None, metavar="PS",
                         help="glitch pulse width in ps (repeatable)")
        sub.add_argument("--period", action="append", type=float,
                         default=None, metavar="PS",
                         help="nominal clock period in ps (repeatable)")
        sub.add_argument("--store", default=None,
                         help="content-addressed artifact store directory: "
                              "sweeps persist there and recover replays "
                              "them without re-synthesis")

    p_sweep = attack_sub.add_parser(
        "sweep", help="run a glitch-grid fault sweep over the die population"
    )
    _add_attack_spec_options(p_sweep)
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="supervised worker processes for independent "
                              "grid cells")
    p_sweep.add_argument("--retries", type=int, default=None,
                         help="retries per failing cell before it is "
                              "quarantined as a failed row (default 2)")
    p_sweep.add_argument("--cell-timeout", type=float, default=None,
                         dest="cell_timeout", metavar="S",
                         help="per-cell attempt timeout in seconds "
                              "(multi-worker runs; default: no timeout)")
    p_sweep.add_argument("--out", default=None,
                         help="directory for the JSON/CSV summary")
    p_sweep.add_argument("--shard", type=_parse_shard, default=None,
                         metavar="I/N",
                         help="run only shard I of N (fuse with campaign "
                              "merge)")
    p_sweep.set_defaults(func=cmd_attack_sweep)

    p_recover = attack_sub.add_parser(
        "recover", help="DFA key recovery from a (stored) fault sweep"
    )
    _add_attack_spec_options(p_recover)
    p_recover.add_argument("--min-evidence", type=int, default=8,
                           dest="min_evidence",
                           help="minimum faulted bits per key byte before "
                                "the analyzer commits to a value")
    p_recover.set_defaults(func=cmd_attack_recover)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trojan", None) is None and args.command in ("delay", "em"):
        args.trojan = ["HT_comb", "HT_seq"] if args.command == "delay" else ["HT_comb"]
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
