"""Bowman-style maximum-clock-frequency (FMAX) distribution model.

The paper cites Bowman, Duvall and Meindl (JSSC 2002), *Impact of
die-to-die and within-die parameter fluctuations on the maximum clock
frequency distribution*, to justify modelling process variation as
Gaussian noise.  This module implements the part of that model the
reproduction uses:

* the critical-path delay of a die is the **maximum** of many nominally
  identical path delays, each perturbed by within-die variation, shifted
  by a die-to-die offset;
* the resulting FMAX distribution is skewed (max of Gaussians) with a
  spread dominated by the die-to-die component once the number of
  critical paths is large.

It is used by the ablation benchmarks to relate the delay-detection
threshold to the number of reference dies, and it provides an
independent sanity check of the inter/intra-die sigma choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class BowmanParameters:
    """Parameters of the Bowman FMAX model.

    Attributes
    ----------
    nominal_delay_ps:
        Nominal critical-path delay.
    sigma_within_die_ps:
        Standard deviation of the within-die component of one path.
    sigma_die_to_die_ps:
        Standard deviation of the die-to-die delay offset.
    num_critical_paths:
        Number of nominally critical paths on the die (the max is taken
        over these).
    """

    nominal_delay_ps: float
    sigma_within_die_ps: float
    sigma_die_to_die_ps: float
    num_critical_paths: int = 128

    def __post_init__(self) -> None:
        if self.nominal_delay_ps <= 0:
            raise ValueError("nominal_delay_ps must be positive")
        if self.sigma_within_die_ps < 0 or self.sigma_die_to_die_ps < 0:
            raise ValueError("sigmas must be non-negative")
        if self.num_critical_paths <= 0:
            raise ValueError("num_critical_paths must be positive")


def sample_die_critical_delays(params: BowmanParameters, num_dies: int,
                               seed: int = 0) -> np.ndarray:
    """Sample the critical-path delay of ``num_dies`` dies.

    Each die draws one die-to-die offset and ``num_critical_paths``
    within-die perturbations; its critical delay is the maximum path
    delay.
    """
    if num_dies <= 0:
        raise ValueError("num_dies must be positive")
    rng = np.random.default_rng(seed)
    die_offsets = rng.normal(0.0, params.sigma_die_to_die_ps, size=num_dies)
    within = rng.normal(
        0.0, params.sigma_within_die_ps,
        size=(num_dies, params.num_critical_paths),
    )
    delays = params.nominal_delay_ps + die_offsets[:, None] + within
    return delays.max(axis=1)


def fmax_statistics(params: BowmanParameters, num_dies: int = 10000,
                    seed: int = 0) -> Dict[str, float]:
    """Monte-Carlo statistics of the FMAX (= 1/critical delay) distribution."""
    delays_ps = sample_die_critical_delays(params, num_dies, seed)
    fmax_ghz = 1000.0 / delays_ps  # ps -> GHz
    return {
        "mean_delay_ps": float(delays_ps.mean()),
        "std_delay_ps": float(delays_ps.std(ddof=1)),
        "mean_fmax_ghz": float(fmax_ghz.mean()),
        "std_fmax_ghz": float(fmax_ghz.std(ddof=1)),
        "p99_delay_ps": float(np.percentile(delays_ps, 99)),
    }


def die_to_die_dominance(params: BowmanParameters) -> float:
    """Ratio of die-to-die variance to total variance of the mean path.

    Bowman's observation is that once the maximum over many paths is
    taken, the within-die component compresses and the die-to-die
    component dominates the FMAX spread; this ratio quantifies the
    starting balance.
    """
    total = params.sigma_die_to_die_ps ** 2 + params.sigma_within_die_ps ** 2
    if total == 0:
        return 0.0
    return params.sigma_die_to_die_ps ** 2 / total
