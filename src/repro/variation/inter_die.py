"""Inter-die (die-to-die) process-variation model.

Section V of the paper studies how inter-die process variations — the
fact that two circuits fabricated with the same process have slightly
different physical and electrical behaviours — degrade side-channel HT
detection.  The paper models the process-variation effect as a random
Gaussian noise (citing Bowman et al.) and uses 8 Virtex-5 LX30 dies.

:class:`DieProfile` captures one physical die: a global delay scale
factor, a global EM emission gain, a small EM DC offset, and the seed of
its intra-die variation field.  :class:`DiePopulation` generates a
reproducible set of dies from a master seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

#: Relative sigma of the die-to-die delay scale (65 nm typical ~ 3-5 %).
DEFAULT_SIGMA_DELAY_SCALE = 0.04
#: Relative sigma of the die-to-die EM emission gain.  Calibrated so that
#: the spread of |G_j - E(G)| across dies sits where the paper's Fig. 6
#: puts it relative to the HT1/HT2/HT3 offsets (false-negative rates of
#: roughly 26 % / 17 % / 5 %).
DEFAULT_SIGMA_EM_GAIN = 0.025
#: Sigma of the additive EM baseline offset (arbitrary oscilloscope units).
DEFAULT_SIGMA_EM_OFFSET = 5.0


@dataclass(frozen=True)
class DieProfile:
    """Electrical personality of one fabricated die."""

    die_id: int
    delay_scale: float
    em_gain: float
    em_offset: float
    intra_die_seed: int

    def __post_init__(self) -> None:
        if self.delay_scale <= 0:
            raise ValueError("delay_scale must be positive")
        if self.em_gain <= 0:
            raise ValueError("em_gain must be positive")

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"die {self.die_id}: delay x{self.delay_scale:.4f}, "
                f"EM gain x{self.em_gain:.4f}, EM offset {self.em_offset:+.1f}")


@dataclass
class DiePopulation:
    """A reproducible population of fabricated dies.

    Parameters
    ----------
    size:
        Number of dies (the paper uses 8; its perspectives call for
        ``n >> 8``).
    seed:
        Master seed; die ``k`` derives all its randomness from
        ``seed + k`` so populations of different sizes share their first
        dies.
    sigma_delay_scale, sigma_em_gain, sigma_em_offset:
        Spreads of the die-to-die parameters.
    """

    size: int
    seed: int = 2015
    sigma_delay_scale: float = DEFAULT_SIGMA_DELAY_SCALE
    sigma_em_gain: float = DEFAULT_SIGMA_EM_GAIN
    sigma_em_offset: float = DEFAULT_SIGMA_EM_OFFSET
    dies: List[DieProfile] = field(init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("population size must be positive")
        if min(self.sigma_delay_scale, self.sigma_em_gain,
               self.sigma_em_offset) < 0:
            raise ValueError("population sigmas must be non-negative")
        self.dies = [self._make_die(index) for index in range(self.size)]

    def _make_die(self, index: int) -> DieProfile:
        rng = np.random.default_rng(self.seed + index)
        delay_scale = float(
            np.clip(rng.normal(1.0, self.sigma_delay_scale), 0.8, 1.2)
        )
        em_gain = float(
            np.clip(rng.normal(1.0, self.sigma_em_gain), 0.7, 1.3)
        )
        em_offset = float(rng.normal(0.0, self.sigma_em_offset))
        return DieProfile(
            die_id=index,
            delay_scale=delay_scale,
            em_gain=em_gain,
            em_offset=em_offset,
            intra_die_seed=self.seed * 1000 + index,
        )

    def __iter__(self) -> Iterator[DieProfile]:
        return iter(self.dies)

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> DieProfile:
        return self.dies[index]

    def delay_scales(self) -> List[float]:
        """Delay scale factors of every die."""
        return [die.delay_scale for die in self.dies]

    def em_gains(self) -> List[float]:
        """EM gains of every die."""
        return [die.em_gain for die in self.dies]
