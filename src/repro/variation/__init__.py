"""Process-variation models: intra-die, inter-die and Bowman FMAX."""

from .bowman import (
    BowmanParameters,
    die_to_die_dominance,
    fmax_statistics,
    sample_die_critical_delays,
)
from .inter_die import DieProfile, DiePopulation
from .intra_die import IntraDieVariation

__all__ = [
    "BowmanParameters",
    "die_to_die_dominance",
    "fmax_statistics",
    "sample_die_critical_delays",
    "DieProfile",
    "DiePopulation",
    "IntraDieVariation",
]
