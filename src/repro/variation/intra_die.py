"""Intra-die (within-die) process-variation model.

The paper's delay model (Eq. 2) writes the delay of a net as a static
part plus ``dPV``, an arbitrary delay induced by intra-die process
variations.  Within-die variation has two classically recognised
components (Bowman et al., 2002):

* a **spatially correlated** component — neighbouring transistors see
  similar lithographic and doping conditions, so delay offsets vary
  smoothly across the die;
* an **uncorrelated (random)** component — per-device fluctuations.

:class:`IntraDieVariation` draws both components deterministically from
a seed, so a given physical die always presents the same intra-die
fingerprint, which is exactly what makes the golden-model comparison of
the paper meaningful.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

#: Default standard deviation of the spatially correlated component (ps).
DEFAULT_SIGMA_SPATIAL_PS = 6.0
#: Default standard deviation of the random component (ps).
DEFAULT_SIGMA_RANDOM_PS = 4.0
#: Number of random low-frequency modes composing the spatial field.
_NUM_SPATIAL_MODES = 6


@dataclass
class IntraDieVariation:
    """Per-cell delay offsets for one die.

    Parameters
    ----------
    seed:
        Seed identifying the die; the same seed always produces the same
        variation field.
    sigma_spatial_ps, sigma_random_ps:
        Standard deviations of the two variation components.
    die_rows, die_cols:
        Extent of the die in slices, used to normalise the spatial field.
    """

    seed: int
    sigma_spatial_ps: float = DEFAULT_SIGMA_SPATIAL_PS
    sigma_random_ps: float = DEFAULT_SIGMA_RANDOM_PS
    die_rows: int = 80
    die_cols: int = 60
    _modes: Tuple[Tuple[float, float, float, float], ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.sigma_spatial_ps < 0 or self.sigma_random_ps < 0:
            raise ValueError("variation sigmas must be non-negative")
        if self.die_rows <= 0 or self.die_cols <= 0:
            raise ValueError("die dimensions must be positive")
        rng = np.random.default_rng(self.seed)
        modes = []
        for _ in range(_NUM_SPATIAL_MODES):
            amplitude = float(rng.normal(0.0, 1.0))
            freq_row = float(rng.uniform(0.5, 2.0))
            freq_col = float(rng.uniform(0.5, 2.0))
            phase = float(rng.uniform(0.0, 2.0 * math.pi))
            modes.append((amplitude, freq_row, freq_col, phase))
        # Normalise so the field has unit standard deviation in expectation.
        norm = math.sqrt(sum(m[0] ** 2 for m in modes) / 2.0) or 1.0
        self._modes = tuple((a / norm, fr, fc, p) for a, fr, fc, p in modes)

    # -- field evaluation ----------------------------------------------------

    def spatial_field(self, coord: Tuple[int, int]) -> float:
        """Value of the normalised spatially correlated field at ``coord``."""
        row, col = coord
        u = row / max(1, self.die_rows)
        v = col / max(1, self.die_cols)
        total = 0.0
        for amplitude, freq_row, freq_col, phase in self._modes:
            total += amplitude * math.cos(
                2.0 * math.pi * (freq_row * u + freq_col * v) + phase
            )
        return total

    def cell_offset_ps(self, cell_name: str, coord: Tuple[int, int]) -> float:
        """Delay offset of one cell placed at ``coord``.

        The random component is derived from a hash of the cell name and
        the die seed, so it is stable per (die, cell) pair.
        """
        spatial = self.sigma_spatial_ps * self.spatial_field(coord)
        # zlib.crc32 is stable across processes (unlike hash() on strings),
        # so a (die, cell) pair always gets the same random offset.
        cell_seed = zlib.crc32(f"{self.seed}:{cell_name}".encode("utf-8"))
        random_part = float(
            np.random.default_rng(cell_seed).normal(0.0, 1.0)
        ) * self.sigma_random_ps
        return spatial + random_part

    def offsets_for(self, cell_positions: Mapping[str, Tuple[int, int]]
                    ) -> Dict[str, float]:
        """Delay offsets for every placed cell of a design."""
        return {
            name: self.cell_offset_ps(name, coord)
            for name, coord in cell_positions.items()
        }

    def total_sigma_ps(self) -> float:
        """Combined standard deviation of the per-cell offset."""
        return math.sqrt(self.sigma_spatial_ps ** 2 + self.sigma_random_ps ** 2)
