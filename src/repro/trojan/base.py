"""Hardware-trojan base classes.

A hardware trojan, as inserted by the paper's untrusted-foundry
adversary, is described by three aspects:

* **structure** — a small netlist of trigger and payload cells dropped
  into unused slices; its size (the paper expresses it as a percentage
  of the AES area) drives how detectable it is;
* **connectivity** — which nets of the host design it taps (the
  combinational trojans scan SubBytes input signals); tapping a net adds
  capacitive load and therefore delay to that net;
* **activity** — how much the trojan's own logic switches while the
  host runs, even though the payload is never triggered.  This dormant
  activity is what the EM measurement picks up, and its supply current
  is what couples into the host's delays through the power grid.

:class:`HardwareTrojan` bundles structure and connectivity and defines
the activity interface; concrete triggers live in
:mod:`repro.trojan.combinational` and :mod:`repro.trojan.sequential`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..crypto.state import BLOCK_BITS, BLOCK_BYTES, validate_block
from ..netlist.netlist import Netlist


class TrojanKind(str, Enum):
    """Trigger style of a hardware trojan."""

    COMBINATIONAL = "combinational"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class TrojanActivity:
    """Switching-activity counts of a trojan over one host clock cycle.

    Attributes
    ----------
    output_toggles:
        Number of trojan cell outputs that changed value.
    input_pin_toggles:
        Number of trojan cell input pins whose driving net changed value
        (dormant trigger logic mostly shows up through these).
    """

    output_toggles: int
    input_pin_toggles: int

    def weighted(self, pin_weight: float = 0.3) -> float:
        """Scalar activity: full weight for output toggles, ``pin_weight``
        for input-pin toggles (an input pin charging internal LUT
        capacitance draws a fraction of a full output transition)."""
        return self.output_toggles + pin_weight * self.input_pin_toggles

    def __add__(self, other: "TrojanActivity") -> "TrojanActivity":
        return TrojanActivity(
            output_toggles=self.output_toggles + other.output_toggles,
            input_pin_toggles=self.input_pin_toggles + other.input_pin_toggles,
        )


#: The zero activity constant.
NO_ACTIVITY = TrojanActivity(0, 0)


@dataclass
class HardwareTrojan:
    """A built (but not yet placed) hardware trojan.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"HT1"`` or ``"HT_seq"``.
    kind:
        Combinational or sequential trigger.
    netlist:
        Structural netlist of the trojan (trigger + payload).
    tapped_host_nets:
        Host-design net names the trojan observes, in the order of the
        trojan's ``tap{i}`` inputs.  Empty for autonomous (sequential)
        trojans.
    tap_input_nets:
        The trojan-side input net names corresponding to
        ``tapped_host_nets`` (same length and order).
    description:
        Free-text description of trigger condition and payload.
    """

    name: str
    kind: TrojanKind
    netlist: Netlist
    tapped_host_nets: List[str] = field(default_factory=list)
    tap_input_nets: List[str] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.tapped_host_nets) != len(self.tap_input_nets):
            raise ValueError(
                "tapped_host_nets and tap_input_nets must have the same length"
            )

    # -- size accounting -----------------------------------------------------

    def lut_count(self) -> float:
        """Logic size of the trojan in LUT equivalents."""
        return self.netlist.lut_equivalent_area()

    def cell_count(self) -> int:
        """Number of cell instances (LUTs, FFs, muxes...)."""
        return len(self.netlist.cells)

    def slice_count(self, luts_per_slice: int = 4) -> float:
        """Approximate slice footprint (LUT-bound packing)."""
        if luts_per_slice <= 0:
            raise ValueError("luts_per_slice must be positive")
        return self.lut_count() / luts_per_slice

    # -- activity ---------------------------------------------------------------

    def tap_values(self, host_state: Sequence[int]) -> Dict[str, int]:
        """Trojan input-net values derived from a host state block.

        The default implementation assumes tapped host nets are state
        register bits named by the last-round circuit convention; concrete
        trojans override :meth:`host_bit_for_tap` when needed.
        """
        raise NotImplementedError

    def round_activity(self, state_before: Sequence[int],
                       state_after: Sequence[int],
                       encryption_index: int = 0,
                       round_index: int = 0) -> TrojanActivity:
        """Dormant switching activity over one host clock cycle.

        Parameters
        ----------
        state_before, state_after:
            Host state register content before/after the clock edge.
        encryption_index:
            Index of the encryption in the acquisition campaign (used by
            sequential trojans whose counter advances per encryption).
        round_index:
            Round number within the encryption (1-based).
        """
        raise NotImplementedError

    def encryption_activity(self, round_states: Sequence[bytes],
                            encryption_index: int = 0) -> List[TrojanActivity]:
        """Activity for every clock cycle of one encryption.

        ``round_states`` is the sequence of state-register values over
        the encryption (initial state then one entry per round); the
        result has one entry per transition.

        Concrete trojans override this with a compiled-kernel batch
        (every cycle's netlist state evaluated in one array pass);
        :meth:`encryption_activity_interpreted` remains the per-cycle
        reference walk the overrides are tested against.
        """
        return self.encryption_activity_interpreted(round_states,
                                                    encryption_index)

    def encryption_activity_counts(self, round_states: "object",
                                   encryption_indices: Optional[Sequence[int]]
                                   = None
                                   ) -> "tuple[object, object]":
        """Toggle counts of a whole *batch* of encryptions at once.

        ``round_states`` is the ``(num_encryptions, num_cycles + 1, 16)``
        uint8 register-state tensor of
        :func:`repro.crypto.batch.encrypt_round_states` (row 0 the
        register load); ``encryption_indices`` gives each row's position
        in the acquisition campaign (defaults to ``0..N-1``).  Returns
        ``(output_toggles, input_pin_toggles)`` int64 matrices of shape
        ``(num_encryptions, num_cycles)``.

        The default implementation loops :meth:`encryption_activity`
        per encryption and is the reference the vectorised overrides in
        :mod:`repro.trojan.combinational` and
        :mod:`repro.trojan.sequential` are tested against.
        """
        states = np.ascontiguousarray(round_states, dtype=np.uint8)
        if states.ndim != 3 or states.shape[2] != BLOCK_BYTES:
            raise ValueError(
                f"round_states must be (N, cycles + 1, {BLOCK_BYTES}), got "
                f"{states.shape}"
            )
        num_encryptions = states.shape[0]
        num_cycles = max(0, states.shape[1] - 1)
        if encryption_indices is None:
            encryption_indices = range(num_encryptions)
        indices = list(encryption_indices)
        if len(indices) != num_encryptions:
            raise ValueError(
                f"got {len(indices)} encryption indices for "
                f"{num_encryptions} encryptions"
            )
        output_toggles = np.zeros((num_encryptions, num_cycles),
                                  dtype=np.int64)
        pin_toggles = np.zeros((num_encryptions, num_cycles), dtype=np.int64)
        for row in range(num_encryptions):
            activities = self.encryption_activity(
                [bytes(state) for state in states[row]],
                encryption_index=indices[row],
            )
            output_toggles[row] = [a.output_toggles for a in activities]
            pin_toggles[row] = [a.input_pin_toggles for a in activities]
        return output_toggles, pin_toggles

    def encryption_activity_interpreted(self, round_states: Sequence[bytes],
                                        encryption_index: int = 0
                                        ) -> List[TrojanActivity]:
        """Reference implementation: one interpreted walk per cycle."""
        activities: List[TrojanActivity] = []
        for cycle, (before, after) in enumerate(
                zip(round_states[:-1], round_states[1:]), start=1):
            activities.append(
                self.round_activity(before, after,
                                    encryption_index=encryption_index,
                                    round_index=cycle)
            )
        return activities

    # -- helpers for subclasses ------------------------------------------------

    def _batched_toggle_counts(self, values: "object") -> List[TrojanActivity]:
        """Toggle counts between consecutive rows of a compiled evaluation.

        ``values`` is the ``(num_states, num_nets)`` matrix returned by
        the compiled netlist for successive cycle states; entry ``i`` of
        the result equals what :meth:`_netlist_toggle_counts` computes
        for rows ``i`` and ``i + 1``.
        """
        output_toggles, pin_toggles = self.netlist.compiled().toggle_counts(
            values
        )
        return [TrojanActivity(output_toggles=int(out), input_pin_toggles=int(pins))
                for out, pins in zip(output_toggles, pin_toggles)]

    def _netlist_toggle_counts(self, inputs_before: Mapping[str, int],
                               inputs_after: Mapping[str, int],
                               registers_before: Optional[Mapping[str, int]] = None,
                               registers_after: Optional[Mapping[str, int]] = None
                               ) -> TrojanActivity:
        """Count output and input-pin toggles between two evaluations."""
        values_before = self.netlist.evaluate(dict(inputs_before), registers_before)
        values_after = self.netlist.evaluate(dict(inputs_after), registers_after)
        output_toggles = 0
        pin_toggles = 0
        for cell in self.netlist.cells.values():
            if values_before.get(cell.output) != values_after.get(cell.output):
                output_toggles += 1
            for net in cell.inputs:
                if values_before.get(net) != values_after.get(net):
                    pin_toggles += 1
        return TrojanActivity(output_toggles=output_toggles,
                              input_pin_toggles=pin_toggles)
