"""Hardware trojan models, catalog and layout-preserving insertion."""

from .base import HardwareTrojan, NO_ACTIVITY, TrojanActivity, TrojanKind
from .combinational import (
    CombinationalTrojan,
    build_combinational_trojan,
    default_scanned_bits,
)
from .insertion import InfectedDesign, InsertionError, insert_trojan
from .library import (
    TROJAN_SPECS,
    TrojanSpec,
    available_trojans,
    build_size_sweep,
    build_trojan,
)
from .payload import add_dos_payload, payload_luts_for_target_area
from .sequential import SequentialTrojan, build_sequential_trojan

__all__ = [
    "HardwareTrojan",
    "NO_ACTIVITY",
    "TrojanActivity",
    "TrojanKind",
    "CombinationalTrojan",
    "build_combinational_trojan",
    "default_scanned_bits",
    "InfectedDesign",
    "InsertionError",
    "insert_trojan",
    "TROJAN_SPECS",
    "TrojanSpec",
    "available_trojans",
    "build_size_sweep",
    "build_trojan",
    "add_dos_payload",
    "payload_luts_for_target_area",
    "SequentialTrojan",
    "build_sequential_trojan",
]
