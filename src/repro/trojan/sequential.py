"""Sequential hardware trojan (encryption counter + comparator).

The paper's sequential trojan contains a 32-bit counter incremented for
each AES encryption and a comparator; when the counter reaches a
predefined value the DoS payload fires.  It occupies 0.36 % of the FPGA
slices (about 0.94 % of the AES area).

Unlike the combinational trojans it does not tap the datapath: its only
observable effects while dormant are

* the slices it occupies (static current, power-grid coupling into the
  host's delays), and
* the small switching activity of the counter and comparator — on
  average two counter bits toggle per encryption — which adds a faint
  EM contribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..netlist.cells import make_dff, make_lut
from ..netlist.netlist import Netlist
from ..netlist.synth import synthesize_reduction_tree
from .base import HardwareTrojan, NO_ACTIVITY, TrojanActivity, TrojanKind
from .payload import add_dos_payload

#: Net name carrying the trigger condition inside the trojan netlist.
TRIGGER_NET = "trigger"

_XOR2_TABLE = (0, 1, 1, 0)
_AND2_TABLE = (0, 0, 0, 1)
_INV_TABLE = (1, 0)


class SequentialTrojan(HardwareTrojan):
    """32-bit (configurable) encryption counter with comparator and DoS payload.

    Parameters
    ----------
    name:
        Trojan identifier.
    counter_width:
        Number of counter bits (the paper uses 32).
    compare_value:
        Counter value that fires the trigger.  The default is the
        all-ones value, unreachable during any realistic campaign, which
        reproduces the paper's "never activated" condition.
    payload_luts:
        Dormant payload size.
    increment_round:
        Host round index at which the counter increments (the paper's
        trojan counts encryptions; the increment is modelled at the last
        round of each encryption).
    """

    def __init__(self, name: str, counter_width: int = 32,
                 compare_value: Optional[int] = None,
                 payload_luts: int = 0,
                 increment_round: int = 10,
                 description: str = ""):
        if counter_width < 2:
            raise ValueError("counter_width must be at least 2")
        if increment_round < 1:
            raise ValueError("increment_round must be >= 1")
        if compare_value is None:
            compare_value = (1 << counter_width) - 1
        if not 0 <= compare_value < (1 << counter_width):
            raise ValueError("compare_value out of range for counter width")

        netlist = Netlist(name=f"{name}_netlist")
        inc = netlist.add_input("inc")

        # Ripple-carry increment: carry[0] = inc; sum_i = q_i ^ carry_i;
        # carry_{i+1} = q_i & carry_i.  One XOR LUT and one AND LUT per bit.
        carry = inc
        match_nets: List[str] = []
        for bit in range(counter_width):
            q_net = f"cnt_q{bit}"
            d_net = f"cnt_d{bit}"
            netlist.add_cell(make_lut(f"cnt_sum{bit}", [q_net, carry],
                                      d_net, _XOR2_TABLE))
            if bit < counter_width - 1:
                carry_net = f"cnt_c{bit + 1}"
                netlist.add_cell(make_lut(f"cnt_carry{bit}", [q_net, carry],
                                          carry_net, _AND2_TABLE))
                carry = carry_net
            netlist.add_cell(make_dff(f"cnt_reg{bit}", d_net, q_net))

            # Comparator term: q_i when the target bit is 1, not(q_i) otherwise.
            if (compare_value >> bit) & 1:
                match_nets.append(q_net)
            else:
                inv_net = f"cmp_inv{bit}"
                netlist.add_cell(make_lut(f"cmp_invlut{bit}", [q_net],
                                          inv_net, _INV_TABLE))
                match_nets.append(inv_net)

        synthesize_reduction_tree(netlist, "cmp_", match_nets, TRIGGER_NET,
                                  operation="and")
        netlist.add_output(TRIGGER_NET)
        add_dos_payload(netlist, TRIGGER_NET, payload_luts)
        netlist.validate()

        super().__init__(
            name=name,
            kind=TrojanKind.SEQUENTIAL,
            netlist=netlist,
            tapped_host_nets=[],
            tap_input_nets=[],
            description=description or (
                f"{counter_width}-bit encryption counter, fires at "
                f"{compare_value:#x}; DoS payload"
            ),
        )
        self.counter_width = counter_width
        self.compare_value = compare_value
        self.increment_round = increment_round

    # -- counter state helpers ---------------------------------------------

    def counter_register_values(self, value: int) -> Dict[str, int]:
        """Register (Q net) values for a given counter value."""
        mask = (1 << self.counter_width) - 1
        value &= mask
        return {f"cnt_q{bit}": (value >> bit) & 1
                for bit in range(self.counter_width)}

    def is_triggered_at(self, counter_value: int) -> bool:
        """Whether the comparator fires for ``counter_value``."""
        values = self.netlist.evaluate(
            {"inc": 0}, self.counter_register_values(counter_value)
        )
        return bool(values[TRIGGER_NET])

    # -- HardwareTrojan interface ---------------------------------------------

    def tap_values(self, host_state: Sequence[int]) -> Dict[str, int]:
        """The sequential trojan does not observe the host datapath."""
        return {}

    def round_activity(self, state_before: Sequence[int],
                       state_after: Sequence[int],
                       encryption_index: int = 0,
                       round_index: int = 0) -> TrojanActivity:
        if round_index != self.increment_round:
            return NO_ACTIVITY
        before = self.counter_register_values(encryption_index)
        after = self.counter_register_values(encryption_index + 1)
        return self._netlist_toggle_counts(
            {"inc": 0}, {"inc": 0},
            registers_before=before, registers_after=after,
        )

    def encryption_activity(self, round_states: Sequence[bytes],
                            encryption_index: int = 0) -> List[TrojanActivity]:
        """One encryption's activity from a single compiled-kernel batch.

        Only the increment cycle toggles anything; its before/after
        counter states are evaluated as two rows of one batch instead of
        two interpreted walks.
        """
        num_cycles = max(0, len(round_states) - 1)
        activities = [NO_ACTIVITY] * num_cycles
        if not 1 <= self.increment_round <= num_cycles:
            return activities
        register_nets = [f"cnt_q{bit}" for bit in range(self.counter_width)]
        register_rows = np.array(
            [[self.counter_register_values(value)[net] for net in register_nets]
             for value in (encryption_index, encryption_index + 1)],
            dtype=np.uint8,
        )
        values = self.netlist.compiled().evaluate_batch(
            np.zeros((2, 1), dtype=np.uint8), input_nets=["inc"],
            register_rows=register_rows, register_nets=register_nets,
        )
        activities[self.increment_round - 1] = self._batched_toggle_counts(
            values
        )[0]
        return activities

    def encryption_activity_counts(self, round_states, encryption_indices=None):
        """Counter toggles for a whole batch of encryptions at once.

        Only the increment cycle of each encryption toggles anything and
        the toggle pattern depends solely on the encryption index, so
        every *distinct* counter value appearing in the batch is
        evaluated once through the compiled kernel and the per-
        encryption counts are gathered from that table.  Matches the
        per-encryption reference loop exactly.
        """
        states = np.ascontiguousarray(round_states, dtype=np.uint8)
        if states.ndim != 3:
            raise ValueError(
                f"round_states must be a (N, cycles + 1, 16) tensor, got "
                f"{states.shape}"
            )
        num_encryptions = states.shape[0]
        num_cycles = max(0, states.shape[1] - 1)
        output_toggles = np.zeros((num_encryptions, num_cycles),
                                  dtype=np.int64)
        pin_toggles = np.zeros((num_encryptions, num_cycles), dtype=np.int64)
        if (num_encryptions == 0
                or not 1 <= self.increment_round <= num_cycles):
            return output_toggles, pin_toggles
        if encryption_indices is None:
            indices = np.arange(num_encryptions, dtype=np.int64)
        else:
            indices = np.asarray(list(encryption_indices), dtype=np.int64)
            if indices.size != num_encryptions:
                raise ValueError(
                    f"got {indices.size} encryption indices for "
                    f"{num_encryptions} encryptions"
                )
        counter_values = np.unique(np.concatenate([indices, indices + 1]))
        mask = (1 << self.counter_width) - 1
        register_nets = [f"cnt_q{bit}" for bit in range(self.counter_width)]
        register_rows = (
            ((counter_values[:, None] & mask)
             >> np.arange(self.counter_width)[None, :]) & 1
        ).astype(np.uint8)
        compiled = self.netlist.compiled()
        values = compiled.evaluate_batch(
            np.zeros((counter_values.size, 1), dtype=np.uint8),
            input_nets=["inc"],
            register_rows=register_rows, register_nets=register_nets,
        )
        before = np.searchsorted(counter_values, indices)
        after = np.searchsorted(counter_values, indices + 1)
        toggles = values[after] != values[before]
        output_toggles[:, self.increment_round - 1] = (
            toggles[:, compiled.all_output_columns].sum(axis=1)
        )
        pin_toggles[:, self.increment_round - 1] = (
            toggles[:, compiled.all_pin_columns].sum(axis=1)
        )
        return output_toggles, pin_toggles


def build_sequential_trojan(name: str = "HT_seq", counter_width: int = 32,
                            payload_luts: int = 0) -> SequentialTrojan:
    """Convenience constructor used by the trojan library."""
    return SequentialTrojan(name=name, counter_width=counter_width,
                            payload_luts=payload_luts)
