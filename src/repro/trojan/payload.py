"""Trojan payload construction.

Both trojans of the paper carry a Denial-of-Service payload: once the
trigger fires, the payload corrupts the host operation.  During every
experiment the payload stays dormant — what matters to the detection
methods is only its *presence*: the slices it occupies draw static
current (power-grid coupling for the delay method) and its area
determines the trojan size the headline result is parameterised by.

The payload is modelled as a chain of LUTs gated by the trigger net plus
a small output register: because the trigger never fires, none of these
cells toggles, which reproduces the paper's "HT never activated"
condition while still contributing area and static load.
"""

from __future__ import annotations

from typing import List

from ..netlist.cells import Cell, make_dff, make_lut
from ..netlist.netlist import Netlist

#: Truth table of a 2-input AND realised in a LUT (input0 = address bit 0).
_AND2_TABLE = (0, 0, 0, 1)


def add_dos_payload(netlist: Netlist, trigger_net: str, num_luts: int,
                    prefix: str = "payload_") -> List[Cell]:
    """Append a dormant DoS payload of ``num_luts`` LUTs to ``netlist``.

    The payload is a linear chain: each stage ANDs the previous stage
    with the trigger, so every stage output is 0 as long as the trigger
    is 0.  A final flip-flop represents the kill switch register the DoS
    would assert.

    Returns the created cells.
    """
    if num_luts < 0:
        raise ValueError("num_luts must be non-negative")
    created: List[Cell] = []
    previous = trigger_net
    for index in range(num_luts):
        out_net = f"{prefix}n{index}"
        cell = make_lut(f"{prefix}lut{index}", [previous, trigger_net],
                        out_net, _AND2_TABLE)
        netlist.add_cell(cell)
        created.append(cell)
        previous = out_net
    dff = make_dff(f"{prefix}kill_reg", previous, f"{prefix}kill_q")
    netlist.add_cell(dff)
    created.append(dff)
    if f"{prefix}kill_q" not in netlist.outputs:
        netlist.add_output(f"{prefix}kill_q")
    return created


def payload_luts_for_target_area(target_lut_count: float,
                                 trigger_lut_count: float) -> int:
    """Number of payload LUTs needed to reach a target total LUT count.

    The paper specifies each trojan's size as a fraction of the AES
    area; the trigger size is fixed by its width, so the payload absorbs
    the difference (a real DoS payload — clock gating, reset forcing,
    bus corruption — easily occupies a few dozen LUTs).
    """
    if target_lut_count < 0 or trigger_lut_count < 0:
        raise ValueError("LUT counts must be non-negative")
    return max(0, int(round(target_lut_count - trigger_lut_count)))
