"""Combinational hardware trojans (SubBytes-input triggers).

The paper's combinational trojan family scans the signals at the input
of the SubBytes step and fires when all scanned bits are simultaneously
'1':

* ``HT comb`` / ``HT 1`` — 32 scanned bits (0.19 % of the FPGA slices,
  i.e. 0.5 % of the AES area),
* ``HT 2`` — 64 scanned bits (1.0 % of the AES area),
* ``HT 3`` — 128 scanned bits (1.7 % of the AES area).

The trigger is a wide AND implemented as a LUT reduction tree; the
payload is a dormant DoS chain (:mod:`repro.trojan.payload`).  The
scanned host nets are the state-register outputs of the last-round
circuit (the SubBytes inputs), which is also what makes the trojan
observable: it loads those nets and its trigger tree sees their
switching every round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..crypto.state import BLOCK_BITS, bytes_to_bits, validate_block
from ..netlist.aes_round_circuit import paper_bit_to_byte_bit, state_input_net
from ..netlist.netlist import Netlist
from ..netlist.synth import synthesize_reduction_tree
from .base import HardwareTrojan, TrojanActivity, TrojanKind
from .payload import add_dos_payload

#: Net name carrying the trigger condition inside the trojan netlist.
TRIGGER_NET = "trigger"


def default_scanned_bits(width: int) -> List[int]:
    """Paper-style choice of scanned SubBytes input bits.

    The first ``width`` bits (paper numbering) of the state register are
    scanned; HT3 scans the full 128-bit state.
    """
    if not 1 <= width <= BLOCK_BITS:
        raise ValueError(f"width must be in 1..{BLOCK_BITS}, got {width}")
    return list(range(width))


class CombinationalTrojan(HardwareTrojan):
    """AND-of-N trigger over SubBytes input bits with a dormant DoS payload."""

    def __init__(self, name: str, scanned_bits: Sequence[int],
                 payload_luts: int = 0, description: str = ""):
        scanned_bits = list(scanned_bits)
        if not scanned_bits:
            raise ValueError("a combinational trojan must scan at least one bit")
        if len(set(scanned_bits)) != len(scanned_bits):
            raise ValueError("scanned_bits must be distinct")
        for bit in scanned_bits:
            if not 0 <= bit < BLOCK_BITS:
                raise ValueError(f"scanned bit {bit} out of range(128)")

        netlist = Netlist(name=f"{name}_netlist")
        tap_nets = []
        for index, _bit in enumerate(scanned_bits):
            tap_nets.append(netlist.add_input(f"tap{index}"))
        synthesize_reduction_tree(netlist, "trig_", tap_nets, TRIGGER_NET,
                                  operation="and")
        netlist.add_output(TRIGGER_NET)
        add_dos_payload(netlist, TRIGGER_NET, payload_luts)
        netlist.validate()

        host_nets = []
        for bit in scanned_bits:
            byte, lsb = paper_bit_to_byte_bit(bit)
            host_nets.append(state_input_net(byte, lsb))

        super().__init__(
            name=name,
            kind=TrojanKind.COMBINATIONAL,
            netlist=netlist,
            tapped_host_nets=host_nets,
            tap_input_nets=tap_nets,
            description=description or (
                f"fires when {len(scanned_bits)} SubBytes input bits are all 1; "
                "DoS payload"
            ),
        )
        self.scanned_bits = scanned_bits

    # -- activity ----------------------------------------------------------------

    def tap_values(self, host_state: Sequence[int]) -> Dict[str, int]:
        """Trojan input values for one host state-register content."""
        state = validate_block(host_state)
        bits = bytes_to_bits(state)
        return {
            tap_net: bits[bit]
            for tap_net, bit in zip(self.tap_input_nets, self.scanned_bits)
        }

    def is_triggered(self, host_state: Sequence[int]) -> bool:
        """Whether the trigger condition holds for ``host_state``.

        The experiments never trigger the trojan (the probability for a
        random state is 2^-N); this predicate is used by tests and by the
        payload-safety checks.
        """
        values = self.netlist.evaluate(self.tap_values(host_state))
        return bool(values[TRIGGER_NET])

    def round_activity(self, state_before: Sequence[int],
                       state_after: Sequence[int],
                       encryption_index: int = 0,
                       round_index: int = 0) -> TrojanActivity:
        return self._netlist_toggle_counts(
            self.tap_values(state_before),
            self.tap_values(state_after),
        )

    def encryption_activity(self, round_states: Sequence[bytes],
                            encryption_index: int = 0) -> List[TrojanActivity]:
        """All cycles of one encryption in a single compiled-kernel pass.

        The trigger tree is evaluated once per register state (one row
        per cycle boundary) instead of twice per cycle through the
        interpreted walk; consecutive-row toggle counts reproduce
        :meth:`round_activity` for every cycle exactly.
        """
        if len(round_states) < 2:
            return []
        # Paper-numbered state bits are MSB-first per byte.
        state_bits = np.unpackbits(
            np.array([list(validate_block(state)) for state in round_states],
                     dtype=np.uint8),
            axis=1,
        )
        tap_rows = state_bits[:, self.scanned_bits]
        values = self.netlist.compiled().evaluate_batch(
            tap_rows, input_nets=self.tap_input_nets
        )
        return self._batched_toggle_counts(values)

    def encryption_activity_counts(self, round_states, encryption_indices=None):
        """Whole stimulus batches in one compiled-kernel evaluation.

        Every register state of every encryption becomes one row of a
        single ``evaluate_batch`` call; toggle counts are taken between
        consecutive rows *within* each encryption (the trigger tree is
        purely combinational, so nothing depends on
        ``encryption_indices``).  Matches the per-encryption reference
        loop of :meth:`HardwareTrojan.encryption_activity_counts`
        exactly.
        """
        states = np.ascontiguousarray(round_states, dtype=np.uint8)
        if states.ndim != 3 or states.shape[2] != BLOCK_BITS // 8:
            raise ValueError(
                f"round_states must be (N, cycles + 1, {BLOCK_BITS // 8}), "
                f"got {states.shape}"
            )
        num_encryptions, num_rows = states.shape[0], states.shape[1]
        if encryption_indices is not None:
            num_indices = len(list(encryption_indices))
            if num_indices != num_encryptions:
                raise ValueError(
                    f"got {num_indices} encryption indices for "
                    f"{num_encryptions} encryptions"
                )
        if num_encryptions == 0 or num_rows < 2:
            shape = (num_encryptions, max(0, num_rows - 1))
            return (np.zeros(shape, dtype=np.int64),
                    np.zeros(shape, dtype=np.int64))
        state_bits = np.unpackbits(
            states.reshape(num_encryptions * num_rows, -1), axis=1
        )
        compiled = self.netlist.compiled()
        values = compiled.evaluate_batch(
            state_bits[:, self.scanned_bits], input_nets=self.tap_input_nets
        )
        return compiled.toggle_counts(
            values.reshape(num_encryptions, num_rows, -1)
        )


def build_combinational_trojan(name: str, trigger_width: int,
                               payload_luts: int = 0,
                               scanned_bits: Optional[Sequence[int]] = None
                               ) -> CombinationalTrojan:
    """Convenience constructor used by the trojan library.

    Parameters
    ----------
    name:
        Trojan identifier.
    trigger_width:
        Number of SubBytes input bits scanned by the trigger.
    payload_luts:
        Dormant payload size (see :mod:`repro.trojan.payload`).
    scanned_bits:
        Explicit bit selection; defaults to the first ``trigger_width``
        paper bits.
    """
    bits = list(scanned_bits) if scanned_bits is not None else \
        default_scanned_bits(trigger_width)
    if len(bits) != trigger_width:
        raise ValueError(
            f"scanned_bits has {len(bits)} entries, expected {trigger_width}"
        )
    return CombinationalTrojan(name=name, scanned_bits=bits,
                               payload_luts=payload_luts)
