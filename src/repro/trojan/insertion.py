"""Layout-preserving trojan insertion (the untrusted-foundry step).

Section II-A of the paper describes the insertion methodology: the
foundry receives the tape-out database, keeps the original placement and
routing untouched, and drops the trojan into unused LUTs and slices.
:func:`insert_trojan` reproduces that flow on the modelled design:

1. the golden design's placement is left strictly unchanged,
2. the trojan cells are placed into a free floorplan region (unused
   slices), as close to the AES block as the region allows,
3. every host net the trojan taps receives extra routing delay
   proportional to the stub length from the host logic to the trojan
   slice (the only physical change the paper's infected bitstream makes
   to the genuine nets).

The result, :class:`InfectedDesign`, exposes exactly what the
measurement models need: the extra net delays, the aggressor cell
positions for the power-grid coupling, and the trojan's activity model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fpga.design import GoldenDesign
from ..fpga.floorplan import Region
from ..fpga.placement import Placement, Placer, net_endpoints
from ..fpga.routing import added_tap_delay_ps
from ..fpga.slices import SliceCoord, manhattan_distance
from .base import HardwareTrojan

#: Extra routing delay per slice of stub length towards the trojan, in ps.
TAP_STUB_DELAY_PER_HOP_PS = 10.0


class InsertionError(Exception):
    """Raised when a trojan cannot be inserted into a design."""


@dataclass
class InfectedDesign:
    """A golden design with one inserted hardware trojan.

    The golden design object is shared, not copied: insertion does not
    modify it (matching the frozen placement-and-routing constraint).
    """

    golden: GoldenDesign
    trojan: HardwareTrojan
    trojan_placement: Placement
    tap_extra_delay_ps: Dict[str, float] = field(default_factory=dict)

    # -- geometry -----------------------------------------------------------

    def aggressor_positions(self) -> Dict[str, SliceCoord]:
        """Positions of the trojan cells (the PDN aggressors)."""
        return dict(self.trojan_placement.cell_positions)

    def trojan_slice_count(self) -> int:
        """Number of slices the inserted trojan occupies."""
        return self.trojan_placement.used_slice_count()

    def area_fraction_of_aes(self) -> float:
        """Trojan area as a fraction of the full AES area (paper metric)."""
        return self.golden.area_fraction_of_aes(self.trojan_slice_count())

    def area_fraction_of_device(self) -> float:
        """Trojan area as a fraction of the FPGA (paper's Sec. II metric)."""
        return self.golden.device.slice_fraction(self.trojan_slice_count())

    # -- sanity -----------------------------------------------------------------

    def verify_layout_preserved(self) -> None:
        """Check the insertion invariant: no golden cell moved, no overlap."""
        golden_slices = set(self.golden.placement.slice_map.occupied_slices())
        trojan_slices = set(self.trojan_placement.slice_map.occupied_slices()) \
            - golden_slices
        for cell, coord in self.trojan_placement.cell_positions.items():
            if coord in golden_slices:
                raise InsertionError(
                    f"trojan cell {cell!r} placed in an occupied golden slice {coord}"
                )
        if not trojan_slices and self.trojan_placement.cell_positions:
            raise InsertionError("trojan occupies no slice of its own")


def _closest_free_region(golden: GoldenDesign) -> Region:
    """Free region closest to the AES block (fallback when the AES region is full)."""
    free = golden.floorplan.free_regions
    if not free:
        raise InsertionError("floorplan has no free region to host a trojan")
    aes_center = golden.floorplan.aes_region.center
    return min(
        free,
        key=lambda region: abs(region.center[0] - aes_center[0])
        + abs(region.center[1] - aes_center[1]),
    )


def insert_trojan(golden: GoldenDesign, trojan: HardwareTrojan,
                  region: Optional[Region] = None,
                  stub_delay_per_hop_ps: float = TAP_STUB_DELAY_PER_HOP_PS
                  ) -> InfectedDesign:
    """Insert ``trojan`` into ``golden`` without touching the golden layout.

    Parameters
    ----------
    golden:
        The reference design.
    trojan:
        The trojan to insert (its netlist is placed, its taps connected).
    region:
        Region whose *unoccupied* slices host the trojan.  The default is
        the AES region itself — the paper's FPGA-Editor flow drops the
        trojan into the unused LUTs and slices left inside and around the
        placed design, which keeps it close to the nets it taps and to the
        shared power-grid segments.  Slices already used by the golden
        design are never touched.
    stub_delay_per_hop_ps:
        Routing-delay cost per slice of distance between a tapped host
        net and the trojan cell observing it.
    """
    region = region or golden.floorplan.aes_region
    occupied = sorted(golden.placement.slice_map.occupied_slices())

    placer = Placer(golden.device)
    try:
        trojan_placement = placer.place(trojan.netlist, region, avoid=occupied)
    except Exception:
        # The requested region has no room left: fall back to the nearest
        # explicitly free region of the floorplan.
        fallback = _closest_free_region(golden)
        trojan_placement = placer.place(trojan.netlist, fallback, avoid=occupied)
        region = fallback

    # Extra load on tapped host nets: one added input pin plus a stub route
    # from the host net's endpoints to the trojan cell observing it.
    tap_extra_delay: Dict[str, float] = {}
    for host_net, tap_net in zip(trojan.tapped_host_nets, trojan.tap_input_nets):
        if host_net not in golden.netlist.nets():
            raise InsertionError(
                f"trojan {trojan.name!r} taps unknown host net {host_net!r}"
            )
        observer_cells = [cell for cell in trojan.netlist.loads_of(tap_net)]
        observer_positions = [
            trojan_placement.cell_positions[cell.name]
            for cell in observer_cells
            if cell.name in trojan_placement.cell_positions
        ]
        driver_pos, load_positions = net_endpoints(
            golden.netlist, golden.placement, host_net
        )
        host_positions = [p for p in ([driver_pos] if driver_pos else [])
                          + load_positions if p is not None]
        if observer_positions and host_positions:
            stub = min(
                manhattan_distance(a, b)
                for a in host_positions for b in observer_positions
            )
        else:
            stub = 0
        tap_extra_delay[host_net] = (
            added_tap_delay_ps(extra_loads=max(1, len(observer_positions)))
            + stub * stub_delay_per_hop_ps
        )

    infected = InfectedDesign(
        golden=golden,
        trojan=trojan,
        trojan_placement=trojan_placement,
        tap_extra_delay_ps=tap_extra_delay,
    )
    infected.verify_layout_preserved()
    return infected
