"""Catalog of the paper's hardware trojans.

Five named trojans are used across the paper:

===========  ============  =======================  ====================
Name         Trigger       Size (fraction of AES)   Paper section
===========  ============  =======================  ====================
``HT_comb``  32-bit AND    0.5 %  (0.19 % of FPGA)  II-B, III, IV
``HT_seq``   32-bit ctr    0.94 % (0.36 % of FPGA)  II-B, III
``HT1``      32-bit AND    0.5 %                    V
``HT2``      64-bit AND    1.0 %                    V
``HT3``      128-bit AND   1.7 %                    V
===========  ============  =======================  ====================

The trigger width fixes the trigger-tree size; the dormant DoS payload
absorbs the rest of the reported area so the modelled trojan occupies
the same fraction of the AES as in the paper (the quantity the
false-negative-rate headline is parameterised by).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..fpga.device import FPGADevice, aes_slice_budget, virtex5_lx30
from .base import HardwareTrojan
from .combinational import build_combinational_trojan
from .payload import payload_luts_for_target_area
from .sequential import build_sequential_trojan


@dataclass(frozen=True)
class TrojanSpec:
    """Declarative entry of the trojan catalog."""

    name: str
    kind: str
    trigger_width: int
    target_aes_fraction: float
    paper_reference: str

    def target_lut_count(self, device: FPGADevice) -> float:
        """Total LUT budget implied by the target AES-area fraction."""
        aes_slices = aes_slice_budget(device)
        return self.target_aes_fraction * aes_slices * device.luts_per_slice


#: The paper's trojan catalog, keyed by name.
TROJAN_SPECS: Dict[str, TrojanSpec] = {
    "HT_comb": TrojanSpec("HT_comb", "combinational", 32, 0.005, "Sec. II-B"),
    "HT_seq": TrojanSpec("HT_seq", "sequential", 32, 0.0094, "Sec. II-B"),
    "HT1": TrojanSpec("HT1", "combinational", 32, 0.005, "Sec. V-A"),
    "HT2": TrojanSpec("HT2", "combinational", 64, 0.010, "Sec. V-A"),
    "HT3": TrojanSpec("HT3", "combinational", 128, 0.017, "Sec. V-A"),
}


def available_trojans() -> List[str]:
    """Names of the trojans in the catalog."""
    return list(TROJAN_SPECS)


def build_trojan(name: str, device: Optional[FPGADevice] = None) -> HardwareTrojan:
    """Build a catalog trojan sized for ``device``.

    The trojan's payload is padded so its total LUT count matches the
    area fraction the paper reports for it.
    """
    device = device or virtex5_lx30()
    try:
        spec = TROJAN_SPECS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown trojan {name!r}; available: {', '.join(TROJAN_SPECS)}"
        ) from exc

    target_luts = spec.target_lut_count(device)
    if spec.kind == "combinational":
        bare = build_combinational_trojan(spec.name, spec.trigger_width,
                                          payload_luts=0)
        padding = payload_luts_for_target_area(target_luts, bare.lut_count())
        return build_combinational_trojan(spec.name, spec.trigger_width,
                                          payload_luts=padding)
    if spec.kind == "sequential":
        bare = build_sequential_trojan(spec.name, counter_width=spec.trigger_width,
                                       payload_luts=0)
        padding = payload_luts_for_target_area(target_luts, bare.lut_count())
        return build_sequential_trojan(spec.name, counter_width=spec.trigger_width,
                                       payload_luts=padding)
    raise ValueError(f"unsupported trojan kind {spec.kind!r}")  # pragma: no cover


def build_size_sweep(device: Optional[FPGADevice] = None) -> List[HardwareTrojan]:
    """The HT1/HT2/HT3 size sweep used by the inter-die study (Sec. V)."""
    device = device or virtex5_lx30()
    return [build_trojan(name, device) for name in ("HT1", "HT2", "HT3")]
