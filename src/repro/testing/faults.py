"""Deterministic fault-schedule primitives.

This module is the shared vocabulary of every fault injector in the
repository: the chaos stores of :mod:`repro.testing.chaos` and the
:class:`~repro.store.transport.FlakyTransport` decorator all decide
*when* a scripted fault fires through the same two pieces —

* :class:`OneShotTrigger` — "fire exactly once, after N earlier
  operations completed normally" (the window/kill stores);
* :class:`FaultSchedule` + :class:`FaultClock` — a frozen, picklable
  script mapping operation ordinals to fault kinds, with explicit
  coordinates, half-open windows (a partition is a window of connection
  errors) and seeded per-operation probabilities.  Equal schedules
  replay equal fault sequences: determinism comes from hashing the seed
  and the ordinal, never from wall-clock time or shared RNG state.

Nothing here imports the store or the campaign layers, so both sides of
the dependency graph (``repro.store`` and ``repro.testing``) can use it
without a cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple


class OneShotTrigger:
    """Fires exactly once, after ``skip`` earlier :meth:`should_fire` calls.

    The counting/armed/fired bookkeeping that
    :class:`~repro.testing.chaos.WindowFaultStore` (and historically its
    siblings) each reimplemented, in one place.
    """

    def __init__(self, skip: int = 0):
        self._remaining = int(skip)
        self._fired = False

    @property
    def fired(self) -> bool:
        return self._fired

    def should_fire(self) -> bool:
        """Advance the operation counter; True exactly once."""
        if self._fired:
            return False
        if self._remaining > 0:
            self._remaining -= 1
            return False
        self._fired = True
        return True


@dataclass(frozen=True)
class FaultWindow:
    """Every operation with ordinal in ``[start, stop)`` faults ``kind``.

    ``op`` (when given) restricts the window to one operation name —
    e.g. a window of ``"connect"`` faults over only ``put`` operations
    models an asymmetric partition where downloads still work.
    """

    start: int
    stop: int
    kind: str
    op: Optional[str] = None

    def covers(self, ordinal: int, op: Optional[str]) -> bool:
        if not self.start <= ordinal < self.stop:
            return False
        return self.op is None or self.op == op


@dataclass(frozen=True)
class FaultSchedule:
    """A frozen, picklable script of faults over an operation stream.

    Resolution order per operation: explicit ``at`` coordinate first,
    then the first covering window, then the seeded per-kind rates.
    ``fault_at`` is a pure function of (schedule, ordinal, op) — the
    mutable cursor lives in :class:`FaultClock` — so one schedule value
    can travel to worker processes and every holder replays the same
    faults.
    """

    #: Explicit (ordinal, kind) coordinates.
    at: Tuple[Tuple[int, str], ...] = ()
    #: Half-open fault windows (partitions, brown-outs).
    windows: Tuple[FaultWindow, ...] = ()
    #: Seeded random (kind, probability-per-operation) pairs.
    rates: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", tuple(
            (int(ordinal), str(kind)) for ordinal, kind in self.at))
        object.__setattr__(self, "windows", tuple(self.windows))
        object.__setattr__(self, "rates", tuple(
            (str(kind), float(rate)) for kind, rate in self.rates))

    def fault_at(self, ordinal: int,
                 op: Optional[str] = None) -> Optional[str]:
        """The scripted fault kind at one operation ordinal, if any."""
        for at_ordinal, kind in self.at:
            if at_ordinal == ordinal:
                return kind
        for window in self.windows:
            if window.covers(ordinal, op):
                return window.kind
        for kind, rate in self.rates:
            if rate <= 0.0:
                continue
            # One independent, reproducible draw per (seed, kind,
            # ordinal): no shared RNG state, so schedules replay
            # identically regardless of which operations ran before.
            draw = random.Random(f"{self.seed}:{kind}:{ordinal}").random()
            if draw < rate:
                return kind
        return None

    def horizon(self) -> int:
        """The ordinal after which only ``rates`` faults can still fire."""
        edges = [ordinal + 1 for ordinal, _ in self.at]
        edges += [window.stop for window in self.windows]
        return max(edges, default=0)


class FaultClock:
    """Mutable cursor pairing a :class:`FaultSchedule` with an op counter."""

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self.ordinal = 0

    def next_fault(self, op: Optional[str] = None) -> Optional[str]:
        """The fault for the current operation; advances the counter."""
        fault = self.schedule.fault_at(self.ordinal, op)
        self.ordinal += 1
        return fault
