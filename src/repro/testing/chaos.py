"""Deterministic chaos harness for campaign fault-tolerance tests.

A :class:`FaultPlan` scripts infrastructure faults at exact
``(cell_index, attempt)`` coordinates of a supervised campaign run
(:class:`~repro.campaigns.supervisor.CampaignSupervisor`):

* ``crash``     — the worker process dies with ``os._exit`` right before
  executing the cell, exactly like an OOM kill or a segfaulting native
  extension;
* ``hang``      — the worker sleeps past any sane cell timeout, standing
  in for a deadlocked kernel call;
* ``truncate``  — the worker completes the cell, writes its completion
  record, *tears the object file in half after the manifest entry is
  recorded* (the worst torn-write ordering: the store claims a hit whose
  payload is garbage), then dies — exercising the store's read-time
  digest verification and quarantine path;
* ``interrupt`` — the *supervisor* initiates its SIGINT drain the moment
  the coordinate starts executing, standing in for an operator ^C, so
  interrupt/resume behaviour is testable without real signals.

Coordinates are attempt-aware: attempt numbers start at 1, so a plan
injecting ``(cell 3, attempt 1)`` makes the first try fail and lets the
retry succeed.  The plan is a frozen, picklable value object — it
travels to worker processes with the engine payload, every run of the
same plan injects the same faults, and a chaos run's final merged rows
are required (by the acceptance tests) to be bit-identical to a clean
serial run of the same spec.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..store.artifact_store import ArtifactStore, ManifestEntry


class FaultKind:
    """The fault vocabulary of a :class:`FaultPlan` (string constants)."""

    CRASH = "crash"
    HANG = "hang"
    TRUNCATE = "truncate"
    INTERRUPT = "interrupt"

    ALL = (CRASH, HANG, TRUNCATE, INTERRUPT)


@dataclass(frozen=True)
class FaultInjection:
    """One scripted fault: what happens at one (cell, attempt) coordinate."""

    cell_index: int
    attempt: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: "
                + ", ".join(FaultKind.ALL)
            )
        if self.attempt < 1:
            raise ValueError("attempt numbers start at 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of infrastructure faults for one run."""

    injections: Tuple[FaultInjection, ...] = ()
    #: How long a ``hang`` fault sleeps — far past any test timeout by
    #: default, so a hang is only ever resolved by the supervisor's
    #: cell timeout, never by the sleep finishing first.
    hang_seconds: float = 3600.0
    #: Exit code of ``crash`` faults (distinctive, so test assertions
    #: can tell a scripted crash from an accidental one).
    crash_exit_code: int = 173
    #: Exit code of the post-truncation kill.
    truncate_exit_code: int = 174

    def __post_init__(self) -> None:
        object.__setattr__(self, "injections", tuple(self.injections))
        coordinates = [(i.cell_index, i.attempt) for i in self.injections]
        if len(set(coordinates)) != len(coordinates):
            raise ValueError("one fault per (cell_index, attempt) coordinate")

    def lookup(self, cell_index: int, attempt: int) -> Optional[FaultInjection]:
        """The scripted fault at a coordinate, if any."""
        for injection in self.injections:
            if (injection.cell_index, injection.attempt) == (cell_index,
                                                             attempt):
                return injection
        return None

    def worker_fault(self, cell_index: int,
                     attempt: int) -> Optional[FaultInjection]:
        """The worker-side fault at a coordinate (interrupts are
        supervisor-side and excluded)."""
        injection = self.lookup(cell_index, attempt)
        if injection is not None and injection.kind != FaultKind.INTERRUPT:
            return injection
        return None

    def interrupts_at(self, cell_index: int, attempt: int) -> bool:
        """True when the supervisor should start its drain at this
        coordinate (an ``interrupt`` fault)."""
        injection = self.lookup(cell_index, attempt)
        return injection is not None and injection.kind == FaultKind.INTERRUPT

    def execute_worker_fault(self, injection: FaultInjection) -> None:
        """Carry out a pre-execution worker fault (crash or hang).

        Truncation is a *post*-write fault and is carried out by
        :class:`ChaosStore` instead.
        """
        if injection.kind == FaultKind.CRASH:
            # os._exit skips every atexit/finally handler — the closest
            # a test can get to a SIGKILL'd or OOM-killed worker.
            os._exit(self.crash_exit_code)
        elif injection.kind == FaultKind.HANG:
            time.sleep(self.hang_seconds)


class ChaosStore(ArtifactStore):
    """An :class:`ArtifactStore` that tears its own writes on cue.

    When :meth:`arm`-ed on a coordinate carrying a ``truncate`` fault,
    the *next* write completes normally — manifest entry, digest and
    all — then the object file is truncated to half its size and the
    process dies.  The manifest now advertises a hit whose payload
    cannot match the recorded digest: exactly the torn-write state an
    unsynced filesystem can leave behind after a power cut.
    """

    def __init__(self, root, plan: FaultPlan):
        super().__init__(root)
        self.plan = plan
        self._armed: Optional[FaultInjection] = None

    def arm(self, cell_index: int, attempt: int) -> None:
        """Point the store at the coordinate about to execute."""
        injection = self.plan.lookup(cell_index, attempt)
        if injection is not None and injection.kind == FaultKind.TRUNCATE:
            self._armed = injection
        else:
            self._armed = None

    def _maybe_tear(self, entry: ManifestEntry) -> None:
        if self._armed is None:
            return
        object_path = self.objects_dir / entry.filename
        data = object_path.read_bytes()
        with open(object_path, "wb") as handle:
            handle.write(data[:max(1, len(data) // 2)])
        os._exit(self.plan.truncate_exit_code)

    def put_json(self, key, payload, **kwargs) -> ManifestEntry:
        entry = super().put_json(key, payload, **kwargs)
        self._maybe_tear(entry)
        return entry

    def put_arrays(self, key, arrays, **kwargs) -> ManifestEntry:
        entry = super().put_arrays(key, arrays, **kwargs)
        self._maybe_tear(entry)
        return entry
