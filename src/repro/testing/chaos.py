"""Deterministic chaos harness for campaign fault-tolerance tests.

A :class:`FaultPlan` scripts infrastructure faults at exact
``(cell_index, attempt)`` coordinates of a supervised campaign run
(:class:`~repro.campaigns.supervisor.CampaignSupervisor`):

* ``crash``     — the worker process dies with ``os._exit`` right before
  executing the cell, exactly like an OOM kill or a segfaulting native
  extension;
* ``hang``      — the worker sleeps past any sane cell timeout, standing
  in for a deadlocked kernel call;
* ``truncate``  — the worker completes the cell, writes its completion
  record, *tears the object file in half after the manifest entry is
  recorded* (the worst torn-write ordering: the store claims a hit whose
  payload is garbage), then dies — exercising the store's read-time
  digest verification and quarantine path;
* ``interrupt`` — the *supervisor* initiates its SIGINT drain the moment
  the coordinate starts executing, standing in for an operator ^C, so
  interrupt/resume behaviour is testable without real signals.

Coordinates are attempt-aware: attempt numbers start at 1, so a plan
injecting ``(cell 3, attempt 1)`` makes the first try fail and lets the
retry succeed.  The plan is a frozen, picklable value object — it
travels to worker processes with the engine payload, every run of the
same plan injects the same faults, and a chaos run's final merged rows
are required (by the acceptance tests) to be bit-identical to a clean
serial run of the same spec.

**Multi-process fault plans** extend the vocabulary to races *between*
processes sharing one store directory:

* :class:`SyncFlag` — a file-based event for deterministic cross-process
  sequencing (no inherited ``multiprocessing`` primitives needed, so it
  works between arbitrary spawned/forked/exec'd processes);
* :class:`WindowFaultStore` — an :class:`ArtifactStore` that *stops
  inside the object→manifest window* of a ``put_*``: it raises a
  :class:`SyncFlag` the moment the object file exists without its
  manifest entry, then either waits for a proceed flag (letting the test
  script a concurrent ``gc``/``fsck --repair`` into the exact window) or
  dies with ``os._exit`` (a ``kill -9`` mid-``put``, leaving the orphan
  object plus a lease whose pid is dead).

These are the building blocks of the multi-process stress suite
(``tests/test_store_concurrency.py``): two writers racing one key, a
``gc`` scripted into a live writer's window (the leased orphan must
survive), kill -9 mid-``put`` (lease goes stale, ``fsck --repair``
recovers, a resumed run computes only the missing cells), and the
N-shard-processes-vs-maintenance-loop acceptance test.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from ..store.artifact_store import ArtifactStore, ManifestEntry
from .faults import OneShotTrigger


class FaultKind:
    """The fault vocabulary of a :class:`FaultPlan` (string constants)."""

    CRASH = "crash"
    HANG = "hang"
    TRUNCATE = "truncate"
    INTERRUPT = "interrupt"

    ALL = (CRASH, HANG, TRUNCATE, INTERRUPT)


@dataclass(frozen=True)
class FaultInjection:
    """One scripted fault: what happens at one (cell, attempt) coordinate."""

    cell_index: int
    attempt: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: "
                + ", ".join(FaultKind.ALL)
            )
        if self.attempt < 1:
            raise ValueError("attempt numbers start at 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of infrastructure faults for one run."""

    injections: Tuple[FaultInjection, ...] = ()
    #: How long a ``hang`` fault sleeps — far past any test timeout by
    #: default, so a hang is only ever resolved by the supervisor's
    #: cell timeout, never by the sleep finishing first.
    hang_seconds: float = 3600.0
    #: Exit code of ``crash`` faults (distinctive, so test assertions
    #: can tell a scripted crash from an accidental one).
    crash_exit_code: int = 173
    #: Exit code of the post-truncation kill.
    truncate_exit_code: int = 174

    def __post_init__(self) -> None:
        object.__setattr__(self, "injections", tuple(self.injections))
        coordinates = [(i.cell_index, i.attempt) for i in self.injections]
        if len(set(coordinates)) != len(coordinates):
            raise ValueError("one fault per (cell_index, attempt) coordinate")

    def lookup(self, cell_index: int, attempt: int) -> Optional[FaultInjection]:
        """The scripted fault at a coordinate, if any."""
        for injection in self.injections:
            if (injection.cell_index, injection.attempt) == (cell_index,
                                                             attempt):
                return injection
        return None

    def worker_fault(self, cell_index: int,
                     attempt: int) -> Optional[FaultInjection]:
        """The worker-side fault at a coordinate (interrupts are
        supervisor-side and excluded)."""
        injection = self.lookup(cell_index, attempt)
        if injection is not None and injection.kind != FaultKind.INTERRUPT:
            return injection
        return None

    def interrupts_at(self, cell_index: int, attempt: int) -> bool:
        """True when the supervisor should start its drain at this
        coordinate (an ``interrupt`` fault)."""
        injection = self.lookup(cell_index, attempt)
        return injection is not None and injection.kind == FaultKind.INTERRUPT

    def execute_worker_fault(self, injection: FaultInjection) -> None:
        """Carry out a pre-execution worker fault (crash or hang).

        Truncation is a *post*-write fault and is carried out by
        :class:`ChaosStore` instead.
        """
        if injection.kind == FaultKind.CRASH:
            # os._exit skips every atexit/finally handler — the closest
            # a test can get to a SIGKILL'd or OOM-killed worker.
            os._exit(self.crash_exit_code)
        elif injection.kind == FaultKind.HANG:
            time.sleep(self.hang_seconds)


class FaultHookStore(ArtifactStore):
    """The shared hook dispatch of every fault-injecting store.

    ``ChaosStore`` and ``WindowFaultStore`` used to each re-override the
    write path with their own plumbing; this base funnels both seams
    through one dispatcher so subclasses only state *what* their fault
    does, not where to splice it in:

    * :meth:`_pre_record_hook` fires inside the object→manifest window
      (object bytes on disk, manifest entry not yet recorded);
    * :meth:`_post_put_hook` fires after a ``put_*`` fully completed
      (manifest entry recorded, digest verified state reachable).
    """

    def _pre_record_hook(self, key: str) -> None:
        """Called with the crash-consistency window open."""

    def _post_put_hook(self, entry: ManifestEntry) -> None:
        """Called after a completed ``put_json``/``put_arrays``."""

    def _record(self, key, kind, object_path, meta, digest) -> ManifestEntry:
        self._pre_record_hook(key)
        return super()._record(key, kind, object_path, meta, digest)

    def put_json(self, key, payload, **kwargs) -> ManifestEntry:
        entry = super().put_json(key, payload, **kwargs)
        self._post_put_hook(entry)
        return entry

    def put_arrays(self, key, arrays, **kwargs) -> ManifestEntry:
        entry = super().put_arrays(key, arrays, **kwargs)
        self._post_put_hook(entry)
        return entry


class ChaosStore(FaultHookStore):
    """An :class:`ArtifactStore` that tears its own writes on cue.

    When :meth:`arm`-ed on a coordinate carrying a ``truncate`` fault,
    the *next* write completes normally — manifest entry, digest and
    all — then the object file is truncated to half its size and the
    process dies.  The manifest now advertises a hit whose payload
    cannot match the recorded digest: exactly the torn-write state an
    unsynced filesystem can leave behind after a power cut.
    """

    def __init__(self, root, plan: FaultPlan):
        super().__init__(root)
        self.plan = plan
        self._armed: Optional[FaultInjection] = None

    def arm(self, cell_index: int, attempt: int) -> None:
        """Point the store at the coordinate about to execute."""
        injection = self.plan.lookup(cell_index, attempt)
        if injection is not None and injection.kind == FaultKind.TRUNCATE:
            self._armed = injection
        else:
            self._armed = None

    def _post_put_hook(self, entry: ManifestEntry) -> None:
        if self._armed is None:
            return
        object_path = self.objects_dir / entry.filename
        data = object_path.read_bytes()
        with open(object_path, "wb") as handle:
            handle.write(data[:max(1, len(data) // 2)])
        os._exit(self.plan.truncate_exit_code)


class SyncFlag:
    """A file-based cross-process event.

    ``multiprocessing.Event`` must be inherited at fork/spawn time; a
    flag file only needs a path, so arbitrary processes (including ones
    started via ``subprocess``) can sequence against each other
    deterministically.  Setting is atomic (``O_CREAT`` of a marker
    file); waiting polls with a small sleep.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def set(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.touch()

    def is_set(self) -> bool:
        return self.path.exists()

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass

    def wait(self, timeout_s: float = 30.0,
             poll_s: float = 0.005) -> bool:
        """Block until set (True) or until ``timeout_s`` elapses (False)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.is_set():
                return True
            time.sleep(poll_s)
        return self.is_set()


class WindowFaultStore(FaultHookStore):
    """An :class:`ArtifactStore` that stops inside the object→manifest
    window of its next ``put_*``.

    The store's crash-consistency window — object file on disk, manifest
    entry not yet recorded — is normally microseconds wide.  This store
    holds it open on cue so a test can script a concurrent maintenance
    pass into the exact interleaving that loses work on an unprotected
    store:

    * ``window_flag`` is set the moment the window opens (object
      written, manifest pending);
    * with a ``proceed_flag``, the write then *blocks* until the flag is
      set — the test runs ``gc``/``fsck`` meanwhile, then releases the
      writer, which must still complete into a verified hit;
    * with ``kill_in_window=True``, the process instead dies on the spot
      with ``os._exit`` — a ``kill -9`` mid-``put``, leaving the orphan
      object and a lease whose pid is dead for the stale-lease path.

    Only one window fires: the first write after ``skip_writes`` earlier
    writes have completed normally (so a multi-cell campaign can target
    one specific write mid-run).
    """

    def __init__(self, root, *, window_flag: Union[str, Path],
                 proceed_flag: Optional[Union[str, Path]] = None,
                 kill_in_window: bool = False,
                 skip_writes: int = 0,
                 exit_code: int = 175,
                 wait_timeout_s: float = 30.0,
                 **store_kwargs):
        super().__init__(root, **store_kwargs)
        self.window_flag = SyncFlag(window_flag)
        self.proceed_flag = (SyncFlag(proceed_flag)
                             if proceed_flag is not None else None)
        self.kill_in_window = kill_in_window
        self.exit_code = exit_code
        self.wait_timeout_s = wait_timeout_s
        self._trigger = OneShotTrigger(skip=skip_writes)

    def _pre_record_hook(self, key: str) -> None:
        # By the time this hook runs the object file exists and the
        # manifest entry does not: the window is open.
        if not self._trigger.should_fire():
            return
        self.window_flag.set()
        if self.kill_in_window:
            # Skips atexit/finally — the lease file stays behind
            # with a dead pid, exactly like SIGKILL.
            os._exit(self.exit_code)
        if self.proceed_flag is not None:
            if not self.proceed_flag.wait(self.wait_timeout_s):
                raise TimeoutError(
                    f"window proceed flag {self.proceed_flag.path} was "
                    f"never set within {self.wait_timeout_s} s")
