"""Deterministic fault-injection tooling for the repo's own infrastructure.

The paper injects faults into hardware to characterise trojans; this
package injects faults into the *campaign runner* to characterise its
fault tolerance — same methodology, pointed inward.
"""

from .chaos import (
    ChaosStore,
    FaultHookStore,
    FaultInjection,
    FaultKind,
    FaultPlan,
    SyncFlag,
    WindowFaultStore,
)
from .faults import (
    FaultClock,
    FaultSchedule,
    FaultWindow,
    OneShotTrigger,
)

__all__ = [
    "ChaosStore",
    "FaultClock",
    "FaultHookStore",
    "FaultInjection",
    "FaultKind",
    "FaultPlan",
    "FaultSchedule",
    "FaultWindow",
    "OneShotTrigger",
    "SyncFlag",
    "WindowFaultStore",
]
