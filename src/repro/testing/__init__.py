"""Deterministic fault-injection tooling for the repo's own infrastructure.

The paper injects faults into hardware to characterise trojans; this
package injects faults into the *campaign runner* to characterise its
fault tolerance — same methodology, pointed inward.
"""

from .chaos import (
    ChaosStore,
    FaultInjection,
    FaultKind,
    FaultPlan,
    SyncFlag,
    WindowFaultStore,
)

__all__ = [
    "ChaosStore",
    "FaultInjection",
    "FaultKind",
    "FaultPlan",
    "SyncFlag",
    "WindowFaultStore",
]
