"""Canonical stimuli of the EM campaigns.

The paper fixes one plaintext (and key) for every EM acquisition but
does not disclose it; any fixed value plays that role.  These constants
are the single definition shared by the detection platform, the
experiment drivers and the campaign engine — they must stay equal across
those paths for their traces to be interchangeable, so do not duplicate
them.

Random-plaintext campaigns extend the fixed stimulus with
:func:`random_plaintexts`: a deterministic, seed-addressed plaintext
set whose first entry is (by default) the canonical plaintext, so a
multi-stimulus sweep is always a superset of the paper's scenario.
"""

from __future__ import annotations

from typing import List

import numpy as np

DEFAULT_PLAINTEXT = bytes(range(16))
DEFAULT_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


def random_plaintexts(count: int, seed: int = 0,
                      include_default: bool = True) -> List[bytes]:
    """Deterministic plaintext set for random-stimulus campaigns.

    Returns ``count`` 16-byte plaintexts.  With ``include_default`` the
    first entry is :data:`DEFAULT_PLAINTEXT` and the remaining
    ``count - 1`` are drawn uniformly from ``seed``; otherwise all
    ``count`` are random.  The same ``(count, seed)`` always yields the
    same set, and growing ``count`` extends the set without reshuffling
    the existing entries.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    plaintexts: List[bytes] = [DEFAULT_PLAINTEXT] if include_default else []
    rng = np.random.default_rng(seed)
    while len(plaintexts) < count:
        plaintexts.append(bytes(int(x) for x in rng.integers(0, 256, size=16)))
    return plaintexts


def campaign_stimuli(count: int, seed: int,
                     first: bytes = DEFAULT_PLAINTEXT) -> List[bytes]:
    """The EM stimulus set of a campaign with ``count`` plaintexts.

    ``[first]`` for the paper's fixed-stimulus scenario; otherwise
    ``first`` followed by ``count - 1`` random plaintexts derived
    deterministically from the campaign ``seed``.  This is the single
    derivation shared by :class:`~repro.campaigns.spec.CampaignSpec`
    and :class:`~repro.experiments.config.ExperimentConfig` — the two
    must stay equal for their traces to be comparable, so do not
    duplicate it.
    """
    if count == 1:
        return [first]
    return [first] + random_plaintexts(count - 1, seed=seed + 23,
                                       include_default=False)
