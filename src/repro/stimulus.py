"""Canonical fixed stimulus of the EM campaigns.

The paper fixes one plaintext (and key) for every EM acquisition but
does not disclose it; any fixed value plays that role.  These constants
are the single definition shared by the detection platform, the
experiment drivers and the campaign engine — they must stay equal across
those paths for their traces to be interchangeable, so do not duplicate
them.
"""

from __future__ import annotations

DEFAULT_PLAINTEXT = bytes(range(16))
DEFAULT_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
