"""Persistence of EM traces.

Acquisition campaigns (real or simulated) are saved as ``.npz`` archives
so that detection can be re-run offline without re-acquiring: the
archive stores the sample matrix, the labels, the plaintext of each
trace and the sampling period.

Format history:

* **v1** stored samples/labels/plaintexts/sample periods — and silently
  dropped each trace's ``cycle_sample_offsets``, so a loaded trace lost
  its cycle alignment (the marks the per-round analyses index by).
* **v2** adds the offsets (stored flattened with per-trace lengths, so
  ragged offset lists round-trip too).  v1 archives still load, with
  empty offsets — exactly what v1 writers saved.

``save_traces`` / ``load_traces`` are a lossless pair for v2: samples
keep their dtype, and every :class:`EMTrace` field round-trips.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

import numpy as np

from ..measurement.em_simulator import EMTrace

PathLike = Union[str, Path]

#: Format marker stored inside every archive.
_FORMAT_VERSION = 2

#: Versions ``load_traces`` understands.
_READABLE_VERSIONS = (1, 2)


def traces_to_arrays(traces: Sequence[EMTrace]) -> Dict[str, np.ndarray]:
    """Flatten a trace set into named arrays — every field, losslessly.

    The single EMTrace serialisation codec: trace archives here and the
    artifact payloads of :mod:`repro.store` both use it, so a field
    added to :class:`EMTrace` round-trips (or fails loudly) in one
    place.
    """
    if not traces:
        raise ValueError("cannot serialise an empty trace set")
    lengths = {len(trace) for trace in traces}
    if len(lengths) != 1:
        raise ValueError("all traces must have the same number of samples")
    offsets = [np.asarray(trace.cycle_sample_offsets, dtype=np.int64)
               for trace in traces]
    return {
        "samples": np.vstack([trace.samples for trace in traces]),
        "labels": np.array([trace.label for trace in traces]),
        "plaintexts": np.array([trace.plaintext.hex() for trace in traces]),
        "sample_period_ns": np.array([trace.sample_period_ns
                                      for trace in traces]),
        "cycle_sample_offsets_flat": (np.concatenate(offsets) if offsets
                                      else np.zeros(0, dtype=np.int64)),
        "cycle_sample_offsets_lengths": np.array(
            [entry.size for entry in offsets], dtype=np.int64),
    }


def traces_from_arrays(arrays: Mapping[str, np.ndarray]) -> List[EMTrace]:
    """Inverse of :func:`traces_to_arrays`."""
    matrix = arrays["samples"]
    offsets_flat = arrays["cycle_sample_offsets_flat"]
    boundaries = np.concatenate(
        [[0], np.cumsum(arrays["cycle_sample_offsets_lengths"])]
    )
    traces: List[EMTrace] = []
    for row_index in range(matrix.shape[0]):
        begin = int(boundaries[row_index])
        end = int(boundaries[row_index + 1])
        traces.append(
            EMTrace(
                samples=matrix[row_index].copy(),
                label=str(arrays["labels"][row_index]),
                plaintext=bytes.fromhex(str(arrays["plaintexts"][row_index])),
                sample_period_ns=float(arrays["sample_period_ns"][row_index]),
                cycle_sample_offsets=[int(v)
                                      for v in offsets_flat[begin:end]],
            )
        )
    return traces


def save_traces(path: PathLike, traces: Sequence[EMTrace]) -> Path:
    """Save a set of traces to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = traces_to_arrays(traces)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, format_version=np.array(_FORMAT_VERSION),
                        **arrays)
    return path


def load_traces(path: PathLike) -> List[EMTrace]:
    """Load a trace set previously written by :func:`save_traces`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace file {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported trace file version {version} "
                f"(readable: {_READABLE_VERSIONS})"
            )
        arrays = {name: archive[name] for name in archive.files
                  if name != "format_version"}
    if version < 2:
        # v1 never stored offsets; loaded traces get empty lists,
        # matching what v1 writers threw away.
        arrays["cycle_sample_offsets_flat"] = np.zeros(0, dtype=np.int64)
        arrays["cycle_sample_offsets_lengths"] = np.zeros(
            arrays["samples"].shape[0], dtype=np.int64)
    return traces_from_arrays(arrays)
