"""Persistence of EM traces.

Acquisition campaigns (real or simulated) are saved as ``.npz`` archives
so that detection can be re-run offline without re-acquiring: the
archive stores the sample matrix, the labels, the plaintext of each
trace and the sampling period.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from ..measurement.em_simulator import EMTrace

PathLike = Union[str, Path]

#: Format marker stored inside every archive.
_FORMAT_VERSION = 1


def save_traces(path: PathLike, traces: Sequence[EMTrace]) -> Path:
    """Save a set of traces to ``path`` (``.npz`` appended if missing)."""
    if not traces:
        raise ValueError("cannot save an empty trace set")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    lengths = {len(trace) for trace in traces}
    if len(lengths) != 1:
        raise ValueError("all traces must have the same number of samples")
    matrix = np.vstack([trace.samples for trace in traces])
    labels = np.array([trace.label for trace in traces])
    plaintexts = np.array([trace.plaintext.hex() for trace in traces])
    sample_periods = np.array([trace.sample_period_ns for trace in traces])
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.array(_FORMAT_VERSION),
        samples=matrix,
        labels=labels,
        plaintexts=plaintexts,
        sample_period_ns=sample_periods,
    )
    return path


def load_traces(path: PathLike) -> List[EMTrace]:
    """Load a trace set previously written by :func:`save_traces`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace file {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace file version {version} (expected {_FORMAT_VERSION})"
            )
        matrix = archive["samples"]
        labels = archive["labels"]
        plaintexts = archive["plaintexts"]
        sample_periods = archive["sample_period_ns"]
    traces: List[EMTrace] = []
    for row_index in range(matrix.shape[0]):
        traces.append(
            EMTrace(
                samples=matrix[row_index].copy(),
                label=str(labels[row_index]),
                plaintext=bytes.fromhex(str(plaintexts[row_index])),
                sample_period_ns=float(sample_periods[row_index]),
            )
        )
    return traces
