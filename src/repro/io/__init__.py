"""Persistence helpers for traces and experiment results."""

from .results import load_result, save_result, to_jsonable
from .tracefile import (
    load_traces,
    save_traces,
    traces_from_arrays,
    traces_to_arrays,
)

__all__ = [
    "load_result",
    "save_result",
    "to_jsonable",
    "load_traces",
    "save_traces",
    "traces_from_arrays",
    "traces_to_arrays",
]
