"""Persistence of experiment results.

Experiment drivers return dataclasses holding numpy arrays; this module
turns them into JSON-serialisable dictionaries (and back to plain
dictionaries on load) so campaign outcomes can be archived alongside the
traces and diffed between runs.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Sequence, Union

import numpy as np

PathLike = Union[str, Path]


def to_jsonable(value: Any) -> Any:
    """Convert dataclasses, numpy types and bytes into JSON-friendly values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Fall back to the object's dict or its string representation.
    if hasattr(value, "__dict__"):
        return {key: to_jsonable(item) for key, item in vars(value).items()
                if not key.startswith("_")}
    return str(value)


def save_result(path: PathLike, result: Any) -> Path:
    """Serialise ``result`` (any dataclass/dict tree) to a JSON file."""
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = to_jsonable(result)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def save_summary_csv(path: PathLike,
                     rows: Sequence[Mapping[str, Any]]) -> Path:
    """Write flat summary rows (e.g. one per campaign grid cell) as CSV.

    The column set is the union of the row keys, in first-seen order, so
    heterogeneous rows degrade gracefully instead of raising.
    """
    if not rows:
        raise ValueError("cannot save an empty summary")
    path = Path(path)
    if path.suffix != ".csv":
        path = path.with_suffix(".csv")
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames: list = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: to_jsonable(value)
                             for key, value in row.items()})
    return path


def load_result(path: PathLike) -> Dict[str, Any]:
    """Load a JSON result previously written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"result file {path} does not exist")
    return json.loads(path.read_text())
