"""Glitch-parameter grids and faulted-ciphertext sweep synthesis.

A fault-injection *attack campaign* sweeps the three knobs of the
clock-glitch generator — premature-edge **offset**, glitch pulse
**width** and nominal clock **period** — over a die population and
records the faulted ciphertexts every grid point produces.  The sweep
rides the same machinery as the detection campaigns: per-bit arrival
times from :meth:`~repro.measurement.delay_meter.PathDelayMeter.batch_arrival_times`,
register states from the batched AES kernel, and the whole
(grid x stimulus x bit) population resolved in one vectorised
:meth:`~repro.measurement.fault_injection.SetupViolationFaultModel.faulted_ciphertext_population`
pass.

:class:`GlitchGrid` is the declarative grid; faulted populations are
scored by :func:`fault_coverage` (the campaign engine's detection
metric — an infected die's altered path delays shift which grid points
fault) and fed to the DFA analyzer (:mod:`repro.analysis.dfa`) for key
recovery via :func:`recover_from_sweep`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.dfa import (
    DEFAULT_MIN_EVIDENCE_BITS,
    DFAResult,
    recover_last_round_key,
)
from ..crypto.batch import as_block_matrix
from ..measurement.clock import (
    DEFAULT_FULL_STRENGTH_WIDTH_PS,
    DEFAULT_GLITCH_STEP_PS,
    DEFAULT_MIN_PULSE_WIDTH_PS,
    DEFAULT_NARROW_PULSE_SLOWDOWN,
    GlitchPulse,
    TimingBudget,
)
from ..measurement.fault_injection import SetupViolationFaultModel


@dataclass(frozen=True)
class GlitchGridPoint:
    """One (period, offset, width) point of a glitch grid."""

    index: int
    period_ps: float
    offset_ps: float
    width_ps: float
    effective_period_ps: float


@dataclass(frozen=True)
class GlitchGrid:
    """A (nominal period x glitch offset x pulse width) sweep grid.

    Points are ordered period-major, then offset, then width — the
    fixed ordering every consumer (population tensors, artifact
    payloads, reports) indexes by.  The physical behaviour of one point
    is :class:`~repro.measurement.clock.GlitchPulse`: the pulse maps to
    the *effective capture period* of the attacked round, which the
    setup-violation fault model turns into faulted ciphertext bits.
    """

    offsets_ps: Tuple[float, ...]
    widths_ps: Tuple[float, ...]
    periods_ps: Tuple[float, ...]
    min_pulse_width_ps: float = DEFAULT_MIN_PULSE_WIDTH_PS
    full_strength_width_ps: float = DEFAULT_FULL_STRENGTH_WIDTH_PS
    narrow_pulse_slowdown: float = DEFAULT_NARROW_PULSE_SLOWDOWN

    def __post_init__(self) -> None:
        object.__setattr__(self, "offsets_ps",
                           tuple(float(v) for v in self.offsets_ps))
        object.__setattr__(self, "widths_ps",
                           tuple(float(v) for v in self.widths_ps))
        object.__setattr__(self, "periods_ps",
                           tuple(float(v) for v in self.periods_ps))
        for name in ("offsets_ps", "widths_ps", "periods_ps"):
            values = getattr(self, name)
            if not values:
                raise ValueError(f"{name} must be non-empty")
            if min(values) <= 0:
                raise ValueError(f"{name} must all be positive")

    @property
    def num_points(self) -> int:
        return (len(self.periods_ps) * len(self.offsets_ps)
                * len(self.widths_ps))

    def _pulse(self, offset_ps: float, width_ps: float) -> GlitchPulse:
        return GlitchPulse(
            offset_ps=offset_ps, width_ps=width_ps,
            min_pulse_width_ps=self.min_pulse_width_ps,
            full_strength_width_ps=self.full_strength_width_ps,
            narrow_pulse_slowdown=self.narrow_pulse_slowdown,
        )

    def points(self) -> List[GlitchGridPoint]:
        """The ordered grid points with their effective capture periods."""
        points: List[GlitchGridPoint] = []
        for period, offset, width in itertools.product(
                self.periods_ps, self.offsets_ps, self.widths_ps):
            points.append(GlitchGridPoint(
                index=len(points),
                period_ps=period,
                offset_ps=offset,
                width_ps=width,
                effective_period_ps=self._pulse(offset, width)
                .effective_period_ps(period),
            ))
        return points

    def effective_periods(self) -> np.ndarray:
        """Effective capture period per grid point, shape ``(num_points,)``."""
        return np.array([point.effective_period_ps
                         for point in self.points()])

    @classmethod
    def calibrated(cls, worst_arrival_ps: float, budget: TimingBudget,
                   num_offsets: int = 4,
                   offset_step_ps: float = DEFAULT_GLITCH_STEP_PS,
                   margin_steps: int = 5,
                   deep_fraction: float = 0.35) -> "GlitchGrid":
        """Centre a default grid on a device's worst observed path.

        Mirrors the physical calibration of the delay sweeps
        (:meth:`~repro.measurement.clock.ClockGlitchGenerator.calibrated`):
        the critical period comes from the timing budget and the nominal
        period sits ``margin_steps`` glitch steps safely above it.  The
        offsets span the whole fault-depth range — from one glitch step
        below the critical period (only the slowest paths fault; the
        regime where an infected die separates from a clean one) down to
        ``deep_fraction`` of it (most sensitised paths fault; the regime
        that feeds the DFA analyzer dense fault populations) — and the
        width axis spans filtered / degraded / full-strength pulses.
        """
        if worst_arrival_ps <= 0:
            raise ValueError("worst_arrival_ps must be positive")
        if num_offsets < 1:
            raise ValueError("num_offsets must be >= 1")
        if offset_step_ps <= 0:
            raise ValueError("offset_step_ps must be positive")
        if margin_steps < 1:
            raise ValueError("margin_steps must be >= 1")
        if not 0.0 < deep_fraction < 1.0:
            raise ValueError("deep_fraction must be in (0, 1)")
        critical = budget.required_period_ps(worst_arrival_ps)
        shallowest = critical - offset_step_ps
        deepest = deep_fraction * critical
        if deepest >= shallowest:
            raise ValueError(
                "calibrated offset range is empty; a smaller deep_fraction "
                "or offset step is needed"
            )
        offsets = tuple(np.linspace(deepest, shallowest, num_offsets))
        widths = (
            DEFAULT_MIN_PULSE_WIDTH_PS / 2.0,  # filtered: no faults
            (DEFAULT_MIN_PULSE_WIDTH_PS + DEFAULT_FULL_STRENGTH_WIDTH_PS)
            / 2.0,                             # degraded edge
            DEFAULT_FULL_STRENGTH_WIDTH_PS,    # full-strength capture
        )
        return cls(
            offsets_ps=offsets,
            widths_ps=widths,
            periods_ps=(critical + margin_steps * offset_step_ps,),
        )


def synthesise_faulted_sweep(fault_model: SetupViolationFaultModel,
                             grid: GlitchGrid,
                             correct_ciphertexts: np.ndarray,
                             stale_states: np.ndarray,
                             arrival_ps: np.ndarray,
                             rng: np.random.Generator) -> np.ndarray:
    """Faulted ciphertexts of one device over a whole glitch grid.

    One vectorised pass: the grid's ``(G,)`` effective capture periods
    broadcast against the device's ``(N, 128)`` per-bit arrival times
    and the ``(N, 16)`` correct/stale register states, producing the
    ``(G, N, 16)`` faulted-ciphertext tensor of the sweep (grid-point
    order of :meth:`GlitchGrid.points`).  The rng layout is the fixed
    three-draw stream of
    :meth:`~repro.measurement.fault_injection.SetupViolationFaultModel.faulted_bits_population`,
    whose serial reference pins the per-bit capture law.
    """
    correct = as_block_matrix(correct_ciphertexts, "correct_ciphertexts")
    stale = as_block_matrix(stale_states, "stale_states")
    return fault_model.faulted_ciphertext_population(
        correct, stale, np.asarray(arrival_ps, dtype=float),
        grid.effective_periods()[:, None], rng,
    )


def fault_coverage(correct_ciphertexts: np.ndarray,
                   faulted_ciphertexts: np.ndarray) -> float:
    """Fraction of (grid point, stimulus) captures with >= 1 faulted byte."""
    correct = np.asarray(correct_ciphertexts, dtype=np.uint8)
    faulted = np.asarray(faulted_ciphertexts, dtype=np.uint8)
    return float(np.mean(np.any(faulted != correct, axis=-1)))


def device_fault_coverages(correct_ciphertexts: np.ndarray,
                           faulted_ciphertexts: np.ndarray) -> np.ndarray:
    """Per-device fault coverage of a ``(D, G, N, 16)`` sweep tensor.

    One array pass over the whole population; entry ``d`` equals
    :func:`fault_coverage` of device ``d``'s ``(G, N, 16)`` plane — the
    campaign engine's genuine/infected score populations.
    """
    correct = np.asarray(correct_ciphertexts, dtype=np.uint8)
    faulted = np.asarray(faulted_ciphertexts, dtype=np.uint8)
    if faulted.ndim < 3:
        raise ValueError(
            f"expected a (devices, ..., 16) sweep tensor, got {faulted.shape}"
        )
    any_fault = np.any(faulted != correct, axis=-1)
    return any_fault.reshape(any_fault.shape[0], -1).mean(axis=1)


def recover_from_sweep(correct_ciphertexts: np.ndarray,
                       faulted_ciphertexts: np.ndarray,
                       min_evidence_bits: int = DEFAULT_MIN_EVIDENCE_BITS
                       ) -> DFAResult:
    """Run the DFA analyzer over a whole sweep tensor.

    ``faulted_ciphertexts`` is ``(..., N, 16)`` — any leading axes
    (grid points, dies, both) are flattened into one fault population
    against the matching ``(N, 16)`` correct ciphertexts.  Fault-free
    captures are dropped before scoring: they carry no differential and
    only cost kernel time.
    """
    correct = as_block_matrix(correct_ciphertexts, "correct_ciphertexts")
    faulted = np.asarray(faulted_ciphertexts, dtype=np.uint8)
    if faulted.shape[-2:] != correct.shape:
        raise ValueError(
            f"sweep tensor {faulted.shape} does not end in the correct-"
            f"ciphertext shape {correct.shape}"
        )
    flat_faulted = faulted.reshape(-1, correct.shape[-1])
    flat_correct = np.broadcast_to(
        correct, faulted.shape).reshape(flat_faulted.shape)
    mask_rows = np.any(flat_faulted != flat_correct, axis=-1)
    return recover_last_round_key(flat_correct[mask_rows],
                                  flat_faulted[mask_rows],
                                  min_evidence_bits=min_evidence_bits)
