"""Fault-injection attack campaigns.

The attack side of the paper's platform: glitch-parameter grids swept
over die populations (:mod:`repro.attacks.glitch_grid`), producing
faulted-ciphertext populations that the campaign engine scores as a
detection metric (``fault_coverage``) and the DFA analyzer
(:mod:`repro.analysis.dfa`) turns into recovered last-round key bytes.
"""

from .glitch_grid import (
    GlitchGrid,
    GlitchGridPoint,
    device_fault_coverages,
    fault_coverage,
    recover_from_sweep,
    synthesise_faulted_sweep,
)

__all__ = [
    "GlitchGrid",
    "GlitchGridPoint",
    "device_fault_coverages",
    "fault_coverage",
    "recover_from_sweep",
    "synthesise_faulted_sweep",
]
