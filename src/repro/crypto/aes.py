"""Behavioural AES implementation with per-round state tracing.

The paper's target circuit is an AES-128 block cipher; its measurement
procedures need more than plain ``encrypt``:

* the clock-glitch delay measurement faults the **10th round**, so the
  fault-injection model needs the state *entering* round 10 and the
  round-10 key (see :mod:`repro.measurement.fault_injection`);
* the EM simulator converts the **per-round switching activity**
  (Hamming distance between consecutive round states) into emanation
  amplitude, so it needs the full sequence of round states.

:class:`AES` therefore exposes ``encrypt``, ``decrypt`` and
``encrypt_trace`` which returns an :class:`EncryptionTrace` with every
intermediate state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .gf import gf_mul_02, gf_mul_03, gf_mul_09, gf_mul_0b, gf_mul_0d, gf_mul_0e
from .keyschedule import expand_key, key_length_to_rounds
from .sbox import INV_SBOX, SBOX
from .state import (
    BLOCK_BYTES,
    hamming_distance,
    validate_block,
    validate_key,
    xor_bytes,
)

# Byte index permutation implementing ShiftRows on the flat (column-major)
# 16-byte block: output[i] = input[SHIFT_ROWS_PERM[i]].
SHIFT_ROWS_PERM = (0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11)


def _invert_permutation(perm: Sequence[int]) -> "tuple[int, ...]":
    """Invert a permutation in one linear scan (no quadratic ``.index``)."""
    inverse = [0] * len(perm)
    for position, value in enumerate(perm):
        inverse[value] = position
    return tuple(inverse)


INV_SHIFT_ROWS_PERM = _invert_permutation(SHIFT_ROWS_PERM)


def sub_bytes_block(block: Sequence[int]) -> bytes:
    """SubBytes on a flat 16-byte block."""
    return bytes(SBOX[b] for b in bytes(block))


def inv_sub_bytes_block(block: Sequence[int]) -> bytes:
    """InvSubBytes on a flat 16-byte block."""
    return bytes(INV_SBOX[b] for b in bytes(block))


def shift_rows_block(block: Sequence[int]) -> bytes:
    """ShiftRows on a flat 16-byte block (pure byte permutation)."""
    data = bytes(block)
    return bytes(data[SHIFT_ROWS_PERM[i]] for i in range(BLOCK_BYTES))


def inv_shift_rows_block(block: Sequence[int]) -> bytes:
    """InvShiftRows on a flat 16-byte block."""
    data = bytes(block)
    return bytes(data[INV_SHIFT_ROWS_PERM[i]] for i in range(BLOCK_BYTES))


def mix_columns_block(block: Sequence[int]) -> bytes:
    """MixColumns on a flat 16-byte block (column-major layout)."""
    data = bytes(block)
    out = bytearray(BLOCK_BYTES)
    for col in range(4):
        a0, a1, a2, a3 = data[4 * col : 4 * col + 4]
        out[4 * col + 0] = gf_mul_02(a0) ^ gf_mul_03(a1) ^ a2 ^ a3
        out[4 * col + 1] = a0 ^ gf_mul_02(a1) ^ gf_mul_03(a2) ^ a3
        out[4 * col + 2] = a0 ^ a1 ^ gf_mul_02(a2) ^ gf_mul_03(a3)
        out[4 * col + 3] = gf_mul_03(a0) ^ a1 ^ a2 ^ gf_mul_02(a3)
    return bytes(out)


def inv_mix_columns_block(block: Sequence[int]) -> bytes:
    """InvMixColumns on a flat 16-byte block."""
    data = bytes(block)
    out = bytearray(BLOCK_BYTES)
    for col in range(4):
        a0, a1, a2, a3 = data[4 * col : 4 * col + 4]
        out[4 * col + 0] = gf_mul_0e(a0) ^ gf_mul_0b(a1) ^ gf_mul_0d(a2) ^ gf_mul_09(a3)
        out[4 * col + 1] = gf_mul_09(a0) ^ gf_mul_0e(a1) ^ gf_mul_0b(a2) ^ gf_mul_0d(a3)
        out[4 * col + 2] = gf_mul_0d(a0) ^ gf_mul_09(a1) ^ gf_mul_0e(a2) ^ gf_mul_0b(a3)
        out[4 * col + 3] = gf_mul_0b(a0) ^ gf_mul_0d(a1) ^ gf_mul_09(a2) ^ gf_mul_0e(a3)
    return bytes(out)


@dataclass
class RoundRecord:
    """Intermediate values of one AES round.

    ``state_in`` is the register content at the start of the round,
    ``state_out`` the register content latched at its end.  For the
    final round ``after_mix_columns`` equals ``after_shift_rows`` since
    MixColumns is skipped.
    """

    round_index: int
    state_in: bytes
    after_sub_bytes: bytes
    after_shift_rows: bytes
    after_mix_columns: bytes
    round_key: bytes
    state_out: bytes

    @property
    def switching_activity(self) -> int:
        """Hamming distance between the round's input and output registers.

        This is the classic register-transfer switching-activity proxy
        used by the EM simulator: every register bit that toggles draws
        current on the clock edge.
        """
        return hamming_distance(self.state_in, self.state_out)


@dataclass
class EncryptionTrace:
    """Full record of one AES encryption.

    Attributes
    ----------
    plaintext, key, ciphertext:
        The obvious values.
    initial_state:
        State after the initial AddRoundKey (round 0).
    rounds:
        One :class:`RoundRecord` per round 1..Nr.
    """

    plaintext: bytes
    key: bytes
    ciphertext: bytes
    initial_state: bytes
    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def round(self, round_index: int) -> RoundRecord:
        """Return the record for 1-based ``round_index``."""
        if not 1 <= round_index <= len(self.rounds):
            raise ValueError(
                f"round_index must be in 1..{len(self.rounds)}, got {round_index}"
            )
        return self.rounds[round_index - 1]

    @property
    def last_round(self) -> RoundRecord:
        return self.rounds[-1]

    def switching_activities(self) -> List[int]:
        """Per-round register switching activity, including round 0.

        Element 0 is the Hamming distance between the plaintext and the
        state after the initial AddRoundKey; element ``r`` is the
        activity of round ``r``.
        """
        activities = [hamming_distance(self.plaintext, self.initial_state)]
        activities.extend(record.switching_activity for record in self.rounds)
        return activities


class AES:
    """AES block cipher (128/192/256-bit keys) with tracing support.

    Parameters
    ----------
    key:
        The cipher key (16, 24 or 32 bytes).
    """

    def __init__(self, key: Sequence[int]):
        self.key = validate_key(key)
        self.num_rounds = key_length_to_rounds(len(self.key))
        self.round_keys = expand_key(self.key)

    # -- public API -----------------------------------------------------

    def encrypt(self, plaintext: Sequence[int]) -> bytes:
        """Encrypt one 16-byte block.

        Fast path: runs the round loop directly, without allocating the
        per-round :class:`RoundRecord` objects of :meth:`encrypt_trace`
        (callers that need the intermediate states use the trace API).
        """
        state = validate_block(plaintext, "plaintext")
        state = xor_bytes(state, self.round_keys[0])
        for round_index in range(1, self.num_rounds + 1):
            state = shift_rows_block(sub_bytes_block(state))
            if round_index < self.num_rounds:
                state = mix_columns_block(state)
            state = xor_bytes(state, self.round_keys[round_index])
        return state

    def decrypt(self, ciphertext: Sequence[int]) -> bytes:
        """Decrypt one 16-byte block."""
        state = validate_block(ciphertext, "ciphertext")
        state = xor_bytes(state, self.round_keys[self.num_rounds])
        for round_index in range(self.num_rounds - 1, 0, -1):
            state = inv_shift_rows_block(state)
            state = inv_sub_bytes_block(state)
            state = xor_bytes(state, self.round_keys[round_index])
            state = inv_mix_columns_block(state)
        state = inv_shift_rows_block(state)
        state = inv_sub_bytes_block(state)
        state = xor_bytes(state, self.round_keys[0])
        return state

    def encrypt_trace(self, plaintext: Sequence[int]) -> EncryptionTrace:
        """Encrypt one block and record every intermediate state."""
        plaintext = validate_block(plaintext, "plaintext")
        state = xor_bytes(plaintext, self.round_keys[0])
        trace = EncryptionTrace(
            plaintext=plaintext,
            key=self.key,
            ciphertext=b"",
            initial_state=state,
        )
        for round_index in range(1, self.num_rounds + 1):
            state_in = state
            after_sub = sub_bytes_block(state_in)
            after_shift = shift_rows_block(after_sub)
            if round_index < self.num_rounds:
                after_mix = mix_columns_block(after_shift)
            else:
                after_mix = after_shift
            state = xor_bytes(after_mix, self.round_keys[round_index])
            trace.rounds.append(
                RoundRecord(
                    round_index=round_index,
                    state_in=state_in,
                    after_sub_bytes=after_sub,
                    after_shift_rows=after_shift,
                    after_mix_columns=after_mix,
                    round_key=self.round_keys[round_index],
                    state_out=state,
                )
            )
        trace.ciphertext = state
        return trace

    # -- helpers used by the measurement substrate -----------------------

    def last_round_input(self, plaintext: Sequence[int]) -> bytes:
        """Register content entering the final round for ``plaintext``."""
        return self.encrypt_trace(plaintext).last_round.state_in

    def last_round_key(self) -> bytes:
        """The final round key."""
        return self.round_keys[self.num_rounds]


def encrypt_block(key: Sequence[int], plaintext: Sequence[int]) -> bytes:
    """One-shot AES encryption of a single block."""
    return AES(key).encrypt(plaintext)


def decrypt_block(key: Sequence[int], ciphertext: Sequence[int]) -> bytes:
    """One-shot AES decryption of a single block."""
    return AES(key).decrypt(ciphertext)
