"""Byte/bit/state manipulation helpers shared across the library.

AES-128 operates on a 16-byte state viewed as a 4x4 column-major matrix.
The measurement and detection code, however, mostly reasons about the
state as a flat vector of 128 *bits* (the paper's Fig. 3 X-axis is a bit
number in [1, 128]).  This module centralises the conversions so that
the bit numbering is consistent everywhere:

* bytes are numbered 0..15 in the order they appear on the AES input
  (i.e. FIPS-197 ``in[0..15]``, column-major state),
* bit ``i`` of the 128-bit vector is bit ``7 - (i % 8)``... no — we use
  the simple convention that bit index ``i`` (0-based) corresponds to
  byte ``i // 8`` and bit ``7 - (i % 8)`` within that byte, i.e. the
  most-significant bit of byte 0 is bit 0.  The paper plots bits 1..128;
  our APIs are 0-based and the experiment drivers add 1 when labelling.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

BLOCK_BYTES = 16
BLOCK_BITS = 128


def validate_block(data: Sequence[int], name: str = "block") -> bytes:
    """Validate and normalise a 16-byte block to ``bytes``."""
    block = bytes(data)
    if len(block) != BLOCK_BYTES:
        raise ValueError(f"{name} must be {BLOCK_BYTES} bytes, got {len(block)}")
    return block


def validate_key(data: Sequence[int], name: str = "key") -> bytes:
    """Validate an AES key (128, 192 or 256 bits)."""
    key = bytes(data)
    if len(key) not in (16, 24, 32):
        raise ValueError(
            f"{name} must be 16, 24 or 32 bytes, got {len(key)}"
        )
    return key


def bytes_to_bits(data: Sequence[int]) -> List[int]:
    """Expand bytes into a flat list of bits, MSB of byte 0 first."""
    bits: List[int] = []
    for byte in bytes(data):
        for position in range(7, -1, -1):
            bits.append((byte >> position) & 1)
    return bits


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack a flat bit list (MSB-first per byte) back into bytes."""
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count must be a multiple of 8, got {len(bits)}")
    out = bytearray()
    for offset in range(0, len(bits), 8):
        byte = 0
        for bit in bits[offset : offset + 8]:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit}")
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


def bit_of_block(block: Sequence[int], bit_index: int) -> int:
    """Return bit ``bit_index`` (0-based, MSB-first) of a 16-byte block."""
    data = validate_block(block)
    if not 0 <= bit_index < BLOCK_BITS:
        raise ValueError(f"bit_index must be in range(128), got {bit_index}")
    byte = data[bit_index // 8]
    return (byte >> (7 - (bit_index % 8))) & 1


def xor_bytes(a: Sequence[int], b: Sequence[int]) -> bytes:
    """XOR two equal-length byte strings."""
    aa, bb = bytes(a), bytes(b)
    if len(aa) != len(bb):
        raise ValueError(f"length mismatch: {len(aa)} vs {len(bb)}")
    return bytes(x ^ y for x, y in zip(aa, bb))


def hamming_weight(data: Sequence[int]) -> int:
    """Number of set bits across all bytes of ``data``."""
    return sum(bin(b).count("1") for b in bytes(data))


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of differing bits between two equal-length byte strings."""
    return hamming_weight(xor_bytes(a, b))


def differing_bits(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Indices (0-based, MSB-first) of bits that differ between ``a`` and ``b``."""
    aa, bb = bytes(a), bytes(b)
    if len(aa) != len(bb):
        raise ValueError(f"length mismatch: {len(aa)} vs {len(bb)}")
    bits_a = bytes_to_bits(aa)
    bits_b = bytes_to_bits(bb)
    return [i for i, (x, y) in enumerate(zip(bits_a, bits_b)) if x != y]


def bytes_to_state(block: Sequence[int]) -> List[List[int]]:
    """Convert a 16-byte block into the 4x4 column-major AES state matrix.

    ``state[row][col] = block[row + 4*col]`` per FIPS-197.
    """
    data = validate_block(block)
    return [[data[row + 4 * col] for col in range(4)] for row in range(4)]


def state_to_bytes(state: Sequence[Sequence[int]]) -> bytes:
    """Convert a 4x4 state matrix back into a 16-byte block."""
    if len(state) != 4 or any(len(row) != 4 for row in state):
        raise ValueError("state must be a 4x4 matrix")
    out = bytearray(BLOCK_BYTES)
    for row in range(4):
        for col in range(4):
            out[row + 4 * col] = state[row][col]
    return bytes(out)


def blocks_equal(a: Sequence[int], b: Sequence[int]) -> bool:
    """Compare two blocks for equality after normalisation to bytes."""
    return bytes(a) == bytes(b)


def random_block(rng) -> bytes:
    """Draw a uniformly random 16-byte block from a numpy Generator."""
    return bytes(int(x) for x in rng.integers(0, 256, size=BLOCK_BYTES))


def random_key(rng, length: int = 16) -> bytes:
    """Draw a uniformly random AES key of ``length`` bytes."""
    if length not in (16, 24, 32):
        raise ValueError(f"key length must be 16, 24 or 32, got {length}")
    return bytes(int(x) for x in rng.integers(0, 256, size=length))


def chunked(data: Sequence[int], size: int) -> Iterable[bytes]:
    """Yield consecutive ``size``-byte chunks of ``data``."""
    data = bytes(data)
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for offset in range(0, len(data), size):
        yield data[offset : offset + size]
