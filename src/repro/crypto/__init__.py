"""Cryptographic substrate: AES-128/192/256 with round tracing.

The AES block cipher is the paper's target circuit.  This subpackage
provides a behavioural implementation used as the functional reference
for the gate-level last-round circuit, as the source of per-round
switching activity for the EM simulator, and as the cipher whose round
10 is attacked by the clock-glitch delay meter.
"""

from .aes import (
    AES,
    EncryptionTrace,
    RoundRecord,
    decrypt_block,
    encrypt_block,
    inv_mix_columns_block,
    inv_shift_rows_block,
    inv_sub_bytes_block,
    mix_columns_block,
    shift_rows_block,
    sub_bytes_block,
)
from .batch import (
    BatchedAES,
    as_block_matrix,
    encrypt_round_states,
    expand_keys,
    mix_columns_batch,
    switching_activity_counts,
)
from .gf import gf_inv, gf_mul, gf_pow, xtime
from .keyschedule import expand_key, last_round_key, round_key
from .sbox import INV_SBOX, SBOX, inv_sub_byte, sub_byte
from .state import (
    BLOCK_BITS,
    BLOCK_BYTES,
    bit_of_block,
    bits_to_bytes,
    bytes_to_bits,
    differing_bits,
    hamming_distance,
    hamming_weight,
    random_block,
    random_key,
    xor_bytes,
)

__all__ = [
    "AES",
    "BatchedAES",
    "EncryptionTrace",
    "RoundRecord",
    "as_block_matrix",
    "encrypt_round_states",
    "expand_keys",
    "mix_columns_batch",
    "switching_activity_counts",
    "encrypt_block",
    "decrypt_block",
    "sub_bytes_block",
    "inv_sub_bytes_block",
    "shift_rows_block",
    "inv_shift_rows_block",
    "mix_columns_block",
    "inv_mix_columns_block",
    "gf_mul",
    "gf_inv",
    "gf_pow",
    "xtime",
    "expand_key",
    "last_round_key",
    "round_key",
    "SBOX",
    "INV_SBOX",
    "sub_byte",
    "inv_sub_byte",
    "BLOCK_BITS",
    "BLOCK_BYTES",
    "bit_of_block",
    "bits_to_bytes",
    "bytes_to_bits",
    "differing_bits",
    "hamming_distance",
    "hamming_weight",
    "random_block",
    "random_key",
    "xor_bytes",
]
