"""The AES S-box and its inverse, generated from first principles.

The forward S-box is the composition of the multiplicative inverse in
GF(2^8) (with 0 mapped to 0) and the fixed affine transformation over
GF(2).  Generating the table rather than hard-coding it lets the
test-suite cross-check both this module and the gate-level S-box
netlists in :mod:`repro.netlist.sbox_circuit` against an independent
construction.

Known-answer values (``SBOX[0x00] == 0x63``, ``SBOX[0x53] == 0xED`` ...)
are asserted in the tests against the FIPS-197 specification.
"""

from __future__ import annotations

from typing import List, Sequence

from .gf import gf_inv

#: Constant added by the affine transformation.
AFFINE_CONSTANT = 0x63


def _affine_transform(byte: int) -> int:
    """Apply the AES affine transformation to one byte.

    Each output bit i is ``b[i] ^ b[(i+4)%8] ^ b[(i+5)%8] ^ b[(i+6)%8]
    ^ b[(i+7)%8] ^ c[i]`` where ``c = 0x63``.
    """
    result = 0
    for i in range(8):
        bit = (
            (byte >> i)
            ^ (byte >> ((i + 4) % 8))
            ^ (byte >> ((i + 5) % 8))
            ^ (byte >> ((i + 6) % 8))
            ^ (byte >> ((i + 7) % 8))
            ^ (AFFINE_CONSTANT >> i)
        ) & 1
        result |= bit << i
    return result


def _build_sbox() -> List[int]:
    return [_affine_transform(gf_inv(x)) for x in range(256)]


def _invert_table(table: Sequence[int]) -> List[int]:
    inverse = [0] * 256
    for index, value in enumerate(table):
        inverse[value] = index
    return inverse


#: Forward S-box (SubBytes), as a 256-entry list.
SBOX: List[int] = _build_sbox()

#: Inverse S-box (InvSubBytes).
INV_SBOX: List[int] = _invert_table(SBOX)


def sub_byte(byte: int) -> int:
    """Forward S-box lookup for a single byte."""
    if not 0 <= byte < 256:
        raise ValueError(f"byte must be in range(256), got {byte}")
    return SBOX[byte]


def inv_sub_byte(byte: int) -> int:
    """Inverse S-box lookup for a single byte."""
    if not 0 <= byte < 256:
        raise ValueError(f"byte must be in range(256), got {byte}")
    return INV_SBOX[byte]


def sub_bytes(data: Sequence[int]) -> List[int]:
    """Apply the forward S-box to every byte of ``data``."""
    return [sub_byte(b) for b in data]


def inv_sub_bytes(data: Sequence[int]) -> List[int]:
    """Apply the inverse S-box to every byte of ``data``."""
    return [inv_sub_byte(b) for b in data]


def sbox_output_bit(input_byte: int, bit: int) -> int:
    """Return output bit ``bit`` (0 = LSB) of ``SBOX[input_byte]``.

    Used by the truth-table driven LUT synthesis of the S-box circuit.
    """
    if not 0 <= bit < 8:
        raise ValueError(f"bit index must be in range(8), got {bit}")
    return (sub_byte(input_byte) >> bit) & 1
