"""Arithmetic in GF(2^8) as used by the AES block cipher.

AES works in the finite field GF(2^8) with the reduction polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B).  This module provides the small set
of field operations the cipher, the key schedule and the S-box
construction need: multiplication, exponentiation, multiplicative
inverse and the ``xtime`` doubling primitive used by MixColumns.

Everything here is pure Python on ``int`` values in ``range(256)``;
no table is assumed, so the S-box in :mod:`repro.crypto.sbox` can be
generated (and therefore cross-checked) from first principles.
"""

from __future__ import annotations

from typing import List

#: The AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
AES_POLY = 0x11B

#: Field size.
FIELD_SIZE = 256


def _check_byte(value: int, name: str = "value") -> int:
    if not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < FIELD_SIZE:
        raise ValueError(f"{name} must be in range(256), got {value}")
    return value


def xtime(value: int) -> int:
    """Multiply ``value`` by ``x`` (i.e. 0x02) in GF(2^8).

    This is the primitive operation from which MixColumns multiplication
    is usually built in hardware (a shift and a conditional XOR with the
    reduction polynomial).
    """
    _check_byte(value)
    value <<= 1
    if value & 0x100:
        value ^= AES_POLY
    return value & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) (carry-less, reduced mod 0x11B)."""
    _check_byte(a, "a")
    _check_byte(b, "b")
    result = 0
    x = a
    y = b
    while y:
        if y & 1:
            result ^= x
        x = xtime(x)
        y >>= 1
    return result


def gf_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to ``exponent`` in GF(2^8) by square-and-multiply."""
    _check_byte(a, "a")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1
    base = a
    e = exponent
    while e:
        if e & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        e >>= 1
    return result


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8); by convention ``gf_inv(0) == 0``.

    AES defines the S-box on the *extended* inverse where 0 maps to 0, so
    that convention is used here as well.  For non-zero ``a`` the inverse
    is ``a^(2^8 - 2) = a^254`` by Fermat's little theorem for finite
    fields.
    """
    _check_byte(a, "a")
    if a == 0:
        return 0
    return gf_pow(a, 254)


def gf_mul_02(a: int) -> int:
    """Multiplication by 0x02 (alias of :func:`xtime`), used by MixColumns."""
    return xtime(a)


def gf_mul_03(a: int) -> int:
    """Multiplication by 0x03 = 0x02 + 0x01, used by MixColumns."""
    return xtime(a) ^ a


def gf_mul_09(a: int) -> int:
    """Multiplication by 0x09, used by InvMixColumns."""
    return gf_mul(a, 0x09)


def gf_mul_0b(a: int) -> int:
    """Multiplication by 0x0B, used by InvMixColumns."""
    return gf_mul(a, 0x0B)


def gf_mul_0d(a: int) -> int:
    """Multiplication by 0x0D, used by InvMixColumns."""
    return gf_mul(a, 0x0D)


def gf_mul_0e(a: int) -> int:
    """Multiplication by 0x0E, used by InvMixColumns."""
    return gf_mul(a, 0x0E)


def build_log_tables() -> "tuple[List[int], List[int]]":
    """Build (log, antilog) tables over the generator 0x03.

    0x03 is a generator of the multiplicative group of GF(2^8); the
    tables are occasionally handy for fast multiplication in analysis
    code and serve as an independent cross-check of :func:`gf_mul` in the
    test-suite.

    Returns
    -------
    (log, alog)
        ``alog[i] = 3^i`` for ``i in range(255)`` (extended to 510 entries
        for convenience) and ``log[alog[i]] = i``.  ``log[0]`` is set to 0
        and must not be used.
    """
    alog = [1] * 510
    log = [0] * 256
    value = 1
    for i in range(255):
        alog[i] = value
        log[value] = i
        value = gf_mul(value, 0x03)
    for i in range(255, 510):
        alog[i] = alog[i - 255]
    log[1] = 0
    return log, alog
