"""Vectorised AES kernel: whole stimulus batches in NumPy array passes.

The scalar :class:`~repro.crypto.aes.AES` walks one block at a time over
``bytes`` objects — perfect as an executable specification, far too slow
for campaigns that sweep hundreds of random plaintexts underneath every
(die, trojan, metric) cell.  This module encrypts an ``(N, 16)`` uint8
matrix of plaintexts in **one NumPy pass per round**:

* SubBytes is a single S-box LUT gather over the whole state matrix;
* ShiftRows is a column permutation (fancy index with the same
  ``SHIFT_ROWS_PERM`` the scalar cipher uses);
* MixColumns works on the ``(N, 4, 4)`` column-major view through the
  GF(2^8) multiplication tables ``{02, 03}`` (XOR of LUT gathers);
* the key schedule is expanded once per key (optionally once per *row*,
  for campaigns whose stimuli carry their own keys) and broadcast.

The kernel also returns the quantities the measurement substrate feeds
on: the full register-state tensor ``(N, Nr + 2, 16)`` — plaintext,
state after the initial AddRoundKey, then one row per round — and the
per-round switching activities via a packed popcount LUT.

Everything here is **bit-identical** to the scalar cipher (the LUTs are
generated from the same first-principles GF arithmetic, and XOR/gather
have no rounding), which stays the serial reference the equivalence
tests compare against — the same contract as
:meth:`~repro.measurement.em_simulator.EMSimulator.acquire_batch` and
the compiled netlist kernel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .aes import SHIFT_ROWS_PERM
from .gf import gf_mul_02, gf_mul_03
from .keyschedule import expand_key, key_length_to_rounds
from .sbox import SBOX
from .state import BLOCK_BYTES, validate_key

#: Forward S-box as a gatherable uint8 LUT.
SBOX_TABLE = np.array(SBOX, dtype=np.uint8)

#: GF(2^8) multiplication-by-0x02/0x03 LUTs (MixColumns).
MUL2_TABLE = np.array([gf_mul_02(x) for x in range(256)], dtype=np.uint8)
MUL3_TABLE = np.array([gf_mul_03(x) for x in range(256)], dtype=np.uint8)

#: ShiftRows as a gather index over the flat column-major 16-byte block.
SHIFT_ROWS_INDEX = np.array(SHIFT_ROWS_PERM, dtype=np.intp)

#: Per-byte popcount LUT (switching-activity counting).
POPCOUNT_TABLE = np.array([bin(x).count("1") for x in range(256)],
                          dtype=np.uint8)

#: Anything accepted as a batch of blocks: an ``(N, 16)`` array or a
#: sequence of 16-byte blocks.
BlockBatch = Union[np.ndarray, Sequence[Sequence[int]]]


def as_block_matrix(blocks: BlockBatch, name: str = "blocks") -> np.ndarray:
    """Normalise a batch of 16-byte blocks to an ``(N, 16)`` uint8 matrix."""
    if isinstance(blocks, np.ndarray):
        matrix = np.ascontiguousarray(blocks, dtype=np.uint8)
    else:
        matrix = np.array([list(bytes(block)) for block in blocks],
                          dtype=np.uint8)
        if matrix.size == 0:
            matrix = matrix.reshape(0, BLOCK_BYTES)
    if matrix.ndim != 2 or matrix.shape[1] != BLOCK_BYTES:
        raise ValueError(
            f"{name} must be (N, {BLOCK_BYTES}), got {matrix.shape}"
        )
    return matrix


def expand_keys(keys: Union[Sequence[int], Sequence[Sequence[int]]]
                ) -> np.ndarray:
    """Round keys for one key or one key per row.

    ``keys`` is either a single AES key (16/24/32 bytes) or a sequence of
    keys of one common length.  Returns an ``(M, Nr + 1, 16)`` uint8
    tensor (``M = 1`` for a single key) ready to broadcast over a
    plaintext batch.
    """
    if isinstance(keys, (bytes, bytearray)) or (
            len(keys) > 0 and isinstance(keys[0], (int, np.integer))):
        key_list = [validate_key(keys)]
    else:
        key_list = [validate_key(key) for key in keys]
        if not key_list:
            raise ValueError("at least one key is required")
    lengths = {len(key) for key in key_list}
    if len(lengths) != 1:
        raise ValueError(
            f"all keys of a batch must share one length, got {sorted(lengths)}"
        )
    return np.array(
        [[list(round_key) for round_key in expand_key(key)]
         for key in key_list],
        dtype=np.uint8,
    )


def mix_columns_batch(states: np.ndarray) -> np.ndarray:
    """MixColumns over an ``(N, 16)`` column-major state matrix."""
    columns = states.reshape(-1, 4, 4)
    a0 = columns[:, :, 0]
    a1 = columns[:, :, 1]
    a2 = columns[:, :, 2]
    a3 = columns[:, :, 3]
    out = np.empty_like(columns)
    out[:, :, 0] = MUL2_TABLE[a0] ^ MUL3_TABLE[a1] ^ a2 ^ a3
    out[:, :, 1] = a0 ^ MUL2_TABLE[a1] ^ MUL3_TABLE[a2] ^ a3
    out[:, :, 2] = a0 ^ a1 ^ MUL2_TABLE[a2] ^ MUL3_TABLE[a3]
    out[:, :, 3] = MUL3_TABLE[a0] ^ a1 ^ a2 ^ MUL2_TABLE[a3]
    return out.reshape(states.shape)


def encrypt_round_states(plaintexts: BlockBatch,
                         keys: Union[Sequence[int], Sequence[Sequence[int]]]
                         ) -> np.ndarray:
    """Register-state tensor of a whole encryption batch.

    Parameters
    ----------
    plaintexts:
        ``(N, 16)`` matrix (or sequence of 16-byte blocks).
    keys:
        One key shared by every row, or one key per row (all of one
        length; a per-row batch must have exactly ``N`` keys).

    Returns
    -------
    ``(N, Nr + 2, 16)`` uint8 tensor: row 0 is the plaintext (the
    register content at load), row 1 the state after the initial
    AddRoundKey, row ``r + 1`` the register content latched at the end
    of round ``r``.  The ciphertext is the last row.
    """
    plaintexts = as_block_matrix(plaintexts, "plaintexts")
    round_keys = expand_keys(keys)
    return round_states_with_keys(plaintexts, round_keys)


def round_states_with_keys(plaintexts: np.ndarray, round_keys: np.ndarray
                           ) -> np.ndarray:
    """Core round loop over pre-expanded ``(M, Nr + 1, 16)`` round keys."""
    num_blocks = plaintexts.shape[0]
    if round_keys.shape[0] not in (1, num_blocks):
        raise ValueError(
            f"got {round_keys.shape[0]} keys for {num_blocks} plaintexts"
        )
    num_rounds = round_keys.shape[1] - 1
    states = np.empty((num_blocks, num_rounds + 2, BLOCK_BYTES),
                      dtype=np.uint8)
    states[:, 0] = plaintexts
    state = plaintexts ^ round_keys[:, 0]
    states[:, 1] = state
    for round_index in range(1, num_rounds + 1):
        state = SBOX_TABLE[state][:, SHIFT_ROWS_INDEX]
        if round_index < num_rounds:
            state = mix_columns_batch(state)
        state = state ^ round_keys[:, round_index]
        states[:, round_index + 1] = state
    return states


def switching_activity_counts(round_states: np.ndarray) -> np.ndarray:
    """Per-round register switching activity of a round-state tensor.

    ``round_states`` is the ``(N, C + 1, 16)`` tensor of
    :func:`encrypt_round_states`; the result is the ``(N, C)`` int64
    matrix of Hamming distances between consecutive register states —
    column 0 is the load transition (plaintext to initial state), column
    ``r`` the activity of round ``r``, matching
    :meth:`~repro.crypto.aes.EncryptionTrace.switching_activities`.
    """
    if round_states.ndim != 3 or round_states.shape[2] != BLOCK_BYTES:
        raise ValueError(
            f"round_states must be (N, cycles + 1, {BLOCK_BYTES}), got "
            f"{round_states.shape}"
        )
    toggled = round_states[:, 1:] ^ round_states[:, :-1]
    return POPCOUNT_TABLE[toggled].sum(axis=2, dtype=np.int64)


class BatchedAES:
    """AES over plaintext batches, sharing the scalar cipher's key schedule.

    Parameters
    ----------
    key:
        The cipher key (16, 24 or 32 bytes), as for
        :class:`~repro.crypto.aes.AES`.
    """

    def __init__(self, key: Sequence[int]):
        self.key = validate_key(key)
        self.num_rounds = key_length_to_rounds(len(self.key))
        self.round_keys = expand_keys(self.key)

    def round_states(self, plaintexts: BlockBatch) -> np.ndarray:
        """``(N, Nr + 2, 16)`` register-state tensor (see
        :func:`encrypt_round_states`)."""
        return round_states_with_keys(
            as_block_matrix(plaintexts, "plaintexts"), self.round_keys
        )

    def encrypt(self, plaintexts: BlockBatch) -> np.ndarray:
        """Ciphertexts of the batch, shape ``(N, 16)``."""
        return self.round_states(plaintexts)[:, -1]

    def switching_activities(self, plaintexts: BlockBatch) -> np.ndarray:
        """``(N, Nr + 1)`` per-round switching activities of the batch."""
        return switching_activity_counts(self.round_states(plaintexts))


def ciphertext_bytes(states: np.ndarray) -> List[bytes]:
    """The per-row ciphertexts of a round-state tensor, as ``bytes``."""
    return [bytes(row) for row in states[:, -1]]
