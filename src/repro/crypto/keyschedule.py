"""AES key expansion (FIPS-197, Sec. 5.2).

The key schedule is needed in three places:

* the behavioural AES cipher (:mod:`repro.crypto.aes`),
* the last-round gate-level circuit, which consumes the round-10 key,
* differential analysis in the delay meter, which needs to know the
  round-10 key to map faulted ciphertext bits back to round-10 inputs.
"""

from __future__ import annotations

from typing import List, Sequence

from .gf import xtime
from .sbox import SBOX
from .state import validate_key

#: Number of 32-bit words in the state (always 4 for AES).
NB = 4


def _rcon(i: int) -> int:
    """Round constant ``Rcon[i]`` (the x^(i-1) power in GF(2^8))."""
    if i < 1:
        raise ValueError("Rcon index starts at 1")
    value = 1
    for _ in range(i - 1):
        value = xtime(value)
    return value


def _sub_word(word: Sequence[int]) -> List[int]:
    return [SBOX[b] for b in word]


def _rot_word(word: Sequence[int]) -> List[int]:
    return list(word[1:]) + [word[0]]


def key_length_to_rounds(key_length: int) -> int:
    """Number of rounds Nr for a key of ``key_length`` bytes."""
    rounds = {16: 10, 24: 12, 32: 14}.get(key_length)
    if rounds is None:
        raise ValueError(f"unsupported key length {key_length}")
    return rounds


def expand_key(key: Sequence[int]) -> List[bytes]:
    """Expand ``key`` into the list of round keys.

    Returns ``Nr + 1`` round keys of 16 bytes each (round key 0 is the
    cipher key itself for AES-128).
    """
    key = validate_key(key)
    nk = len(key) // 4
    nr = key_length_to_rounds(len(key))
    words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]

    for i in range(nk, NB * (nr + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = _sub_word(_rot_word(temp))
            temp[0] ^= _rcon(i // nk)
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        words.append([a ^ b for a, b in zip(words[i - nk], temp)])

    round_keys: List[bytes] = []
    for round_index in range(nr + 1):
        chunk = words[NB * round_index : NB * (round_index + 1)]
        round_keys.append(bytes(b for word in chunk for b in word))
    return round_keys


def last_round_key(key: Sequence[int]) -> bytes:
    """Convenience accessor for the final round key (round Nr)."""
    return expand_key(key)[-1]


def round_key(key: Sequence[int], round_index: int) -> bytes:
    """Round key for ``round_index`` (0 = initial AddRoundKey)."""
    keys = expand_key(key)
    if not 0 <= round_index < len(keys):
        raise ValueError(
            f"round_index must be in range({len(keys)}), got {round_index}"
        )
    return keys[round_index]
