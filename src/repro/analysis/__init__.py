"""Analysis toolkit: traces, local maxima, Gaussian fits, ROC, DFA, statistics.

The scalar primitives each have a batched, matrix-resident counterpart
in :mod:`repro.analysis.batch` that is bit-identical per row; the
scalars stay the serial references the batch kernel is pinned against.
"""

from .batch import (
    abs_difference_matrix,
    false_negative_rates,
    find_local_maxima_batch,
    fit_gaussians_batch,
    pooled_std_batch,
    sum_of_local_maxima_batch,
)
from .gaussian import (
    GaussianFit,
    fit_gaussian,
    overlap_threshold,
    pooled_std,
    separation,
)
from .local_maxima import (
    find_local_maxima,
    local_maxima_values,
    sum_of_local_maxima,
)
from .dfa import (
    DFAResult,
    FaultLocalisation,
    RecoveredKeyByte,
    dfa_key_scores,
    dfa_key_scores_serial,
    localise_faults,
    recover_last_round_key,
)
from .roc import ROCCurve, roc_curve, roc_curve_serial
from .stats import (
    bootstrap_mean_ci,
    empirical_rate,
    mad,
    normalised_difference,
    robust_zscore,
    welch_t_test,
)
from .traces import (
    abs_difference,
    as_samples,
    difference,
    mean_trace,
    peak_to_peak,
    per_sample_std,
    signal_to_noise_ratio,
    stack_traces,
)

__all__ = [
    "abs_difference_matrix",
    "false_negative_rates",
    "find_local_maxima_batch",
    "fit_gaussians_batch",
    "pooled_std_batch",
    "sum_of_local_maxima_batch",
    "GaussianFit",
    "fit_gaussian",
    "overlap_threshold",
    "pooled_std",
    "separation",
    "find_local_maxima",
    "local_maxima_values",
    "sum_of_local_maxima",
    "DFAResult",
    "FaultLocalisation",
    "RecoveredKeyByte",
    "dfa_key_scores",
    "dfa_key_scores_serial",
    "localise_faults",
    "recover_last_round_key",
    "ROCCurve",
    "roc_curve",
    "roc_curve_serial",
    "bootstrap_mean_ci",
    "empirical_rate",
    "mad",
    "normalised_difference",
    "robust_zscore",
    "welch_t_test",
    "abs_difference",
    "as_samples",
    "difference",
    "mean_trace",
    "peak_to_peak",
    "per_sample_std",
    "signal_to_noise_ratio",
    "stack_traces",
]
