"""Differential fault analysis of glitched last-round ciphertexts.

The clock-glitch fault model
(:mod:`repro.measurement.fault_injection`) violates the setup condition
of the ciphertext register on the attacked round: a violated bit keeps
its *stale* value — the register content entering the last round — or
resolves randomly.  For the last AES round

    ``C[i] = SBOX[S[SHIFT_ROWS_PERM[i]]] ^ K[i]``

(``S`` the round-10 input state, ``K`` the last round key), so a key
guess ``k`` at ciphertext byte ``p`` predicts the stale byte at
register position ``SHIFT_ROWS_PERM[p]`` as ``INV_SBOX[C[p] ^ k]``.

A key guess is scored by how well its *predicted toggle set* — the
bits where the predicted stale byte differs from the correct register
byte — explains each fault's *observed* differential mask.  The two
disagreement kinds carry asymmetric weight:

* a **phantom toggle** (observed faulted bit outside the predicted
  set) is strong evidence against the guess — under the fault model
  only a metastable random resolution (~10% of violated bits) can
  toggle a bit whose stale value matches the correct one;
* a **missed toggle** (predicted toggle never observed) is weak
  evidence — a shallow glitch simply leaves fast bits uncaptured, and
  bits whose flip-flop D input the timing model never exercises
  (NaN arrival) can *never* capture stale, however deep the glitch.

Because the capturable bit set is a fixed property of the device, the
analyzer learns it from the data: missed toggles are only charged on
the **observable set** — bits seen toggling somewhere in the
population — so the true key is never punished for stale-differing
bits the measurement cannot reach.  Symmetric alternatives are
degenerate: scoring phantoms alone (the textbook masked
min-Hamming-weight locator) lets the guess predicting the complement
of the correct byte explain every fault of its stimulus, noise
included, while charging misses everywhere punishes the true key for
every partial capture and hands the minimum to whichever guess
overfits the captured subset.  Minimising the weighted disagreement
over a fault population recovers the last round key byte-by-byte, and
the per-byte fault counts localise which register bytes (and hence
which key bytes) the glitch campaign actually reached.

:func:`dfa_key_scores` evaluates all (faults x 16 positions x 256
guesses) in a few NumPy passes; :func:`dfa_key_scores_serial` is the
bit-identical scalar reference it is tested (and benchmarked, see
``benchmarks/bench_dfa_recover.py``) against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.aes import INV_SHIFT_ROWS_PERM, SHIFT_ROWS_PERM
from ..crypto.batch import POPCOUNT_TABLE, as_block_matrix
from ..crypto.sbox import INV_SBOX
from ..crypto.state import BLOCK_BYTES

#: Inverse S-box as a gatherable uint8 LUT.
INV_SBOX_TABLE = np.array(INV_SBOX, dtype=np.uint8)

#: ShiftRows source index: ciphertext byte ``p`` is computed from
#: register (stale) byte ``SHIFT_ROWS_SOURCE[p]`` of the round input.
SHIFT_ROWS_SOURCE = np.array(SHIFT_ROWS_PERM, dtype=np.intp)

#: Inverse map: a fault observed at register byte ``i`` constrains the
#: last-round key byte at ciphertext position ``KEY_POSITION_OF_BYTE[i]``.
KEY_POSITION_OF_BYTE = np.array(INV_SHIFT_ROWS_PERM, dtype=np.intp)

#: Number of key guesses per byte position.
NUM_GUESSES = 256

#: Score weight of an observed faulted bit the guess cannot produce
#: (only metastable noise explains it — strong evidence against).
PHANTOM_TOGGLE_WEIGHT = 3

#: Score weight of a predicted stale toggle never observed (the bit
#: may simply not have violated timing — weak evidence against).
MISSED_TOGGLE_WEIGHT = 1

#: Fault axis chunk bounding the (F, 16, 256) intermediate to ~64 MB.
_SCORE_CHUNK = 16_384

#: Default evidence floor: a key byte is only reported as recovered
#: when at least this many faulted bits constrain it (a single faulted
#: bit is consistent with half the guesses).
DEFAULT_MIN_EVIDENCE_BITS = 8


def _normalise_fault_pair(correct_ciphertexts, faulted_ciphertexts
                          ) -> Tuple[np.ndarray, np.ndarray]:
    correct = as_block_matrix(correct_ciphertexts, "correct_ciphertexts")
    faulted = as_block_matrix(faulted_ciphertexts, "faulted_ciphertexts")
    if correct.shape != faulted.shape:
        raise ValueError(
            f"correct/faulted shapes disagree: {correct.shape} vs "
            f"{faulted.shape}"
        )
    return correct, faulted


def dfa_key_scores(correct_ciphertexts, faulted_ciphertexts,
                   observable_bits=None) -> np.ndarray:
    """Accumulated weighted disagreement per (position, key guess).

    Parameters
    ----------
    correct_ciphertexts, faulted_ciphertexts:
        ``(F, 16)`` uint8 matrices (or sequences of 16-byte blocks):
        the fault-free ciphertext of each encryption and the ciphertext
        captured under the glitch.  Fault-free rows contribute nothing
        (their differential mask is empty) and are tolerated.
    observable_bits:
        Optional per-register-byte uint8 bit masks (shape ``(16,)`` or
        ``(F, 16)``) restricting where missed toggles are charged —
        bits outside the mask are treated as never capturable.  Default
        ``0xFF`` everywhere (every bit observable).

    Returns
    -------
    ``(16, 256)`` int64 matrix: entry ``[p, k]`` accumulates, over the
    faults that toggled register byte ``SHIFT_ROWS_PERM[p]``,
    ``PHANTOM_TOGGLE_WEIGHT`` per observed faulted bit outside the
    toggle set guess ``k`` predicts plus ``MISSED_TOGGLE_WEIGHT`` per
    predicted *observable* toggle never observed.  The true key byte
    pays only the metastable noise and uncaptured stale bits; a wrong
    guess pays about 4 weighted bits per fault.

    One LUT gather + popcount pass per fault chunk — all 16 positions
    and all 256 guesses at once; bit-identical to
    :func:`dfa_key_scores_serial`.
    """
    correct, faulted = _normalise_fault_pair(correct_ciphertexts,
                                             faulted_ciphertexts)
    if observable_bits is None:
        observable = np.full(correct.shape, 0xFF, dtype=np.uint8)
    else:
        observable = np.broadcast_to(
            np.asarray(observable_bits, dtype=np.uint8), correct.shape)
    guesses = np.arange(NUM_GUESSES, dtype=np.uint8)
    scores = np.zeros((BLOCK_BYTES, NUM_GUESSES), dtype=np.int64)
    for begin in range(0, correct.shape[0], _SCORE_CHUNK):
        chunk_correct = correct[begin:begin + _SCORE_CHUNK]
        chunk_faulted = faulted[begin:begin + _SCORE_CHUNK]
        mask = chunk_correct ^ chunk_faulted  # (F, 16)
        # Predicted stale byte per (fault, position, guess).
        predicted = INV_SBOX_TABLE[
            chunk_correct[:, :, None] ^ guesses[None, None, :]
        ]
        register = chunk_correct[:, SHIFT_ROWS_SOURCE, None]
        observed_mask = mask[:, SHIFT_ROWS_SOURCE, None]
        capturable = observable[begin:begin + _SCORE_CHUNK][
            :, SHIFT_ROWS_SOURCE, None]
        predicted_mask = predicted ^ register
        active = observed_mask != 0
        phantom = POPCOUNT_TABLE[observed_mask & ~predicted_mask]
        missed = POPCOUNT_TABLE[predicted_mask & capturable & ~observed_mask]
        mismatch = (PHANTOM_TOGGLE_WEIGHT * phantom
                    + MISSED_TOGGLE_WEIGHT * missed) * active
        scores += mismatch.sum(axis=0, dtype=np.int64)
    return scores


def dfa_key_scores_serial(correct_ciphertexts, faulted_ciphertexts,
                          observable_bits=None) -> np.ndarray:
    """Scalar reference of :func:`dfa_key_scores`.

    One Python loop per (fault, position, guess) over the plain-list
    ``INV_SBOX`` — the executable specification the vectorised kernel
    must match entry-for-entry, and the baseline of the >= 5x speedup
    gate in ``benchmarks/bench_dfa_recover.py``.
    """
    correct, faulted = _normalise_fault_pair(correct_ciphertexts,
                                             faulted_ciphertexts)
    if observable_bits is None:
        observable = np.full(correct.shape, 0xFF, dtype=np.uint8)
    else:
        observable = np.broadcast_to(
            np.asarray(observable_bits, dtype=np.uint8), correct.shape)
    scores = np.zeros((BLOCK_BYTES, NUM_GUESSES), dtype=np.int64)
    for fault_index in range(correct.shape[0]):
        correct_block = correct[fault_index]
        faulted_block = faulted[fault_index]
        for position in range(BLOCK_BYTES):
            register_byte = SHIFT_ROWS_PERM[position]
            register = int(correct_block[register_byte])
            observed_mask = int(faulted_block[register_byte]) ^ register
            if observed_mask == 0:
                continue
            capturable = int(observable[fault_index, register_byte])
            ciphertext_byte = int(correct_block[position])
            for guess in range(NUM_GUESSES):
                predicted_mask = INV_SBOX[ciphertext_byte ^ guess] ^ register
                scores[position, guess] += (
                    PHANTOM_TOGGLE_WEIGHT * bin(
                        observed_mask & ~predicted_mask & 0xFF).count("1")
                    + MISSED_TOGGLE_WEIGHT * bin(
                        predicted_mask & capturable
                        & ~observed_mask & 0xFF).count("1")
                )
    return scores


@dataclass(frozen=True)
class RecoveredKeyByte:
    """DFA verdict for one last-round key byte position."""

    #: Ciphertext byte position of the key byte (0..15).
    position: int
    #: Register byte whose faults constrain it (``SHIFT_ROWS_PERM[p]``).
    register_byte: int
    #: Recovered value, or None when the evidence is insufficient or
    #: ambiguous.
    value: Optional[int]
    #: Number of (deduplicated) faulted encryptions touching the byte.
    num_faults: int
    #: Total faulted bits constraining the guess (the evidence).
    evidence_bits: int
    #: Distinct stimuli (correct ciphertexts) with faults at the byte.
    num_stimuli: int
    #: Best (minimum) accumulated weighted disagreement score.
    best_score: float
    #: Gap to the runner-up guess (~0 means a tie — not recoverable).
    margin: float

    @property
    def recovered(self) -> bool:
        return self.value is not None


@dataclass
class DFAResult:
    """Last-round key recovery from one faulted-ciphertext population."""

    #: The (16, 256) matrix of :func:`dfa_key_scores` over the
    #: representative captures (deepest fault per stimulus x byte),
    #: missed toggles charged inside the learned observable set.
    scores: np.ndarray
    #: Per-position verdicts, ordered by ciphertext byte position.
    bytes: List[RecoveredKeyByte] = field(default_factory=list)
    #: Distinct faulted encryptions analysed.
    num_faults: int = 0

    def recovered_bytes(self) -> Dict[int, int]:
        """``{position: value}`` of the unambiguously recovered bytes."""
        return {entry.position: entry.value for entry in self.bytes
                if entry.value is not None}

    @property
    def num_recovered(self) -> int:
        return len(self.recovered_bytes())

    def key_byte_coverage(self) -> float:
        """Fraction of the 16 last-round key bytes recovered."""
        return self.num_recovered / BLOCK_BYTES

    def matches(self, last_round_key: Sequence[int]) -> bool:
        """True if every recovered byte agrees with ``last_round_key``."""
        key = bytes(last_round_key)
        if len(key) != BLOCK_BYTES:
            raise ValueError("last_round_key must be 16 bytes")
        return all(key[position] == value
                   for position, value in self.recovered_bytes().items())


#: A fault population must cover at least this many distinct stimuli
#: before a key byte can be reported as recovered.  A single stimulus
#: leaves the verdict resting on one ciphertext's noise realisation; a
#: second stimulus makes the winner corroborate across independent
#: stale states (the wrong guesses it beat are re-drawn per stimulus,
#: the true key is not).
DEFAULT_MIN_STIMULI = 2

#: Minimum winning margin for a recovered byte: the runner-up guess
#: must trail by at least one full phantom-bit penalty, so a single
#: residual noise bit in one representative capture cannot decide the
#: verdict.
DEFAULT_MIN_MARGIN = PHANTOM_TOGGLE_WEIGHT


def recover_last_round_key(correct_ciphertexts, faulted_ciphertexts,
                           min_evidence_bits: int = DEFAULT_MIN_EVIDENCE_BITS,
                           min_stimuli: int = DEFAULT_MIN_STIMULI,
                           min_margin: int = DEFAULT_MIN_MARGIN
                           ) -> DFAResult:
    """Recover last-round key bytes from a faulted-ciphertext population.

    The population is condensed to one **representative capture** per
    (stimulus, register byte): a strict-majority bit vote over the
    *deep cluster* — the faults whose differential mask is within one
    bit of the widest observed for that stimulus and byte.  The
    deepest captures sit closest to the full capturable stale toggle
    set (a glitch grid replays the same stimulus at many depths;
    shallow points are strict subsets that would only reward guesses
    overfitting the captured fragment), and the majority vote filters
    the metastable-resolution noise, whose flips are independent per
    capture while the genuine stale toggles recur in every deep one.
    The union of the representative masks is the device's
    **observable set**, and the representatives are scored with
    :func:`dfa_key_scores` charging missed toggles only inside it —
    the true key is then phantom-free and (up to residual noise)
    miss-free on every stimulus, while a wrong guess pays on the
    representatives of every other stimulus.

    A byte is reported as recovered when its minimum-score guess wins
    by at least ``min_margin``, representative captures from at least
    ``min_stimuli`` distinct stimuli constrain it and at least
    ``min_evidence_bits`` faulted bits back it; otherwise the verdict
    carries ``value=None`` with the evidence counts, so sweep reports
    can show *why* a byte is still open (no faults at its register
    byte vs. a genuine tie).
    """
    correct, faulted = _normalise_fault_pair(correct_ciphertexts,
                                             faulted_ciphertexts)
    if min_evidence_bits < 1:
        raise ValueError("min_evidence_bits must be >= 1")
    if min_stimuli < 1:
        raise ValueError("min_stimuli must be >= 1")
    if min_margin < 1:
        raise ValueError("min_margin must be >= 1")
    if correct.shape[0]:
        _, unique_rows = np.unique(np.concatenate([correct, faulted], axis=1),
                                   axis=0, return_index=True)
        correct = correct[np.sort(unique_rows)]
        faulted = faulted[np.sort(unique_rows)]
    mask = correct ^ faulted
    mask_bits = POPCOUNT_TABLE[mask].astype(np.int64)

    # One representative (deepest) capture per (stimulus, register byte).
    if correct.shape[0]:
        stimuli, group_ids = np.unique(correct, axis=0, return_inverse=True)
    else:
        stimuli = correct.reshape(0, BLOCK_BYTES)
        group_ids = np.zeros(0, dtype=np.intp)
    representative = np.zeros_like(stimuli)
    for group in range(stimuli.shape[0]):
        rows = np.flatnonzero(group_ids == group)
        group_mask = mask[rows]
        group_bits = mask_bits[rows]
        deepest = group_bits.max(axis=0, initial=0)
        for byte in range(BLOCK_BYTES):
            if deepest[byte] == 0:
                continue
            cluster = group_mask[group_bits[:, byte] >= deepest[byte] - 1,
                                 byte]
            votes = np.unpackbits(cluster).reshape(-1, 8).sum(axis=0)
            representative[group, byte] = np.packbits(
                votes * 2 > cluster.size)[0]
    observable = (np.bitwise_or.reduce(representative, axis=0)
                  if stimuli.shape[0] else
                  np.zeros(BLOCK_BYTES, dtype=np.uint8))
    scores = dfa_key_scores(stimuli, stimuli ^ representative,
                            observable_bits=observable)
    representative_bits = POPCOUNT_TABLE[representative].astype(np.int64)

    verdicts: List[RecoveredKeyByte] = []
    for position in range(BLOCK_BYTES):
        register_byte = int(SHIFT_ROWS_SOURCE[position])
        evidence = int(representative_bits[:, register_byte].sum())
        num_faults = int(np.count_nonzero(mask[:, register_byte]))
        num_stimuli = int(
            np.count_nonzero(representative[:, register_byte]))
        row = scores[position]
        order = np.argsort(row, kind="stable")
        best = float(row[order[0]])
        margin = float(row[order[1]]) - best
        value: Optional[int] = int(order[0])
        if (evidence < min_evidence_bits or num_stimuli < min_stimuli
                or margin < min_margin):
            value = None
        verdicts.append(RecoveredKeyByte(
            position=position,
            register_byte=register_byte,
            value=value,
            num_faults=num_faults,
            evidence_bits=evidence,
            num_stimuli=num_stimuli,
            best_score=best,
            margin=margin,
        ))
    return DFAResult(scores=scores, bytes=verdicts,
                     num_faults=int(np.count_nonzero(mask.any(axis=1))))


#: Maximum fraction of observed faulted bits the best key guess may
#: leave unexplained for a population to still count as a last-round
#: stale capture.  A genuine last-round fault leaves only the
#: metastable-resolution noise unexplained (~10% of violated bits); a
#: fault in an earlier round diffuses through MixColumns and no guess
#: explains more than about half the faulted bits.
LAST_ROUND_CONSISTENCY_THRESHOLD = 0.25


@dataclass(frozen=True)
class FaultLocalisation:
    """Where a fault population landed, from ciphertext differentials."""

    #: Per-register-byte count of faulted encryptions, shape (16,).
    faults_per_byte: np.ndarray
    #: Fraction of encryptions with at least one faulted bit.
    faulted_fraction: float
    #: True when the population is consistent with a *last-round* stale
    #: capture: at every covered register byte the best key guess
    #: explains all but at most
    #: :data:`LAST_ROUND_CONSISTENCY_THRESHOLD` of the faulted bits.
    last_round_consistent: bool

    def covered_bytes(self) -> List[int]:
        """Register byte positions touched by at least one fault."""
        return [int(i) for i in np.flatnonzero(self.faults_per_byte)]


def localise_faults(correct_ciphertexts, faulted_ciphertexts
                    ) -> FaultLocalisation:
    """Localise the faulted register bytes (and round) of a population.

    The faulted *byte* positions fall straight out of the ciphertext
    differential; the *round* hypothesis is checked per covered byte by
    how well the best last-round key guess explains the observed
    faulted bits.  A setup-violation fault on the last round leaves
    stale (round-input) values, so the winning guess accounts for
    every faulted bit up to the metastable noise rate; a fault in an
    earlier round diffuses through MixColumns and leaves roughly half
    the faulted bits unexplained under *every* guess.
    """
    correct, faulted = _normalise_fault_pair(correct_ciphertexts,
                                             faulted_ciphertexts)
    mask = correct ^ faulted
    faults_per_byte = np.count_nonzero(mask, axis=0).astype(np.int64)
    faulted_rows = mask.any(axis=1)
    scores = dfa_key_scores(correct, faulted)
    consistent = bool(faulted_rows.any())
    for register_byte in np.flatnonzero(faults_per_byte):
        position = int(KEY_POSITION_OF_BYTE[register_byte])
        guess = int(np.argmin(scores[position]))
        predicted = INV_SBOX_TABLE[
            correct[:, position] ^ np.uint8(guess)
        ]
        unexplained = POPCOUNT_TABLE[
            (faulted[:, register_byte] ^ predicted)
            & mask[:, register_byte]
        ].sum()
        evidence = POPCOUNT_TABLE[mask[:, register_byte]].sum()
        if unexplained > LAST_ROUND_CONSISTENCY_THRESHOLD * evidence:
            consistent = False
            break
    total = correct.shape[0]
    return FaultLocalisation(
        faults_per_byte=faults_per_byte,
        faulted_fraction=float(faulted_rows.mean()) if total else 0.0,
        last_round_consistent=consistent,
    )
