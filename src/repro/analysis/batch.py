"""Batched, matrix-resident scoring primitives.

The detection decision of the paper (Sec. V / Eq. (5)) is the sum of
local maxima of ``|trace - golden mean|`` scored per die, fed into
Gaussian fits for the false-negative rate.  After the acquisition side
went tensor-resident (``EMSimulator.acquire_many_batch`` synthesises the
whole ``(plaintexts x dies x samples)`` tensor in one pass), scoring was
the last scalar stage: every campaign cell exploded the tensor into
per-die traces and pushed them one at a time through pure-Python loops.

This module is the batched counterpart: every function operates on a
whole ``(traces x samples)`` matrix (or a ``(populations x scores)``
score matrix) in vectorised NumPy passes.

**Serial-reference contract.**  Each function here is a pure performance
refactor of a scalar reference which stays authoritative:

========================================  =====================================
batched                                   serial reference
========================================  =====================================
:func:`find_local_maxima_batch`           :func:`~repro.analysis.local_maxima.find_local_maxima`
:func:`sum_of_local_maxima_batch`         :func:`~repro.analysis.local_maxima.sum_of_local_maxima`
:func:`abs_difference_matrix`             :func:`~repro.analysis.traces.abs_difference`
:func:`fit_gaussians_batch`               :func:`~repro.analysis.gaussian.fit_gaussian`
:func:`pooled_std_batch`                  :func:`~repro.analysis.gaussian.pooled_std`
:func:`false_negative_rates`              :func:`repro.core.metrics.false_negative_rate`
========================================  =====================================

Outputs must be **bit-identical** to looping the reference over the
rows — including the tie order of equal-height peaks during
min-distance suppression — which is what the equivalence tests in
``tests/test_batch_scoring.py`` pin.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "abs_difference_matrix",
    "find_local_maxima_batch",
    "sum_of_local_maxima_batch",
    "fit_gaussians_batch",
    "pooled_std_batch",
    "false_negative_rates",
]


def abs_difference_matrix(matrix: np.ndarray,
                          reference: Union[Sequence[float], np.ndarray]
                          ) -> np.ndarray:
    """Absolute difference of every row of ``matrix`` against ``reference``.

    Batched :func:`~repro.analysis.traces.abs_difference`: one broadcast
    subtraction covers the whole ``(traces x samples)`` matrix.
    """
    x = np.asarray(matrix, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if x.ndim != 2:
        raise ValueError("matrix must be two-dimensional (traces x samples)")
    if ref.ndim != 1 or ref.size != x.shape[1]:
        raise ValueError(
            f"reference has {ref.size} samples but the matrix rows have "
            f"{x.shape[1]}"
        )
    out = np.subtract(x, ref[None, :])
    np.abs(out, out=out)
    return out


def find_local_maxima_batch(matrix: np.ndarray,
                            min_height: Optional[float] = None,
                            min_distance: int = 1) -> np.ndarray:
    """Strict local maxima of every row of a ``(traces x samples)`` matrix.

    Returns a boolean mask of the same shape; ``mask[i]`` is True exactly
    at the indices :func:`~repro.analysis.local_maxima.find_local_maxima`
    (the serial reference) returns for ``matrix[i]`` — bit-identical,
    including the quicksort tie order of equal-height peaks during the
    greedy min-distance suppression.

    The neighbour comparisons and the ``min_height`` filter are one
    vectorised pass over the whole matrix.  Min-distance suppression
    runs as *iterated window-minimum rounds* over the flattened
    candidate set of all rows at once: in each round, every still-active
    candidate that has the best greedy priority (height descending,
    serial tie order) within ``min_distance - 1`` of its position is
    kept, and every active candidate inside a kept peak's window is
    retired.  A candidate kept this way has nothing stronger left to
    suppress it, and a retired candidate is exactly one the greedy pass
    would have skipped, so the fixed point equals the serial greedy
    result peak-for-peak.
    """
    x = np.asarray(matrix, dtype=float)
    if x.ndim != 2:
        raise ValueError("matrix must be two-dimensional (traces x samples)")
    flat, _ = _local_maxima_flat(x, min_height, min_distance)
    mask = np.zeros(x.size, dtype=bool)
    mask[flat] = True
    return mask.reshape(x.shape)


def _local_maxima_flat(x: np.ndarray, min_height: Optional[float],
                       min_distance: int
                       ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Flat (row-major) indices of every row's kept local maxima.

    The shared core of :func:`find_local_maxima_batch` and
    :func:`sum_of_local_maxima_batch`; ``x`` must already be a 2-D float
    matrix.  Returns ``(flat_indices, peak_values)`` — the values are
    only materialised when the suppression path already gathered them,
    ``None`` otherwise.
    """
    if min_distance < 1:
        raise ValueError("min_distance must be >= 1")
    num_rows, num_samples = x.shape
    if num_rows == 0 or num_samples < 3:
        return np.array([], dtype=np.int64), None
    mask = np.zeros((num_rows, num_samples), dtype=bool)
    mask[:, 1:-1] = (x[:, 1:-1] > x[:, :-2]) & (x[:, 1:-1] >= x[:, 2:])
    if min_height is not None:
        mask &= x >= min_height
    flat = np.flatnonzero(mask.ravel())
    if min_distance == 1 or flat.size <= 1:
        return flat, None

    # Candidate counts fit 32-bit arithmetic in any realistic campaign;
    # the narrower lanes roughly halve the suppression's memory traffic.
    if num_rows * (num_samples + min_distance) < 2**31:
        positions = flat.astype(np.int32, copy=False)
    else:
        positions = flat
    rows = positions // num_samples
    # Composite keys leave a >= min_distance gap between consecutive
    # rows' index ranges, so one sorted array serves every row at once:
    # a suppression window can never straddle a row boundary.  In flat
    # coordinates that is simply ``flat + row * min_distance``.
    keys = positions + rows * min_distance
    if np.all(np.diff(keys) >= min_distance):
        # Every row's peaks are already spaced: greedy keeps them all.
        return flat, None

    values = x.ravel()[flat]
    ranks = _greedy_priority_ranks(values, rows, num_rows, keys.dtype)
    kept = _suppress_by_min_distance(keys, ranks, min_distance)
    return flat[kept], values[kept]


def _greedy_priority_ranks(values: np.ndarray, rows: np.ndarray,
                           num_rows: int, dtype=np.int64) -> np.ndarray:
    """Per-row greedy visiting order of the candidates (0 = first kept).

    Replicates the serial suppression's ``np.argsort(heights)[::-1]``
    per row — same sort kind, same reversal — so equal-height peaks tie
    in exactly the serial order.
    """
    ranks = np.empty(values.size, dtype=dtype)
    starts = np.searchsorted(rows, np.arange(num_rows + 1)).tolist()
    sequence = np.arange(values.size, dtype=dtype)
    for row in range(num_rows):
        begin, end = starts[row], starts[row + 1]
        if end <= begin:
            continue
        order = np.argsort(values[begin:end])[::-1]
        ranks[begin:end][order] = sequence[:end - begin]
    return ranks


def _suppress_by_min_distance(keys: np.ndarray, ranks: np.ndarray,
                              min_distance: int) -> np.ndarray:
    """Greedy min-distance suppression over all rows' candidates at once.

    Iterated window-minimum rounds (see :func:`find_local_maxima_batch`)
    whose fixed point equals the serial greedy pass peak-for-peak.
    Window minima are computed by comparing each candidate against its
    k-th neighbours for growing k while *any* pair at that offset is
    still within the window — the keys are sorted, so once no pair at
    offset k is close enough, no larger offset can be either.  Windows
    hold only a handful of candidates in practice, so each round is a
    few full-array passes instead of per-candidate searches, and the
    active set shrinks geometrically between rounds.
    """
    window = keys.dtype.type(min_distance - 1)
    kept = np.zeros(keys.size, dtype=bool)
    active_keys = keys
    active_ranks = ranks
    # ``None`` marks the identity mapping of the first round, so the
    # full-size ``arange`` and its fancy indexing are never built when
    # one round suffices.
    active_positions: Optional[np.ndarray] = None
    sentinel = np.iinfo(keys.dtype).max
    while active_keys.size:
        if active_keys.size <= 128:
            # Few survivors left: one scalar greedy pass over them costs
            # less than further vectorised rounds.  Greedy on the
            # survivors alone is exact — every retired candidate was
            # inside an already-kept peak's window, and every kept
            # peak's whole window is retired with it.
            _suppress_serial_tail(active_keys.tolist(),
                                  active_ranks, active_positions,
                                  int(window), kept)
            return kept
        window_min = active_ranks.copy()
        pairs_by_offset: list = []
        for offset in range(1, active_keys.size):
            near = (active_keys[offset:] - active_keys[:-offset]) <= window
            near_count = np.count_nonzero(near)
            if not near_count:
                break
            if near_count * 3 < near.size * 2:
                # Sparse offset: touch only the near pairs.  ``left`` is
                # unique (one entry per pair start), so the fancy
                # minimum-scatter is race-free.
                left = np.flatnonzero(near)
                right = left + offset
                pairs_by_offset.append((offset, None, left, right))
                window_min[left] = np.minimum(window_min[left],
                                              active_ranks[right])
                window_min[right] = np.minimum(window_min[right],
                                               active_ranks[left])
            else:
                pairs_by_offset.append((offset, near, None, None))
                np.minimum(window_min[:-offset],
                           np.where(near, active_ranks[offset:], sentinel),
                           out=window_min[:-offset])
                np.minimum(window_min[offset:],
                           np.where(near, active_ranks[:-offset], sentinel),
                           out=window_min[offset:])
        new_kept = active_ranks == window_min
        if active_positions is None:
            kept[new_kept] = True
        else:
            kept[active_positions[new_kept]] = True
        # Retire the kept peaks and every active candidate inside one of
        # their windows; the survivors carry into the next round.
        retired = new_kept.copy()
        for offset, near, left, right in pairs_by_offset:
            if near is None:
                retired[right] |= new_kept[left]
                retired[left] |= new_kept[right]
            else:
                retired[offset:] |= new_kept[:-offset] & near
                retired[:-offset] |= new_kept[offset:] & near
        survivors = ~retired
        active_keys = active_keys[survivors]
        active_ranks = active_ranks[survivors]
        active_positions = (np.flatnonzero(survivors)
                            if active_positions is None
                            else active_positions[survivors])
    return kept


def _suppress_serial_tail(keys_list: list, ranks: np.ndarray,
                          positions: Optional[np.ndarray], window: int,
                          kept: np.ndarray) -> None:
    """Scalar greedy pass over the few remaining active candidates."""
    order = np.argsort(ranks).tolist()
    suppressed = [False] * len(keys_list)
    for position in order:
        if suppressed[position]:
            continue
        kept[position if positions is None else positions[position]] = True
        key = keys_list[position]
        neighbour = position - 1
        while neighbour >= 0 and key - keys_list[neighbour] <= window:
            suppressed[neighbour] = True
            neighbour -= 1
        neighbour = position + 1
        while neighbour < len(keys_list) \
                and keys_list[neighbour] - key <= window:
            suppressed[neighbour] = True
            neighbour += 1


def sum_of_local_maxima_batch(matrix: np.ndarray,
                              min_height: Optional[float] = None,
                              min_distance: int = 1) -> np.ndarray:
    """Per-row sum of local maxima — the paper's metric over a population.

    Batched :func:`~repro.analysis.local_maxima.sum_of_local_maxima`:
    one peak-finding pass over the whole matrix, then one compact sum
    per row.  Each row's sum is computed over the extracted peak values
    exactly as the serial reference does, so the floats are
    bit-identical (summation order included).
    """
    x = np.asarray(matrix, dtype=float)
    if x.ndim != 2:
        raise ValueError("matrix must be two-dimensional (traces x samples)")
    flat, peak_values = _local_maxima_flat(x, min_height, min_distance)
    sums = np.zeros(x.shape[0])
    if flat.size == 0:
        return sums
    # One gather of every kept peak value, then per-row *slice* sums:
    # each slice is exactly the contiguous ``x[indices]`` extraction the
    # scalar reference sums, so the floats (pairwise summation order
    # included) are bit-identical.
    if peak_values is None:
        peak_values = x.ravel()[flat]
    bounds = np.searchsorted(
        flat, np.arange(x.shape[0] + 1) * x.shape[1]).tolist()
    for row in range(x.shape[0]):
        begin, end = bounds[row], bounds[row + 1]
        if end > begin:
            sums[row] = peak_values[begin:end].sum()
    return sums


def fit_gaussians_batch(score_matrix: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise Gaussian fits of a ``(populations x scores)`` matrix.

    Batched :func:`~repro.analysis.gaussian.fit_gaussian`: returns
    ``(means, stds)`` vectors (MLE mean, unbiased std; a single-score
    row fits ``std = 0`` like the scalar reference).
    """
    scores = np.asarray(score_matrix, dtype=float)
    if scores.ndim != 2:
        raise ValueError("score matrix must be two-dimensional")
    if scores.shape[1] == 0:
        raise ValueError("cannot fit a Gaussian to an empty sample")
    means = scores.mean(axis=1)
    if scores.shape[1] == 1:
        stds = np.zeros(scores.shape[0])
    else:
        stds = scores.std(axis=1, ddof=1)
    return means, stds


def pooled_std_batch(reference_scores: Sequence[float],
                     score_matrix: np.ndarray) -> np.ndarray:
    """Pooled std of one reference population against each matrix row.

    Batched :func:`~repro.analysis.gaussian.pooled_std` for the common
    campaign shape: one genuine score vector pooled against every
    trojan's score row at once.
    """
    x = np.asarray(reference_scores, dtype=float)
    y = np.asarray(score_matrix, dtype=float)
    if y.ndim != 2:
        raise ValueError("score matrix must be two-dimensional")
    if x.size < 2 or y.shape[1] < 2:
        raise ValueError("both samples need at least two observations")
    var = ((x.size - 1) * x.var(ddof=1)
           + (y.shape[1] - 1) * y.var(axis=1, ddof=1)) / (
        x.size + y.shape[1] - 2
    )
    return np.sqrt(var)


def false_negative_rates(mu: Union[Sequence[float], np.ndarray],
                         sigma: Union[Sequence[float], np.ndarray]
                         ) -> np.ndarray:
    """Eq. (5) false-negative rates of many (mu, sigma) separations.

    Batched :func:`repro.core.metrics.false_negative_rate`; evaluated
    with the same scalar ``math.erf`` per entry (the vectors here are
    one entry per trojan — tiny), so the rates are bit-identical to the
    serial reference, degenerate ``sigma == 0`` branches included.
    """
    mu_arr, sigma_arr = np.broadcast_arrays(
        np.asarray(mu, dtype=float), np.asarray(sigma, dtype=float)
    )
    if np.any(sigma_arr < 0):
        raise ValueError("sigma must be non-negative")
    rates = np.empty(mu_arr.shape)
    flat_mu = mu_arr.ravel().tolist()
    flat_sigma = sigma_arr.ravel().tolist()
    flat_rates = rates.ravel()
    for index, (mu_value, sigma_value) in enumerate(zip(flat_mu, flat_sigma)):
        if sigma_value == 0:
            flat_rates[index] = 0.0 if mu_value > 0 else 0.5
        else:
            # Plain-float arithmetic, exactly the scalar reference's ops.
            flat_rates[index] = 0.5 - 0.5 * math.erf(
                mu_value / (2.0 * sigma_value * math.sqrt(2.0))
            )
    return rates
