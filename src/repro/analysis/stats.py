"""Statistical helpers shared by the detectors and experiments."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import stats


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's t-test between two samples; returns (statistic, p-value).

    Used as a secondary check that a trojan population's metric really
    differs from the golden population beyond process-variation noise.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ValueError("both samples need at least two observations")
    result = stats.ttest_ind(x, y, equal_var=False)
    return float(result.statistic), float(result.pvalue)


def normalised_difference(a: Sequence[float], b: Sequence[float]) -> float:
    """Cohen's d-like effect size between two samples."""
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ValueError("both samples need at least two observations")
    pooled = math.sqrt((x.var(ddof=1) + y.var(ddof=1)) / 2.0)
    if pooled == 0:
        return float("inf") if x.mean() != y.mean() else 0.0
    return float((y.mean() - x.mean()) / pooled)


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation (robust spread estimate)."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("mad of an empty sample is undefined")
    return float(np.median(np.abs(data - np.median(data))))


def robust_zscore(values: Sequence[float]) -> np.ndarray:
    """Robust z-scores (median/MAD based, with the 1.4826 consistency factor)."""
    data = np.asarray(values, dtype=float)
    spread = mad(data) * 1.4826
    if spread == 0:
        return np.zeros_like(data)
    return (data - np.median(data)) / spread


def empirical_rate(condition: Sequence[bool]) -> float:
    """Fraction of True entries (empirical probability)."""
    flags = np.asarray(condition, dtype=bool)
    if flags.size == 0:
        raise ValueError("empirical_rate of an empty sample is undefined")
    return float(flags.mean())


def bootstrap_mean_ci(values: Sequence[float], confidence: float = 0.95,
                      num_resamples: int = 2000, seed: int = 0
                      ) -> Tuple[float, float]:
    """Bootstrap confidence interval of the mean."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    means = rng.choice(data, size=(num_resamples, data.size), replace=True).mean(axis=1)
    lower = float(np.percentile(means, 100 * (1 - confidence) / 2))
    upper = float(np.percentile(means, 100 * (1 + confidence) / 2))
    return lower, upper
