"""Receiver-operating-characteristic utilities.

The paper reports a single operating point (false negative = false
positive, Eq. 5); the ROC utilities generalise that to the full
trade-off curve, which the ablation benchmarks use to compare the
local-maxima-sum metric against simpler trace distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class ROCCurve:
    """ROC curve of a detector score (higher score = more suspicious)."""

    thresholds: np.ndarray
    false_positive_rates: np.ndarray
    true_positive_rates: np.ndarray

    def auc(self) -> float:
        """Area under the curve (trapezoidal)."""
        # Sort by FPR, breaking ties by TPR, so vertical segments of the
        # step curve are traversed bottom-up and integrate correctly.
        order = np.lexsort((self.true_positive_rates, self.false_positive_rates))
        fpr = self.false_positive_rates[order]
        tpr = self.true_positive_rates[order]
        integrate = getattr(np, "trapezoid", None) or np.trapz
        return float(integrate(tpr, fpr))

    def equal_error_rate(self) -> float:
        """Rate at which the false-positive and false-negative rates cross."""
        fnr = 1.0 - self.true_positive_rates
        gap = np.abs(self.false_positive_rates - fnr)
        index = int(np.argmin(gap))
        return float((self.false_positive_rates[index] + fnr[index]) / 2.0)

    def operating_point(self, max_false_positive_rate: float
                        ) -> Tuple[float, float]:
        """Best (threshold, TPR) with FPR below ``max_false_positive_rate``."""
        eligible = np.flatnonzero(
            self.false_positive_rates <= max_false_positive_rate
        )
        if eligible.size == 0:
            return float(self.thresholds[0]), 0.0
        best = eligible[np.argmax(self.true_positive_rates[eligible])]
        return float(self.thresholds[best]), float(self.true_positive_rates[best])


def roc_curve(genuine_scores: Sequence[float],
              infected_scores: Sequence[float]) -> ROCCurve:
    """Build the ROC curve from genuine (negative) and infected (positive) scores."""
    genuine = np.asarray(genuine_scores, dtype=float)
    infected = np.asarray(infected_scores, dtype=float)
    if genuine.size == 0 or infected.size == 0:
        raise ValueError("both score populations must be non-empty")
    candidates = np.unique(np.concatenate([genuine, infected]))
    thresholds = np.concatenate((
        [candidates[0] - 1.0], candidates, [candidates[-1] + 1.0]
    ))
    fprs: List[float] = []
    tprs: List[float] = []
    for threshold in thresholds:
        fprs.append(float((genuine > threshold).mean()))
        tprs.append(float((infected > threshold).mean()))
    return ROCCurve(
        thresholds=thresholds,
        false_positive_rates=np.array(fprs),
        true_positive_rates=np.array(tprs),
    )
