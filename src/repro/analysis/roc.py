"""Receiver-operating-characteristic utilities.

The paper reports a single operating point (false negative = false
positive, Eq. 5); the ROC utilities generalise that to the full
trade-off curve, which the ablation benchmarks use to compare the
local-maxima-sum metric against simpler trace distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class ROCCurve:
    """ROC curve of a detector score (higher score = more suspicious)."""

    thresholds: np.ndarray
    false_positive_rates: np.ndarray
    true_positive_rates: np.ndarray

    def auc(self) -> float:
        """Area under the curve (trapezoidal)."""
        # Sort by FPR, breaking ties by TPR, so vertical segments of the
        # step curve are traversed bottom-up and integrate correctly.
        order = np.lexsort((self.true_positive_rates, self.false_positive_rates))
        fpr = self.false_positive_rates[order]
        tpr = self.true_positive_rates[order]
        integrate = getattr(np, "trapezoid", None) or np.trapz
        return float(integrate(tpr, fpr))

    def equal_error_rate(self) -> float:
        """Rate at which the false-positive and false-negative rates cross."""
        fnr = 1.0 - self.true_positive_rates
        gap = np.abs(self.false_positive_rates - fnr)
        index = int(np.argmin(gap))
        return float((self.false_positive_rates[index] + fnr[index]) / 2.0)

    def operating_point(self, max_false_positive_rate: float
                        ) -> Tuple[float, float]:
        """Best (threshold, TPR) with FPR below ``max_false_positive_rate``.

        Raises ``ValueError`` when no threshold of the curve meets the
        FPR budget (instead of silently returning the first threshold
        with a 0.0 TPR, which read like a valid — terrible — detector):
        callers that report operating points must be able to tell
        "infeasible budget" from "feasible but useless".
        """
        eligible = np.flatnonzero(
            self.false_positive_rates <= max_false_positive_rate
        )
        if eligible.size == 0:
            raise ValueError(
                f"no threshold achieves a false-positive rate <= "
                f"{max_false_positive_rate} (curve minimum: "
                f"{float(self.false_positive_rates.min())})"
            )
        best = eligible[np.argmax(self.true_positive_rates[eligible])]
        return float(self.thresholds[best]), float(self.true_positive_rates[best])


def _roc_thresholds(genuine: np.ndarray, infected: np.ndarray) -> np.ndarray:
    candidates = np.unique(np.concatenate([genuine, infected]))
    return np.concatenate((
        [candidates[0] - 1.0], candidates, [candidates[-1] + 1.0]
    ))


def roc_curve(genuine_scores: Sequence[float],
              infected_scores: Sequence[float]) -> ROCCurve:
    """Build the ROC curve from genuine (negative) and infected (positive) scores.

    Each rate is an exceedance fraction, computed for *all* thresholds
    at once from one sort per population:
    ``(scores > t).mean() == (n - searchsorted(sorted_scores, t,
    'right')) / n`` — O((N + T) log N) instead of the per-threshold
    O(N·T) scan, bit-identical to :func:`roc_curve_serial` (the mean of
    a boolean mask is an exact small-integer ratio in both cases).
    """
    genuine = np.asarray(genuine_scores, dtype=float)
    infected = np.asarray(infected_scores, dtype=float)
    if genuine.size == 0 or infected.size == 0:
        raise ValueError("both score populations must be non-empty")
    thresholds = _roc_thresholds(genuine, infected)

    def exceedance(scores: np.ndarray) -> np.ndarray:
        ranks = np.searchsorted(np.sort(scores), thresholds, side="right")
        return (scores.size - ranks) / scores.size

    return ROCCurve(
        thresholds=thresholds,
        false_positive_rates=exceedance(genuine),
        true_positive_rates=exceedance(infected),
    )


def roc_curve_serial(genuine_scores: Sequence[float],
                     infected_scores: Sequence[float]) -> ROCCurve:
    """Serial reference of :func:`roc_curve`.

    The original per-threshold scan — one ``(scores > threshold).mean()``
    pass per threshold — kept as the pinned reference the equivalence
    tests compare the sort + ``searchsorted`` curve against.
    """
    genuine = np.asarray(genuine_scores, dtype=float)
    infected = np.asarray(infected_scores, dtype=float)
    if genuine.size == 0 or infected.size == 0:
        raise ValueError("both score populations must be non-empty")
    thresholds = _roc_thresholds(genuine, infected)
    fprs: List[float] = []
    tprs: List[float] = []
    for threshold in thresholds:
        fprs.append(float((genuine > threshold).mean()))
        tprs.append(float((infected > threshold).mean()))
    return ROCCurve(
        thresholds=thresholds,
        false_positive_rates=np.array(fprs),
        true_positive_rates=np.array(tprs),
    )
