"""Local-maxima extraction.

The paper's inter-die detection metric is built on the *local maxima* of
the absolute difference between a measured EM trace and the mean golden
trace: the informative samples are the peaks of the round activity, so
summing the peaks concentrates the trojan's contribution while ignoring
the flat, noise-dominated regions between rounds (Sec. V-B).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def find_local_maxima(signal: Sequence[float], min_height: Optional[float] = None,
                      min_distance: int = 1) -> np.ndarray:
    """Indices of strict local maxima of ``signal``.

    A sample is a local maximum when it is strictly greater than its left
    neighbour and at least as large as its right neighbour (plateaus keep
    their first sample).  End points are never maxima.

    This is the **serial reference** of
    :func:`repro.analysis.batch.find_local_maxima_batch`: the batched
    kernel must reproduce this function's output bit-for-bit on every
    row, including the tie order of equal-height peaks during
    min-distance suppression.

    Parameters
    ----------
    min_height:
        Discard maxima below this value.
    min_distance:
        Enforce a minimum index spacing between returned maxima, keeping
        the highest peak of each cluster.
    """
    x = np.asarray(signal, dtype=float)
    if x.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    if min_distance < 1:
        raise ValueError("min_distance must be >= 1")
    if x.size < 3 or not np.any(x[1:] != x[:-1]):
        # Too short, or flat (e.g. the all-zero difference trace of a
        # same-die self-comparison): no interior sample can be a strict
        # local maximum, so skip the neighbour comparisons entirely.
        return np.array([], dtype=int)

    left = x[1:-1] > x[:-2]
    right = x[1:-1] >= x[2:]
    candidates = np.flatnonzero(left & right) + 1

    if min_height is not None:
        candidates = candidates[x[candidates] >= min_height]
    if candidates.size == 0 or min_distance == 1:
        return candidates
    if candidates.size == 1 or np.all(np.diff(candidates) >= min_distance):
        # Already spaced: the greedy suppression would keep every peak.
        return candidates

    # Greedy keep-highest with spacing constraint.  Visiting candidates
    # in descending height order (the same ordering the original
    # quadratic implementation used) and suppressing the ``candidates``
    # range within ``min_distance`` of every kept peak is equivalent to
    # re-checking each candidate against all kept peaks, but runs in
    # O(K log K): ``candidates`` is ascending, so every suppression
    # window is one precomputed ``searchsorted`` slice — no per-peak
    # bisect and no list round-trips.
    order_positions = np.argsort(x[candidates])[::-1].tolist()
    lows = np.searchsorted(candidates, candidates - (min_distance - 1),
                           side="left")
    highs = np.searchsorted(candidates, candidates + (min_distance - 1),
                            side="right")
    suppressed = np.zeros(candidates.size, dtype=bool)
    kept: List[int] = []
    for position in order_positions:
        if suppressed[position]:
            continue
        kept.append(candidates[position])
        suppressed[lows[position]:highs[position]] = True
    return np.array(sorted(kept), dtype=int)


def sum_of_local_maxima(signal: Sequence[float],
                        min_height: Optional[float] = None,
                        min_distance: int = 1) -> float:
    """Sum of the local-maximum values of ``signal`` (the paper's metric core).

    Serial reference of
    :func:`repro.analysis.batch.sum_of_local_maxima_batch`.
    """
    x = np.asarray(signal, dtype=float)
    if x.size < 3:
        return 0.0
    indices = find_local_maxima(x, min_height=min_height,
                                min_distance=min_distance)
    if indices.size == 0:
        return 0.0
    return float(x[indices].sum())


def local_maxima_values(signal: Sequence[float],
                        min_height: Optional[float] = None,
                        min_distance: int = 1) -> np.ndarray:
    """Values of the local maxima of ``signal`` (in index order)."""
    x = np.asarray(signal, dtype=float)
    indices = find_local_maxima(x, min_height=min_height,
                                min_distance=min_distance)
    return x[indices]
