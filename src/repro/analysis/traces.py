"""Trace-set manipulation helpers.

Thin numpy-based utilities shared by the EM detector and the experiment
drivers: stacking acquisitions into a matrix, computing the mean
(golden) reference, absolute difference traces and summary statistics.
They operate on plain arrays so they are equally usable on simulated
traces (:class:`repro.measurement.em_simulator.EMTrace`) and on traces
loaded from disk (:mod:`repro.io.tracefile`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from ..measurement.em_simulator import EMTrace

#: Anything accepted as a trace: an EMTrace or a raw sample vector.
TraceLike = Union[EMTrace, Sequence[float], np.ndarray]


def as_samples(trace: TraceLike) -> np.ndarray:
    """Extract the sample vector from a trace-like object."""
    if isinstance(trace, EMTrace):
        return np.asarray(trace.samples, dtype=float)
    return np.asarray(trace, dtype=float)


def stack_traces(traces: Iterable[TraceLike]) -> np.ndarray:
    """Stack traces into a ``(num_traces, num_samples)`` matrix.

    A pre-stacked two-dimensional float ndarray passes straight through
    (no copy, no re-validation): detectors that score the same
    population repeatedly stack once and hand the matrix around instead
    of re-converting the trace list on every call.
    """
    if isinstance(traces, np.ndarray) and traces.ndim == 2:
        if traces.shape[0] == 0:
            raise ValueError("at least one trace is required")
        return np.asarray(traces, dtype=float)
    rows = [as_samples(trace) for trace in traces]
    if not rows:
        raise ValueError("at least one trace is required")
    length = rows[0].size
    for index, row in enumerate(rows):
        if row.size != length:
            raise ValueError(
                f"trace {index} has {row.size} samples, expected {length}"
            )
    return np.vstack(rows)


def mean_trace(traces: Iterable[TraceLike]) -> np.ndarray:
    """Sample-wise mean of a set of traces (the E(G) reference of Sec. V).

    Accepts a pre-stacked ``(num_traces, num_samples)`` ndarray like
    :func:`stack_traces`.
    """
    return stack_traces(traces).mean(axis=0)


def abs_difference(trace: TraceLike, reference: TraceLike) -> np.ndarray:
    """Absolute sample-wise difference |trace - reference|."""
    a = as_samples(trace)
    b = as_samples(reference)
    if a.size != b.size:
        raise ValueError(
            f"trace has {a.size} samples but reference has {b.size}"
        )
    return np.abs(a - b)


def difference(trace: TraceLike, reference: TraceLike) -> np.ndarray:
    """Signed sample-wise difference (trace - reference)."""
    a = as_samples(trace)
    b = as_samples(reference)
    if a.size != b.size:
        raise ValueError(
            f"trace has {a.size} samples but reference has {b.size}"
        )
    return a - b


def per_sample_std(traces: Iterable[TraceLike]) -> np.ndarray:
    """Sample-wise standard deviation across a set of traces.

    Accepts a pre-stacked ``(num_traces, num_samples)`` ndarray like
    :func:`stack_traces`.
    """
    matrix = stack_traces(traces)
    if matrix.shape[0] < 2:
        return np.zeros(matrix.shape[1])
    return matrix.std(axis=0, ddof=1)


def peak_to_peak(trace: TraceLike) -> float:
    """Peak-to-peak amplitude of one trace."""
    samples = as_samples(trace)
    return float(samples.max() - samples.min())


def signal_to_noise_ratio(traces: Iterable[TraceLike]) -> float:
    """Crude SNR estimate of a set of nominally identical traces.

    Ratio of the RMS of the mean trace to the mean per-sample standard
    deviation; used to check that the simulated averaging reproduces the
    paper's observation that 1 000-fold averaging yields a clean trace.
    """
    matrix = stack_traces(traces)
    signal_rms = float(np.sqrt(np.mean(matrix.mean(axis=0) ** 2)))
    noise = float(matrix.std(axis=0, ddof=1).mean()) if matrix.shape[0] > 1 else 0.0
    if noise == 0.0:
        return float("inf")
    return signal_rms / noise
