"""Gaussian modelling of detection-metric distributions.

Section V-B models the detection metric of genuine and infected
populations as two Gaussians separated by an offset ``mu`` (Fig. 7); the
false-negative / false-positive rate follows from the overlap (Eq. 5).
This module provides the fitting and overlap primitives; the paper's
formula itself lives in :mod:`repro.core.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class GaussianFit:
    """A fitted (or assumed) normal distribution."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError("std must be non-negative")

    def pdf(self, x: Sequence[float]) -> np.ndarray:
        """Probability density at ``x``."""
        if self.std == 0:
            raise ValueError("pdf undefined for a degenerate (std=0) fit")
        return stats.norm.pdf(np.asarray(x, dtype=float), self.mean, self.std)

    def cdf(self, x: float) -> float:
        """Cumulative probability below ``x``."""
        if self.std == 0:
            return float(x >= self.mean)
        return float(stats.norm.cdf(x, self.mean, self.std))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw samples from the fitted distribution."""
        return rng.normal(self.mean, self.std, size=size)


def fit_gaussian(samples: Sequence[float]) -> GaussianFit:
    """Fit a normal distribution to samples (MLE mean and unbiased std)."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit a Gaussian to an empty sample")
    if data.size == 1:
        return GaussianFit(mean=float(data[0]), std=0.0)
    return GaussianFit(mean=float(data.mean()), std=float(data.std(ddof=1)))


def pooled_std(a: Sequence[float], b: Sequence[float]) -> float:
    """Pooled standard deviation of two samples (sigma1 ~ sigma2 assumption).

    The paper assumes ``sigma1 ~= sigma2 = sigma`` when applying Eq. (5);
    the pooled estimate is the natural single sigma to use.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ValueError("both samples need at least two observations")
    var = ((x.size - 1) * x.var(ddof=1) + (y.size - 1) * y.var(ddof=1)) / (
        x.size + y.size - 2
    )
    return float(np.sqrt(var))


def separation(genuine: Sequence[float], infected: Sequence[float]
               ) -> Tuple[float, float]:
    """Offset ``mu`` and pooled ``sigma`` between two metric populations."""
    fit_g = fit_gaussian(genuine)
    fit_i = fit_gaussian(infected)
    mu = fit_i.mean - fit_g.mean
    sigma = pooled_std(genuine, infected)
    return mu, sigma


def overlap_threshold(genuine: GaussianFit, infected: GaussianFit) -> float:
    """Equal-error decision threshold between two Gaussians.

    With equal standard deviations this is the midpoint of the means —
    the threshold implied by Fig. 7 where the false-positive and
    false-negative areas are equal.
    """
    if genuine.std == 0 and infected.std == 0:
        return (genuine.mean + infected.mean) / 2.0
    return (genuine.mean + infected.mean) / 2.0
