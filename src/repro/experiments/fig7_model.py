"""Figure 7 / Equation (5): the two-Gaussian false-negative model.

Fig. 7 of the paper sketches the probability density of the EM detection
metric for the genuine and infected populations: two Gaussians of common
standard deviation separated by an offset ``mu`` that depends on the
trojan size; the false-negative (= false-positive) rate of the symmetric
decision is Eq. (5).

The driver fits that model to the simulated populations (for one
trojan), evaluates Eq. (5), and cross-checks the analytic rate against
an empirical Monte-Carlo decision on the fitted Gaussians.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.gaussian import GaussianFit, overlap_threshold
from ..core.em_detector import PopulationCharacterisation, PopulationEMDetector
from ..core.metrics import false_negative_rate
from ..core.pipeline import HTDetectionPlatform
from .config import FIXED_KEY, FIXED_PLAINTEXT, ExperimentConfig


@dataclass
class Fig7Result:
    """Fitted two-Gaussian model and its error rates."""

    trojan_name: str
    characterisation: PopulationCharacterisation
    threshold: float
    analytic_false_negative: float
    empirical_false_negative: float
    empirical_false_positive: float

    @property
    def mu(self) -> float:
        return self.characterisation.mu

    @property
    def sigma(self) -> float:
        return self.characterisation.sigma


def empirical_rates(genuine: GaussianFit, infected: GaussianFit,
                    threshold: float, num_samples: int = 50000,
                    seed: int = 0) -> "tuple[float, float]":
    """Monte-Carlo false-negative / false-positive rates of the fitted model."""
    rng = np.random.default_rng(seed)
    genuine_samples = genuine.sample(rng, num_samples)
    infected_samples = infected.sample(rng, num_samples)
    false_positive = float((genuine_samples > threshold).mean())
    false_negative = float((infected_samples <= threshold).mean())
    return false_negative, false_positive


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        trojan_name: str = "HT2") -> Fig7Result:
    """Fit the Fig. 7 model for ``trojan_name`` and evaluate Eq. (5)."""
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()

    golden_traces, infected_traces = platform.acquire_population_traces(
        (trojan_name,), plaintext=FIXED_PLAINTEXT, key=FIXED_KEY
    )
    detector = PopulationEMDetector()
    detector.fit_reference(golden_traces)
    characterisation = detector.characterise(infected_traces[trojan_name])

    threshold = overlap_threshold(characterisation.genuine,
                                  characterisation.infected)
    analytic = false_negative_rate(characterisation.mu, characterisation.sigma)
    # Evaluate the fitted model empirically at the symmetric threshold; the
    # equal-sigma assumption of Eq. (5) makes both rates coincide.
    symmetric_genuine = GaussianFit(characterisation.genuine.mean,
                                    characterisation.sigma)
    symmetric_infected = GaussianFit(characterisation.infected.mean,
                                     characterisation.sigma)
    empirical_fn, empirical_fp = empirical_rates(
        symmetric_genuine, symmetric_infected, threshold, seed=config.seed
    )
    return Fig7Result(
        trojan_name=trojan_name,
        characterisation=characterisation,
        threshold=threshold,
        analytic_false_negative=analytic,
        empirical_false_negative=empirical_fn,
        empirical_false_positive=empirical_fp,
    )
