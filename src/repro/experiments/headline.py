"""Headline result: false-negative rate versus trojan size.

The paper's abstract and conclusion report that, with the sum-of-local-
maxima metric and 8 dies, the false-negative rates of HTs occupying
0.5 %, 1.0 % and 1.7 % of the AES area are 26 %, 17 % and 5 %, i.e. the
detection probability exceeds 95 % for trojans larger than 1.7 % of the
original circuit.

The driver runs the full Sec. V study and produces that table, together
with the monotonicity and crossover checks the reproduction is judged
on (who wins, by how much, where the 95 % threshold falls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.pipeline import HTDetectionPlatform, PopulationEMStudyResult
from .config import FIXED_KEY, ExperimentConfig

#: The paper's reported false-negative rates, keyed by trojan name.
PAPER_FALSE_NEGATIVE_RATES: Dict[str, float] = {
    "HT1": 0.26,
    "HT2": 0.17,
    "HT3": 0.05,
}

#: The paper's reported trojan sizes as a fraction of the AES area.
PAPER_AREA_FRACTIONS: Dict[str, float] = {
    "HT1": 0.005,
    "HT2": 0.010,
    "HT3": 0.017,
}


@dataclass
class HeadlineRow:
    """One row of the headline table."""

    trojan_name: str
    area_fraction: float
    mu: float
    sigma: float
    false_negative_rate: float
    detection_probability: float
    paper_false_negative_rate: Optional[float] = None


@dataclass
class HeadlineResult:
    """The headline table plus the qualitative checks."""

    rows: List[HeadlineRow]
    study: PopulationEMStudyResult

    def false_negative_rates(self) -> Dict[str, float]:
        return {row.trojan_name: row.false_negative_rate for row in self.rows}

    def is_monotone_decreasing(self) -> bool:
        """FN rate must decrease as the trojan grows (the paper's trend)."""
        rates = [row.false_negative_rate for row in
                 sorted(self.rows, key=lambda r: r.area_fraction)]
        return all(later <= earlier + 1e-9
                   for earlier, later in zip(rates, rates[1:]))

    def largest_trojan_detection(self) -> float:
        """Detection probability of the largest trojan (paper: > 95 %)."""
        largest = max(self.rows, key=lambda r: r.area_fraction)
        return largest.detection_probability

    def crossover_area_fraction(self, target_detection: float = 0.95
                                ) -> Optional[float]:
        """Smallest measured trojan size achieving the target detection rate."""
        eligible = [row.area_fraction for row in self.rows
                    if row.detection_probability >= target_detection]
        return min(eligible) if eligible else None


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        trojan_names: Sequence[str] = ("HT1", "HT2", "HT3"),
        study: Optional[PopulationEMStudyResult] = None) -> HeadlineResult:
    """Produce the headline false-negative-rate table.

    ``study`` optionally reuses an already-run population study (e.g.
    from the campaign engine) instead of re-acquiring the population.
    """
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()
    if study is None:
        # ``num_plaintexts == 1`` yields ``[FIXED_PLAINTEXT]``, which the
        # study maps back onto the paper's fixed-stimulus path; larger
        # values sweep the whole stimulus set through the batched
        # acquisition and average per die.
        study = platform.run_population_em_study(
            trojan_names=trojan_names, key=FIXED_KEY,
            plaintexts=config.stimulus_plaintexts(),
        )
    rows: List[HeadlineRow] = []
    for name in trojan_names:
        characterisation = study.characterisations[name]
        rows.append(
            HeadlineRow(
                trojan_name=name,
                area_fraction=study.trojan_area_fractions[name],
                mu=characterisation.mu,
                sigma=characterisation.sigma,
                false_negative_rate=characterisation.false_negative_rate,
                detection_probability=characterisation.detection_probability,
                paper_false_negative_rate=PAPER_FALSE_NEGATIVE_RATES.get(name),
            )
        )
    return HeadlineResult(rows=rows, study=study)
