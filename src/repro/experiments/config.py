"""Shared experiment configuration.

Every experiment driver accepts an :class:`ExperimentConfig`.  The
default profile mirrors the paper's campaign sizes (8 dies, 50 (P, K)
pairs, 10 repetitions, 1 000-fold averaging); the *quick* profile keeps
every code path identical but shrinks the campaign so the full
experiment suite runs in seconds — it is what the unit tests and the
pytest benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..core.pipeline import HTDetectionPlatform, PlatformConfig
from ..measurement.delay_meter import DelayMeasurementConfig
from ..stimulus import DEFAULT_KEY, DEFAULT_PLAINTEXT, campaign_stimuli


@dataclass
class ExperimentConfig:
    """Campaign sizes shared by the experiment drivers."""

    num_dies: int = 8
    num_pk_pairs: int = 50
    repetitions: int = 10
    representative_pairs: "tuple[int, int]" = (13, 47)
    seed: int = 2015
    quick: bool = False
    #: EM stimulus diversity: 1 reproduces the paper's fixed plaintext;
    #: N > 1 adds N - 1 seed-derived random plaintexts (each die is then
    #: scored on its stimulus-averaged trace).
    num_plaintexts: int = 1

    def __post_init__(self) -> None:
        if self.num_dies < 2:
            raise ValueError("num_dies must be at least 2")
        if self.num_pk_pairs < 1:
            raise ValueError("num_pk_pairs must be at least 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if self.num_plaintexts < 1:
            raise ValueError("num_plaintexts must be at least 1")
        for pair in self.representative_pairs:
            if pair >= self.num_pk_pairs:
                raise ValueError(
                    "representative pair index beyond the number of pairs"
                )

    def stimulus_plaintexts(self) -> List[bytes]:
        """The EM stimulus set: the fixed plaintext plus random extras.

        Shares :func:`repro.stimulus.campaign_stimuli` with the
        campaign specs, so equal (count, seed) always means equal
        stimuli across both drivers.
        """
        return campaign_stimuli(self.num_plaintexts, self.seed,
                                first=FIXED_PLAINTEXT)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's campaign sizes."""
        return cls()

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """A reduced campaign for tests and benchmarks (same code paths)."""
        return cls(
            num_dies=4,
            num_pk_pairs=4,
            repetitions=3,
            representative_pairs=(0, 3),
            quick=True,
        )

    def build_platform(self) -> HTDetectionPlatform:
        """Instantiate the detection platform for this configuration."""
        delay_config = DelayMeasurementConfig(
            repetitions=self.repetitions,
            seed=self.seed,
        )
        platform_config = PlatformConfig(
            num_dies=self.num_dies,
            seed=self.seed,
            delay=delay_config,
        )
        return HTDetectionPlatform(config=platform_config)


#: Fixed plaintext/key used by the EM experiments (the paper fixes the
#: plaintext but does not disclose it; any fixed value plays that role).
FIXED_PLAINTEXT = DEFAULT_PLAINTEXT
FIXED_KEY = DEFAULT_KEY
