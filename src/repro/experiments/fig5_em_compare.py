"""Figure 5: same-die comparison of genuine and infected EM traces.

Fig. 5 of the paper overlays three averaged traces acquired with the
same plaintext on the same die: two acquisitions of the genuine AES
(taken after physically re-installing the setup, to expose the setup
noise) and one acquisition of the AES infected with the combinational
trojan.  The two genuine traces are nearly identical while the infected
trace departs at specific samples — the dormant trojan is detected by
direct comparison.

The driver reproduces the three traces and reports the two headline
quantities of the figure: the genuine-vs-genuine residual (setup +
averaging noise) and the genuine-vs-infected difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.traces import abs_difference
from ..core.pipeline import HTDetectionPlatform, SameDieEMStudyResult
from .config import FIXED_KEY, FIXED_PLAINTEXT, ExperimentConfig


@dataclass
class Fig5Result:
    """The three traces of Fig. 5 and their pairwise differences."""

    study: SameDieEMStudyResult
    trojan_name: str
    genuine_vs_genuine_max: float
    genuine_vs_infected_max: float
    detected: bool

    def contrast(self) -> float:
        """Ratio of the infected difference to the setup/averaging residual."""
        if self.genuine_vs_genuine_max == 0.0:
            return float("inf")
        return self.genuine_vs_infected_max / self.genuine_vs_genuine_max


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        trojan_name: str = "HT_comb") -> Fig5Result:
    """Run the same-die EM comparison of Fig. 5."""
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()
    study = platform.run_same_die_em_study(
        trojan_names=(trojan_name,),
        die_index=0,
        plaintext=FIXED_PLAINTEXT,
        key=FIXED_KEY,
        num_golden_acquisitions=2,
    )
    genuine_1 = study.golden_traces[0].samples
    genuine_2 = study.golden_traces[1].samples
    infected = study.infected_traces[trojan_name].samples
    return Fig5Result(
        study=study,
        trojan_name=trojan_name,
        genuine_vs_genuine_max=float(abs_difference(genuine_1, genuine_2).max()),
        genuine_vs_infected_max=float(abs_difference(genuine_1, infected).max()),
        detected=study.comparisons[trojan_name].outcome.is_infected,
    )
