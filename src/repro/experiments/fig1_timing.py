"""Figure 1 / Equation (1): the synchronous timing constraint.

The first figure of the paper is conceptual: a register-to-register
stage whose clock period must satisfy
``Tclk > Dclk2q + DpMax + Tsetup - Tskew + Tjitter``.  The experiment
driver instantiates that constraint on the modelled AES last round: it
computes the static critical path of the golden design, sweeps the clock
period across the constraint and reports where the setup condition
starts to fail — the mechanism every later delay experiment relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.pipeline import HTDetectionPlatform
from ..measurement.clock import TimingBudget
from ..netlist.timing import TimingEngine
from .config import ExperimentConfig


@dataclass
class TimingConstraintPoint:
    """One point of the clock-period sweep."""

    clock_period_ps: float
    slack_ps: float
    violates_setup: bool


@dataclass
class Fig1Result:
    """Output of the timing-constraint experiment."""

    critical_path_ps: float
    required_period_ps: float
    nominal_period_ps: float
    nominal_slack_ps: float
    sweep: List[TimingConstraintPoint]

    def first_violating_period_ps(self) -> Optional[float]:
        """Largest swept period that violates setup (None if none does)."""
        violating = [p.clock_period_ps for p in self.sweep if p.violates_setup]
        return max(violating) if violating else None


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        num_sweep_points: int = 40) -> Fig1Result:
    """Evaluate Eq. (1) on the golden design and sweep the clock period."""
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()
    budget = TimingBudget()

    dut = platform.golden_dut(0, label="GM")
    engine = TimingEngine(dut.netlist, annotation=dut.delay_annotation())
    critical_path = engine.critical_path_ps()
    required = budget.required_period_ps(critical_path)
    nominal = platform.device.nominal_clock_period_ps

    periods = np.linspace(required * 0.8, required * 1.2, num_sweep_points)
    sweep = [
        TimingConstraintPoint(
            clock_period_ps=float(period),
            slack_ps=budget.setup_slack_ps(float(period), critical_path),
            violates_setup=budget.violates_setup(float(period), critical_path),
        )
        for period in periods
    ]
    return Fig1Result(
        critical_path_ps=critical_path,
        required_period_ps=required,
        nominal_period_ps=nominal,
        nominal_slack_ps=budget.setup_slack_ps(nominal, critical_path),
        sweep=sweep,
    )
