"""Figure 3: per-bit delay differences for clean and infected designs.

Fig. 3 of the paper plots, for two representative (P, K) pairs (no. 13
and no. 47), the Eq. (4) delay difference of every ciphertext bit for
four devices measured against the golden model: two clean re-measurements
(Clean1, Clean2) and the two trojans (HTcomb, HTseq).  The clean curves
stay near the measurement-noise floor while the infected curves show
large shifts on the bits whose paths the trojan disturbs — including for
HTseq, which is not logically connected to the datapath.

The driver reproduces those per-bit series and the summary statistics a
plot would show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.pipeline import DelayStudyResult, HTDetectionPlatform
from .config import ExperimentConfig


@dataclass
class Fig3Series:
    """One curve of Fig. 3: per-bit delay difference of one design, one pair."""

    label: str
    pair_index: int
    delay_difference_ps: np.ndarray

    def max_ps(self) -> float:
        return float(self.delay_difference_ps.max())

    def affected_bits(self, threshold_ps: float) -> List[int]:
        """Bit numbers (0-based) whose shift exceeds ``threshold_ps``."""
        return [int(b) for b in
                np.flatnonzero(self.delay_difference_ps > threshold_ps)]


@dataclass
class Fig3Result:
    """All curves of Fig. 3 plus the campaign-level comparison."""

    series: List[Fig3Series]
    study: DelayStudyResult
    representative_pairs: Sequence[int]

    def series_for(self, label: str, pair_index: int) -> Fig3Series:
        for candidate in self.series:
            if candidate.label == label and candidate.pair_index == pair_index:
                return candidate
        raise KeyError(f"no series for {label!r} pair {pair_index}")

    def labels(self) -> List[str]:
        return sorted({s.label for s in self.series})

    def clean_max_ps(self) -> float:
        """Largest delay difference seen on the clean control curves."""
        return max(s.max_ps() for s in self.series
                   if s.label.startswith("Clean"))

    def infected_max_ps(self) -> float:
        """Largest delay difference seen on the infected curves."""
        return max(s.max_ps() for s in self.series
                   if not s.label.startswith("Clean"))

    def separation_ratio(self) -> float:
        """Infected-to-clean ratio of the worst per-bit shift (paper: >> 1)."""
        clean = self.clean_max_ps()
        if clean == 0.0:
            return float("inf")
        return self.infected_max_ps() / clean


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        trojan_names: Sequence[str] = ("HT_comb", "HT_seq")) -> Fig3Result:
    """Run the Sec. III campaign and extract the Fig. 3 per-bit series."""
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()

    study = platform.run_delay_study(
        trojan_names=trojan_names,
        num_pairs=config.num_pk_pairs,
        die_index=0,
        pair_seed=config.seed + 7,
    )
    pair_indices = [index for index in config.representative_pairs
                    if index < config.num_pk_pairs]
    series: List[Fig3Series] = []
    for label, comparison in study.comparisons.items():
        for pair_index in pair_indices:
            series.append(
                Fig3Series(
                    label=label,
                    pair_index=pair_index,
                    delay_difference_ps=comparison.pair_profile(pair_index),
                )
            )
    return Fig3Result(series=series, study=study,
                      representative_pairs=pair_indices)
