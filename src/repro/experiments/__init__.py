"""Experiment drivers: one module per figure/table of the paper.

==================  ==========================================================
Module              Paper artefact
==================  ==========================================================
``fig1_timing``     Fig. 1 / Eq. (1): synchronous timing constraint
``fig2_staircase``  Fig. 2: faulted bits vs glitch step
``fig3_delay``      Fig. 3: per-bit delay differences, clean vs infected
``fig4_em_trace``   Fig. 4: averaged EM trace of one encryption
``fig5_em_compare`` Fig. 5: same-die genuine vs infected traces
``fig6_pv``         Fig. 6: inter-die differences vs the mean golden trace
``fig7_model``      Fig. 7 / Eq. (5): two-Gaussian false-negative model
``table_ht_sizes``  Sec. II-B / V-A: trojan resource footprints
``headline``        Abstract / Sec. V-B: FN rate vs trojan size
``runner``          Runs the full suite and summarises paper-vs-measured
==================  ==========================================================
"""

from . import (
    fig1_timing,
    fig2_staircase,
    fig3_delay,
    fig4_em_trace,
    fig5_em_compare,
    fig6_pv,
    fig7_model,
    headline,
    table_ht_sizes,
)
from .config import FIXED_KEY, FIXED_PLAINTEXT, ExperimentConfig
from .runner import ExperimentSummary, SuiteResult, run_all

__all__ = [
    "fig1_timing",
    "fig2_staircase",
    "fig3_delay",
    "fig4_em_trace",
    "fig5_em_compare",
    "fig6_pv",
    "fig7_model",
    "headline",
    "table_ht_sizes",
    "ExperimentConfig",
    "FIXED_KEY",
    "FIXED_PLAINTEXT",
    "ExperimentSummary",
    "SuiteResult",
    "run_all",
]
