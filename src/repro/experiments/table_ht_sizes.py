"""Trojan resource accounting (Sec. II-B and Sec. V-A figures).

The paper reports the footprint of its designs on the FPGA:

* the AES implementation covers 38.26 % of the FPGA slices,
* the combinational trojan uses 0.19 % of the FPGA slices,
* the sequential trojan uses 0.36 % of the FPGA slices,
* HT1 / HT2 / HT3 occupy 0.5 % / 1.0 % / 1.7 % of the AES area.

The driver rebuilds every catalog trojan on the Virtex-5 LX30 model,
inserts it next to the golden design and reports the measured slice
counts and fractions so they can be compared against the paper's
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.pipeline import HTDetectionPlatform
from ..fpga.device import AES_SLICE_UTILISATION
from .config import ExperimentConfig

#: Paper-reported sizes: fraction of the FPGA for the Sec. II trojans,
#: fraction of the AES for the Sec. V trojans.
PAPER_DEVICE_FRACTIONS: Dict[str, float] = {
    "HT_comb": 0.0019,
    "HT_seq": 0.0036,
}
PAPER_AES_FRACTIONS: Dict[str, float] = {
    "HT1": 0.005,
    "HT2": 0.010,
    "HT3": 0.017,
}


@dataclass
class TrojanSizeRow:
    """Measured footprint of one catalog trojan."""

    trojan_name: str
    lut_count: float
    slice_count: int
    fraction_of_aes: float
    fraction_of_device: float
    trigger_width: int
    paper_fraction_of_aes: Optional[float] = None
    paper_fraction_of_device: Optional[float] = None


@dataclass
class TrojanSizeTable:
    """The full resource-accounting table."""

    aes_slice_utilisation: float
    aes_slice_count: int
    modelled_last_round_slices: int
    rows: List[TrojanSizeRow]

    def row(self, trojan_name: str) -> TrojanSizeRow:
        for candidate in self.rows:
            if candidate.trojan_name == trojan_name:
                return candidate
        raise KeyError(f"no row for trojan {trojan_name!r}")

    def ordering_matches_paper(self) -> bool:
        """HT1 < HT2 < HT3 in area, as in the paper."""
        try:
            sizes = [self.row(name).fraction_of_aes
                     for name in ("HT1", "HT2", "HT3")]
        except KeyError:
            return False
        return sizes[0] < sizes[1] < sizes[2]


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        trojan_names: Sequence[str] = ("HT_comb", "HT_seq", "HT1", "HT2", "HT3")
        ) -> TrojanSizeTable:
    """Measure the footprint of every catalog trojan on the modelled device."""
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()
    golden = platform.golden

    rows: List[TrojanSizeRow] = []
    for name in trojan_names:
        infected = platform.infected_design(name)
        trojan = infected.trojan
        trigger_width = getattr(trojan, "counter_width",
                                len(getattr(trojan, "scanned_bits", [])) or 0)
        rows.append(
            TrojanSizeRow(
                trojan_name=name,
                lut_count=trojan.lut_count(),
                slice_count=infected.trojan_slice_count(),
                fraction_of_aes=infected.area_fraction_of_aes(),
                fraction_of_device=infected.area_fraction_of_device(),
                trigger_width=int(trigger_width),
                paper_fraction_of_aes=PAPER_AES_FRACTIONS.get(name),
                paper_fraction_of_device=PAPER_DEVICE_FRACTIONS.get(name),
            )
        )
    return TrojanSizeTable(
        aes_slice_utilisation=AES_SLICE_UTILISATION,
        aes_slice_count=golden.aes_total_slices(),
        modelled_last_round_slices=golden.modelled_slice_count(),
        rows=rows,
    )
