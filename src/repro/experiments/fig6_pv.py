"""Figure 6: impact of inter-die process variations on EM differences.

Fig. 6 of the paper plots, over a window of samples, the absolute
difference ``Dg_j = |G_j - E_8(G)|`` for every golden die (the
process-variation floor) and ``Dt_{s,j} = |T_{s,j} - E_8(G)|`` for every
infected die — showing that an HT of 1 % of the AES already rises above
the process-variation fluctuation at specific samples.

The driver acquires one trace per (design, die), builds the mean golden
reference and reports the per-die difference traces and their peak
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.batch import abs_difference_matrix
from ..analysis.traces import stack_traces
from ..core.pipeline import HTDetectionPlatform
from ..measurement.em_simulator import EMTrace
from .config import FIXED_KEY, FIXED_PLAINTEXT, ExperimentConfig


@dataclass
class Fig6Result:
    """Per-die difference traces against the mean golden trace."""

    reference_mean: np.ndarray
    golden_differences: List[np.ndarray]
    infected_differences: Dict[str, List[np.ndarray]]
    trojan_names: Sequence[str]

    def golden_peak_per_die(self) -> List[float]:
        """max_t Dg_j for every golden die j."""
        return [float(diff.max()) for diff in self.golden_differences]

    def infected_peak_per_die(self, trojan_name: str) -> List[float]:
        """max_t Dt_{s,j} for every die j of trojan ``trojan_name``."""
        return [float(diff.max())
                for diff in self.infected_differences[trojan_name]]

    def golden_envelope(self) -> float:
        """Worst process-variation difference over all golden dies."""
        return max(self.golden_peak_per_die())

    def exceeds_pv_envelope(self, trojan_name: str) -> int:
        """Number of dies whose infected difference rises above the PV envelope."""
        envelope = self.golden_envelope()
        return int(sum(peak > envelope
                       for peak in self.infected_peak_per_die(trojan_name)))


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        trojan_names: Sequence[str] = ("HT1", "HT2", "HT3"),
        traces: "Optional[tuple]" = None) -> Fig6Result:
    """Acquire the 4-design x N-die traces and build the Fig. 6 differences.

    ``traces`` optionally feeds an already-acquired
    ``(golden_traces, infected_traces)`` population (e.g. from the
    campaign engine) so the suite acquires each population only once.
    """
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()

    if traces is not None:
        golden_traces, infected_traces = traces
    else:
        golden_traces, infected_traces = platform.acquire_population_traces(
            trojan_names, plaintext=FIXED_PLAINTEXT, key=FIXED_KEY
        )
    # Matrix-resident difference build: stack each population once (a
    # pre-stacked ndarray passes through) and take the |G_j - E(G)|
    # planes from one batched abs-difference per design — bit-identical
    # to the per-trace ``abs_difference`` loop.
    golden_matrix = stack_traces(golden_traces)
    reference = golden_matrix.mean(axis=0)
    golden_differences = list(abs_difference_matrix(golden_matrix, reference))
    infected_differences = {
        name: list(abs_difference_matrix(stack_traces(population), reference))
        for name, population in infected_traces.items()
    }
    return Fig6Result(
        reference_mean=reference,
        golden_differences=golden_differences,
        infected_differences=infected_differences,
        trojan_names=tuple(trojan_names),
    )
