"""Figure 2: principle of the path measurement for one (P, K) pair.

Fig. 2 of the paper illustrates how the iterative decrease of the clock
period turns path delays into step counts: as the glitched period
shrinks, more and more ciphertext bits cross their setup limit and start
to fault.  The experiment reproduces that staircase — the number of
faulted bits as a function of the glitch step — on the golden design and
on an infected design, showing the trojan-induced shift of the curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.pipeline import HTDetectionPlatform
from ..measurement.delay_meter import generate_pk_pairs
from .config import ExperimentConfig


@dataclass
class Fig2Result:
    """Faulted-bit staircases of the golden and one infected design."""

    glitch_start_ps: float
    glitch_step_ps: float
    golden_staircase: Dict[int, int]
    infected_staircase: Dict[int, int]
    trojan_name: str

    def first_fault_step(self, staircase: Dict[int, int]) -> Optional[int]:
        """First step at which at least one bit faults."""
        for step in sorted(staircase):
            if staircase[step] > 0:
                return step
        return None

    def golden_first_fault_step(self) -> Optional[int]:
        return self.first_fault_step(self.golden_staircase)

    def infected_first_fault_step(self) -> Optional[int]:
        return self.first_fault_step(self.infected_staircase)


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None,
        trojan_name: str = "HT_comb", pair_index: int = 0) -> Fig2Result:
    """Build the Fig. 2 staircase for one (P, K) pair."""
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()
    pairs = generate_pk_pairs(max(1, pair_index + 1), seed=config.seed + 7)
    pair = pairs[pair_index]

    meter = platform.delay_meter
    golden_dut = platform.golden_dut(0, label="GM")
    infected_dut = platform.infected_dut(trojan_name, 0, label=trojan_name)
    glitch = meter.calibrate_glitch(golden_dut, [pair])

    golden_staircase = meter.fault_staircase(golden_dut, pair, glitch,
                                             seed=config.seed)
    infected_staircase = meter.fault_staircase(infected_dut, pair, glitch,
                                               seed=config.seed)
    return Fig2Result(
        glitch_start_ps=glitch.start_period_ps,
        glitch_step_ps=glitch.step_ps,
        golden_staircase=golden_staircase,
        infected_staircase=infected_staircase,
        trojan_name=trojan_name,
    )
