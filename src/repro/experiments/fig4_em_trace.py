"""Figure 4: averaged EM measurement of a single AES-128 encryption.

Fig. 4 of the paper shows one EM trace (averaged 1 000 times by the
oscilloscope) in which all ten AES rounds are clearly visible.  The
driver acquires that trace on the simulated bench and checks its
structure: number of samples (about 3 000 at 5 GS/s and 24 MHz), the
peak amplitude, and that ten round bursts can be counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.local_maxima import find_local_maxima
from ..core.pipeline import HTDetectionPlatform
from ..measurement.em_simulator import EMTrace
from .config import FIXED_KEY, FIXED_PLAINTEXT, ExperimentConfig


@dataclass
class Fig4Result:
    """The single averaged EM trace of Fig. 4 and its structure."""

    trace: EMTrace
    num_samples: int
    peak_amplitude: float
    round_burst_count: int
    samples_per_cycle: int

    def rounds_visible(self) -> bool:
        """True if at least the ten AES rounds produce distinct bursts."""
        return self.round_burst_count >= 10


def count_round_bursts(trace: EMTrace, samples_per_cycle: int) -> int:
    """Count distinct activity bursts by finding well-separated envelope peaks."""
    envelope = np.abs(trace.samples)
    threshold = 0.3 * envelope.max()
    peaks = find_local_maxima(envelope, min_height=threshold,
                              min_distance=max(2, samples_per_cycle // 2))
    return int(peaks.size)


def run(config: Optional[ExperimentConfig] = None,
        platform: Optional[HTDetectionPlatform] = None) -> Fig4Result:
    """Acquire the Fig. 4 trace on the golden design."""
    config = config or ExperimentConfig.fast()
    platform = platform or config.build_platform()
    rng = np.random.default_rng(config.seed)
    dut = platform.golden_dut(0, label="Genuine AES")
    trace = platform.em_simulator.acquire(dut, FIXED_PLAINTEXT, FIXED_KEY, rng)
    samples_per_cycle = platform.em_simulator.config.samples_per_cycle
    return Fig4Result(
        trace=trace,
        num_samples=len(trace),
        peak_amplitude=float(np.abs(trace.samples).max()),
        round_burst_count=count_round_bursts(trace, samples_per_cycle),
        samples_per_cycle=samples_per_cycle,
    )
