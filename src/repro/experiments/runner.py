"""Run the complete experiment suite and summarise paper-vs-measured.

``run_all`` executes every figure/table driver on a shared platform (so
the expensive golden design and trojan insertions are built once) and
returns a dictionary of summary rows — the same content EXPERIMENTS.md
records and the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.pipeline import HTDetectionPlatform, run_population_em_study
from ..core.report import format_table, percentage
from ..store import (
    DEFAULT_GOLDEN_SIGNATURE,
    ArtifactStore,
    pack_population_traces,
    population_traces_key,
    unpack_population_traces,
)
from . import (
    fig1_timing,
    fig2_staircase,
    fig3_delay,
    fig4_em_trace,
    fig5_em_compare,
    fig6_pv,
    fig7_model,
    headline,
    table_ht_sizes,
)
from .config import FIXED_KEY, FIXED_PLAINTEXT, ExperimentConfig


@dataclass
class ExperimentSummary:
    """One line of the paper-vs-measured summary."""

    experiment: str
    paper_claim: str
    measured: str
    matches_shape: bool


@dataclass
class SuiteResult:
    """All experiment results plus the flat summary table."""

    summaries: List[ExperimentSummary]
    results: Dict[str, object] = field(default_factory=dict)

    def summary_table(self) -> str:
        rows = [[s.experiment, s.paper_claim, s.measured,
                 "yes" if s.matches_shape else "NO"]
                for s in self.summaries]
        return format_table(
            ["experiment", "paper", "measured (this reproduction)", "shape ok"],
            rows,
        )

    def all_shapes_match(self) -> bool:
        return all(s.matches_shape for s in self.summaries)


def _store_backed_population_study(platform: HTDetectionPlatform,
                                   store: Optional[ArtifactStore]):
    """The shared Fig. 6 / headline study, read through the store.

    The suite runner is a plain store *client*: it keys the population
    trace tensor exactly as the campaign engine does, so a suite run
    warms the store for subsequent campaigns (and vice versa — a
    campaign on the same geometry makes ``repro-ht experiments`` skip
    the acquisition entirely).
    """
    trojans = ("HT1", "HT2", "HT3")
    if store is None:
        return run_population_em_study(
            platform, trojan_names=trojans,
            plaintext=FIXED_PLAINTEXT, key=FIXED_KEY,
        )
    artifact_key = population_traces_key(
        device=platform.device, golden=DEFAULT_GOLDEN_SIGNATURE,
        em_config=platform.config.em, seed=platform.config.seed,
        num_dies=platform.config.num_dies, trojans=trojans,
        key=FIXED_KEY, plaintexts=[FIXED_PLAINTEXT],
    )
    if artifact_key in store:
        traces = unpack_population_traces(store.get_arrays(artifact_key))
    else:
        traces = platform.acquire_population_traces(
            trojans, FIXED_PLAINTEXT, FIXED_KEY
        )
        store.put_arrays(
            artifact_key, pack_population_traces(*traces),
            kind="population_traces",
            meta={"num_dies": platform.config.num_dies,
                  "producer": "experiments.runner"},
        )
    return run_population_em_study(platform, trojan_names=trojans,
                                   traces=traces)


def run_all(config: Optional[ExperimentConfig] = None,
            store: Optional[Union[ArtifactStore, str, Path]] = None
            ) -> SuiteResult:
    """Run every experiment driver and build the summary.

    ``store`` attaches a content-addressed artifact store: the
    expensive shared population study then reads through it.
    """
    config = config or ExperimentConfig.fast()
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    platform = config.build_platform()
    summaries: List[ExperimentSummary] = []
    results: Dict[str, object] = {}

    # FIG1 / EQ1 ------------------------------------------------------------
    r1 = fig1_timing.run(config, platform)
    results["fig1"] = r1
    summaries.append(ExperimentSummary(
        experiment="Fig.1/Eq.1 timing constraint",
        paper_claim="setup violated once Tclk drops below the path requirement",
        measured=(f"critical path {r1.critical_path_ps:.0f} ps, required "
                  f"{r1.required_period_ps:.0f} ps, nominal slack "
                  f"{r1.nominal_slack_ps:.0f} ps"),
        matches_shape=(r1.nominal_slack_ps > 0
                       and r1.first_violating_period_ps() is not None),
    ))

    # FIG2 -------------------------------------------------------------------
    r2 = fig2_staircase.run(config, platform)
    results["fig2"] = r2
    golden_first = r2.golden_first_fault_step()
    infected_first = r2.infected_first_fault_step()
    summaries.append(ExperimentSummary(
        experiment="Fig.2 fault staircase",
        paper_claim="shrinking the glitch period faults more and more bits; "
                    "a HT shifts the onset",
        measured=(f"first golden fault at step {golden_first}, "
                  f"infected at step {infected_first}"),
        matches_shape=(golden_first is not None and infected_first is not None
                       and infected_first <= golden_first),
    ))

    # FIG3 -------------------------------------------------------------------
    r3 = fig3_delay.run(config, platform)
    results["fig3"] = r3
    summaries.append(ExperimentSummary(
        experiment="Fig.3 per-bit delay differences",
        paper_claim="clean curves stay at the noise floor (<~350 ps); both HTs "
                    "shift some bits by up to ~1.4 ns",
        measured=(f"clean max {r3.clean_max_ps():.0f} ps, infected max "
                  f"{r3.infected_max_ps():.0f} ps "
                  f"(ratio {r3.separation_ratio():.1f}x)"),
        matches_shape=r3.separation_ratio() > 2.0,
    ))

    # FIG4 -------------------------------------------------------------------
    r4 = fig4_em_trace.run(config, platform)
    results["fig4"] = r4
    summaries.append(ExperimentSummary(
        experiment="Fig.4 averaged EM trace",
        paper_claim="~3000 samples per encryption, all 10 rounds visible",
        measured=(f"{r4.num_samples} samples, {r4.round_burst_count} bursts, "
                  f"peak {r4.peak_amplitude:.0f}"),
        matches_shape=r4.rounds_visible() and 2000 <= r4.num_samples <= 4000,
    ))

    # FIG5 -------------------------------------------------------------------
    r5 = fig5_em_compare.run(config, platform)
    results["fig5"] = r5
    summaries.append(ExperimentSummary(
        experiment="Fig.5 same-die trace comparison",
        paper_claim="two genuine traces nearly identical; infected trace "
                    "departs at specific samples",
        measured=(f"genuine residual {r5.genuine_vs_genuine_max:.0f}, infected "
                  f"difference {r5.genuine_vs_infected_max:.0f} "
                  f"(contrast {r5.contrast():.1f}x), detected={r5.detected}"),
        matches_shape=r5.detected and r5.contrast() > 1.5,
    ))

    # FIG6 / HEADLINE share one Sec. V population study, run once through
    # the campaign engine (the platform method is a thin wrapper over it)
    # and read through the artifact store when one is attached.
    population_study = _store_backed_population_study(platform, store)

    # FIG6 -------------------------------------------------------------------
    r6 = fig6_pv.run(config, platform,
                     traces=(population_study.golden_traces,
                             population_study.infected_traces))
    results["fig6"] = r6
    above = {name: r6.exceeds_pv_envelope(name) for name in r6.trojan_names}
    summaries.append(ExperimentSummary(
        experiment="Fig.6 inter-die differences",
        paper_claim="HT >= 1% rises above the process-variation envelope at "
                    "points of interest",
        measured=(f"PV envelope {r6.golden_envelope():.0f}; dies above it: "
                  + ", ".join(f"{k}={v}" for k, v in above.items())),
        matches_shape=any(count > 0 for name, count in above.items()
                          if name != "HT1"),
    ))

    # FIG7 -------------------------------------------------------------------
    r7 = fig7_model.run(config, platform)
    results["fig7"] = r7
    summaries.append(ExperimentSummary(
        experiment="Fig.7/Eq.5 Gaussian model",
        paper_claim="FN = FP = 1/2 - 1/2 erf(mu / 2 sigma sqrt(2))",
        measured=(f"mu={r7.mu:.0f}, sigma={r7.sigma:.0f}, analytic FN "
                  f"{percentage(r7.analytic_false_negative)}, empirical "
                  f"{percentage(r7.empirical_false_negative)}"),
        matches_shape=abs(r7.analytic_false_negative
                          - r7.empirical_false_negative) < 0.05,
    ))

    # TAB-HT ------------------------------------------------------------------
    rt = table_ht_sizes.run(config, platform)
    results["table_ht_sizes"] = rt
    summaries.append(ExperimentSummary(
        experiment="Trojan resource table",
        paper_claim="HT sizes 0.5/1.0/1.7 % of AES (0.19/0.36 % of FPGA for "
                    "HTcomb/HTseq)",
        measured=", ".join(
            f"{row.trojan_name}={percentage(row.fraction_of_aes)}"
            for row in rt.rows
        ),
        matches_shape=rt.ordering_matches_paper(),
    ))

    # HEADLINE ---------------------------------------------------------------
    rh = headline.run(config, platform, study=population_study)
    results["headline"] = rh
    summaries.append(ExperimentSummary(
        experiment="Headline FN vs HT size",
        paper_claim="FN 26/17/5 % for 0.5/1.0/1.7 % HTs; >95 % detection "
                    "for HT >= 1.7 %",
        measured=", ".join(
            f"{row.trojan_name}:{percentage(row.false_negative_rate)}"
            for row in rh.rows
        ) + f"; largest-HT detection {percentage(rh.largest_trojan_detection())}",
        matches_shape=(rh.is_monotone_decreasing()
                       and rh.largest_trojan_detection() >= 0.90),
    ))

    return SuiteResult(summaries=summaries, results=results)
