"""repro — reproduction of "Hardware Trojan Detection by Delay and
Electromagnetic Measurements" (Ngo et al., DATE 2015).

The package is organised as:

* :mod:`repro.crypto` — AES-128 target cipher with round tracing,
* :mod:`repro.netlist` — LUT-mapped structural netlists and timing,
* :mod:`repro.fpga` — device, placement, routing and power-grid models,
* :mod:`repro.trojan` — hardware trojan catalog and insertion,
* :mod:`repro.variation` — intra-die and inter-die process variation,
* :mod:`repro.measurement` — clock-glitch delay platform and EM bench,
* :mod:`repro.analysis` — traces, local maxima, Gaussian statistics,
* :mod:`repro.core` — the detection methods and the end-to-end platform,
* :mod:`repro.experiments` — one driver per paper figure/table,
* :mod:`repro.campaigns` — declarative batched scenario sweeps,
* :mod:`repro.io` — trace and result persistence,
* :mod:`repro.store` — content-addressed artifacts (sharding/resume).

Quick start::

    from repro import HTDetectionPlatform

    platform = HTDetectionPlatform()
    study = platform.run_population_em_study(["HT1", "HT2", "HT3"])
    print(study.false_negative_rates())
"""

from .core import (
    DelayDetector,
    DelayFingerprint,
    EMReference,
    HTDetectionPlatform,
    LocalMaximaSumMetric,
    PlatformConfig,
    PopulationEMDetector,
    SameDieEMDetector,
    detection_probability,
    false_negative_rate,
)
from .crypto import AES
from .fpga import GoldenDesign, spartan3an_700, virtex5_lx30
from .measurement import (
    DeviceUnderTest,
    EMSimulator,
    PathDelayMeter,
    generate_pk_pairs,
)
from .trojan import available_trojans, build_trojan, insert_trojan
from .variation import DiePopulation

__version__ = "1.0.0"

__all__ = [
    "AES",
    "DelayDetector",
    "DelayFingerprint",
    "DeviceUnderTest",
    "DiePopulation",
    "EMReference",
    "EMSimulator",
    "GoldenDesign",
    "HTDetectionPlatform",
    "LocalMaximaSumMetric",
    "PathDelayMeter",
    "PlatformConfig",
    "PopulationEMDetector",
    "SameDieEMDetector",
    "available_trojans",
    "build_trojan",
    "detection_probability",
    "false_negative_rate",
    "generate_pk_pairs",
    "insert_trojan",
    "spartan3an_700",
    "virtex5_lx30",
    "__version__",
]
