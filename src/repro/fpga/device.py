"""FPGA device models.

The paper uses two boards:

* a **Xilinx Spartan-3AN** board for the clock-glitch delay platform
  (10 ns nominal clock period, 1.2 V core), and
* **Xilinx Virtex-5 LX30** devices (65 nm) on an FF324 test board with a
  ZIF socket for the EM campaign across 8 dies.

An :class:`FPGADevice` describes the logic fabric at the granularity the
reproduction needs: a rectangular grid of slices, each with a number of
LUTs and flip-flops, plus the electrical/nominal-timing parameters used
by the measurement models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class FPGADevice:
    """Static description of an FPGA device.

    Attributes
    ----------
    name:
        Commercial device name.
    technology_nm:
        Process node in nanometres (drives the process-variation model).
    rows, columns:
        Dimensions of the slice grid.
    luts_per_slice, ffs_per_slice:
        Slice capacity.
    core_voltage_v:
        Nominal core supply voltage.
    nominal_clock_period_ns:
        Clock period of the reference design on this board.
    """

    name: str
    technology_nm: int
    rows: int
    columns: int
    luts_per_slice: int
    ffs_per_slice: int
    core_voltage_v: float
    nominal_clock_period_ns: float

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError("device grid dimensions must be positive")
        if self.luts_per_slice <= 0 or self.ffs_per_slice <= 0:
            raise ValueError("slice capacities must be positive")

    @property
    def total_slices(self) -> int:
        """Number of slices in the device."""
        return self.rows * self.columns

    @property
    def total_luts(self) -> int:
        """Number of LUTs in the device."""
        return self.total_slices * self.luts_per_slice

    @property
    def nominal_clock_period_ps(self) -> float:
        """Nominal clock period in picoseconds."""
        return self.nominal_clock_period_ns * 1000.0

    def iter_slices(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all slice coordinates, row-major."""
        for row in range(self.rows):
            for col in range(self.columns):
                yield (row, col)

    def contains(self, row: int, col: int) -> bool:
        """True if ``(row, col)`` is a valid slice coordinate."""
        return 0 <= row < self.rows and 0 <= col < self.columns

    def slice_fraction(self, slice_count: float) -> float:
        """Express a slice count as a fraction of the device."""
        return slice_count / self.total_slices


def virtex5_lx30() -> FPGADevice:
    """The Virtex-5 LX30 device used for the EM / process-variation study.

    The LX30 has 4 800 slices of 4 six-input LUTs and 4 flip-flops each,
    fabricated in 65 nm.  The EM experiments clock the AES at 24 MHz.
    """
    return FPGADevice(
        name="xc5vlx30",
        technology_nm=65,
        rows=80,
        columns=60,
        luts_per_slice=4,
        ffs_per_slice=4,
        core_voltage_v=1.0,
        nominal_clock_period_ns=1000.0 / 24.0,
    )


def spartan3an_700() -> FPGADevice:
    """The Spartan-3AN class device used for the delay (clock-glitch) platform.

    The paper specifies a 10 ns nominal clock period and a 1.2 V core on
    this board.  Spartan-3 slices hold two 4-input LUTs; the grid below
    approximates the XC3S700AN (5 888 slices).
    """
    return FPGADevice(
        name="xc3s700an",
        technology_nm=90,
        rows=92,
        columns=64,
        luts_per_slice=2,
        ffs_per_slice=2,
        core_voltage_v=1.2,
        nominal_clock_period_ns=10.0,
    )


#: Fraction of the FPGA slices occupied by the full AES-128 design
#: (Sec. II-B of the paper: "AES implementation covers 38.26 % of the
#: FPGA slices").  Used for area accounting of the trojans.
AES_SLICE_UTILISATION = 0.3826


def aes_slice_budget(device: FPGADevice) -> int:
    """Number of slices the full AES-128 design occupies on ``device``."""
    return int(round(device.total_slices * AES_SLICE_UTILISATION))
