"""The golden (trojan-free) reference design.

A :class:`GoldenDesign` bundles everything that defines the genuine
AES implementation as it leaves the trusted design house:

* the LUT-mapped last-round circuit (the timing-critical logic the
  clock-glitch measurement exercises),
* its placement into the AES floorplan region of a device,
* the routed per-net delays.

The trojan-insertion flow (:mod:`repro.trojan.insertion`) takes a golden
design and returns an infected variant that keeps the golden placement
and routing untouched — only extra cells in free slices and extra load
on tapped nets are added, mirroring the paper's FPGA-Editor methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..netlist.aes_round_circuit import AESLastRoundCircuit
from ..netlist.netlist import Netlist
from .device import FPGADevice, aes_slice_budget, virtex5_lx30
from .floorplan import Floorplan, default_floorplan
from .placement import Placement, Placer
from .routing import Router


@dataclass
class GoldenDesign:
    """The genuine AES design, placed and routed on a device."""

    device: FPGADevice
    floorplan: Floorplan
    circuit: AESLastRoundCircuit
    placement: Placement
    router: Router
    net_delays_ps: Dict[str, float] = field(default_factory=dict)

    @property
    def netlist(self) -> Netlist:
        """The structural netlist of the modelled (last-round) logic."""
        return self.circuit.netlist

    @classmethod
    def build(cls, device: Optional[FPGADevice] = None,
              floorplan: Optional[Floorplan] = None,
              router: Optional[Router] = None) -> "GoldenDesign":
        """Build, place and route the golden design on ``device``.

        The construction is deterministic: two calls with the same
        arguments produce identical placements and net delays, which is
        what lets golden and infected designs share their layout.
        """
        device = device or virtex5_lx30()
        floorplan = floorplan or default_floorplan(device)
        floorplan.validate()
        router = router or Router()
        circuit = AESLastRoundCircuit.build()
        placer = Placer(device)
        placement = placer.place(circuit.netlist, floorplan.aes_region)
        net_delays = router.net_delays(circuit.netlist, placement)
        return cls(
            device=device,
            floorplan=floorplan,
            circuit=circuit,
            placement=placement,
            router=router,
            net_delays_ps=net_delays,
        )

    # -- area accounting -----------------------------------------------------

    def modelled_slice_count(self) -> int:
        """Slices occupied by the modelled last-round logic."""
        return self.placement.used_slice_count()

    def aes_total_slices(self) -> int:
        """Slices the *full* AES design occupies on this device.

        The reproduction models the last round structurally; the rest of
        the AES (the other nine rounds' logic share the same datapath,
        the key schedule, control) is accounted for through the paper's
        reported utilisation (38.26 % of the device), which this method
        returns in slices.  Trojan sizes are expressed relative to this
        figure, as in the paper.
        """
        return aes_slice_budget(self.device)

    def area_fraction_of_aes(self, slice_count: float) -> float:
        """Express a slice count as a fraction of the full AES area."""
        return slice_count / float(self.aes_total_slices())


_GOLDEN_CACHE: Dict[Tuple[str, float], GoldenDesign] = {}


def build_golden_design_cached(device: Optional[FPGADevice] = None) -> GoldenDesign:
    """Build (or reuse) the golden design for ``device``.

    Building the LUT-mapped last round and placing it takes a noticeable
    fraction of a second; experiments that loop over dies and trojans
    reuse a single golden design since its construction is deterministic.
    """
    device = device or virtex5_lx30()
    key = (device.name, device.nominal_clock_period_ns)
    if key not in _GOLDEN_CACHE:
        _GOLDEN_CACHE[key] = GoldenDesign.build(device=device)
    return _GOLDEN_CACHE[key]
