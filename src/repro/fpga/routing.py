"""Routing-delay model.

A full FPGA router is out of scope (and irrelevant to the detection
algorithms); what matters is that every net gets a routing delay that

* grows with the placement distance between its driver and loads,
* grows with its fan-out (more switch-box hops, more capacitance),
* stays identical between the genuine and infected designs for all nets
  of the genuine circuit (the paper's frozen-placement-and-routing
  constraint), except for the extra load a trojan adds to tapped nets.

:class:`Router` computes a per-net delay map that is fed into the
:class:`~repro.netlist.timing.DelayAnnotation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..netlist.netlist import Netlist
from .placement import Placement, net_endpoints
from .slices import manhattan_distance

#: Delay of the local (intra-slice) portion of every route, in ps.
BASE_NET_DELAY_PS = 100.0
#: Additional delay per slice of Manhattan distance, in ps.
DELAY_PER_HOP_PS = 35.0
#: Additional delay per extra load (fan-out beyond the first), in ps.
DELAY_PER_LOAD_PS = 15.0


@dataclass
class RoutedNet:
    """Routing summary for one net."""

    net: str
    length_hops: int
    fanout: int
    delay_ps: float


class Router:
    """Distance/fan-out based net-delay estimator.

    Parameters
    ----------
    base_delay_ps, delay_per_hop_ps, delay_per_load_ps:
        Model coefficients; defaults approximate a 65 nm FPGA
        interconnect where a cross-chip route costs a few nanoseconds.
    """

    def __init__(self, base_delay_ps: float = BASE_NET_DELAY_PS,
                 delay_per_hop_ps: float = DELAY_PER_HOP_PS,
                 delay_per_load_ps: float = DELAY_PER_LOAD_PS):
        if min(base_delay_ps, delay_per_hop_ps, delay_per_load_ps) < 0:
            raise ValueError("routing delay coefficients must be non-negative")
        self.base_delay_ps = base_delay_ps
        self.delay_per_hop_ps = delay_per_hop_ps
        self.delay_per_load_ps = delay_per_load_ps

    def route_net(self, netlist: Netlist, placement: Placement,
                  net: str) -> RoutedNet:
        """Estimate the routing of a single net."""
        driver_pos, load_positions = net_endpoints(netlist, placement, net)
        if driver_pos is None or not load_positions:
            # Primary input or unloaded net: local route only.
            length = 0
        else:
            length = max(
                manhattan_distance(driver_pos, load) for load in load_positions
            )
        fanout = max(1, len(load_positions))
        delay = (self.base_delay_ps
                 + self.delay_per_hop_ps * length
                 + self.delay_per_load_ps * (fanout - 1))
        return RoutedNet(net=net, length_hops=length, fanout=fanout, delay_ps=delay)

    def route(self, netlist: Netlist, placement: Placement) -> Dict[str, RoutedNet]:
        """Route every net of ``netlist``; returns a per-net summary."""
        return {
            net: self.route_net(netlist, placement, net)
            for net in sorted(netlist.nets())
        }

    def net_delays(self, netlist: Netlist, placement: Placement
                   ) -> Dict[str, float]:
        """Per-net routing delay in ps (the shape the timing engine expects)."""
        return {net: routed.delay_ps
                for net, routed in self.route(netlist, placement).items()}


def added_tap_delay_ps(extra_loads: int, delay_per_load_ps: float = DELAY_PER_LOAD_PS,
                       per_tap_route_ps: float = 60.0) -> float:
    """Extra delay a net suffers when a trojan taps it.

    Tapping a net adds input-pin capacitance and usually a short stub
    route to the trojan slice.  The model is linear in the number of
    taps; the default per-tap cost is a fraction of a LUT delay, which
    keeps the induced shift in the same order as the paper's observed
    per-bit delay differences (hundreds of ps for directly loaded nets).
    """
    if extra_loads < 0:
        raise ValueError("extra_loads must be non-negative")
    return extra_loads * (delay_per_load_ps + per_tap_route_ps)
