"""Deterministic placement of netlists onto the slice grid.

The genuine AES last-round circuit is placed into the AES floorplan
region in a column-major "packer" fashion: S-box cones are kept
together (cells are sorted by name, and generated names share a prefix
per cone), flip-flops go to the same slice as the LUT driving them when
possible.  The placement is deterministic given the netlist and the
region, which mirrors the paper's requirement that the genuine and
infected designs share the exact same placement of the original logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.cells import CellType
from ..netlist.netlist import Netlist
from .device import FPGADevice
from .floorplan import Region
from .slices import PlacementError, SliceCoord, SliceMap


@dataclass
class Placement:
    """Result of placing one netlist onto a device."""

    device: FPGADevice
    region: Region
    slice_map: SliceMap
    cell_positions: Dict[str, SliceCoord] = field(default_factory=dict)

    def position_of(self, cell_name: str) -> SliceCoord:
        try:
            return self.cell_positions[cell_name]
        except KeyError as exc:
            raise PlacementError(f"cell {cell_name!r} has no position") from exc

    def occupied_slices(self) -> List[SliceCoord]:
        return sorted(self.slice_map.occupied_slices())

    def used_slice_count(self) -> int:
        return self.slice_map.used_slice_count()

    def cell_count(self) -> int:
        return len(self.cell_positions)


class Placer:
    """Greedy column-major packer.

    Cells are processed in name order (generated netlists use
    per-cone prefixes, so cones stay contiguous) and packed into slices
    of ``region`` in row-major order, honouring LUT and FF capacity.
    """

    def __init__(self, device: FPGADevice):
        self.device = device

    def place(self, netlist: Netlist, region: Region,
              slice_map: Optional[SliceMap] = None,
              avoid: Optional[Sequence[SliceCoord]] = None) -> Placement:
        """Place every cell of ``netlist`` inside ``region``.

        Parameters
        ----------
        netlist:
            The netlist whose cells to place.
        region:
            Placement region (slices outside are never used).
        slice_map:
            Existing occupancy to extend (e.g. placing a trojan on top of
            an already-placed AES); a fresh map is created if omitted.
        avoid:
            Slice coordinates that must not be used even if free.
        """
        slice_map = slice_map if slice_map is not None else SliceMap(self.device)
        avoid_set = set(avoid or [])
        positions: Dict[str, SliceCoord] = {}

        candidate_slices = [coord for coord in region.iter_slices()
                            if coord not in avoid_set]
        if not candidate_slices:
            raise PlacementError(f"region {region.name!r} offers no usable slices")

        slice_cursor = 0

        def next_slice_with_capacity(needs_lut: bool, needs_ff: bool) -> SliceCoord:
            nonlocal slice_cursor
            probe = slice_cursor
            while probe < len(candidate_slices):
                coord = candidate_slices[probe]
                usage = slice_map.usage(coord)
                lut_ok = (not needs_lut
                          or usage.luts_used < self.device.luts_per_slice)
                ff_ok = (not needs_ff
                         or usage.ffs_used < self.device.ffs_per_slice)
                if lut_ok and ff_ok:
                    slice_cursor = probe
                    return coord
                probe += 1
            raise PlacementError(
                f"region {region.name!r} ran out of slices while placing "
                f"{netlist.name!r}"
            )

        for cell in sorted(netlist.cells.values(), key=lambda c: c.name):
            needs_lut = cell.cell_type in (
                CellType.LUT, CellType.XOR2, CellType.AND2, CellType.OR2,
                CellType.INV, CellType.BUF,
            )
            needs_ff = cell.cell_type == CellType.DFF
            if cell.cell_type in (CellType.CONST0, CellType.CONST1,
                                  CellType.MUX2):
                # Constants and F7/F8 muxes are free resources: co-locate
                # them with the previously placed cell when possible.
                if positions:
                    coord = positions[sorted(positions)[-1]]
                else:
                    coord = candidate_slices[0]
                slice_map.usage(coord).cells.append(cell.name)
                slice_map._cell_slice[cell.name] = coord
                positions[cell.name] = coord
                continue
            coord = next_slice_with_capacity(needs_lut, needs_ff)
            slice_map.place_cell(cell.name, coord,
                                 uses_lut=needs_lut, uses_ff=needs_ff)
            positions[cell.name] = coord

        return Placement(
            device=self.device,
            region=region,
            slice_map=slice_map,
            cell_positions=positions,
        )


def net_endpoints(netlist: Netlist, placement: Placement,
                  net: str) -> Tuple[Optional[SliceCoord], List[SliceCoord]]:
    """Driver and load slice coordinates of ``net`` under ``placement``.

    Primary inputs have no driver position (None).
    """
    driver = netlist.driver_of(net)
    driver_pos = (placement.cell_positions.get(driver.name)
                  if driver is not None else None)
    load_positions = [
        placement.cell_positions[load.name]
        for load in netlist.loads_of(net)
        if load.name in placement.cell_positions
    ]
    return driver_pos, load_positions
