"""FPGA fabric substrate: devices, floorplan, placement, routing, PDN."""

from .annotation import build_delay_annotation
from .design import GoldenDesign, build_golden_design_cached
from .device import (
    AES_SLICE_UTILISATION,
    FPGADevice,
    aes_slice_budget,
    spartan3an_700,
    virtex5_lx30,
)
from .floorplan import Floorplan, Region, default_floorplan
from .placement import Placement, Placer, net_endpoints
from .power_grid import PowerGrid
from .routing import Router, RoutedNet, added_tap_delay_ps
from .slices import PlacementError, SliceCoord, SliceMap, manhattan_distance

__all__ = [
    "build_delay_annotation",
    "GoldenDesign",
    "build_golden_design_cached",
    "AES_SLICE_UTILISATION",
    "FPGADevice",
    "aes_slice_budget",
    "spartan3an_700",
    "virtex5_lx30",
    "Floorplan",
    "Region",
    "default_floorplan",
    "Placement",
    "Placer",
    "net_endpoints",
    "PowerGrid",
    "Router",
    "RoutedNet",
    "added_tap_delay_ps",
    "PlacementError",
    "SliceCoord",
    "SliceMap",
    "manhattan_distance",
]
