"""Floorplan regions on the slice grid.

The trojan-insertion flow of the paper keeps the genuine design's
placement and routing frozen and drops the trojan into *unused* slices.
To model that we need a notion of rectangular regions of the slice grid:
the region the AES occupies, and the free area around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .device import FPGADevice


@dataclass(frozen=True)
class Region:
    """A rectangular region of slices, inclusive of its bounds."""

    name: str
    row_min: int
    col_min: int
    row_max: int
    col_max: int

    def __post_init__(self) -> None:
        if self.row_min > self.row_max or self.col_min > self.col_max:
            raise ValueError(f"region {self.name!r} has inverted bounds")
        if self.row_min < 0 or self.col_min < 0:
            raise ValueError(f"region {self.name!r} has negative bounds")

    @property
    def rows(self) -> int:
        return self.row_max - self.row_min + 1

    @property
    def columns(self) -> int:
        return self.col_max - self.col_min + 1

    @property
    def slice_count(self) -> int:
        return self.rows * self.columns

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.row_min + self.row_max) / 2.0,
                (self.col_min + self.col_max) / 2.0)

    def contains(self, row: int, col: int) -> bool:
        return (self.row_min <= row <= self.row_max
                and self.col_min <= col <= self.col_max)

    def iter_slices(self) -> Iterator[Tuple[int, int]]:
        for row in range(self.row_min, self.row_max + 1):
            for col in range(self.col_min, self.col_max + 1):
                yield (row, col)

    def overlaps(self, other: "Region") -> bool:
        return not (self.row_max < other.row_min or other.row_max < self.row_min
                    or self.col_max < other.col_min or other.col_max < self.col_min)


@dataclass(frozen=True)
class Floorplan:
    """The floorplan used by the reference AES design.

    ``aes_region`` hosts the genuine AES; ``free_regions`` are the areas
    whose slices are left unused by the genuine design and are therefore
    available to a foundry-inserted trojan.
    """

    device: FPGADevice
    aes_region: Region
    free_regions: Tuple[Region, ...]

    def validate(self) -> None:
        """Check that all regions fit the device and do not overlap the AES."""
        all_regions: List[Region] = [self.aes_region, *self.free_regions]
        for region in all_regions:
            if not (self.device.contains(region.row_min, region.col_min)
                    and self.device.contains(region.row_max, region.col_max)):
                raise ValueError(
                    f"region {region.name!r} does not fit device {self.device.name}"
                )
        for region in self.free_regions:
            if region.overlaps(self.aes_region):
                raise ValueError(
                    f"free region {region.name!r} overlaps the AES region"
                )

    def free_slice_count(self) -> int:
        return sum(region.slice_count for region in self.free_regions)


def default_floorplan(device: FPGADevice,
                      aes_utilisation: float = 0.3826) -> Floorplan:
    """Build the default floorplan: AES block in the lower-left corner.

    The AES occupies a rectangle sized to ``aes_utilisation`` of the
    device; the rest of the fabric is split into two free regions (the
    column band to the right of the AES and the row band above it).
    """
    if not 0.0 < aes_utilisation < 1.0:
        raise ValueError("aes_utilisation must be in (0, 1)")
    target_slices = device.total_slices * aes_utilisation
    aes_rows = min(device.rows, max(1, int(round(target_slices ** 0.5))))
    aes_cols = min(device.columns, max(1, int(round(target_slices / aes_rows))))
    aes_region = Region("aes", 0, 0, aes_rows - 1, aes_cols - 1)

    free_regions: List[Region] = []
    if aes_cols < device.columns:
        free_regions.append(
            Region("free_east", 0, aes_cols, device.rows - 1, device.columns - 1)
        )
    if aes_rows < device.rows:
        free_regions.append(
            Region("free_north", aes_rows, 0, device.rows - 1, aes_cols - 1)
        )
    plan = Floorplan(device=device, aes_region=aes_region,
                     free_regions=tuple(free_regions))
    plan.validate()
    return plan
