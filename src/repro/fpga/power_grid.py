"""Power-distribution-network (PDN) coupling model.

The paper's key observation for the delay method is that a trojan does
not need to sit on a measured path to be detected: *"Even if no logical
connection exists between the design and the HT, both share the same
power grid inside the FPGA. These electric connections make the HT
detection easier."*

The model here is deliberately simple but physically motivated:

* the fabric is divided into rectangular PDN tiles, each fed by its own
  branch of the power grid with a small effective resistance;
* every placed cell draws a static (leakage + clock buffering) current
  and, when it switches, a dynamic current;
* the extra current drawn by trojan cells causes a voltage droop in the
  tiles they occupy, which decays with tile distance;
* a voltage droop slows every victim cell in proportion to the delay
  sensitivity ``d(delay)/dV`` of the technology.

The same spatial-aggregation machinery provides the EM probe coupling
weights (emanations from activity close to the probe are picked up more
strongly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from .device import FPGADevice
from .slices import SliceCoord

#: Current drawn by one occupied trojan cell site, in microamperes.  This
#: aggregates leakage, the clock-tree load the extra flip-flops/LUTs add,
#: and the dynamic current of the dormant trigger inputs; it is calibrated
#: so that a trojan of a few tens of slices shifts nearby path delays by a
#: few hundred picoseconds, the magnitude the paper observes for nets that
#: are not logically connected to the trojan (Sec. III-B).
STATIC_CURRENT_PER_CELL_UA = 120.0
#: Effective PDN tile resistance, in ohms.
TILE_RESISTANCE_OHM = 2.0
#: Delay sensitivity to supply droop, in ps per millivolt, for a ~100 ps
#: 65 nm LUT stage (a few percent delay increase per percent of supply
#: droop, accumulated over the cells sharing the affected PDN tiles).
DELAY_SENSITIVITY_PS_PER_MV = 2.0
#: Spatial decay length of the droop coupling, in PDN tiles.
DROOP_DECAY_TILES = 1.5


@dataclass
class PowerGrid:
    """PDN tile model over the slice grid.

    Parameters
    ----------
    device:
        The FPGA device.
    tile_rows, tile_cols:
        Size of one PDN tile in slices.
    """

    device: FPGADevice
    tile_rows: int = 10
    tile_cols: int = 10
    tile_resistance_ohm: float = TILE_RESISTANCE_OHM
    static_current_per_cell_ua: float = STATIC_CURRENT_PER_CELL_UA
    delay_sensitivity_ps_per_mv: float = DELAY_SENSITIVITY_PS_PER_MV
    droop_decay_tiles: float = DROOP_DECAY_TILES

    def __post_init__(self) -> None:
        if self.tile_rows <= 0 or self.tile_cols <= 0:
            raise ValueError("PDN tile dimensions must be positive")

    # -- tiling ------------------------------------------------------------

    def tile_of(self, coord: SliceCoord) -> Tuple[int, int]:
        """PDN tile index containing a slice coordinate."""
        row, col = coord
        if not self.device.contains(row, col):
            raise ValueError(f"slice {coord} outside device {self.device.name}")
        return (row // self.tile_rows, col // self.tile_cols)

    def tile_grid_shape(self) -> Tuple[int, int]:
        """Number of PDN tiles along each dimension."""
        rows = math.ceil(self.device.rows / self.tile_rows)
        cols = math.ceil(self.device.columns / self.tile_cols)
        return rows, cols

    def tile_distance(self, tile_a: Tuple[int, int], tile_b: Tuple[int, int]) -> float:
        """Euclidean distance between two PDN tiles."""
        return math.hypot(tile_a[0] - tile_b[0], tile_a[1] - tile_b[1])

    # -- droop computation ---------------------------------------------------

    def tile_currents_ua(self, cell_positions: Mapping[str, SliceCoord]
                         ) -> Dict[Tuple[int, int], float]:
        """Aggregate static current per PDN tile for the given placed cells."""
        currents: Dict[Tuple[int, int], float] = {}
        for coord in cell_positions.values():
            tile = self.tile_of(coord)
            currents[tile] = currents.get(tile, 0.0) + self.static_current_per_cell_ua
        return currents

    def droop_mv(self, aggressor_positions: Mapping[str, SliceCoord]
                 ) -> Dict[Tuple[int, int], float]:
        """Voltage droop (mV) per tile caused by the aggressor cells.

        The droop in a tile is the resistive drop of the current injected
        in that tile plus the exponentially decaying contribution of
        neighbouring tiles (shared PDN branches).
        """
        injected = self.tile_currents_ua(aggressor_positions)
        if not injected:
            return {}
        droop: Dict[Tuple[int, int], float] = {}
        tiles_rows, tiles_cols = self.tile_grid_shape()
        for row in range(tiles_rows):
            for col in range(tiles_cols):
                tile = (row, col)
                total = 0.0
                for source, current_ua in injected.items():
                    distance = self.tile_distance(tile, source)
                    weight = math.exp(-distance / self.droop_decay_tiles)
                    total += current_ua * weight
                # V = I * R; current in uA and R in ohm gives uV, convert to mV.
                droop[tile] = total * self.tile_resistance_ohm / 1000.0
        return droop

    def victim_delay_offsets_ps(self, victim_positions: Mapping[str, SliceCoord],
                                aggressor_positions: Mapping[str, SliceCoord]
                                ) -> Dict[str, float]:
        """Delay increase per victim cell caused by aggressor-induced droop."""
        droop = self.droop_mv(aggressor_positions)
        offsets: Dict[str, float] = {}
        for cell_name, coord in victim_positions.items():
            tile = self.tile_of(coord)
            offsets[cell_name] = (
                droop.get(tile, 0.0) * self.delay_sensitivity_ps_per_mv
            )
        return offsets

    # -- EM coupling -----------------------------------------------------------

    def probe_coupling(self, coord: SliceCoord, probe_position: Tuple[float, float],
                       decay_slices: float = 40.0) -> float:
        """Coupling weight between activity at ``coord`` and a global EM probe.

        The Langer RFU-5-2 probe used in the paper captures the *global*
        EM activity of the chip; the coupling therefore decays only
        slowly with distance.  A normalised exponential in slice units is
        used; ``decay_slices`` controls the spatial selectivity.
        """
        if decay_slices <= 0:
            raise ValueError("decay_slices must be positive")
        distance = math.hypot(coord[0] - probe_position[0],
                              coord[1] - probe_position[1])
        return math.exp(-distance / decay_slices)
