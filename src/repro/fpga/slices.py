"""Slice-level resource tracking.

A slice is the placement granule: it holds a handful of LUTs and
flip-flops.  :class:`SliceMap` tracks which LUT/FF sites of which slices
are occupied by which netlist cells, enforces capacity, and answers the
"which slices are unused?" question the trojan-insertion flow relies on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .device import FPGADevice

#: A slice coordinate on the fabric grid.
SliceCoord = Tuple[int, int]


class PlacementError(Exception):
    """Raised when a cell cannot be placed (capacity, bounds, duplicates)."""


@dataclass
class SliteSiteUsage:
    """Occupancy of one slice."""

    luts_used: int = 0
    ffs_used: int = 0
    cells: List[str] = field(default_factory=list)


@dataclass
class SliceMap:
    """Occupancy map of the slice grid for one placed design."""

    device: FPGADevice
    _usage: Dict[SliceCoord, SliteSiteUsage] = field(default_factory=dict)
    _cell_slice: Dict[str, SliceCoord] = field(default_factory=dict)

    def usage(self, coord: SliceCoord) -> SliteSiteUsage:
        """Occupancy record for one slice (created on demand)."""
        if coord not in self._usage:
            self._usage[coord] = SliteSiteUsage()
        return self._usage[coord]

    def place_cell(self, cell_name: str, coord: SliceCoord,
                   uses_lut: bool = True, uses_ff: bool = False) -> SliceCoord:
        """Place one cell on a slice, consuming LUT and/or FF sites."""
        row, col = coord
        if not self.device.contains(row, col):
            raise PlacementError(
                f"slice {coord} outside device {self.device.name}"
            )
        if cell_name in self._cell_slice:
            raise PlacementError(f"cell {cell_name!r} is already placed")
        record = self.usage(coord)
        if uses_lut and record.luts_used >= self.device.luts_per_slice:
            raise PlacementError(f"slice {coord} has no free LUT for {cell_name!r}")
        if uses_ff and record.ffs_used >= self.device.ffs_per_slice:
            raise PlacementError(f"slice {coord} has no free FF for {cell_name!r}")
        if uses_lut:
            record.luts_used += 1
        if uses_ff:
            record.ffs_used += 1
        record.cells.append(cell_name)
        self._cell_slice[cell_name] = coord
        return coord

    def slice_of(self, cell_name: str) -> SliceCoord:
        """Coordinate of the slice hosting ``cell_name``."""
        try:
            return self._cell_slice[cell_name]
        except KeyError as exc:
            raise PlacementError(f"cell {cell_name!r} is not placed") from exc

    def is_placed(self, cell_name: str) -> bool:
        return cell_name in self._cell_slice

    def cells_in_slice(self, coord: SliceCoord) -> List[str]:
        return list(self._usage.get(coord, SliteSiteUsage()).cells)

    def occupied_slices(self) -> Set[SliceCoord]:
        """Slices hosting at least one cell."""
        return {coord for coord, usage in self._usage.items() if usage.cells}

    def used_slice_count(self) -> int:
        return len(self.occupied_slices())

    def free_slices(self, candidates: Optional[Iterable[SliceCoord]] = None
                    ) -> List[SliceCoord]:
        """Slices with no placed cell, restricted to ``candidates`` if given."""
        occupied = self.occupied_slices()
        pool = candidates if candidates is not None else self.device.iter_slices()
        return [coord for coord in pool if coord not in occupied]

    def placed_cells(self) -> Dict[str, SliceCoord]:
        """Mapping cell name -> slice coordinate for every placed cell."""
        return dict(self._cell_slice)

    def utilisation(self) -> float:
        """Fraction of device slices hosting at least one cell."""
        return self.used_slice_count() / self.device.total_slices

    def merge(self, other: "SliceMap") -> None:
        """Fold another slice map (e.g. a trojan's) into this one."""
        if other.device.name != self.device.name:
            raise PlacementError("cannot merge slice maps of different devices")
        for cell_name, coord in other.placed_cells().items():
            usage = other._usage[coord]
            uses_lut = True
            uses_ff = False
            # Heuristic: re-derive site type from the original record size;
            # callers that need exact site bookkeeping should re-place cells.
            self.place_cell(cell_name, coord, uses_lut=uses_lut, uses_ff=uses_ff)


def manhattan_distance(a: SliceCoord, b: SliceCoord) -> int:
    """Manhattan distance between two slice coordinates."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
