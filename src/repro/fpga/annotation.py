"""Construction of timing annotations for a placed design on a given die.

This module is the bridge between the physical models (placement,
routing, process variation, power grid, trojan loading) and the netlist
timing engine: it assembles a
:class:`~repro.netlist.timing.DelayAnnotation` describing how fast every
cell and net of a design is *on one particular die*, optionally
including the parasitic effects of an inserted trojan.

Keeping this as a free function over plain mappings (rather than a
method of the design or trojan classes) avoids circular dependencies and
makes the individual contributions easy to test in isolation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..netlist.timing import DelayAnnotation
from ..variation.inter_die import DieProfile
from ..variation.intra_die import IntraDieVariation
from .design import GoldenDesign
from .power_grid import PowerGrid
from .slices import SliceCoord


def build_delay_annotation(design: GoldenDesign,
                           die: Optional[DieProfile] = None,
                           intra_die: Optional[IntraDieVariation] = None,
                           extra_net_delays_ps: Optional[Mapping[str, float]] = None,
                           aggressor_positions: Optional[Mapping[str, SliceCoord]] = None,
                           power_grid: Optional[PowerGrid] = None
                           ) -> DelayAnnotation:
    """Build the delay annotation of ``design`` on one die.

    Parameters
    ----------
    design:
        The placed and routed golden design.
    die:
        Inter-die profile; its ``delay_scale`` multiplies every cell
        delay.  ``None`` means a nominal (typical) die.
    intra_die:
        Intra-die variation field of that die; adds a per-cell offset.
        ``None`` disables intra-die variation.
    extra_net_delays_ps:
        Additional routing delay per net, e.g. the capacitive loading a
        trojan adds to tapped nets.  Applied on top of the routed delays.
    aggressor_positions:
        Cell positions of an inserted trojan.  When given together with
        ``power_grid``, the IR-drop they cause adds a delay offset to the
        victim (golden) cells sharing the affected PDN tiles.
    power_grid:
        The PDN model used for the droop computation.

    Returns
    -------
    A fresh :class:`DelayAnnotation`; the inputs are not modified.
    """
    net_delays: Dict[str, float] = dict(design.net_delays_ps)
    if extra_net_delays_ps:
        for net, extra in extra_net_delays_ps.items():
            net_delays[net] = net_delays.get(net, 0.0) + float(extra)

    cell_offsets: Dict[str, float] = {}
    positions = design.placement.cell_positions
    if intra_die is not None:
        cell_offsets.update(intra_die.offsets_for(positions))

    if aggressor_positions and power_grid is not None:
        droop_offsets = power_grid.victim_delay_offsets_ps(
            victim_positions=positions,
            aggressor_positions=aggressor_positions,
        )
        for cell_name, offset in droop_offsets.items():
            cell_offsets[cell_name] = cell_offsets.get(cell_name, 0.0) + offset

    return DelayAnnotation(
        cell_offsets_ps=cell_offsets,
        net_delays_ps=net_delays,
        cell_scale=die.delay_scale if die is not None else 1.0,
    )
