"""Decision policies and detection outcomes.

Both detectors reduce their evidence to a scalar score and compare it
against a threshold derived from the golden reference.  Keeping the
policy separate from the detectors makes the threshold choice explicit
and lets the ablation benchmarks swap policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of one accept/reject decision.

    Attributes
    ----------
    label:
        The device under test's label.
    score:
        The scalar evidence (delay difference in ps, EM metric...).
    threshold:
        The decision threshold that was applied.
    is_infected:
        The verdict: True = reject (trojan suspected).
    details:
        Free-form human-readable context for reports.
    """

    label: str
    score: float
    threshold: float
    is_infected: bool
    details: str = ""

    def margin(self) -> float:
        """Signed distance of the score above the threshold."""
        return self.score - self.threshold


@dataclass(frozen=True)
class ThresholdPolicy:
    """Threshold = reference mean + ``num_sigmas`` x reference spread.

    This is the classic golden-model policy: the threshold is calibrated
    only from genuine devices, so the false-positive rate is controlled
    by ``num_sigmas`` regardless of what trojans look like.
    """

    num_sigmas: float = 3.0
    minimum_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.num_sigmas < 0:
            raise ValueError("num_sigmas must be non-negative")
        if self.minimum_threshold < 0:
            raise ValueError("minimum_threshold must be non-negative")

    def threshold(self, reference_scores: Sequence[float]) -> float:
        """Compute the decision threshold from genuine reference scores."""
        scores = np.asarray(reference_scores, dtype=float)
        if scores.size == 0:
            raise ValueError("at least one reference score is required")
        spread = scores.std(ddof=1) if scores.size > 1 else 0.0
        return float(max(self.minimum_threshold,
                         scores.mean() + self.num_sigmas * spread))

    def decide(self, label: str, score: float,
               reference_scores: Sequence[float],
               details: str = "") -> DetectionOutcome:
        """Apply the policy to one score."""
        threshold = self.threshold(reference_scores)
        return DetectionOutcome(
            label=label,
            score=float(score),
            threshold=threshold,
            is_infected=bool(score > threshold),
            details=details,
        )


@dataclass(frozen=True)
class FixedThresholdPolicy:
    """A fixed, externally supplied threshold (for what-if analyses)."""

    value: float

    def threshold(self, reference_scores: Sequence[float]) -> float:
        return float(self.value)

    def decide(self, label: str, score: float,
               reference_scores: Sequence[float],
               details: str = "") -> DetectionOutcome:
        return DetectionOutcome(
            label=label,
            score=float(score),
            threshold=float(self.value),
            is_infected=bool(score > self.value),
            details=details,
        )
