"""Delay-based hardware-trojan detection (Sec. III).

The detector compares a device under test's per-bit path delays (steps
to fault, measured by the clock-glitch platform) against the golden
fingerprint.  The per-(pair, bit) observable is the Eq. (4) delay
difference; the device-level score is its maximum over all measured
bits and pairs — a trojan only needs to disturb *one* net to be caught,
and the paper stresses that every wire acts as a trojan sensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..measurement.delay_meter import DelayMeasurement
from .decision import DetectionOutcome, ThresholdPolicy
from .fingerprint import DelayFingerprint


@dataclass
class DelayComparisonResult:
    """Per-bit comparison of one DUT against the golden fingerprint.

    ``difference_ps`` has shape ``(num_pairs, 128)``: the Eq. (4) delay
    difference for every (pair, bit), in picoseconds.  Entries where
    neither campaign observed the bit faulting stay at 0.
    """

    label: str
    difference_ps: np.ndarray
    outcome: DetectionOutcome
    per_pair_max_ps: np.ndarray = field(default_factory=lambda: np.array([]))

    @property
    def max_difference_ps(self) -> float:
        """The device-level score: worst per-bit delay shift observed."""
        return float(self.difference_ps.max()) if self.difference_ps.size else 0.0

    def suspicious_bits(self, threshold_ps: Optional[float] = None
                        ) -> List[int]:
        """Paper-bit indices whose shift exceeds the decision threshold."""
        threshold = self.outcome.threshold if threshold_ps is None else threshold_ps
        mask = (self.difference_ps > threshold).any(axis=0)
        return [int(bit) for bit in np.flatnonzero(mask)]

    def pair_profile(self, pair_index: int) -> np.ndarray:
        """Per-bit delay differences of one (P, K) pair (a Fig. 3 curve)."""
        if not 0 <= pair_index < self.difference_ps.shape[0]:
            raise ValueError(
                f"pair_index must be in range({self.difference_ps.shape[0]})"
            )
        return self.difference_ps[pair_index]


class DelayDetector:
    """Golden-model delay comparison.

    Parameters
    ----------
    fingerprint:
        The golden fingerprint (mean steps-to-fault per pair and bit).
    policy:
        Decision policy applied to the device-level score.  The
        reference scores it calibrates on are the clean-versus-clean
        differences implied by the fingerprint's repetition noise, or
        the scores of explicitly provided clean campaigns
        (:meth:`calibrate_with_clean`).
    """

    def __init__(self, fingerprint: DelayFingerprint,
                 policy: Optional[ThresholdPolicy] = None):
        self.fingerprint = fingerprint
        self.policy = policy or ThresholdPolicy(num_sigmas=4.0)
        self._clean_scores: List[float] = []

    # -- calibration ------------------------------------------------------------

    def expected_clean_score_ps(self) -> float:
        """Expected clean-device score from the fingerprint's own noise.

        The score is a maximum over many (pair, bit) entries, so the
        noise floor is scaled by a small factor accounting for the
        extreme-value effect; this keeps the detector usable when no
        second clean device is available for calibration.
        """
        noise = self.fingerprint.noise_floor_ps()
        num_cells = self.fingerprint.mean_steps.size
        extreme_factor = np.sqrt(2.0 * np.log(max(2, num_cells)))
        # The DUT is a single campaign with the same repetition count, so
        # both sides contribute noise.
        return float(noise * np.sqrt(2.0) * extreme_factor)

    def calibrate_with_clean(self, clean_measurements: Sequence[DelayMeasurement]
                             ) -> List[float]:
        """Record clean-device scores to calibrate the decision threshold."""
        scores = []
        for measurement in clean_measurements:
            scores.append(self._device_score(measurement))
        self._clean_scores.extend(scores)
        return scores

    def reference_scores(self) -> List[float]:
        """Scores the threshold policy calibrates on.

        The synthetic expected-clean scores derived from the fingerprint
        noise are always included so the reference population keeps a
        non-zero spread even when only a single clean campaign was
        available for calibration (a single point would otherwise pin the
        threshold exactly on that campaign's score).
        """
        expected = self.expected_clean_score_ps()
        scores = [expected * 0.8, expected * 1.2]
        scores.extend(self._clean_scores)
        return scores

    # -- comparison ----------------------------------------------------------------

    def difference_ps(self, measurement: DelayMeasurement) -> np.ndarray:
        """Eq. (4) per-(pair, bit) delay differences against the fingerprint.

        Serial reference of :meth:`difference_ps_batch`.
        """
        if measurement.mean_steps().shape != self.fingerprint.mean_steps.shape:
            raise ValueError(
                "measurement and fingerprint cover different campaigns "
                f"({measurement.mean_steps().shape} vs "
                f"{self.fingerprint.mean_steps.shape}); use the same pairs "
                "and glitch sweep"
            )
        dut_ps = measurement.mean_delay_ps()
        gm_ps = self.fingerprint.mean_delay_ps()
        return np.abs(gm_ps - dut_ps)

    def difference_ps_batch(self, measurements: Sequence[DelayMeasurement]
                            ) -> np.ndarray:
        """Eq. (4) differences of many device campaigns in one pass.

        Stacks the per-device mean delays into a ``(devices, pairs,
        bits)`` tensor and broadcasts the golden fingerprint against it;
        every ``[d]`` plane is bit-identical to
        :meth:`difference_ps` on ``measurements[d]`` (the serial
        reference).
        """
        shape = self.fingerprint.mean_steps.shape
        if not measurements:
            return np.zeros((0,) + shape)
        for measurement in measurements:
            if measurement.mean_steps().shape != shape:
                raise ValueError(
                    "measurement and fingerprint cover different campaigns "
                    f"({measurement.mean_steps().shape} vs {shape}); use "
                    "the same pairs and glitch sweep"
                )
        stacked = np.stack([measurement.mean_delay_ps()
                            for measurement in measurements])
        return np.abs(self.fingerprint.mean_delay_ps()[None, :, :] - stacked)

    def _device_score(self, measurement: DelayMeasurement) -> float:
        return float(self.difference_ps(measurement).max())

    def compare(self, measurement: DelayMeasurement) -> DelayComparisonResult:
        """Compare one DUT campaign against the golden fingerprint."""
        differences = self.difference_ps(measurement)
        score = float(differences.max())
        outcome = self.policy.decide(
            label=measurement.label,
            score=score,
            reference_scores=self.reference_scores(),
            details=(
                f"max |Delta D| over {differences.shape[0]} pairs x "
                f"{differences.shape[1]} bits"
            ),
        )
        return DelayComparisonResult(
            label=measurement.label,
            difference_ps=differences,
            outcome=outcome,
            per_pair_max_ps=differences.max(axis=1),
        )

    def compare_many(self, measurements: Sequence[DelayMeasurement]
                     ) -> Dict[str, DelayComparisonResult]:
        """Compare several DUT campaigns; returns results keyed by label."""
        return {m.label: self.compare(m) for m in measurements}
