"""Plain-text reporting of study results.

The experiment drivers and the CLI print their results through these
helpers so that the formatting (aligned columns, percentage rendering)
stays consistent and testable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from .delay_detector import DelayComparisonResult
from .em_detector import PopulationCharacterisation, SameDieComparison
from .pipeline import (
    DelayStudyResult,
    PopulationEMStudyResult,
    SameDieEMStudyResult,
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def percentage(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def delay_study_report(result: DelayStudyResult) -> str:
    """Summary table of a Sec. III delay study."""
    rows: List[List[str]] = []
    for label, comparison in result.comparisons.items():
        outcome = comparison.outcome
        rows.append([
            label,
            f"{comparison.max_difference_ps:.0f} ps",
            f"{outcome.threshold:.0f} ps",
            "INFECTED" if outcome.is_infected else "clean",
            str(len(comparison.suspicious_bits())),
        ])
    table = format_table(
        ["design", "max |Delta D|", "threshold", "verdict", "suspicious bits"],
        rows,
    )
    return "Delay-based detection (Sec. III)\n" + table


def same_die_em_report(result: SameDieEMStudyResult) -> str:
    """Summary of the Sec. IV same-die EM comparison."""
    rows: List[List[str]] = []
    for label, comparison in result.comparisons.items():
        rows.append([
            label,
            f"{comparison.max_difference:.0f}",
            f"{comparison.noise_floor:.0f}",
            f"{comparison.outcome.threshold:.0f}",
            "INFECTED" if comparison.outcome.is_infected else "clean",
        ])
    table = format_table(
        ["design", "max |diff|", "noise floor", "threshold", "verdict"], rows
    )
    return "Same-die EM detection (Sec. IV)\n" + table


def population_em_report(result: PopulationEMStudyResult) -> str:
    """Summary of the Sec. V inter-die study (the headline table)."""
    rows: List[List[str]] = []
    for name, characterisation in result.characterisations.items():
        rows.append([
            name,
            percentage(result.trojan_area_fractions[name]),
            f"{characterisation.mu:.0f}",
            f"{characterisation.sigma:.0f}",
            percentage(characterisation.false_negative_rate),
            percentage(characterisation.detection_probability),
        ])
    table = format_table(
        ["trojan", "size (% AES)", "mu", "sigma", "false negative", "detection"],
        rows,
    )
    return ("Inter-die EM detection with process variations (Sec. V)\n"
            + table)


def headline_summary(result: PopulationEMStudyResult) -> Dict[str, float]:
    """The headline numbers as a dictionary (trojan name -> FN rate)."""
    return result.false_negative_rates()
