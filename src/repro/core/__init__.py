"""The paper's contribution: delay and EM trojan detection.

This package contains the detection methods themselves — the delay model
of Eqs. (1)-(4), the golden-model fingerprints, the delay detector, the
same-die and inter-die EM detectors, the local-maxima-sum metric and the
Eq. (5) false-negative model — plus the end-to-end platform that wires
them to the simulated measurement substrate.
"""

from .decision import DetectionOutcome, FixedThresholdPolicy, ThresholdPolicy
from .delay_detector import DelayComparisonResult, DelayDetector
from .delay_model import (
    NetDelayModel,
    delay_difference,
    detectable_trojan_delay_ps,
    expected_difference_noise_ps,
)
from .em_detector import (
    PopulationCharacterisation,
    PopulationComparison,
    PopulationEMDetector,
    SameDieComparison,
    SameDieEMDetector,
)
from .fingerprint import DelayFingerprint, EMReference
from .metrics import (
    L1TraceMetric,
    LocalMaximaSumMetric,
    MaxDifferenceMetric,
    detection_probability,
    false_negative_rate,
    required_separation,
)
from .pipeline import (
    DelayStudyResult,
    HTDetectionPlatform,
    PlatformConfig,
    PopulationEMStudyResult,
    SameDieEMStudyResult,
)
from .report import (
    delay_study_report,
    format_table,
    headline_summary,
    percentage,
    population_em_report,
    same_die_em_report,
)

__all__ = [
    "DetectionOutcome",
    "FixedThresholdPolicy",
    "ThresholdPolicy",
    "DelayComparisonResult",
    "DelayDetector",
    "NetDelayModel",
    "delay_difference",
    "detectable_trojan_delay_ps",
    "expected_difference_noise_ps",
    "PopulationCharacterisation",
    "PopulationComparison",
    "PopulationEMDetector",
    "SameDieComparison",
    "SameDieEMDetector",
    "DelayFingerprint",
    "EMReference",
    "L1TraceMetric",
    "LocalMaximaSumMetric",
    "MaxDifferenceMetric",
    "detection_probability",
    "false_negative_rate",
    "required_separation",
    "DelayStudyResult",
    "HTDetectionPlatform",
    "PlatformConfig",
    "PopulationEMStudyResult",
    "SameDieEMStudyResult",
    "delay_study_report",
    "format_table",
    "headline_summary",
    "percentage",
    "population_em_report",
    "same_die_em_report",
]
