"""Golden-model fingerprints.

Both detection methods compare a device under test against a reference
built from the golden model (GM):

* the **delay fingerprint** (Sec. III) is the per-(pair, bit) mean
  steps-to-fault of repeated measurements on the GM, together with the
  repetition noise needed to set a decision threshold;
* the **EM reference** (Sec. IV/V) is the mean golden trace — the
  ``E_8(G)`` of Fig. 6 when built from several golden dies — together
  with the per-sample spread of the golden population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..analysis.traces import TraceLike, mean_trace, per_sample_std, stack_traces
from ..measurement.delay_meter import DelayMeasurement


@dataclass
class DelayFingerprint:
    """Per-(pair, bit) delay fingerprint of the golden model.

    Attributes
    ----------
    mean_steps:
        Mean steps-to-fault over repetitions, shape ``(num_pairs, 128)``.
    repetition_std_steps:
        Per-(pair, bit) standard deviation across repetitions.
    glitch_step_ps:
        Conversion factor from steps to picoseconds.
    num_repetitions:
        Number of repetitions averaged into the fingerprint.
    label:
        Name of the reference device ("GM").
    """

    mean_steps: np.ndarray
    repetition_std_steps: np.ndarray
    glitch_step_ps: float
    num_repetitions: int
    label: str = "GM"

    def __post_init__(self) -> None:
        self.mean_steps = np.asarray(self.mean_steps, dtype=float)
        self.repetition_std_steps = np.asarray(self.repetition_std_steps,
                                               dtype=float)
        if self.mean_steps.shape != self.repetition_std_steps.shape:
            raise ValueError("mean and std arrays must have the same shape")
        if self.glitch_step_ps <= 0:
            raise ValueError("glitch_step_ps must be positive")
        if self.num_repetitions <= 0:
            raise ValueError("num_repetitions must be positive")

    @property
    def num_pairs(self) -> int:
        return int(self.mean_steps.shape[0])

    @property
    def num_bits(self) -> int:
        return int(self.mean_steps.shape[1])

    def mean_delay_ps(self) -> np.ndarray:
        """Mean steps converted to picoseconds."""
        return self.mean_steps * self.glitch_step_ps

    def noise_floor_ps(self) -> float:
        """Typical measurement-noise level of the fingerprint, in ps.

        The standard error of the per-bit mean, averaged over measurable
        (pair, bit) entries; used by the default decision threshold.
        """
        std_ps = self.repetition_std_steps * self.glitch_step_ps
        measurable = std_ps[~np.isnan(std_ps)]
        if measurable.size == 0:
            return 0.0
        return float(measurable.mean() / np.sqrt(self.num_repetitions))

    @classmethod
    def from_measurement(cls, measurement: DelayMeasurement,
                         label: Optional[str] = None) -> "DelayFingerprint":
        """Build the fingerprint from one golden-model campaign."""
        return cls(
            mean_steps=measurement.mean_steps(),
            repetition_std_steps=measurement.steps_matrix().std(axis=1, ddof=0),
            glitch_step_ps=measurement.config.glitch_step_ps,
            num_repetitions=measurement.config.repetitions,
            label=label or measurement.label,
        )


@dataclass
class EMReference:
    """Mean golden EM trace and golden-population spread.

    Built from one or several golden acquisitions: on a single die this
    is simply the reference trace of Sec. IV; across dies it is the
    ``E_8(G)`` of Sec. V together with the per-sample process-variation
    spread.
    """

    mean: np.ndarray
    per_sample_std: np.ndarray
    num_traces: int
    label: str = "E(G)"

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=float)
        self.per_sample_std = np.asarray(self.per_sample_std, dtype=float)
        if self.mean.shape != self.per_sample_std.shape:
            raise ValueError("mean and std must have the same shape")
        if self.num_traces <= 0:
            raise ValueError("num_traces must be positive")

    @property
    def num_samples(self) -> int:
        return int(self.mean.size)

    def noise_floor(self) -> float:
        """Typical per-sample spread of the golden population."""
        return float(self.per_sample_std.mean())

    @classmethod
    def from_traces(cls, traces: Sequence[TraceLike],
                    label: str = "E(G)") -> "EMReference":
        """Build the reference from a set of golden traces.

        A pre-stacked ``(num_traces, num_samples)`` ndarray passes
        straight through to :meth:`from_matrix` without re-stacking.
        """
        return cls.from_matrix(stack_traces(traces), label=label)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray,
                    label: str = "E(G)") -> "EMReference":
        """Build the reference from a stacked trace matrix in one pass.

        The whole golden population is characterised with two axis
        reductions (mean, per-sample std) — no per-trace loop and no
        intermediate :class:`~repro.measurement.em_simulator.EMTrace`
        objects.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("matrix must be (num_traces, num_samples)")
        return cls(
            mean=matrix.mean(axis=0),
            per_sample_std=(matrix.std(axis=0, ddof=1) if matrix.shape[0] > 1
                            else np.zeros(matrix.shape[1])),
            num_traces=matrix.shape[0],
            label=label,
        )
