"""The per-net delay model of Sec. III-B (Eqs. 2-4).

The paper refines the delay of a net ``Na`` of the golden model as

    D_GM(Na, r1) = dS_a + dPV_a + dM_r1                         (2)

where ``dS`` is the static (nominal) delay, ``dPV`` the arbitrary delay
induced by intra-die process variations and ``dM_r`` the random
metastability / environmental noise of measurement run ``r``.  An
infected circuit adds the trojan contribution ``dHT_a``:

    D_HT(Na, r2) = dS_a + dPV_a + dM_r2 + dHT_a                  (3)

and the detection observable is the difference between the mean golden
delay (averaged over 10 runs) and the delay measured on the device under
test:

    dD(Na, r) = | mean_10(D_GM(Na)) - D_HT(Na, r) |
              = | dM~ - dHT_a |                                  (4)

These dataclasses give the model a concrete, testable form: the delay
detector's algebra (and its property-based tests) are written against
them, and the measurement substrate realises each term physically
(``dS`` from the netlist + routing, ``dPV`` from
:class:`~repro.variation.intra_die.IntraDieVariation`, ``dM`` from
:class:`~repro.measurement.noise.DelayNoiseModel`, ``dHT`` from the
trojan's tap loading and power-grid coupling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class NetDelayModel:
    """Static and process-variation components of one net's delay.

    Attributes
    ----------
    net:
        Net name (documentation only; the model is per net).
    static_ps:
        ``dS`` — nominal delay of the net.
    process_variation_ps:
        ``dPV`` — frozen per-die intra-die variation of this net.
    trojan_extra_ps:
        ``dHT`` — the additional delay the trojan causes on this net
        (0 for a genuine circuit).
    """

    net: str
    static_ps: float
    process_variation_ps: float = 0.0
    trojan_extra_ps: float = 0.0

    def __post_init__(self) -> None:
        if self.static_ps < 0:
            raise ValueError("static_ps must be non-negative")

    @property
    def is_infected(self) -> bool:
        """True if the net carries a trojan-induced delay contribution."""
        return self.trojan_extra_ps != 0.0

    def nominal_delay_ps(self) -> float:
        """Delay without measurement noise (dS + dPV + dHT)."""
        return self.static_ps + self.process_variation_ps + self.trojan_extra_ps

    def measure(self, rng: np.random.Generator, noise_sigma_ps: float = 20.0
                ) -> float:
        """One measured delay sample (Eq. 2 or Eq. 3 depending on dHT)."""
        if noise_sigma_ps < 0:
            raise ValueError("noise_sigma_ps must be non-negative")
        noise = rng.normal(0.0, noise_sigma_ps) if noise_sigma_ps > 0 else 0.0
        return self.nominal_delay_ps() + noise

    def measure_mean(self, rng: np.random.Generator, repetitions: int = 10,
                     noise_sigma_ps: float = 20.0) -> float:
        """Mean of ``repetitions`` measurements (the paper's 10-run average)."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        samples = [self.measure(rng, noise_sigma_ps) for _ in range(repetitions)]
        return float(np.mean(samples))


def delay_difference(golden_mean_ps: float, dut_delay_ps: float) -> float:
    """The detection observable of Eq. (4): |mean golden delay - DUT delay|."""
    return abs(golden_mean_ps - dut_delay_ps)


def expected_difference_noise_ps(noise_sigma_ps: float,
                                 golden_repetitions: int = 10) -> float:
    """Standard deviation of Eq. (4) for a genuine DUT (dHT = 0).

    The golden reference is the mean of ``golden_repetitions`` noisy
    measurements; the DUT contributes one more noisy measurement, so the
    difference has standard deviation
    ``sigma * sqrt(1 + 1/golden_repetitions)``.
    """
    if noise_sigma_ps < 0:
        raise ValueError("noise_sigma_ps must be non-negative")
    if golden_repetitions <= 0:
        raise ValueError("golden_repetitions must be positive")
    return noise_sigma_ps * float(np.sqrt(1.0 + 1.0 / golden_repetitions))


def detectable_trojan_delay_ps(noise_sigma_ps: float,
                               golden_repetitions: int = 10,
                               confidence_sigmas: float = 3.0) -> float:
    """Smallest ``dHT`` reliably separable from the Eq. (4) noise floor.

    A trojan-induced delay shift is detectable on one net when it exceeds
    the noise of the difference observable by ``confidence_sigmas``
    standard deviations.
    """
    if confidence_sigmas <= 0:
        raise ValueError("confidence_sigmas must be positive")
    return confidence_sigmas * expected_difference_noise_ps(
        noise_sigma_ps, golden_repetitions
    )
