"""End-to-end detection platform.

:class:`HTDetectionPlatform` wires every substrate together — golden
design, trojan catalog, die population, delay meter and EM bench — and
exposes the campaigns the paper runs:

* :meth:`run_delay_study` — Sec. III: delay fingerprint on the golden
  model, comparison of clean and infected devices over (P, K) pairs;
* :meth:`run_same_die_em_study` — Sec. IV: averaged-trace comparison of
  a genuine and an infected design on the same die;
* :meth:`run_population_em_study` — Sec. V: HT1/HT2/HT3 across a die
  population, local-maxima-sum metric, Eq. (5) false-negative rates.

The experiment drivers (:mod:`repro.experiments`) and the examples are
thin wrappers over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.traces import stack_traces
from ..fpga.design import GoldenDesign
from ..fpga.device import FPGADevice, virtex5_lx30
from ..stimulus import DEFAULT_KEY, DEFAULT_PLAINTEXT
from ..measurement.delay_meter import (
    DelayMeasurement,
    DelayMeasurementConfig,
    PathDelayMeter,
    PlaintextKeyPair,
    generate_pk_pairs,
)
from ..measurement.dut import DeviceUnderTest
from ..measurement.em_simulator import EMAcquisitionConfig, EMSimulator, EMTrace
from ..trojan.insertion import InfectedDesign, insert_trojan
from ..trojan.library import build_trojan
from ..variation.inter_die import DiePopulation, DieProfile
from .delay_detector import DelayComparisonResult, DelayDetector
from .em_detector import (
    PopulationCharacterisation,
    PopulationEMDetector,
    SameDieComparison,
    SameDieEMDetector,
)
from .fingerprint import DelayFingerprint, EMReference
from .metrics import LocalMaximaSumMetric


@dataclass
class PlatformConfig:
    """Configuration of the whole detection platform."""

    num_dies: int = 8
    seed: int = 2015
    delay: DelayMeasurementConfig = field(default_factory=DelayMeasurementConfig)
    em: EMAcquisitionConfig = field(default_factory=EMAcquisitionConfig)

    def __post_init__(self) -> None:
        if self.num_dies <= 0:
            raise ValueError("num_dies must be positive")


@dataclass
class DelayStudyResult:
    """Output of the Sec. III delay campaign."""

    fingerprint: DelayFingerprint
    measurements: Dict[str, DelayMeasurement]
    comparisons: Dict[str, DelayComparisonResult]
    pairs: List[PlaintextKeyPair]

    def labels(self) -> List[str]:
        return list(self.comparisons)


@dataclass
class SameDieEMStudyResult:
    """Output of the Sec. IV same-die EM comparison."""

    reference: EMReference
    golden_traces: List[EMTrace]
    comparisons: Dict[str, SameDieComparison]
    infected_traces: Dict[str, EMTrace]


@dataclass
class PopulationEMStudyResult:
    """Output of the Sec. V inter-die EM study."""

    reference: EMReference
    golden_traces: List[EMTrace]
    infected_traces: Dict[str, List[EMTrace]]
    characterisations: Dict[str, PopulationCharacterisation]
    trojan_area_fractions: Dict[str, float]

    def false_negative_rates(self) -> Dict[str, float]:
        """Per-trojan false-negative rates (the headline table)."""
        return {name: char.false_negative_rate
                for name, char in self.characterisations.items()}


@dataclass
class PopulationTraceTensors:
    """Matrix-resident population traces (one row per die, per design).

    The tensor form the batched acquisition produces and the batched
    scoring consumes: ``golden`` and each ``infected[name]`` are
    ``(num_dies, num_samples)`` float matrices.  :class:`EMTrace`
    objects exist only at the persistence/report boundary —
    :meth:`to_traces` wraps the rows on demand, carrying the acquisition
    context (labels, stimulus, sampling grid) stored here.
    """

    golden: np.ndarray
    infected: Dict[str, np.ndarray]
    golden_labels: List[str]
    infected_labels: Dict[str, List[str]]
    plaintext: bytes
    sample_period_ns: float
    cycle_sample_offsets: List[int]

    def _wrap(self, matrix: np.ndarray, labels: Sequence[str]
              ) -> List[EMTrace]:
        return [
            EMTrace(
                samples=matrix[row].copy(),
                label=labels[row],
                plaintext=self.plaintext,
                sample_period_ns=self.sample_period_ns,
                cycle_sample_offsets=list(self.cycle_sample_offsets),
            )
            for row in range(matrix.shape[0])
        ]

    def to_traces(self) -> "tuple[List[EMTrace], Dict[str, List[EMTrace]]]":
        """Wrap the tensors into per-die :class:`EMTrace` lists."""
        return (
            self._wrap(self.golden, self.golden_labels),
            {name: self._wrap(matrix, self.infected_labels[name])
             for name, matrix in self.infected.items()},
        )


class HTDetectionPlatform:
    """The full reproduction platform (design + trojans + dies + benches)."""

    def __init__(self, device: Optional[FPGADevice] = None,
                 config: Optional[PlatformConfig] = None,
                 golden: Optional[GoldenDesign] = None,
                 infected_cache: Optional[Dict[str, InfectedDesign]] = None):
        self.device = device or virtex5_lx30()
        self.config = config or PlatformConfig()
        self.golden = golden or GoldenDesign.build(device=self.device)
        self.population = DiePopulation(size=self.config.num_dies,
                                        seed=self.config.seed)
        # ``infected_cache`` may be a dict shared between several
        # platforms (the campaign engine passes one so trojan insertion
        # happens once per trojan across the whole grid).
        self._infected_cache: Dict[str, InfectedDesign] = (
            infected_cache if infected_cache is not None else {}
        )
        self.delay_meter = PathDelayMeter(self.config.delay)
        self.em_simulator = EMSimulator(self.config.em)

    # -- design / DUT helpers ----------------------------------------------------

    def infected_design(self, trojan_name: str) -> InfectedDesign:
        """Build (and cache) the infected design for a catalog trojan."""
        if trojan_name not in self._infected_cache:
            trojan = build_trojan(trojan_name, self.device)
            self._infected_cache[trojan_name] = insert_trojan(self.golden, trojan)
        return self._infected_cache[trojan_name]

    def golden_dut(self, die_index: int = 0, label: Optional[str] = None
                   ) -> DeviceUnderTest:
        """A golden design programmed into die ``die_index``."""
        die = self.population[die_index]
        return DeviceUnderTest(self.golden, die, label=label or f"golden_die{die_index}")

    def infected_dut(self, trojan_name: str, die_index: int = 0,
                     label: Optional[str] = None) -> DeviceUnderTest:
        """An infected design programmed into die ``die_index``."""
        die = self.population[die_index]
        return DeviceUnderTest(
            self.infected_design(trojan_name), die,
            label=label or f"{trojan_name}_die{die_index}",
        )

    # -- Sec. III: delay study ----------------------------------------------------------

    def run_delay_study(self, trojan_names: Sequence[str] = ("HT_comb", "HT_seq"),
                        num_pairs: int = 10, die_index: int = 0,
                        pair_seed: int = 7) -> DelayStudyResult:
        """Golden fingerprint plus clean/infected comparisons on one die.

        The paper programmes the golden and infected bitstreams into the
        same physical FPGA, so every campaign here uses the same die.
        Two clean campaigns ("Clean1", "Clean2") are always included —
        they are the paper's control showing the noise floor.
        """
        pairs = generate_pk_pairs(num_pairs, seed=pair_seed)
        golden_dut = self.golden_dut(die_index, label="GM")
        # Per-pair sweeps calibrated once on the golden model and reused for
        # every device under test, so step counts stay comparable.
        glitch = self.delay_meter.calibrate_glitches(golden_dut, pairs)

        fingerprint_measurement = self.delay_meter.measure(
            golden_dut, pairs, glitch, seed=self.config.seed
        )
        fingerprint = DelayFingerprint.from_measurement(fingerprint_measurement)
        detector = DelayDetector(fingerprint)

        measurements: Dict[str, DelayMeasurement] = {}
        for clean_index in (1, 2):
            label = f"Clean{clean_index}"
            dut = self.golden_dut(die_index, label=label)
            measurements[label] = self.delay_meter.measure(
                dut, pairs, glitch, seed=self.config.seed + 100 + clean_index
            )
        for trojan_index, name in enumerate(trojan_names):
            dut = self.infected_dut(name, die_index, label=name)
            measurements[name] = self.delay_meter.measure(
                dut, pairs, glitch, seed=self.config.seed + 200 + trojan_index
            )

        detector.calibrate_with_clean([measurements["Clean1"]])
        comparisons = {label: detector.compare(measurement)
                       for label, measurement in measurements.items()}
        return DelayStudyResult(
            fingerprint=fingerprint,
            measurements=measurements,
            comparisons=comparisons,
            pairs=pairs,
        )

    # -- Sec. IV: same-die EM study ---------------------------------------------------------

    def run_same_die_em_study(self, trojan_names: Sequence[str] = ("HT_comb",),
                              die_index: int = 0,
                              plaintext: Optional[bytes] = None,
                              key: Optional[bytes] = None,
                              num_golden_acquisitions: int = 2
                              ) -> SameDieEMStudyResult:
        """Averaged-trace comparison of genuine and infected designs, one die."""
        plaintext = plaintext if plaintext is not None else bytes(range(16))
        key = key if key is not None else bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
        )
        rng = np.random.default_rng(self.config.seed + 40 + die_index)

        golden_traces: List[EMTrace] = []
        for acquisition in range(max(2, num_golden_acquisitions)):
            dut = self.golden_dut(die_index, label=f"Genuine AES {acquisition + 1}")
            golden_traces.append(
                self.em_simulator.acquire(
                    dut, plaintext, key, rng,
                    new_setup_installation=(acquisition > 0),
                )
            )
        reference = EMReference.from_traces(golden_traces, label="same-die reference")
        detector = SameDieEMDetector(reference)

        comparisons: Dict[str, SameDieComparison] = {}
        infected_traces: Dict[str, EMTrace] = {}
        for name in trojan_names:
            dut = self.infected_dut(name, die_index, label=f"Infected AES ({name})")
            trace = self.em_simulator.acquire(dut, plaintext, key, rng)
            infected_traces[name] = trace
            comparisons[name] = detector.compare(trace, label=dut.label)
        return SameDieEMStudyResult(
            reference=reference,
            golden_traces=golden_traces,
            comparisons=comparisons,
            infected_traces=infected_traces,
        )

    # -- Sec. V: population EM study -------------------------------------------------------------

    def _population_stimulus(self, plaintext: Optional[bytes],
                             key: Optional[bytes]) -> "tuple[bytes, bytes]":
        plaintext = plaintext if plaintext is not None else DEFAULT_PLAINTEXT
        key = key if key is not None else DEFAULT_KEY
        return plaintext, key

    def _die_rngs(self) -> List[np.random.Generator]:
        """One noise stream per die, seeded as the Sec. V campaign does."""
        return [np.random.default_rng(self.config.seed + 1000 + die_index)
                for die_index in range(len(self.population))]

    def acquire_population_tensors(self, trojan_names: Sequence[str],
                                   plaintext: Optional[bytes] = None,
                                   key: Optional[bytes] = None
                                   ) -> "PopulationTraceTensors":
        """The Sec. V-A population as matrix-resident sample tensors.

        Every design's die population is synthesised as one
        ``(dies, samples)`` matrix
        (:meth:`EMSimulator.acquire_batch_matrix`); no
        :class:`EMTrace` objects are built — scoring consumes the
        matrices directly and
        :meth:`PopulationTraceTensors.to_traces` wraps them at the
        persistence/report boundary.  Each die keeps its own noise
        stream, consumed in the same order as the per-die loop of
        :meth:`acquire_population_traces_serial`, so every row is
        bit-identical to the serial reference implementation.
        """
        plaintext, key = self._population_stimulus(plaintext, key)
        die_indices = range(len(self.population))
        rngs = self._die_rngs()
        golden_duts = [self.golden_dut(die_index) for die_index in die_indices]
        golden, cycle_offsets = self.em_simulator.acquire_batch_matrix(
            golden_duts, plaintext, key, rngs, new_setup_installation=True,
        )
        infected: Dict[str, np.ndarray] = {}
        infected_labels: Dict[str, List[str]] = {}
        for name in trojan_names:
            duts = [self.infected_dut(name, die_index)
                    for die_index in die_indices]
            infected[name], _ = self.em_simulator.acquire_batch_matrix(
                duts, plaintext, key, rngs, new_setup_installation=True,
            )
            infected_labels[name] = [dut.label for dut in duts]
        return PopulationTraceTensors(
            golden=golden,
            infected=infected,
            golden_labels=[dut.label for dut in golden_duts],
            infected_labels=infected_labels,
            plaintext=bytes(plaintext),
            sample_period_ns=1.0
            / self.config.em.oscilloscope.sample_rate_gsps,
            cycle_sample_offsets=list(cycle_offsets),
        )

    def acquire_population_traces(self, trojan_names: Sequence[str],
                                  plaintext: Optional[bytes] = None,
                                  key: Optional[bytes] = None
                                  ) -> "tuple[List[EMTrace], Dict[str, List[EMTrace]]]":
        """One averaged trace per (design, die): the 32 traces of Sec. V-A.

        Thin :class:`EMTrace` wrapper over
        :meth:`acquire_population_tensors` (the persistence/report
        boundary); bit-identical to the serial reference
        :meth:`acquire_population_traces_serial`.
        """
        return self.acquire_population_tensors(
            trojan_names, plaintext, key
        ).to_traces()

    def acquire_population_traces_serial(self, trojan_names: Sequence[str],
                                         plaintext: Optional[bytes] = None,
                                         key: Optional[bytes] = None
                                         ) -> "tuple[List[EMTrace], Dict[str, List[EMTrace]]]":
        """Reference per-die acquisition loop (one :meth:`acquire` per DUT).

        Kept as the ground truth the batched path is validated (and
        benchmarked) against.
        """
        plaintext, key = self._population_stimulus(plaintext, key)
        golden_traces: List[EMTrace] = []
        infected_traces: Dict[str, List[EMTrace]] = {name: [] for name in trojan_names}
        for die_index, rng in enumerate(self._die_rngs()):
            golden_traces.append(
                self.em_simulator.acquire(
                    self.golden_dut(die_index), plaintext, key, rng,
                    new_setup_installation=True,
                )
            )
            for name in trojan_names:
                infected_traces[name].append(
                    self.em_simulator.acquire(
                        self.infected_dut(name, die_index), plaintext, key, rng,
                        new_setup_installation=True,
                    )
                )
        return golden_traces, infected_traces

    # -- random-plaintext (multi-stimulus) population acquisition ---------------

    def acquire_population_tensors_stimuli(self, trojan_names: Sequence[str],
                                           plaintexts: Sequence[bytes],
                                           key: Optional[bytes] = None
                                           ) -> "PopulationTraceTensors":
        """Stimulus-averaged population as matrix-resident tensors.

        Every design's whole (plaintext x die) grid is synthesised as
        one ``(plaintexts, dies, samples)`` tensor
        (:meth:`EMSimulator.acquire_many_batch_tensor`) and collapsed to
        each die's stimulus-averaged trace with one axis reduction
        (:func:`average_stimulus_tensor`) — the multi-stimulus Sec. V
        comparison without a single :class:`EMTrace` in flight.  Each
        plane is bit-identical to the serial reference
        :meth:`acquire_population_traces_stimuli_serial`, and the
        averaged rows equal :func:`average_stimulus_traces` on the
        wrapped grid.
        """
        key = key if key is not None else DEFAULT_KEY
        die_indices = range(len(self.population))
        rngs = self._die_rngs()
        golden_duts = [self.golden_dut(die_index) for die_index in die_indices]
        golden_grid, cycle_offsets = (
            self.em_simulator.acquire_many_batch_tensor(
                golden_duts, plaintexts, key, rngs,
                new_setup_installation=True,
            )
        )
        infected: Dict[str, np.ndarray] = {}
        infected_labels: Dict[str, List[str]] = {}
        for name in trojan_names:
            duts = [self.infected_dut(name, die_index)
                    for die_index in die_indices]
            grid, _ = self.em_simulator.acquire_many_batch_tensor(
                duts, plaintexts, key, rngs, new_setup_installation=True,
            )
            infected[name] = average_stimulus_tensor(grid)
            infected_labels[name] = [dut.label for dut in duts]
        return PopulationTraceTensors(
            golden=average_stimulus_tensor(golden_grid),
            infected=infected,
            golden_labels=[dut.label for dut in golden_duts],
            infected_labels=infected_labels,
            plaintext=bytes(plaintexts[0]),
            sample_period_ns=1.0
            / self.config.em.oscilloscope.sample_rate_gsps,
            cycle_sample_offsets=list(cycle_offsets),
        )

    def acquire_population_traces_stimuli(self, trojan_names: Sequence[str],
                                          plaintexts: Sequence[bytes],
                                          key: Optional[bytes] = None
                                          ) -> "tuple[List[List[EMTrace]], Dict[str, List[List[EMTrace]]]]":
        """Population traces over a whole *stimulus set* in batched passes.

        Every design's (plaintext x die) grid is synthesised by one
        :meth:`EMSimulator.acquire_many_batch` call — the batched AES
        kernel prices all plaintexts at once, the trojan activity of all
        encryptions comes from one compiled-kernel evaluation, and the
        oscilloscope noise/quantise pass is vectorised.  Each die keeps
        its own noise stream, consumed in the order of
        :meth:`acquire_population_traces_stimuli_serial`, so the result
        is bit-identical to that serial reference.

        Returns ``(golden, infected)`` with ``golden[die][plaintext]``
        and ``infected[name][die][plaintext]``.
        """
        key = key if key is not None else DEFAULT_KEY
        die_indices = range(len(self.population))
        rngs = self._die_rngs()
        golden_traces = self.em_simulator.acquire_many_batch(
            [self.golden_dut(die_index) for die_index in die_indices],
            plaintexts, key, rngs, new_setup_installation=True,
        )
        infected_traces: Dict[str, List[List[EMTrace]]] = {}
        for name in trojan_names:
            infected_traces[name] = self.em_simulator.acquire_many_batch(
                [self.infected_dut(name, die_index)
                 for die_index in die_indices],
                plaintexts, key, rngs, new_setup_installation=True,
            )
        return golden_traces, infected_traces

    def acquire_population_traces_stimuli_serial(
            self, trojan_names: Sequence[str], plaintexts: Sequence[bytes],
            key: Optional[bytes] = None
            ) -> "tuple[List[List[EMTrace]], Dict[str, List[List[EMTrace]]]]":
        """Reference nested loop for the multi-stimulus acquisition.

        One serial :meth:`EMSimulator.acquire_many` per (design, die),
        golden first, in die order — the ground truth
        :meth:`acquire_population_traces_stimuli` is validated (and
        benchmarked) against.
        """
        key = key if key is not None else DEFAULT_KEY
        golden_traces: List[List[EMTrace]] = []
        infected_traces: Dict[str, List[List[EMTrace]]] = {
            name: [] for name in trojan_names
        }
        rngs = self._die_rngs()
        for die_index, rng in enumerate(rngs):
            golden_traces.append(
                self.em_simulator.acquire_many(
                    self.golden_dut(die_index), plaintexts, key, rng,
                    new_setup_installation=True,
                )
            )
        for name in trojan_names:
            for die_index, rng in enumerate(rngs):
                infected_traces[name].append(
                    self.em_simulator.acquire_many(
                        self.infected_dut(name, die_index), plaintexts, key,
                        rng, new_setup_installation=True,
                    )
                )
        return golden_traces, infected_traces

    def run_population_em_study(self, trojan_names: Sequence[str] = ("HT1", "HT2", "HT3"),
                                plaintext: Optional[bytes] = None,
                                key: Optional[bytes] = None,
                                metric: Optional[LocalMaximaSumMetric] = None,
                                plaintexts: Optional[Sequence[bytes]] = None
                                ) -> PopulationEMStudyResult:
        """HT size sweep across the die population (Figs. 6-7, headline numbers).

        Thin wrapper over :func:`run_population_em_study`, the single
        implementation shared with the campaign engine's grid cells;
        ``plaintexts`` runs the random-plaintext variant (each die
        scored on its stimulus-averaged trace).
        """
        return run_population_em_study(
            self, trojan_names=trojan_names, plaintext=plaintext, key=key,
            metric=metric, plaintexts=plaintexts,
        )


def average_stimulus_tensor(grid: np.ndarray) -> np.ndarray:
    """Collapse a ``(plaintexts, dies, samples)`` tensor to per-die means.

    One axis reduction — the tensor-resident counterpart of
    :func:`average_stimulus_traces` (the serial reference it is
    bit-identical to): a random-plaintext campaign characterises each
    die by the mean of its per-stimulus averaged traces, and golden and
    infected devices are averaged over the *same* stimulus set, so the
    Sec. V comparison stays like-for-like.
    """
    tensor = np.asarray(grid, dtype=float)
    if tensor.ndim != 3:
        raise ValueError("grid must be (plaintexts, dies, samples)")
    if tensor.shape[0] == 0:
        raise ValueError("every die needs at least one stimulus trace")
    return tensor.mean(axis=0)


def average_stimulus_traces(per_die_traces: Sequence[Sequence[EMTrace]]
                            ) -> List[EMTrace]:
    """Collapse a (die x plaintext) trace grid to one trace per die.

    A random-plaintext campaign characterises each die by the mean of
    its per-stimulus averaged traces (the multi-stimulus analogue of the
    oscilloscope's 1 000-fold same-stimulus averaging); the golden
    reference and every infected device are averaged over the *same*
    stimulus set, so the Sec. V comparison stays like-for-like.
    Serial (:class:`EMTrace`-level) reference of
    :func:`average_stimulus_tensor`.
    """
    averaged: List[EMTrace] = []
    for die_traces in per_die_traces:
        if not die_traces:
            raise ValueError("every die needs at least one stimulus trace")
        first = die_traces[0]
        samples = np.mean([trace.samples for trace in die_traces], axis=0)
        averaged.append(EMTrace(
            samples=samples,
            label=first.label,
            plaintext=first.plaintext,
            sample_period_ns=first.sample_period_ns,
            cycle_sample_offsets=list(first.cycle_sample_offsets),
        ))
    return averaged


def run_population_em_study(platform: "Optional[HTDetectionPlatform]",
                            trojan_names: Sequence[str] = ("HT1", "HT2", "HT3"),
                            plaintext: Optional[bytes] = None,
                            key: Optional[bytes] = None,
                            metric: Optional[LocalMaximaSumMetric] = None,
                            traces: "Optional[tuple]" = None,
                            plaintexts: Optional[Sequence[bytes]] = None,
                            area_fractions: "Optional[Dict[str, float]]" = None
                            ) -> PopulationEMStudyResult:
    """The Sec. V inter-die study (HT size sweep over a die population).

    One implementation serves both the paper path
    (:meth:`HTDetectionPlatform.run_population_em_study`) and the
    campaign engine's grid cells.  Acquisition and scoring are
    tensor-resident end-to-end: the population is acquired (or passed
    in) as ``(dies, samples)`` matrices, the whole study is scored in
    batched kernel passes (:mod:`repro.analysis.batch`), and
    :class:`~repro.measurement.em_simulator.EMTrace` objects are built
    only at the report boundary for the result's trace fields.

    ``traces`` lets callers feed an already-acquired
    ``(golden_traces, infected_traces)`` population instead of
    re-acquiring — either :class:`EMTrace` lists or pre-stacked
    matrices (the result's trace fields then mirror the input form).
    ``plaintexts`` (mutually exclusive with ``plaintext``) sweeps a
    whole stimulus set through the batched acquisition and scores each
    die on its stimulus-averaged trace.
    ``area_fractions`` supplies the per-trojan ``% of AES`` figures
    directly (e.g. from a warm artifact store); with both ``traces``
    and ``area_fractions`` given, ``platform`` may be ``None`` — the
    study then runs without any design being built.
    """
    if platform is None and (traces is None or area_fractions is None):
        raise ValueError(
            "platform may only be None when both traces and area_fractions "
            "are supplied"
        )
    tensors: Optional[PopulationTraceTensors] = None
    golden_traces = infected_traces = None
    if traces is None:
        if plaintexts is not None and plaintext is not None:
            raise ValueError("pass either plaintext or plaintexts, not both")
        if plaintexts is not None and not plaintexts:
            raise ValueError("plaintexts must contain at least one stimulus")
        if plaintexts is not None and len(plaintexts) > 1:
            tensors = platform.acquire_population_tensors_stimuli(
                trojan_names, plaintexts, key
            )
        else:
            if plaintexts is not None:
                plaintext = plaintexts[0]
            tensors = platform.acquire_population_tensors(
                trojan_names, plaintext, key
            )
        golden_matrix = tensors.golden
        infected_matrices = {name: tensors.infected[name]
                             for name in trojan_names}
    else:
        # Caller-supplied population: EMTrace lists or pre-stacked
        # matrices (the campaign engine passes matrices); either way the
        # population is stacked (at most) once and scored batched.
        golden_traces, infected_traces = traces
        golden_matrix = stack_traces(golden_traces)
        infected_matrices = {name: stack_traces(infected_traces[name])
                             for name in trojan_names}
    detector = PopulationEMDetector(metric=metric)
    reference, characterisations = detector.fit_and_characterise(
        golden_matrix, infected_matrices
    )

    fractions: Dict[str, float] = {}
    for name in trojan_names:
        if area_fractions is not None:
            fractions[name] = float(area_fractions[name])
        else:
            fractions[name] = platform.infected_design(name).area_fraction_of_aes()
    if tensors is not None:
        # EMTrace objects are built only here, at the report boundary.
        golden_traces, infected_traces = tensors.to_traces()
    return PopulationEMStudyResult(
        reference=reference,
        golden_traces=golden_traces,
        infected_traces=infected_traces,
        characterisations=characterisations,
        trojan_area_fractions=fractions,
    )
