"""EM-based hardware-trojan detection (Sec. IV and V).

Two detectors are provided, matching the two experimental situations of
the paper:

* :class:`SameDieEMDetector` — golden and suspect designs are programmed
  into the *same* die (Sec. IV, Fig. 5).  Process variation cancels, so
  a direct comparison of averaged traces against the golden reference is
  enough; the decision threshold is a multiple of the residual
  acquisition noise.

* :class:`PopulationEMDetector` — the suspect device is a *different*
  die than the golden references (Sec. V, Figs. 6-7).  The golden
  reference is the mean trace over a population of golden dies, the
  score is the sum of local maxima of the absolute difference, and the
  genuine/infected score distributions are modelled as Gaussians whose
  overlap gives the false-negative rate of Eq. (5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.gaussian import GaussianFit, fit_gaussian, pooled_std
from ..analysis.traces import TraceLike, abs_difference, as_samples
from .decision import DetectionOutcome, ThresholdPolicy
from .fingerprint import EMReference
from .metrics import LocalMaximaSumMetric, false_negative_rate


@dataclass
class SameDieComparison:
    """Result of a same-die EM comparison (Sec. IV)."""

    label: str
    max_difference: float
    mean_difference: float
    noise_floor: float
    outcome: DetectionOutcome
    difference: np.ndarray = field(repr=False, default_factory=lambda: np.array([]))

    def significant_samples(self, factor: float = 1.0) -> np.ndarray:
        """Sample indices where the difference exceeds the threshold."""
        return np.flatnonzero(self.difference > self.outcome.threshold * factor)


class SameDieEMDetector:
    """Direct averaged-trace comparison on a single die.

    Parameters
    ----------
    reference:
        EM reference built from golden acquisitions on the same die
        (several acquisitions, ideally across setup re-installations, so
        the residual noise floor is known).
    num_sigmas:
        Decision threshold in multiples of the per-sample noise floor.
    """

    def __init__(self, reference: EMReference, num_sigmas: float = 5.0):
        if num_sigmas <= 0:
            raise ValueError("num_sigmas must be positive")
        self.reference = reference
        self.num_sigmas = num_sigmas

    def noise_floor(self) -> float:
        """Per-sample noise level of the golden reference."""
        floor = self.reference.noise_floor()
        if floor <= 0.0:
            # Single-trace reference: fall back to a tiny fraction of the
            # signal swing so the comparison stays meaningful.
            floor = float(np.abs(self.reference.mean).max()) * 1e-3
        return floor

    def compare(self, trace: TraceLike, label: str = "DUT") -> SameDieComparison:
        """Compare one averaged trace against the golden reference."""
        samples = as_samples(trace)
        if samples.size != self.reference.num_samples:
            raise ValueError(
                f"trace has {samples.size} samples, reference has "
                f"{self.reference.num_samples}"
            )
        difference = abs_difference(samples, self.reference.mean)
        noise = self.noise_floor()
        threshold = self.num_sigmas * noise
        score = float(difference.max())
        outcome = DetectionOutcome(
            label=label,
            score=score,
            threshold=threshold,
            is_infected=bool(score > threshold),
            details=f"max |trace - reference| vs {self.num_sigmas} x noise floor",
        )
        return SameDieComparison(
            label=label,
            max_difference=score,
            mean_difference=float(difference.mean()),
            noise_floor=noise,
            outcome=outcome,
            difference=difference,
        )


@dataclass
class PopulationCharacterisation:
    """Gaussian characterisation of genuine vs infected score populations."""

    genuine: GaussianFit
    infected: GaussianFit
    mu: float
    sigma: float
    false_negative_rate: float

    @property
    def detection_probability(self) -> float:
        return 1.0 - self.false_negative_rate


@dataclass
class PopulationComparison:
    """Decision for one device against the golden population."""

    label: str
    score: float
    outcome: DetectionOutcome


class PopulationEMDetector:
    """Inter-die EM detection using the local-maxima-sum metric.

    Parameters
    ----------
    metric:
        The trace-to-score metric (defaults to the paper's
        local-maxima-sum).
    policy:
        Decision policy for single-device verdicts, calibrated on the
        golden population's scores.
    """

    def __init__(self, metric: Optional[LocalMaximaSumMetric] = None,
                 policy: Optional[ThresholdPolicy] = None):
        self.metric = metric or LocalMaximaSumMetric()
        self.policy = policy or ThresholdPolicy(num_sigmas=3.0)
        self.reference: Optional[EMReference] = None
        self._golden_scores: Optional[np.ndarray] = None

    # -- reference construction ---------------------------------------------------

    def fit_reference(self, golden_traces: Sequence[TraceLike]) -> EMReference:
        """Build the mean-golden reference and the golden score population."""
        if len(golden_traces) < 2:
            raise ValueError(
                "the population detector needs at least two golden traces"
            )
        self.reference = EMReference.from_traces(golden_traces, label="E(G)")
        self._golden_scores = self.metric.scores(golden_traces, self.reference.mean)
        return self.reference

    def golden_scores(self) -> np.ndarray:
        """Scores of the golden population against its own mean."""
        if self._golden_scores is None:
            raise RuntimeError("call fit_reference() before using the detector")
        return self._golden_scores

    # -- scoring and decisions ----------------------------------------------------------

    def score(self, trace: TraceLike) -> float:
        """Metric score of one device against the golden reference."""
        if self.reference is None:
            raise RuntimeError("call fit_reference() before using the detector")
        return self.metric.score(trace, self.reference.mean)

    def compare(self, trace: TraceLike, label: str = "DUT") -> PopulationComparison:
        """Accept/reject one device."""
        score = self.score(trace)
        outcome = self.policy.decide(
            label=label,
            score=score,
            reference_scores=list(self.golden_scores()),
            details="sum of local maxima of |trace - E(G)|",
        )
        return PopulationComparison(label=label, score=score, outcome=outcome)

    def characterise(self, infected_traces: Sequence[TraceLike]
                     ) -> PopulationCharacterisation:
        """Fit the two-Gaussian model of Fig. 7 and evaluate Eq. (5).

        ``infected_traces`` are the traces of the *same* trojan across the
        die population; the genuine population is the one the reference
        was fitted on.
        """
        if not infected_traces:
            raise ValueError("at least one infected trace is required")
        genuine_scores = self.golden_scores()
        infected_scores = self.metric.scores(infected_traces,
                                             self.reference.mean)
        genuine_fit = fit_gaussian(genuine_scores)
        infected_fit = fit_gaussian(infected_scores)
        mu = infected_fit.mean - genuine_fit.mean
        if genuine_scores.size >= 2 and infected_scores.size >= 2:
            sigma = pooled_std(genuine_scores, infected_scores)
        else:
            sigma = max(genuine_fit.std, infected_fit.std)
        return PopulationCharacterisation(
            genuine=genuine_fit,
            infected=infected_fit,
            mu=float(mu),
            sigma=float(sigma),
            false_negative_rate=false_negative_rate(mu, sigma),
        )
