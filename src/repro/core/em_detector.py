"""EM-based hardware-trojan detection (Sec. IV and V).

Two detectors are provided, matching the two experimental situations of
the paper:

* :class:`SameDieEMDetector` — golden and suspect designs are programmed
  into the *same* die (Sec. IV, Fig. 5).  Process variation cancels, so
  a direct comparison of averaged traces against the golden reference is
  enough; the decision threshold is a multiple of the residual
  acquisition noise.

* :class:`PopulationEMDetector` — the suspect device is a *different*
  die than the golden references (Sec. V, Figs. 6-7).  The golden
  reference is the mean trace over a population of golden dies, the
  score is the sum of local maxima of the absolute difference, and the
  genuine/infected score distributions are modelled as Gaussians whose
  overlap gives the false-negative rate of Eq. (5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.batch import (
    false_negative_rates,
    fit_gaussians_batch,
    pooled_std_batch,
)
from ..analysis.gaussian import GaussianFit, fit_gaussian, pooled_std
from ..analysis.traces import TraceLike, abs_difference, as_samples, stack_traces
from .decision import DetectionOutcome, ThresholdPolicy
from .fingerprint import EMReference
from .metrics import LocalMaximaSumMetric, false_negative_rate


@dataclass
class SameDieComparison:
    """Result of a same-die EM comparison (Sec. IV)."""

    label: str
    max_difference: float
    mean_difference: float
    noise_floor: float
    outcome: DetectionOutcome
    difference: np.ndarray = field(repr=False, default_factory=lambda: np.array([]))

    def significant_samples(self, factor: float = 1.0) -> np.ndarray:
        """Sample indices where the difference exceeds the threshold."""
        return np.flatnonzero(self.difference > self.outcome.threshold * factor)


class SameDieEMDetector:
    """Direct averaged-trace comparison on a single die.

    Parameters
    ----------
    reference:
        EM reference built from golden acquisitions on the same die
        (several acquisitions, ideally across setup re-installations, so
        the residual noise floor is known).
    num_sigmas:
        Decision threshold in multiples of the per-sample noise floor.
    """

    def __init__(self, reference: EMReference, num_sigmas: float = 5.0):
        if num_sigmas <= 0:
            raise ValueError("num_sigmas must be positive")
        self.reference = reference
        self.num_sigmas = num_sigmas

    def noise_floor(self) -> float:
        """Per-sample noise level of the golden reference."""
        floor = self.reference.noise_floor()
        if floor <= 0.0:
            # Single-trace reference: fall back to a tiny fraction of the
            # signal swing so the comparison stays meaningful.
            floor = float(np.abs(self.reference.mean).max()) * 1e-3
        return floor

    def compare(self, trace: TraceLike, label: str = "DUT") -> SameDieComparison:
        """Compare one averaged trace against the golden reference."""
        samples = as_samples(trace)
        if samples.size != self.reference.num_samples:
            raise ValueError(
                f"trace has {samples.size} samples, reference has "
                f"{self.reference.num_samples}"
            )
        difference = abs_difference(samples, self.reference.mean)
        noise = self.noise_floor()
        threshold = self.num_sigmas * noise
        score = float(difference.max())
        outcome = DetectionOutcome(
            label=label,
            score=score,
            threshold=threshold,
            is_infected=bool(score > threshold),
            details=f"max |trace - reference| vs {self.num_sigmas} x noise floor",
        )
        return SameDieComparison(
            label=label,
            max_difference=score,
            mean_difference=float(difference.mean()),
            noise_floor=noise,
            outcome=outcome,
            difference=difference,
        )


@dataclass
class PopulationCharacterisation:
    """Gaussian characterisation of genuine vs infected score populations."""

    genuine: GaussianFit
    infected: GaussianFit
    mu: float
    sigma: float
    false_negative_rate: float

    @property
    def detection_probability(self) -> float:
        return 1.0 - self.false_negative_rate


@dataclass
class PopulationComparison:
    """Decision for one device against the golden population."""

    label: str
    score: float
    outcome: DetectionOutcome


class PopulationEMDetector:
    """Inter-die EM detection using the local-maxima-sum metric.

    Parameters
    ----------
    metric:
        The trace-to-score metric (defaults to the paper's
        local-maxima-sum).
    policy:
        Decision policy for single-device verdicts, calibrated on the
        golden population's scores.
    """

    def __init__(self, metric: Optional[LocalMaximaSumMetric] = None,
                 policy: Optional[ThresholdPolicy] = None):
        self.metric = metric or LocalMaximaSumMetric()
        self.policy = policy or ThresholdPolicy(num_sigmas=3.0)
        self.reference: Optional[EMReference] = None
        self._golden_scores: Optional[np.ndarray] = None

    # -- reference construction ---------------------------------------------------

    def fit_reference(self, golden_traces: Sequence[TraceLike]) -> EMReference:
        """Build the mean-golden reference and the golden score population.

        ``golden_traces`` may be a trace list or a pre-stacked
        ``(num_traces, num_samples)`` ndarray; either way the population
        is stacked once and both the reference statistics and the whole
        golden score population come out of single batched passes
        (:meth:`~repro.core.metrics.LocalMaximaSumMetric.scores_matrix`)
        — bit-identical to the per-trace serial loop.
        """
        if len(golden_traces) < 2:
            raise ValueError(
                "the population detector needs at least two golden traces"
            )
        matrix = stack_traces(golden_traces)
        self.reference = EMReference.from_matrix(matrix, label="E(G)")
        self._golden_scores = self._population_scores(matrix)
        return self.reference

    def _population_scores(self, matrix: np.ndarray) -> np.ndarray:
        """Score a stacked population, falling back for custom metrics."""
        scores_matrix = getattr(self.metric, "scores_matrix", None)
        if scores_matrix is not None:
            return scores_matrix(matrix, self.reference.mean)
        return self.metric.scores(matrix, self.reference.mean)

    def golden_scores(self) -> np.ndarray:
        """Scores of the golden population against its own mean."""
        if self._golden_scores is None:
            raise RuntimeError("call fit_reference() before using the detector")
        return self._golden_scores

    # -- scoring and decisions ----------------------------------------------------------

    def score(self, trace: TraceLike) -> float:
        """Metric score of one device against the golden reference."""
        if self.reference is None:
            raise RuntimeError("call fit_reference() before using the detector")
        return self.metric.score(trace, self.reference.mean)

    def scores(self, traces: Sequence[TraceLike]) -> np.ndarray:
        """Scores of a whole population in one batched call.

        Accepts a trace list or a pre-stacked matrix; bit-identical to
        calling :meth:`score` per trace.
        """
        if self.reference is None:
            raise RuntimeError("call fit_reference() before using the detector")
        return self._population_scores(stack_traces(traces))

    def compare(self, trace: TraceLike, label: str = "DUT") -> PopulationComparison:
        """Accept/reject one device."""
        score = self.score(trace)
        outcome = self.policy.decide(
            label=label,
            score=score,
            reference_scores=list(self.golden_scores()),
            details="sum of local maxima of |trace - E(G)|",
        )
        return PopulationComparison(label=label, score=score, outcome=outcome)

    def characterise(self, infected_traces: Sequence[TraceLike]
                     ) -> PopulationCharacterisation:
        """Fit the two-Gaussian model of Fig. 7 and evaluate Eq. (5).

        ``infected_traces`` are the traces of the *same* trojan across the
        die population (a trace list or a pre-stacked matrix); the
        genuine population is the one the reference was fitted on.  The
        whole population is scored in one batched call.
        """
        if len(infected_traces) == 0:
            raise ValueError("at least one infected trace is required")
        infected_scores = self._population_scores(
            stack_traces(infected_traces)
        )
        return self._characterise_scores(infected_scores)

    def _characterise_scores(self, infected_scores: np.ndarray
                             ) -> PopulationCharacterisation:
        """Two-Gaussian model of one infected score population."""
        genuine_scores = self.golden_scores()
        genuine_fit = fit_gaussian(genuine_scores)
        infected_fit = fit_gaussian(infected_scores)
        mu = infected_fit.mean - genuine_fit.mean
        if genuine_scores.size >= 2 and infected_scores.size >= 2:
            sigma = pooled_std(genuine_scores, infected_scores)
        else:
            sigma = max(genuine_fit.std, infected_fit.std)
        return PopulationCharacterisation(
            genuine=genuine_fit,
            infected=infected_fit,
            mu=float(mu),
            sigma=float(sigma),
            false_negative_rate=false_negative_rate(mu, sigma),
        )

    def _stack_populations(self, infected_populations: "Dict[str, Sequence[TraceLike]]"
                           ) -> "tuple[List[str], List[np.ndarray]]":
        names = list(infected_populations)
        matrices = []
        for name in names:
            population = infected_populations[name]
            if len(population) == 0:
                raise ValueError("at least one infected trace is required")
            matrices.append(stack_traces(population))
        return names, matrices

    def _characterise_population_scores(self, names: "List[str]",
                                        matrices: "List[np.ndarray]",
                                        scores: np.ndarray
                                        ) -> "Dict[str, PopulationCharacterisation]":
        """Split one concatenated score vector and characterise per trojan.

        ``scores`` holds the infected populations' scores concatenated
        in ``names`` order.  In the study shape (every population one
        score per die, at least two dies) all Gaussian fits, pooled
        sigmas and Eq. (5) rates come out of the batched score-matrix
        primitives; either path is bit-identical to
        :meth:`characterise` on each trojan alone.
        """
        genuine_scores = self.golden_scores()
        sizes = {matrix.shape[0] for matrix in matrices}
        if names and len(sizes) == 1 and min(sizes) >= 2 \
                and genuine_scores.size >= 2:
            genuine_fit = fit_gaussian(genuine_scores)
            score_matrix = scores.reshape(len(names), -1)
            infected_means, infected_stds = fit_gaussians_batch(score_matrix)
            mus = infected_means - genuine_fit.mean
            sigmas = pooled_std_batch(genuine_scores, score_matrix)
            rates = false_negative_rates(mus, sigmas)
            return {
                name: PopulationCharacterisation(
                    genuine=genuine_fit,
                    infected=GaussianFit(mean=float(infected_means[index]),
                                         std=float(infected_stds[index])),
                    mu=float(mus[index]),
                    sigma=float(sigmas[index]),
                    false_negative_rate=float(rates[index]),
                )
                for index, name in enumerate(names)
            }
        characterisations: Dict[str, PopulationCharacterisation] = {}
        begin = 0
        for name, matrix in zip(names, matrices):
            end = begin + matrix.shape[0]
            characterisations[name] = self._characterise_scores(
                scores[begin:end]
            )
            begin = end
        return characterisations

    def characterise_many(self, infected_populations: "Dict[str, Sequence[TraceLike]]"
                          ) -> "Dict[str, PopulationCharacterisation]":
        """Characterise several trojans' populations in one scoring pass.

        All populations (trace lists or pre-stacked matrices) are
        concatenated into a single score-matrix call, so the expensive
        local-maxima kernel runs once over every infected trace of the
        study; each per-trojan characterisation is then bit-identical to
        :meth:`characterise` on that trojan alone.
        """
        if self.reference is None:
            raise RuntimeError("call fit_reference() before using the detector")
        names, matrices = self._stack_populations(infected_populations)
        if not names:
            return {}
        combined = (np.concatenate(matrices, axis=0) if len(matrices) > 1
                    else matrices[0])
        scores = self._population_scores(combined)
        return self._characterise_population_scores(names, matrices, scores)

    def fit_and_characterise(self, golden_traces: Sequence[TraceLike],
                             infected_populations: "Dict[str, Sequence[TraceLike]]"
                             ) -> "tuple[EMReference, Dict[str, PopulationCharacterisation]]":
        """Fit the reference and characterise every trojan in ONE kernel pass.

        The whole study — golden population and every infected
        population — is scored by a single batched score-matrix call, so
        the local-maxima kernel's fixed costs are paid once per study
        instead of once per population.  The golden scores, the
        reference and every characterisation are bit-identical to the
        two-step :meth:`fit_reference` + :meth:`characterise` path.
        """
        if len(golden_traces) < 2:
            raise ValueError(
                "the population detector needs at least two golden traces"
            )
        golden_matrix = stack_traces(golden_traces)
        names, matrices = self._stack_populations(infected_populations)
        self.reference = EMReference.from_matrix(golden_matrix, label="E(G)")
        combined = (np.concatenate([golden_matrix] + matrices, axis=0)
                    if matrices else golden_matrix)
        scores = self._population_scores(combined)
        num_golden = golden_matrix.shape[0]
        self._golden_scores = scores[:num_golden]
        return self.reference, self._characterise_population_scores(
            names, matrices, scores[num_golden:]
        )
