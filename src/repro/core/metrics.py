"""Detection metrics: the local-maxima-sum score and the Eq. (5) error model.

Two pieces of the paper's contribution live here:

* :class:`LocalMaximaSumMetric` — the EM detection score of Sec. V-B:
  take the absolute difference between a measured trace and the mean
  golden trace, find its local maxima (the informative peaks) and sum
  them;
* :func:`false_negative_rate` — Eq. (5): with genuine and infected
  metric populations modelled as equal-variance Gaussians separated by
  ``mu``, the false-negative rate (equal to the false-positive rate at
  the symmetric threshold) is ``1/2 - 1/2 erf(mu / (2 sigma sqrt(2)))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..analysis.batch import abs_difference_matrix, sum_of_local_maxima_batch
from ..analysis.local_maxima import sum_of_local_maxima
from ..analysis.traces import TraceLike, abs_difference, as_samples, stack_traces


def false_negative_rate(mu: float, sigma: float) -> float:
    """Eq. (5): FN (= FP) rate of the symmetric two-Gaussian decision.

    Parameters
    ----------
    mu:
        Separation between the infected and genuine metric means.
    sigma:
        Common standard deviation of the two populations.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return 0.0 if mu > 0 else 0.5
    return 0.5 - 0.5 * math.erf(mu / (2.0 * sigma * math.sqrt(2.0)))


def detection_probability(mu: float, sigma: float) -> float:
    """Probability of detecting the trojan (1 - false negative rate)."""
    return 1.0 - false_negative_rate(mu, sigma)


def required_separation(target_fn_rate: float, sigma: float) -> float:
    """Separation ``mu`` needed to reach a target false-negative rate.

    Inverse of :func:`false_negative_rate`; used to answer "how big must
    a trojan be for 95 % detection on this process?".
    """
    if not 0.0 < target_fn_rate < 0.5:
        raise ValueError("target_fn_rate must be in (0, 0.5)")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return 0.0
    # erf(x) = 1 - 2 * target  =>  x = erfinv(1 - 2 * target)
    from scipy.special import erfinv

    return float(2.0 * sigma * math.sqrt(2.0) * erfinv(1.0 - 2.0 * target_fn_rate))


@dataclass(frozen=True)
class LocalMaximaSumMetric:
    """The paper's EM detection score (Sec. V-B).

    Parameters
    ----------
    min_peak_distance:
        Minimum sample spacing between counted peaks; the default of one
        clock period's worth of samples would count one peak per round,
        the paper's description ("the difference ... mainly located at
        the trace peaks") is reproduced with a small spacing that keeps
        every ringing peak.
    min_peak_height:
        Optional absolute floor below which peaks are ignored.
    """

    min_peak_distance: int = 5
    min_peak_height: Optional[float] = None

    def difference_trace(self, trace: TraceLike, reference: TraceLike
                         ) -> np.ndarray:
        """The absolute difference |trace - reference| the metric is built on."""
        return abs_difference(trace, reference)

    def score(self, trace: TraceLike, reference: TraceLike) -> float:
        """Sum of the local maxima of the absolute difference trace.

        Serial reference of :meth:`scores_matrix`; the batched path must
        reproduce this per-trace score bit-for-bit.
        """
        return sum_of_local_maxima(
            self.difference_trace(trace, reference),
            min_height=self.min_peak_height,
            min_distance=self.min_peak_distance,
        )

    def scores_matrix(self, matrix: np.ndarray, reference: TraceLike
                      ) -> np.ndarray:
        """Scores of a pre-stacked ``(traces x samples)`` matrix.

        One batched abs-difference and one batched local-maxima pass
        over the whole population (:mod:`repro.analysis.batch`);
        bit-identical to calling :meth:`score` row by row.
        """
        return sum_of_local_maxima_batch(
            abs_difference_matrix(matrix, as_samples(reference)),
            min_height=self.min_peak_height,
            min_distance=self.min_peak_distance,
        )

    def scores(self, traces: Sequence[TraceLike], reference: TraceLike
               ) -> np.ndarray:
        """Scores of a whole population of traces against one reference.

        Stacks once (a pre-stacked ndarray passes through) and scores
        through :meth:`scores_matrix`; equals :meth:`scores_serial`
        bit-for-bit.
        """
        return self.scores_matrix(stack_traces(traces), reference)

    def scores_serial(self, traces: Sequence[TraceLike], reference: TraceLike
                      ) -> np.ndarray:
        """Per-trace scoring loop — the serial reference of :meth:`scores`."""
        return np.array([self.score(trace, reference) for trace in traces])


@dataclass(frozen=True)
class L1TraceMetric:
    """Baseline metric: mean absolute difference over the whole trace.

    Used by the ablation benchmark to show why the paper sums local
    maxima instead of integrating the difference everywhere (the flat
    regions between peaks only add noise).
    """

    def score(self, trace: TraceLike, reference: TraceLike) -> float:
        """Serial reference of :meth:`scores_matrix`."""
        return float(np.mean(abs_difference(trace, reference)))

    def scores_matrix(self, matrix: np.ndarray, reference: TraceLike
                      ) -> np.ndarray:
        """Row-wise mean abs difference; bit-identical to :meth:`score`."""
        return abs_difference_matrix(matrix, as_samples(reference)).mean(axis=1)

    def scores(self, traces: Sequence[TraceLike], reference: TraceLike
               ) -> np.ndarray:
        return self.scores_matrix(stack_traces(traces), reference)

    def scores_serial(self, traces: Sequence[TraceLike], reference: TraceLike
                      ) -> np.ndarray:
        """Per-trace scoring loop — the serial reference of :meth:`scores`."""
        return np.array([self.score(trace, reference) for trace in traces])


@dataclass(frozen=True)
class MaxDifferenceMetric:
    """Baseline metric: maximum absolute difference (single worst sample)."""

    def score(self, trace: TraceLike, reference: TraceLike) -> float:
        """Serial reference of :meth:`scores_matrix`."""
        return float(np.max(abs_difference(trace, reference)))

    def scores_matrix(self, matrix: np.ndarray, reference: TraceLike
                      ) -> np.ndarray:
        """Row-wise max abs difference; bit-identical to :meth:`score`."""
        return abs_difference_matrix(matrix, as_samples(reference)).max(axis=1)

    def scores(self, traces: Sequence[TraceLike], reference: TraceLike
               ) -> np.ndarray:
        return self.scores_matrix(stack_traces(traces), reference)

    def scores_serial(self, traces: Sequence[TraceLike], reference: TraceLike
                      ) -> np.ndarray:
        """Per-trace scoring loop — the serial reference of :meth:`scores`."""
        return np.array([self.score(trace, reference) for trace in traces])
