"""Stable content keys for campaign artifacts.

An artifact is addressed by the SHA-256 of the *canonical JSON* of the
spec fragment that produces it (trojan set, die population, acquisition
configuration, stimulus set, ...).  Canonicalisation — sorted keys,
compact separators, :func:`repro.io.results.to_jsonable` coercion of
dataclasses/numpy/bytes — makes the key independent of dict ordering
and of how the fragment was spelled, so equal physics always means an
equal key and any perturbation of the producing configuration means a
new one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..io.results import to_jsonable


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding of an arbitrary jsonable tree."""
    return json.dumps(to_jsonable(payload), sort_keys=True,
                      separators=(",", ":"))


def stable_key(payload: Any) -> str:
    """The content address of ``payload``: SHA-256 of its canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
