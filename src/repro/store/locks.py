"""Portable advisory file locks for shared artifact stores.

:class:`FileLock` gives cross-process mutual exclusion over one lock
file.  On POSIX it is a thin wrapper over ``fcntl.flock`` — genuinely
shared/exclusive, released by the kernel the instant the holder dies
(including ``kill -9``), and invisible to readers that never lock.
Where ``fcntl`` is unavailable the lock degrades to an exclusive-only
*lock-file* protocol (``O_CREAT | O_EXCL`` with the holder's pid inside,
broken automatically when that pid is dead), which serialises writers
correctly at the cost of shared acquisitions also excluding each other.

The store uses two lock levels (always acquired store-before-key):

* the **store lock** (``locks/store.lock``) — writers take the *shared*
  side around each file mutation; ``gc``/``fsck --repair`` take the
  *exclusive* side with a bounded wait, so destructive maintenance
  never overlaps an in-flight write.  Reads stay lock-free on the hit
  path: the digest check, not a lock, guarantees read integrity.
* a **per-key write lock** (``locks/key.<key>.lock``) — mutual
  exclusion between writers of one key, held across the whole
  object-then-manifest write pair.

Acquisition is a bounded non-blocking retry loop using the shared
backoff helper (:func:`repro.store.retry.backoff_delay_s`) with the pid
folded into the jitter token, so concurrent waiters spread out instead
of retrying in lockstep.  :class:`LockTimeout` is raised when the
bounded wait expires — callers surface it ("store busy") rather than
deadlocking.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from .retry import backoff_delay_s

try:  # pragma: no cover - platform probe
    import fcntl
    HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]
    HAVE_FCNTL = False

PathLike = Union[str, Path]

#: Default bounded wait for lock acquisition.
DEFAULT_LOCK_TIMEOUT_S = 30.0


class LockTimeout(TimeoutError):
    """A bounded lock wait expired — the resource stayed busy."""


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` names a live process on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - defensive
        return False
    return True


class FileLock:
    """One advisory lock over one lock file (see module docstring).

    Not re-entrant and not thread-safe: one :class:`FileLock` instance
    per acquisition site.  ``use_fcntl`` exists so the lock-file
    fallback is testable on POSIX hosts too.
    """

    def __init__(self, path: PathLike, *,
                 base_backoff_s: float = 0.002,
                 use_fcntl: Optional[bool] = None):
        self.path = Path(path)
        self._base_backoff_s = base_backoff_s
        self._use_fcntl = HAVE_FCNTL if use_fcntl is None else use_fcntl
        self._fd: Optional[int] = None
        self._held_fallback = False

    @property
    def held(self) -> bool:
        return self._fd is not None or self._held_fallback

    # -- non-blocking attempts ----------------------------------------------------

    def _try_fcntl(self, shared: bool) -> bool:
        flags = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, flags | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def _try_fallback(self) -> bool:
        """Exclusive-only lock-file protocol (no ``fcntl``).

        The holder's pid is written into the file; a lock whose holder
        is a dead pid on this host is broken in place, so a
        ``kill -9``'d writer cannot wedge the store forever.
        """
        held_path = self.path.with_name(self.path.name + ".held")
        try:
            fd = os.open(held_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                         0o644)
        except FileExistsError:
            try:
                pid = int(held_path.read_text().strip() or "0")
            except (OSError, ValueError):
                return False
            if not _pid_alive(pid):
                # Stale: the holder died without releasing.  Breaking is
                # racy between breakers, but os.unlink + O_EXCL retry
                # converges on exactly one new holder.
                try:
                    held_path.unlink()
                except OSError:
                    pass
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(str(os.getpid()))
        self._held_fallback = True
        return True

    def try_acquire(self, shared: bool = False) -> bool:
        """One non-blocking acquisition attempt."""
        if self.held:
            raise RuntimeError(f"lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._use_fcntl:
            return self._try_fcntl(shared)
        return self._try_fallback()

    # -- bounded blocking ---------------------------------------------------------

    def acquire(self, shared: bool = False,
                timeout_s: float = DEFAULT_LOCK_TIMEOUT_S) -> None:
        """Acquire with a bounded jittered-backoff wait.

        Raises :class:`LockTimeout` when ``timeout_s`` elapses without
        the lock becoming free.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        attempt = 0
        while True:
            if self.try_acquire(shared=shared):
                return
            attempt += 1
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                mode = "shared" if shared else "exclusive"
                raise LockTimeout(
                    f"could not acquire {mode} lock {self.path} within "
                    f"{timeout_s:.1f} s (another process holds it)"
                )
            delay = backoff_delay_s(self._base_backoff_s, attempt,
                                    token=f"{self.path}:{os.getpid()}",
                                    cap_s=0.1)
            time.sleep(min(delay, remaining))

    def release(self) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
        elif self._held_fallback:
            held_path = self.path.with_name(self.path.name + ".held")
            try:
                held_path.unlink()
            except OSError:  # pragma: no cover - defensive
                pass
            self._held_fallback = False

    # -- context managers ---------------------------------------------------------

    @contextmanager
    def holding(self, shared: bool = False,
                timeout_s: float = DEFAULT_LOCK_TIMEOUT_S) -> Iterator[None]:
        self.acquire(shared=shared, timeout_s=timeout_s)
        try:
            yield
        finally:
            self.release()

    def shared(self, timeout_s: float = DEFAULT_LOCK_TIMEOUT_S):
        return self.holding(shared=True, timeout_s=timeout_s)

    def exclusive(self, timeout_s: float = DEFAULT_LOCK_TIMEOUT_S):
        return self.holding(shared=False, timeout_s=timeout_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "held" if self.held else "free"
        return f"FileLock({str(self.path)!r}, {state})"
