"""Writer leases: who is allowed to have in-flight store writes.

A store write has a deliberate crash-consistency window: the object
file exists before its manifest entry does, so a concurrent maintenance
process scanning for "orphan objects" would see exactly what a live
writer looks like mid-``put``.  Leases close that hole without locks on
the read hit path: every writing process registers a small heartbeated
lease file (pid, host, expiry) under ``leases/`` before its first
write, and maintenance (``gc`` / ``sweep_tmp`` / ``fsck --repair``)
treats orphan objects and temp files as **off-limits while any foreign
live lease exists** — replacing the old "older than 3600 s" mtime
guess with an explicit liveness protocol.

A lease is *stale* — and is broken (deleted) and reported by the next
maintenance pass — when its holder pid is dead on this host **or** its
heartbeat expired.  Breaking is safe: a dead pid has no in-flight
write, and a live-but-expired holder has, by the heartbeat contract
(every ``put_*`` refreshes the lease before touching the store), no
write in flight either.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from .locks import _pid_alive

PathLike = Union[str, Path]

#: Heartbeat validity window.  Writers refresh their lease whenever a
#: quarter of this has elapsed, so a live writer's lease is always far
#: from expiry while it is actually writing.
DEFAULT_LEASE_TTL_S = 60.0

_LEASE_SEQUENCE = itertools.count(1)


@dataclass(frozen=True)
class LeaseInfo:
    """One parsed lease file."""

    path: Path
    pid: int
    host: str
    owner: str
    expires_at: float

    @property
    def expired(self) -> bool:
        return time.time() >= self.expires_at

    def is_live(self) -> bool:
        """Live = unexpired heartbeat AND (same-host) holder pid alive.

        Off-host leases (different hostname) cannot be pid-checked, so
        the heartbeat expiry alone decides for them.
        """
        if self.expired:
            return False
        if self.host == socket.gethostname():
            return _pid_alive(self.pid)
        return True  # pragma: no cover - cross-host lease

    def describe(self) -> str:
        remaining = self.expires_at - time.time()
        state = ("live" if self.is_live()
                 else ("expired" if self.expired else "dead pid"))
        return (f"{self.path.name}: pid {self.pid} on {self.host} "
                f"({self.owner or 'unnamed'}), {state}, "
                f"expires in {remaining:.0f} s")


class WriterLease:
    """One process's heartbeated claim on a store directory.

    Created by :meth:`ArtifactStore.acquire_lease` (or implicitly by the
    first ``put_*``); refreshed by :meth:`heartbeat`; removed by
    :meth:`release`.  The lease file is written atomically so a reader
    never sees a torn lease.
    """

    def __init__(self, leases_dir: PathLike, owner: str = "",
                 ttl_s: float = DEFAULT_LEASE_TTL_S):
        self.leases_dir = Path(leases_dir)
        self.owner = owner
        self.ttl_s = float(ttl_s)
        self.pid = os.getpid()
        self.host = socket.gethostname()
        sequence = next(_LEASE_SEQUENCE)
        self.path = self.leases_dir / f"{self.host}-{self.pid}-{sequence}.json"
        self._last_beat = 0.0
        self._released = True

    # -- lifecycle ----------------------------------------------------------------

    def _write(self) -> None:
        from .artifact_store import _atomic_write_bytes

        self.leases_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "pid": self.pid,
            "host": self.host,
            "owner": self.owner,
            "expires_at": time.time() + self.ttl_s,
        }
        _atomic_write_bytes(self.path,
                            json.dumps(payload, sort_keys=True).encode())
        self._last_beat = time.time()
        self._released = False

    def acquire(self) -> "WriterLease":
        self._write()
        return self

    def heartbeat(self, force: bool = False) -> None:
        """Refresh the expiry.

        Cheap by design: the lease file is only rewritten once a
        quarter of the TTL has elapsed (or when ``force``), so calling
        this on every ``put_*`` costs a clock read, not an fsync.  The
        rewrite also resurrects a lease a maintenance pass broke while
        this process sat idle past its TTL.
        """
        if force or time.time() - self._last_beat >= self.ttl_s / 4.0:
            self._write()

    def release(self) -> None:
        if self._released:
            return
        try:
            self.path.unlink()
        except OSError:
            pass
        self._released = True

    def __enter__(self) -> "WriterLease":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()


def read_lease(path: PathLike) -> Optional[LeaseInfo]:
    """Parse one lease file; ``None`` when unreadable (torn/foreign)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
        return LeaseInfo(
            path=path,
            pid=int(payload["pid"]),
            host=str(payload["host"]),
            owner=str(payload.get("owner", "")),
            expires_at=float(payload["expires_at"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def list_leases(leases_dir: PathLike) -> List[LeaseInfo]:
    """Every parseable lease under ``leases_dir``, sorted by filename."""
    leases_dir = Path(leases_dir)
    if not leases_dir.exists():
        return []
    leases = []
    for path in sorted(leases_dir.glob("*.json")):
        info = read_lease(path)
        if info is not None:
            leases.append(info)
    return leases


def live_foreign_leases(leases_dir: PathLike,
                        ignore_pid: Optional[int] = None) -> List[LeaseInfo]:
    """The live leases held by *other* processes.

    ``ignore_pid`` (default: this process) excludes the caller's own
    leases — a process running maintenance cannot be racing its own
    in-flight write, single-threaded as the campaign runners are.
    """
    own_pid = os.getpid() if ignore_pid is None else ignore_pid
    host = socket.gethostname()
    return [lease for lease in list_leases(leases_dir)
            if lease.is_live()
            and not (lease.pid == own_pid and lease.host == host)]


def break_stale_leases(leases_dir: PathLike) -> List[LeaseInfo]:
    """Delete (and return) every stale lease: dead pid or expired.

    Unreadable lease files (torn writes) are deleted too — a writer
    whose lease write tore will re-write it on its next heartbeat.
    """
    leases_dir = Path(leases_dir)
    if not leases_dir.exists():
        return []
    broken: List[LeaseInfo] = []
    for path in sorted(leases_dir.glob("*.json")):
        info = read_lease(path)
        if info is not None and info.is_live():
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - lost a delete race
            continue
        if info is not None:
            broken.append(info)
    return broken
