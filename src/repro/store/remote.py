"""Object-store-semantics artifact store over a blob transport.

:class:`RemoteStore` speaks the same artifact protocol as the local
:class:`~repro.store.artifact_store.ArtifactStore` — identical SHA-256
content keys, identical canonical payload encodings, a manifest entry
per key — but stores everything through a :class:`~repro.store
.transport.Transport`, with the robustness layers a network demands:

* **Atomic puts.**  The payload is uploaded to a ``tmp/`` key and
  *committed* (renamed) to its final ``objects/`` key before the
  manifest entry is written; a crash or partition mid-upload leaves a
  tmp blob, never a half-visible object, and the manifest is written
  last so a key is only ever a hit once its payload is fully in place.
* **Verified gets.**  Every read re-hashes the payload against the
  manifest digest.  A mismatch (torn upload, in-flight corruption)
  moves the blob to ``quarantine/`` *on the remote*, drops the remote
  manifest entry, and raises
  :class:`~repro.store.artifact_store.StoreIntegrityError` — the same
  contract as the local store, so read-through callers recompute.
* **Retries.**  Every transport call runs under the store's
  :class:`~repro.store.retry.RetryPolicy` with the explicit
  :func:`~repro.store.retry.is_retryable_error` classification:
  connection resets and timeouts retry with bounded deterministic
  jitter; misses and corruption never do.
* **Circuit breaker.**  After ``failure_threshold`` consecutive
  failed operations the breaker opens and every call fails fast with
  :class:`~repro.store.breaker.CircuitOpenError` (a
  ``ConnectionError``) until a cooldown elapses and a half-open probe
  succeeds.  The breaker clock defaults to *operation counting*, not
  wall time, so breaker behaviour is a pure function of the operation
  sequence — a requirement of the deterministic chaos tests.

Remote key layout (slash-separated transport keys)::

    objects/<key>.json | <key>.npz
    manifest/<key>.json
    tmp/<key>.<digest12>
    quarantine/<filename>[.n]
"""

from __future__ import annotations

import json
import zipfile
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from .artifact_store import (
    ManifestEntry,
    StoreIntegrityError,
    _check_key,
    _sha256,
    decode_array_bytes,
    decode_json_bytes,
    encode_array_bytes,
    encode_json_bytes,
)
from .breaker import CircuitBreaker, CircuitOpenError
from .retry import RetryPolicy, is_retryable_error
from .transport import Transport, build_transport

#: Default per-operation transport time budget.
DEFAULT_OP_TIMEOUT_S = 30.0


class _OpClock:
    """A clock that ticks once per store operation.

    Feeding this to the circuit breaker makes "cooldown" mean "N further
    operations attempted", which is deterministic under test and a
    reasonable proxy for elapsed time in a busy campaign.
    """

    def __init__(self) -> None:
        self.ticks = 0

    def __call__(self) -> float:
        return float(self.ticks)

    def tick(self) -> None:
        self.ticks += 1


class RemoteStore:
    """Content-addressed artifact store over a blob transport.

    Drop-in for the read/write surface campaign engines use
    (``put_json``/``put_arrays``/``load_json``/``load_arrays``/
    ``entry``/``keys``); leases and file locks are local-filesystem
    concepts and are no-ops here — the remote's atomicity comes from
    upload-then-commit, and last-writer-wins is safe because equal keys
    hold equal bytes.
    """

    def __init__(self, transport: Union[Transport, str, Dict[str, Any]], *,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 op_timeout_s: float = DEFAULT_OP_TIMEOUT_S):
        self.transport = build_transport(transport)
        self.retry = retry if retry is not None else RetryPolicy(
            token="remote-store")
        self._op_clock: Optional[_OpClock] = None
        if breaker is None:
            self._op_clock = _OpClock()
            breaker = CircuitBreaker(failure_threshold=3, reset_after=8.0,
                                     clock=self._op_clock)
        self.breaker = breaker
        self.op_timeout_s = float(op_timeout_s)

    # -- plumbing -----------------------------------------------------------------

    def _call(self, operation, *args, **kwargs):
        """One breaker-guarded, retry-wrapped transport call.

        A ``KeyError`` miss counts as a *successful* round-trip (the
        backend answered); only connection-class failures feed the
        breaker.
        """
        if self._op_clock is not None:
            self._op_clock.tick()
        if not self.breaker.allow():
            raise CircuitOpenError(
                f"remote store circuit is open after "
                f"{self.breaker.consecutive_failures} consecutive "
                f"transport failures")
        kwargs.setdefault("timeout_s", self.op_timeout_s)
        try:
            result = self.retry.call(lambda: operation(*args, **kwargs),
                                     retry_on=is_retryable_error)
        except KeyError:
            self.breaker.record_success()
            raise
        except (ConnectionError, TimeoutError):
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    @staticmethod
    def _object_key(entry: ManifestEntry) -> str:
        return f"objects/{entry.filename}"

    @staticmethod
    def _manifest_key(key: str) -> str:
        return f"manifest/{key}.json"

    # -- write --------------------------------------------------------------------

    def put_object(self, entry: ManifestEntry, data: bytes) -> ManifestEntry:
        """Upload one artifact atomically: tmp → commit → manifest.

        The replication primitive under ``put_json``/``put_arrays`` and
        the tiered store's journal drain.  The digest is verified
        before upload; content addressing makes replays idempotent, so
        a drain that died after commit but before the manifest write
        simply re-runs.
        """
        _check_key(entry.key)
        if entry.digest is None:
            entry = ManifestEntry(key=entry.key, kind=entry.kind,
                                  filename=entry.filename,
                                  meta=entry.meta, digest=_sha256(data))
        elif _sha256(data) != entry.digest:
            raise StoreIntegrityError(
                f"refusing to upload artifact {entry.key!r}: payload bytes "
                f"do not match the manifest digest")
        tmp_key = f"tmp/{entry.key}.{entry.digest[:12]}"
        self._call(self.transport.put, tmp_key, data)
        self._call(self.transport.commit, tmp_key, self._object_key(entry))
        manifest_bytes = json.dumps(entry.to_dict(), indent=2,
                                    sort_keys=True).encode()
        self._call(self.transport.put, self._manifest_key(entry.key),
                   manifest_bytes)
        return entry

    def put_json(self, key: str, payload: Any, *, kind: str = "json",
                 meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a JSON-serialisable payload under ``key``."""
        _check_key(key)
        data = encode_json_bytes(payload)
        entry = ManifestEntry(key=key, kind=kind, filename=f"{key}.json",
                              meta=dict(meta or {}), digest=_sha256(data))
        return self.put_object(entry, data)

    def put_arrays(self, key: str, arrays: Mapping[str, np.ndarray], *,
                   kind: str = "arrays",
                   meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a named-array payload under ``key`` as compressed npz."""
        _check_key(key)
        data = encode_array_bytes(arrays)
        entry = ManifestEntry(key=key, kind=kind, filename=f"{key}.npz",
                              meta=dict(meta or {}), digest=_sha256(data))
        return self.put_object(entry, data)

    # -- read ---------------------------------------------------------------------

    def entry(self, key: str) -> Optional[ManifestEntry]:
        """The manifest entry of ``key`` — ``None`` on a miss.

        Connection failures propagate (callers that degrade, like the
        tiered store, catch them); only a genuine remote miss or an
        unparseable manifest folds to ``None``.
        """
        _check_key(key)
        try:
            raw = self._call(self.transport.get, self._manifest_key(key))
        except KeyError:
            return None
        try:
            return ManifestEntry.from_dict(json.loads(raw))
        except (ValueError, KeyError):
            return None

    def __contains__(self, key: str) -> bool:
        return self.entry(key) is not None

    def has(self, key: str) -> bool:
        return key in self

    def _quarantine_object(self, entry: ManifestEntry) -> str:
        """Move a corrupt remote blob aside and drop its manifest entry."""
        destination = f"quarantine/{entry.filename}"
        taken = set(self._call(self.transport.list, "quarantine"))
        suffix = 0
        while destination in taken:
            suffix += 1
            destination = f"quarantine/{entry.filename}.{suffix}"
        try:
            self._call(self.transport.commit, self._object_key(entry),
                       destination)
        except KeyError:
            pass
        self._call(self.transport.delete, self._manifest_key(entry.key))
        return destination

    def _verified_bytes(self, key: str) -> bytes:
        entry = self.entry(key)
        if entry is None:
            raise KeyError(f"artifact {key!r} is not in the remote store")
        try:
            data = self._call(self.transport.get, self._object_key(entry))
        except KeyError:
            raise KeyError(
                f"artifact {key!r} has a remote manifest entry but no "
                f"object blob; the key is a miss") from None
        if entry.digest is not None and _sha256(data) != entry.digest:
            destination = self._quarantine_object(entry)
            raise StoreIntegrityError(
                f"remote artifact {key!r} does not match its recorded "
                f"SHA-256 digest (torn or corrupted transfer); the blob was "
                f"quarantined to {destination} and the key is now a miss")
        return data

    def object_bytes(self, key: str) -> bytes:
        """The verified raw payload bytes of ``key`` (for replication)."""
        return self._verified_bytes(key)

    def get_json(self, key: str) -> Any:
        data = self._verified_bytes(key)
        try:
            return decode_json_bytes(data)
        except ValueError as error:
            entry = self.entry(key)
            destination = (self._quarantine_object(entry)
                           if entry is not None else "<gone>")
            raise StoreIntegrityError(
                f"remote artifact {key!r} holds unparseable JSON ({error}); "
                f"quarantined to {destination}") from error

    def get_arrays(self, key: str) -> Dict[str, np.ndarray]:
        data = self._verified_bytes(key)
        try:
            return decode_array_bytes(data)
        except (zipfile.BadZipFile, ValueError, OSError, EOFError) as error:
            entry = self.entry(key)
            destination = (self._quarantine_object(entry)
                           if entry is not None else "<gone>")
            raise StoreIntegrityError(
                f"remote artifact {key!r} holds an unreadable npz archive "
                f"({error}); quarantined to {destination}") from error

    def load_json(self, key: str) -> Optional[Any]:
        """Read-through helper: payload, or ``None`` on miss/corruption.

        Connection failures still propagate — "the remote is down" must
        not masquerade as "the key is a miss" (that distinction is what
        lets the tiered store degrade instead of recomputing the world).
        """
        try:
            return self.get_json(key)
        except (KeyError, StoreIntegrityError):
            return None

    def load_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Read-through helper: arrays, or ``None`` on miss/corruption."""
        try:
            return self.get_arrays(key)
        except (KeyError, StoreIntegrityError):
            return None

    # -- index / maintenance ------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Keys with a remote manifest entry, sorted."""
        for transport_key in self._call(self.transport.list, "manifest"):
            name = transport_key.split("/", 1)[1]
            if name.endswith(".json"):
                yield name[:-len(".json")]

    def index(self) -> Dict[str, ManifestEntry]:
        entries = {}
        for key in list(self.keys()):
            entry = self.entry(key)
            if entry is not None:
                entries[key] = entry
        return entries

    def discard(self, key: str) -> bool:
        """Remove ``key`` from the remote (manifest first, then blob)."""
        _check_key(key)
        entry = self.entry(key)
        self._call(self.transport.delete, self._manifest_key(key))
        for filename in ({entry.filename} if entry is not None
                         else {f"{key}.json", f"{key}.npz"}):
            self._call(self.transport.delete, f"objects/{filename}")
        return entry is not None

    def sweep_tmp(self) -> List[str]:
        """Delete leftover ``tmp/`` blobs from interrupted uploads."""
        removed = []
        for transport_key in self._call(self.transport.list, "tmp"):
            self._call(self.transport.delete, transport_key)
            removed.append(transport_key)
        return removed

    # -- engine-facing no-ops -----------------------------------------------------

    @property
    def root(self) -> str:
        """A display name (transports have no local root path)."""
        config = self.transport.spawn_config()
        return str(config.get("root", config.get("kind", "remote")))

    def acquire_lease(self, owner: str = "") -> None:
        """Leases are a local-filesystem concept; no-op on a remote."""
        return None

    def release_lease(self) -> None:
        return None

    def spawn_config(self) -> Dict[str, Any]:
        """A picklable description a worker process can rebuild from."""
        return {"kind": "remote",
                "transport": self.transport.spawn_config(),
                "op_timeout_s": self.op_timeout_s}

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"RemoteStore({self.root!r}, "
                f"breaker={self.breaker.state})")
