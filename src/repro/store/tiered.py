"""Local + remote artifact stores composed as a write-through cache.

:class:`TieredStore` is what a campaign engine actually mounts when a
fleet shares one warm cache: every read and write goes to the fast
local :class:`~repro.store.artifact_store.ArtifactStore` first, and the
:class:`~repro.store.remote.RemoteStore` rides behind it —

* **writes** land locally (atomic, leased, digest-recorded), then
  replicate to the remote.  If the remote is unreachable — a raised
  ``ConnectionError``/``TimeoutError``, which includes an open circuit
  breaker — the key is appended to a crash-safe **pending-upload
  journal** and the write still succeeds: campaigns degrade to
  local-only operation instead of dying mid-grid;
* **reads** hit the local store first; on a local miss the remote is
  consulted and a hit is **backfilled** into the local tier (verified
  byte-for-byte via the manifest digest) so the next read is local.  A
  partitioned remote turns remote consultation into a clean miss — the
  engine recomputes, which is always correct under content addressing;
* **sync** (the ``repro-ht store sync`` CLI) drains the journal once
  the remote heals.  Content keys make the drain idempotent: a key
  whose remote digest already matches is skipped, a half-drained
  journal re-runs harmlessly, and two hosts draining overlapping
  journals converge on identical remote state.

The journal is a JSON-lines file under the *local* store root
(``pending_uploads.jsonl``), append-only on the hot path (single
``O_APPEND`` writes are atomic for these line sizes) and compacted
under the local store's file lock during :meth:`TieredStore.sync`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from .artifact_store import ArtifactStore, ManifestEntry
from .locks import FileLock
from .remote import RemoteStore

#: Exceptions that mean "the remote is unavailable right now" — the
#: degraded-mode trigger.  ``CircuitOpenError`` subclasses
#: ``ConnectionError``, so a tripped breaker degrades identically.
REMOTE_UNAVAILABLE = (ConnectionError, TimeoutError)

JOURNAL_FILENAME = "pending_uploads.jsonl"


class PendingUploadJournal:
    """Crash-safe record of writes that could not reach the remote.

    One JSON line per journaled key, append-only while degraded;
    compaction (dedup + drop-drained) happens under a file lock inside
    :meth:`TieredStore.sync`.  Losing the journal is safe — content
    addressing means a full local→remote reconciliation can always
    rebuild it — but keeping it makes ``store sync`` O(pending) instead
    of O(store).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def _lock(self) -> FileLock:
        return FileLock(self.path.with_suffix(".lock"))

    def append(self, entry: ManifestEntry) -> None:
        line = json.dumps({"key": entry.key, "kind": entry.kind,
                           "filename": entry.filename,
                           "digest": entry.digest,
                           "meta": dict(entry.meta)},
                          sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A single O_APPEND write of a short line is atomic on POSIX —
        # concurrent degraded writers interleave whole lines.
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def pending(self) -> List[ManifestEntry]:
        """Journaled entries, deduplicated by key (last line wins)."""
        if not self.path.exists():
            return []
        by_key: Dict[str, ManifestEntry] = {}
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                entry = ManifestEntry(key=raw["key"], kind=raw["kind"],
                                      filename=raw["filename"],
                                      meta=dict(raw.get("meta", {})),
                                      digest=raw.get("digest"))
            except (ValueError, KeyError, TypeError):
                # A torn trailing line (crash mid-append) is dropped;
                # the artifact itself is safe in the local store and a
                # reconcile pass can re-journal it.
                continue
            by_key[entry.key] = entry
        return list(by_key.values())

    def rewrite(self, entries: List[ManifestEntry]) -> None:
        """Replace the journal contents (compaction; lock held)."""
        with self._lock().holding(shared=False, timeout_s=10.0):
            if not entries:
                try:
                    self.path.unlink()
                except FileNotFoundError:
                    pass
                return
            lines = [json.dumps({"key": e.key, "kind": e.kind,
                                 "filename": e.filename, "digest": e.digest,
                                 "meta": dict(e.meta)}, sort_keys=True)
                     for e in entries]
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text("\n".join(lines) + "\n")
            os.replace(tmp, self.path)

    def __len__(self) -> int:
        return len(self.pending())


class TieredStore:
    """Write-through local + remote store with graceful degradation.

    Exposes the full engine-facing store surface (``put_*``/``load_*``/
    ``get_*``/``entry``/``keys``/leases/``root``) so
    ``CampaignEngine(store=...)`` and the supervisor accept it
    unchanged.  ``degraded_writes``/``remote_hits``/``backfills`` count
    what the tiers actually did, for tests and operators.
    """

    def __init__(self, local: Union[ArtifactStore, str, Path],
                 remote: Union[RemoteStore, str, Dict[str, Any]], *,
                 read_through: bool = True):
        self.local = (local if isinstance(local, ArtifactStore)
                      else ArtifactStore(local))
        self.remote = (remote if isinstance(remote, RemoteStore)
                       else RemoteStore(remote))
        self.read_through = bool(read_through)
        self.journal = PendingUploadJournal(
            self.local.root / JOURNAL_FILENAME)
        self.degraded_writes = 0
        self.remote_hits = 0
        self.backfills = 0

    # -- engine-facing surface ----------------------------------------------------

    @property
    def root(self) -> Path:
        """The local tier's root (campaign CSV/JSON outputs live here)."""
        return self.local.root

    @property
    def retry(self):
        return self.local.retry

    def acquire_lease(self, owner: str = ""):
        return self.local.acquire_lease(owner)

    def release_lease(self) -> None:
        self.local.release_lease()

    # -- write --------------------------------------------------------------------

    def _replicate(self, entry: ManifestEntry) -> None:
        """Push a just-written local artifact to the remote tier."""
        try:
            data = self.local.object_bytes(entry.key)
            self.remote.put_object(entry, data)
        except REMOTE_UNAVAILABLE:
            self.journal.append(entry)
            self.degraded_writes += 1

    def put_json(self, key: str, payload: Any, *, kind: str = "json",
                 meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        entry = self.local.put_json(key, payload, kind=kind, meta=meta)
        self._replicate(entry)
        return entry

    def put_arrays(self, key: str, arrays: Mapping[str, np.ndarray], *,
                   kind: str = "arrays",
                   meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        entry = self.local.put_arrays(key, arrays, kind=kind, meta=meta)
        self._replicate(entry)
        return entry

    # -- read ---------------------------------------------------------------------

    def _backfill(self, key: str) -> Optional[ManifestEntry]:
        """Copy a remote hit into the local tier; ``None`` on any miss.

        An unreachable remote (connection/timeout/open breaker) is a
        clean miss — recomputing is always correct, waiting is not.
        """
        if not self.read_through:
            return None
        try:
            entry = self.remote.entry(key)
            if entry is None:
                return None
            data = self.remote.object_bytes(key)
        except REMOTE_UNAVAILABLE:
            return None
        except KeyError:
            return None
        self.remote_hits += 1
        installed = self.local.put_verbatim(entry, data)
        self.backfills += 1
        return installed

    def entry(self, key: str) -> Optional[ManifestEntry]:
        entry = self.local.entry(key)
        if entry is not None:
            return entry
        return self._backfill(key)

    def __contains__(self, key: str) -> bool:
        return self.entry(key) is not None

    def has(self, key: str) -> bool:
        return key in self

    def load_json(self, key: str) -> Optional[Any]:
        payload = self.local.load_json(key)
        if payload is not None:
            return payload
        if self._backfill(key) is None:
            return None
        return self.local.load_json(key)

    def load_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        arrays = self.local.load_arrays(key)
        if arrays is not None:
            return arrays
        if self._backfill(key) is None:
            return None
        return self.local.load_arrays(key)

    def get_json(self, key: str) -> Any:
        payload = self.load_json(key)
        if payload is None:
            # Re-raise with the local store's miss/corruption semantics.
            return self.local.get_json(key)
        return payload

    def get_arrays(self, key: str) -> Dict[str, np.ndarray]:
        arrays = self.load_arrays(key)
        if arrays is None:
            return self.local.get_arrays(key)
        return arrays

    # -- index --------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Union of local and (reachable) remote keys, sorted."""
        seen = set(self.local.keys())
        try:
            seen.update(self.remote.keys())
        except REMOTE_UNAVAILABLE:
            pass
        return iter(sorted(seen))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- degraded-mode drain ------------------------------------------------------

    def pending_uploads(self) -> List[ManifestEntry]:
        return self.journal.pending()

    def sync(self, *, reset_breaker: bool = True) -> Dict[str, Any]:
        """Drain the pending-upload journal to the remote, idempotently.

        Per journaled key: skip when the remote already holds the same
        digest (another host drained it, or the pre-partition upload
        actually landed), upload otherwise, keep in the journal on
        continued unreachability.  Returns per-category counts; rc-style
        success is ``remaining == 0``.
        """
        if reset_breaker:
            self.remote.breaker.reset()
        uploaded, skipped, missing, remaining = [], [], [], []
        for entry in self.journal.pending():
            try:
                remote_entry = self.remote.entry(entry.key)
                if (remote_entry is not None
                        and remote_entry.digest == entry.digest
                        and entry.digest is not None):
                    skipped.append(entry.key)
                    continue
                try:
                    data = self.local.object_bytes(entry.key)
                except KeyError:
                    # Journaled but gone locally (gc'd/discarded):
                    # nothing to upload, nothing lost — drop it.
                    missing.append(entry.key)
                    continue
                self.remote.put_object(entry, data)
                uploaded.append(entry.key)
            except REMOTE_UNAVAILABLE:
                remaining.append(entry)
        self.journal.rewrite(remaining)
        return {"uploaded": uploaded, "skipped": skipped,
                "missing_local": missing,
                "remaining": [entry.key for entry in remaining]}

    # -- spawning -----------------------------------------------------------------

    def spawn_config(self) -> Dict[str, Any]:
        """A picklable description a worker process can rebuild from."""
        return {"kind": "tiered",
                "local": self.local.spawn_config(),
                "remote": self.remote.spawn_config(),
                "read_through": self.read_through}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"TieredStore(local={str(self.local.root)!r}, "
                f"remote={self.remote.root!r}, "
                f"pending={len(self.journal)})")


def build_store(config: Union[None, str, Path, Mapping[str, Any],
                              ArtifactStore, RemoteStore, TieredStore]):
    """Build any store flavour from a picklable config.

    The inverse of every store's ``spawn_config()`` — the campaign
    supervisor ships these dicts to worker processes instead of live
    store objects.  Strings/paths mean a plain local store; ``None``
    passes through (store-less engines); live stores pass through
    unchanged.
    """
    if config is None or isinstance(config, (ArtifactStore, RemoteStore,
                                             TieredStore)):
        return config
    if isinstance(config, (str, Path)):
        return ArtifactStore(config)
    kind = config.get("kind")
    if kind == "local":
        return ArtifactStore(str(config["root"]),
                             locking=bool(config.get("locking", True)))
    if kind == "remote":
        return RemoteStore(dict(config["transport"]),
                           op_timeout_s=float(
                               config.get("op_timeout_s", 30.0)))
    if kind == "tiered":
        local = build_store(dict(config["local"]))
        remote = build_store(dict(config["remote"]))
        return TieredStore(local, remote,
                           read_through=bool(config.get("read_through",
                                                        True)))
    raise ValueError(f"unknown store config {config!r}")
