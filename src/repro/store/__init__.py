"""Content-addressed artifact store for campaign intermediates.

``repro.store`` persists the expensive intermediates of the detection
protocol — infected designs' summaries, golden fingerprints, averaged
trace tensors, per-cell campaign results — under *content addresses*:
the SHA-256 of the canonical JSON of the spec fragment that produces
them.  Equal configuration therefore means an instant hit across runs,
processes and hosts, and any perturbation means a clean miss.  Writes
are atomic and indexed by a manifest, which doubles as the per-cell
completion record sharded or interrupted campaigns resume from.
"""

from .artifact_store import (
    STORE_FORMAT_VERSION,
    ArtifactStore,
    FsckReport,
    ManifestEntry,
    StoreIntegrityError,
)
from .artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    DEFAULT_GOLDEN_SIGNATURE,
    cell_result_key,
    delay_differences_key,
    fault_sweep_key,
    golden_signature,
    infected_summary_key,
    pack_delay_differences,
    pack_fault_sweep,
    pack_population_traces,
    population_traces_key,
    spec_content_fragment,
    unpack_delay_differences,
    unpack_fault_sweep,
    unpack_population_traces,
)
from .breaker import CircuitBreaker, CircuitOpenError
from .keys import canonical_json, stable_key
from .leases import (
    DEFAULT_LEASE_TTL_S,
    LeaseInfo,
    WriterLease,
    break_stale_leases,
    list_leases,
    live_foreign_leases,
)
from .locks import DEFAULT_LOCK_TIMEOUT_S, FileLock, LockTimeout
from .remote import RemoteStore
from .retry import (
    RetryPolicy,
    backoff_delay_s,
    is_retryable_error,
    is_transient_os_error,
)
from .tiered import PendingUploadJournal, TieredStore, build_store
from .transport import (
    FlakyTransport,
    LoopbackTransport,
    Transport,
    TransportConnectionError,
    TransportFaultKind,
    TransportTimeout,
    build_transport,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactStore",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_GOLDEN_SIGNATURE",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_LOCK_TIMEOUT_S",
    "FileLock",
    "FlakyTransport",
    "FsckReport",
    "LeaseInfo",
    "LockTimeout",
    "LoopbackTransport",
    "ManifestEntry",
    "PendingUploadJournal",
    "RemoteStore",
    "RetryPolicy",
    "STORE_FORMAT_VERSION",
    "StoreIntegrityError",
    "TieredStore",
    "Transport",
    "TransportConnectionError",
    "TransportFaultKind",
    "TransportTimeout",
    "WriterLease",
    "backoff_delay_s",
    "break_stale_leases",
    "build_store",
    "build_transport",
    "canonical_json",
    "cell_result_key",
    "delay_differences_key",
    "fault_sweep_key",
    "golden_signature",
    "infected_summary_key",
    "is_retryable_error",
    "is_transient_os_error",
    "list_leases",
    "live_foreign_leases",
    "pack_delay_differences",
    "pack_fault_sweep",
    "pack_population_traces",
    "population_traces_key",
    "spec_content_fragment",
    "stable_key",
    "unpack_delay_differences",
    "unpack_fault_sweep",
    "unpack_population_traces",
]
