"""A circuit breaker for the remote store's transport calls.

Classic three-state breaker:

* **closed** — operations flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: every operation is refused immediately with
  :class:`CircuitOpenError` (no transport call, no retry burn) until
  ``reset_after`` ticks of the injected clock have elapsed.
* **half-open** — after the cooldown, exactly *one* probe operation is
  let through.  Success closes the breaker; failure re-opens it and
  restarts the cooldown.

The clock is injectable and defaults to ``time.monotonic``.  Tests (and
the deterministic chaos suite) inject a counter-based clock so breaker
transitions depend only on the operation sequence, never on wall-clock
scheduling.  :class:`CircuitOpenError` subclasses ``ConnectionError``
on purpose: callers that already degrade gracefully on connection
failures (the tiered store) treat a tripped breaker exactly like an
unreachable remote, which is what it means.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple


class CircuitOpenError(ConnectionError):
    """Raised instead of calling the transport while the breaker is open."""


class CircuitBreaker:
    """Counts consecutive failures; trips, cools down, probes.

    ``transitions`` records every state change as ``(clock_value,
    from_state, to_state)`` tuples — the chaos tests pin this log to
    prove determinism.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, *, failure_threshold: int = 3,
                 reset_after: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.transitions: List[Tuple[float, str, str]] = []

    def _move(self, to_state: str) -> None:
        if to_state == self.state:
            return
        self.transitions.append((self.clock(), self.state, to_state))
        self.state = to_state

    def allow(self) -> bool:
        """May an operation proceed right now?

        While open, returns False until the cooldown elapses, then
        moves to half-open and admits the single probe.
        """
        if self.state == self.OPEN:
            if self.clock() - self.opened_at >= self.reset_after:
                self._move(self.HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self._move(self.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self.opened_at = self.clock()
            self._move(self.OPEN)
        elif (self.state == self.CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self.opened_at = self.clock()
            self._move(self.OPEN)

    def reset(self) -> None:
        """Force-close (used by ``store sync`` before a drain attempt)."""
        self.consecutive_failures = 0
        self._move(self.CLOSED)
