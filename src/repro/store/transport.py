"""Minimal blob transport under the remote artifact store.

A :class:`Transport` moves opaque byte payloads under string keys —
``get``/``put``/``list``/``delete`` plus an atomic ``commit`` (rename)
so :class:`~repro.store.remote.RemoteStore` can build object-store
semantics (upload to a tmp key, then commit) on any backend.  Keys are
slash-separated paths (``objects/<sha>.json``); payloads are bytes;
misses raise :class:`KeyError`; ``delete`` is idempotent.

Two implementations ship here:

* :class:`LoopbackTransport` — a directory on the local filesystem, so
  the whole remote-store stack is testable hermetically and a shared
  NFS/SMB mount works as a real deployment target out of the box;
* :class:`FlakyTransport` — a decorator that injects *seeded,
  scripted* faults from a :class:`~repro.testing.faults.FaultSchedule`:
  connection errors, timeouts, latency, truncated payloads and corrupt
  bytes, each at an exact operation ordinal.  Every chaos test in
  ``tests/`` drives the remote store through this decorator; equal
  schedules replay equal fault sequences, so there is no wall-clock or
  RNG nondeterminism anywhere in the failure paths.

Fault kinds (``FaultKind`` constants of this module, distinct from the
campaign-level :class:`repro.testing.chaos.FaultKind` vocabulary):

``connect``
    the operation raises :class:`TransportConnectionError`
    (a ``ConnectionResetError``) before touching the backend;
``timeout``
    the operation raises :class:`TransportTimeout` (a
    ``TimeoutError``) before touching the backend;
``latency``
    the operation sleeps a tiny deterministic delay, then succeeds —
    for exercising timeout budgets without failing;
``truncate``
    a ``get`` returns the first half of the payload, a ``put`` stores
    only the first half — the digest-verified read path must catch it;
``corrupt``
    one seeded byte of the payload is flipped in flight.
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..testing.faults import FaultClock, FaultSchedule, FaultWindow


class TransportError(ConnectionError):
    """Base class for transport-level failures (a ``ConnectionError``)."""


class TransportConnectionError(ConnectionResetError):
    """The backend was unreachable (injected or real)."""


class TransportTimeout(TimeoutError):
    """The operation exceeded its time budget (injected or real)."""


class TransportFaultKind:
    """The fault vocabulary of :class:`FlakyTransport`."""

    CONNECT = "connect"
    TIMEOUT = "timeout"
    LATENCY = "latency"
    TRUNCATE = "truncate"
    CORRUPT = "corrupt"

    ALL = (CONNECT, TIMEOUT, LATENCY, TRUNCATE, CORRUPT)


class Transport:
    """The blob-transport interface.

    Implementations move bytes; everything content-addressed (digests,
    manifests, atomicity protocols) lives a layer up in
    :class:`~repro.store.remote.RemoteStore`.  ``timeout_s`` is a
    per-operation budget; backends that cannot enforce one may ignore
    it.
    """

    def get(self, key: str, *, timeout_s: Optional[float] = None) -> bytes:
        """The payload at ``key``; :class:`KeyError` on a miss."""
        raise NotImplementedError

    def put(self, key: str, data: bytes, *,
            timeout_s: Optional[float] = None) -> None:
        """Store ``data`` at ``key`` (creating parents as needed)."""
        raise NotImplementedError

    def list(self, prefix: str = "", *,
             timeout_s: Optional[float] = None) -> List[str]:
        """All keys under ``prefix``, sorted."""
        raise NotImplementedError

    def delete(self, key: str, *,
               timeout_s: Optional[float] = None) -> None:
        """Remove ``key``; silently succeeds when already absent."""
        raise NotImplementedError

    def commit(self, src_key: str, dst_key: str, *,
               timeout_s: Optional[float] = None) -> None:
        """Atomically rename ``src_key`` to ``dst_key`` (the second leg
        of an upload-then-commit atomic put)."""
        raise NotImplementedError

    def spawn_config(self) -> Dict[str, object]:
        """A picklable description a worker process can rebuild from."""
        raise NotImplementedError


def _check_key(key: str) -> str:
    """Reject keys that could escape the transport's namespace."""
    if not key:
        raise ValueError("empty transport key")
    parts = key.split("/")
    for part in parts:
        if part in ("", ".", "..") or "\\" in part:
            raise ValueError(f"invalid transport key {key!r}")
    return key


class LoopbackTransport(Transport):
    """A directory as a blob backend.

    Puts are atomic at the file level (temp file + ``os.replace``) so
    even the *loopback* never exposes a half-written payload — the
    torn-payload failure mode is injected explicitly by
    :class:`FlakyTransport` instead of happening by accident.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root.joinpath(*_check_key(key).split("/"))

    def get(self, key: str, *, timeout_s: Optional[float] = None) -> bytes:
        path = self._path(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def put(self, key: str, data: bytes, *,
            timeout_s: Optional[float] = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tx-{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def list(self, prefix: str = "", *,
             timeout_s: Optional[float] = None) -> List[str]:
        base = self.root.joinpath(*prefix.split("/")) if prefix else self.root
        if not base.is_dir():
            return []
        keys = []
        for path in base.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                keys.append(path.relative_to(self.root).as_posix())
        return sorted(keys)

    def delete(self, key: str, *,
               timeout_s: Optional[float] = None) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def commit(self, src_key: str, dst_key: str, *,
               timeout_s: Optional[float] = None) -> None:
        src, dst = self._path(src_key), self._path(dst_key)
        if not src.exists():
            raise KeyError(src_key)
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dst)

    def spawn_config(self) -> Dict[str, object]:
        return {"kind": "loopback", "root": str(self.root)}


class FlakyTransport(Transport):
    """Deterministic fault injection around any :class:`Transport`.

    One :class:`~repro.testing.faults.FaultClock` counts *every*
    operation (get/put/list/delete/commit) in call order; the
    schedule's ordinals index that stream.  ``ops`` exposes the cursor
    so tests can assert exactly where faults landed, and
    ``fault_counts`` tallies what fired.
    """

    def __init__(self, inner: Transport, schedule: FaultSchedule, *,
                 latency_s: float = 0.002):
        self.inner = inner
        self.schedule = schedule
        self.latency_s = latency_s
        self._clock = FaultClock(schedule)
        self.fault_counts: Dict[str, int] = {}

    @property
    def ops(self) -> int:
        """Operations attempted so far (faulted ones included)."""
        return self._clock.ordinal

    def _tick(self, op: str) -> Optional[str]:
        fault = self._clock.next_fault(op)
        if fault is None:
            return None
        self.fault_counts[fault] = self.fault_counts.get(fault, 0) + 1
        if fault == TransportFaultKind.CONNECT:
            raise TransportConnectionError(
                f"injected connection fault at op {self._clock.ordinal - 1} "
                f"({op})")
        if fault == TransportFaultKind.TIMEOUT:
            raise TransportTimeout(
                f"injected timeout at op {self._clock.ordinal - 1} ({op})")
        if fault == TransportFaultKind.LATENCY:
            time.sleep(self.latency_s)
            return None
        if fault in (TransportFaultKind.TRUNCATE, TransportFaultKind.CORRUPT):
            return fault
        raise ValueError(f"unknown transport fault kind {fault!r}")

    @staticmethod
    def _mangle(data: bytes, fault: Optional[str], seed_token: str) -> bytes:
        if fault == TransportFaultKind.TRUNCATE:
            return data[:len(data) // 2]
        if fault == TransportFaultKind.CORRUPT:
            if not data:
                return data
            # Deterministic single-byte flip: position and mask come
            # from the token, not from shared RNG state.
            rng = random.Random(seed_token)
            pos = rng.randrange(len(data))
            mangled = bytearray(data)
            mangled[pos] ^= 1 + rng.randrange(255)
            return bytes(mangled)
        return data

    def get(self, key: str, *, timeout_s: Optional[float] = None) -> bytes:
        fault = self._tick("get")
        data = self.inner.get(key, timeout_s=timeout_s)
        return self._mangle(data, fault,
                            f"{self.schedule.seed}:get:{key}")

    def put(self, key: str, data: bytes, *,
            timeout_s: Optional[float] = None) -> None:
        fault = self._tick("put")
        data = self._mangle(data, fault,
                            f"{self.schedule.seed}:put:{key}")
        self.inner.put(key, data, timeout_s=timeout_s)

    def list(self, prefix: str = "", *,
             timeout_s: Optional[float] = None) -> List[str]:
        self._tick("list")
        return self.inner.list(prefix, timeout_s=timeout_s)

    def delete(self, key: str, *,
               timeout_s: Optional[float] = None) -> None:
        self._tick("delete")
        self.inner.delete(key, timeout_s=timeout_s)

    def commit(self, src_key: str, dst_key: str, *,
               timeout_s: Optional[float] = None) -> None:
        self._tick("commit")
        self.inner.commit(src_key, dst_key, timeout_s=timeout_s)

    def spawn_config(self) -> Dict[str, object]:
        return {
            "kind": "flaky",
            "inner": self.inner.spawn_config(),
            "schedule": {
                "at": list(list(pair) for pair in self.schedule.at),
                "windows": [
                    {"start": w.start, "stop": w.stop,
                     "kind": w.kind, "op": w.op}
                    for w in self.schedule.windows
                ],
                "rates": list(list(pair) for pair in self.schedule.rates),
                "seed": self.schedule.seed,
            },
            "latency_s": self.latency_s,
        }


def build_transport(config: Union[Transport, Dict[str, object], str,
                                  Path]) -> Transport:
    """Rebuild a transport from a :meth:`Transport.spawn_config` dict.

    Strings/paths are shorthand for a loopback directory; transports
    pass through unchanged.
    """
    if isinstance(config, Transport):
        return config
    if isinstance(config, (str, Path)):
        return LoopbackTransport(config)
    kind = config.get("kind")
    if kind == "loopback":
        return LoopbackTransport(str(config["root"]))
    if kind == "flaky":
        raw = dict(config.get("schedule") or {})
        schedule = FaultSchedule(
            at=tuple((int(o), str(k)) for o, k in raw.get("at", ())),
            windows=tuple(
                FaultWindow(start=int(w["start"]), stop=int(w["stop"]),
                            kind=str(w["kind"]), op=w.get("op"))
                for w in raw.get("windows", ())),
            rates=tuple((str(k), float(r)) for k, r in raw.get("rates", ())),
            seed=int(raw.get("seed", 0)),
        )
        return FlakyTransport(
            build_transport(dict(config["inner"])),  # type: ignore[arg-type]
            schedule,
            latency_s=float(config.get("latency_s", 0.002)),
        )
    raise ValueError(f"unknown transport config {config!r}")
